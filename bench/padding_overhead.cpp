/**
 * @file
 * Section III-C: memory overhead of μ-vector zero-padding relative to
 * ideal dense narrow packing, for all 49 configurations — analytic
 * (from the geometry) and measured (by compressing a real matrix pair).
 * The paper reports 2.4 % on average with kua/kub capped at 4.
 */

#include <iostream>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/table.h"
#include "tensor/packing.h"

using namespace mixgemm;

int
main()
{
    std::cout << "Section III-C — zero-padding memory overhead per "
                 "configuration (kua, kub <= 4)\n\n";

    Rng rng(11);
    const uint64_t m = 64;
    const uint64_t n = 64;
    Table t({"config", "kua/kub", "analytic %", "measured %"});
    RunningStat avg;
    for (const auto &cfg : allSupportedConfigs()) {
        const auto g = computeBsGeometry(cfg);
        // k: several whole groups (steady-state overhead, no tail).
        const uint64_t k = uint64_t{g.group_extent} * 12;
        std::vector<int32_t> a(m * k);
        std::vector<int32_t> b(k * n);
        for (auto &v : a)
            v = static_cast<int32_t>(
                rng.uniformInt(-(1 << (cfg.bwa - 1)),
                               (1 << (cfg.bwa - 1)) - 1));
        for (auto &v : b)
            v = static_cast<int32_t>(
                rng.uniformInt(-(1 << (cfg.bwb - 1)),
                               (1 << (cfg.bwb - 1)) - 1));
        const CompressedA ca(a, m, k, g);
        const CompressedB cb(b, k, n, g);
        const double measured =
            static_cast<double>(ca.bytes() + cb.bytes()) /
                static_cast<double>(ca.idealBytes() + cb.idealBytes()) -
            1.0;
        const double analytic = g.paddingOverhead();
        avg.add(100 * measured);
        t.addRow({cfg.name(),
                  strCat(g.kua, "/", g.kub),
                  Table::fmt(100 * analytic, 2),
                  Table::fmt(100 * measured, 2)});
    }
    t.print(std::cout);
    std::cout << "\nAverage measured overhead: "
              << Table::fmt(avg.mean(), 2)
              << " % (paper: 2.4 % average); worst "
              << Table::fmt(avg.max(), 2) << " %.\n";
    return 0;
}
