/**
 * @file
 * Table I: design-space exploration of the Mix-GEMM parameters.
 *
 * Sweeps the cache blocking (mc, nc, kc), the register/AccMem tile
 * (mr, nr), and prints the kua/kub selection for the Fig. 4
 * configurations, reporting the measured optimum next to the paper's
 * (mc = nc = kc = 256, mr = nr = 4, kua = kub = 4, AccMem 16,
 * Source Buffers 16).
 */

#include <iostream>
#include <vector>

#include "common/table.h"
#include "power/area_model.h"
#include "sim/gemm_timing.h"
#include "soc/soc_config.h"

using namespace mixgemm;

int
main()
{
    const SoCConfig soc = SoCConfig::sargantana();
    const auto geom = computeBsGeometry({8, 8, true, true});
    const uint64_t s = 512; // representative GEMM

    std::cout << "Table I — Mix-GEMM parameter DSE (a8-w8, " << s << "^3"
              << " GEMM on " << soc.name << ")\n\n";

    // --- Cache blocking sweep.
    std::cout << "Cache blocking (mr = nr = 4):\n";
    Table cb({"mc", "nc", "kc", "cycles", "GOPS", "note"});
    uint64_t best_cycles = ~uint64_t{0};
    BlockingParams best;
    for (const uint64_t kc : {64u, 128u, 256u, 512u}) {
        for (const uint64_t mc : {64u, 128u, 256u, 512u}) {
            for (const uint64_t nc : {128u, 256u, 512u}) {
                BlockingParams b;
                b.mc = mc;
                b.nc = nc;
                b.kc = kc;
                const GemmTimingModel model(soc, b);
                const auto t = model.mixGemm(s, s, s, geom);
                if (t.cycles < best_cycles) {
                    best_cycles = t.cycles;
                    best = b;
                }
                if (mc == nc && (kc == mc || kc == mc / 2 ||
                                 kc == 2 * mc))
                    cb.addRow({std::to_string(mc), std::to_string(nc),
                               std::to_string(kc),
                               Table::fmtInt(t.cycles),
                               Table::fmt(t.gops, 2), ""});
            }
        }
    }
    cb.addSeparator();
    {
        const GemmTimingModel model(soc, best);
        const auto t = model.mixGemm(s, s, s, geom);
        cb.addRow({std::to_string(best.mc), std::to_string(best.nc),
                   std::to_string(best.kc), Table::fmtInt(t.cycles),
                   Table::fmt(t.gops, 2), "measured optimum"});
        cb.addRow({"256", "256", "256", "", "", "paper Table I"});
    }
    cb.print(std::cout);
    std::cout << "Note: performance is flat above 256 in our model —\n"
                 "compressed μ-panels are 8-32x smaller than DGEMM\n"
                 "panels, so the L1 constraint that pins kc = 256 in\n"
                 "the paper's [45]-style analysis binds only weakly; "
                 "256 stays within a few percent of the flat optimum.\n";

    // --- Register/AccMem tile sweep with RF feasibility.
    std::cout << "\nRegister tile (mc = nc = kc = 256); RF budget: "
                 "kua*mr + kub*nr <= 32 registers:\n";
    Table rt({"mr", "nr", "RF regs", "feasible", "cycles", "AccMem"});
    for (const unsigned mr : {2u, 4u, 8u}) {
        for (const unsigned nr : {2u, 4u, 8u}) {
            BlockingParams b;
            b.mr = mr;
            b.nr = nr;
            const unsigned rf = geom.kua * mr + geom.kub * nr;
            const GemmTimingModel model(soc, b);
            const auto t = model.mixGemm(s, s, s, geom);
            rt.addRow({std::to_string(mr), std::to_string(nr),
                       std::to_string(rf), rf <= 32 ? "yes" : "no",
                       Table::fmtInt(t.cycles),
                       std::to_string(mr * nr)});
        }
    }
    rt.print(std::cout);

    // --- kua/kub selection (Fig. 4) and padding.
    std::cout << "\nkua/kub selection per configuration (Fig. 4):\n";
    Table ku({"config", "kua", "kub", "group extent", "group cycles",
              "MAC/cycle", "padding %"});
    for (const auto &cfg :
         {DataSizeConfig{8, 8, true, true}, DataSizeConfig{8, 6, true,
                                                           true},
          DataSizeConfig{6, 4, true, true}, DataSizeConfig{8, 2, true,
                                                           true},
          DataSizeConfig{4, 4, true, true}, DataSizeConfig{2, 2, true,
                                                           true}}) {
        const auto g = computeBsGeometry(cfg);
        ku.addRow({cfg.name(), std::to_string(g.kua),
                   std::to_string(g.kub),
                   std::to_string(g.group_extent),
                   std::to_string(g.group_cycles),
                   Table::fmt(g.macsPerCycle(), 2),
                   Table::fmt(100 * g.paddingOverhead(), 1)});
    }
    ku.print(std::cout);

    const AreaModel area;
    std::cout << "\nAccMem = mr x nr = 16 slots; Source Buffers = 16 "
                 "μ-vectors (see srcbuf_dse); μ-engine area "
              << Table::fmt(area.uengineArea(), 0) << " μm².\n";
    std::cout << "Paper Table I: mc=nc=kc=256, mr=nr=4, kua=kub=4, "
                 "AccMem=16, SB=16.\n";
    return 0;
}
