/**
 * @file
 * GEMM workload suite: the distinct GEMM shapes the six CNNs actually
 * lower to (the realistic counterpart of Fig. 6's square sweep), priced
 * at a8-w8 and a4-w4 with speed-ups over the DGEMM baseline. Shows
 * where Mix-GEMM's advantage holds across the real shape distribution —
 * large square-ish conv GEMMs, wide 1x1 GEMMs, skinny FC GEMMs, and
 * short-k depthwise GEMMs.
 *
 * A second section times the library itself (wall clock, single
 * thread): the word-domain fast-path μ-kernel against the modeled
 * μ-engine kernel, verifying bitwise identity along the way, and
 * writes the measurements to BENCH_gemm.json for CI tracking. The
 * wall-clock runs execute under a TraceSession, so the JSON also
 * carries the driver's structured RunReports (exact counters,
 * macro-tile timer percentiles, packed bytes) next to the timings.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <tuple>

#include "common/random.h"
#include "common/table.h"
#include "dnn/models.h"
#include "gemm/mixgemm.h"
#include "sim/gemm_timing.h"
#include "soc/soc_config.h"
#include "trace/session.h"

using namespace mixgemm;

namespace
{

struct WallClockSpec
{
    const char *name;
    DataSizeConfig config;
    uint64_t m, n, k;
};

struct WallClockRow
{
    WallClockSpec spec;
    double fast_secs;
    double modeled_secs;
    double fast_gops;
    double modeled_gops;
    bool identical;
};

std::vector<int32_t>
randomNarrowMatrix(Rng &rng, uint64_t elems, unsigned bw, bool is_signed)
{
    std::vector<int32_t> data(elems);
    const int64_t lo = is_signed ? -(int64_t{1} << (bw - 1)) : 0;
    const int64_t hi = is_signed ? (int64_t{1} << (bw - 1)) - 1
                                 : (int64_t{1} << bw) - 1;
    for (auto &v : data)
        v = static_cast<int32_t>(rng.uniformInt(lo, hi));
    return data;
}

WallClockRow
timeWallClock(const WallClockSpec &spec, TraceSession *session)
{
    Rng rng(12345);
    const auto a = randomNarrowMatrix(rng, spec.m * spec.k,
                                      spec.config.bwa,
                                      spec.config.a_signed);
    const auto b = randomNarrowMatrix(rng, spec.k * spec.n,
                                      spec.config.bwb,
                                      spec.config.b_signed);
    const auto geometry =
        geometryForK(computeBsGeometry(spec.config), spec.k);
    BlockingParams blocking = BlockingParams::paperDefaults();
    blocking.threads = 1;
    blocking.session = session;
    blocking.trace_label = std::string(spec.name) + "_" +
                           std::to_string(spec.m) + "x" +
                           std::to_string(spec.n) + "x" +
                           std::to_string(spec.k);

    using clock = std::chrono::steady_clock;
    blocking.kernel_mode = KernelMode::Fast;
    const auto t0 = clock::now();
    const auto fast =
        mixGemm(a, b, spec.m, spec.n, spec.k, geometry, blocking);
    const auto t1 = clock::now();
    blocking.kernel_mode = KernelMode::Modeled;
    const auto modeled =
        mixGemm(a, b, spec.m, spec.n, spec.k, geometry, blocking);
    const auto t2 = clock::now();

    WallClockRow row;
    row.spec = spec;
    row.fast_secs = std::chrono::duration<double>(t1 - t0).count();
    row.modeled_secs = std::chrono::duration<double>(t2 - t1).count();
    const double ops = 2.0 * spec.m * spec.n * spec.k;
    row.fast_gops = ops / row.fast_secs / 1e9;
    row.modeled_gops = ops / row.modeled_secs / 1e9;
    row.identical = fast.c == modeled.c &&
                    fast.counters.all() == modeled.counters.all();
    return row;
}

struct AbftOverheadRow
{
    WallClockSpec spec;
    double off_secs;         ///< FaultPolicy::Off
    double detect_cold_secs; ///< first Detect run: includes the one-time
                             ///< operand checksum build
    double detect_warm_secs; ///< steady state: checksums already built
    bool identical;          ///< Detect output bitwise equals Off output
};

/**
 * ABFT overhead on a clean GEMM: the same compressed operands run under
 * FaultPolicy::Off and twice under Detect. The first Detect run pays
 * the one-time per-operand checksum build (amortized across every GEMM
 * that reuses the operand — weights in an inference loop); the second
 * is the steady-state verification cost. Both runs report through the
 * trace session, so BENCH_gemm.json's run_reports carry fault_policy
 * and abft_secs alongside the timings.
 */
AbftOverheadRow
timeAbftOverhead(const WallClockSpec &spec, TraceSession *session)
{
    Rng rng(54321);
    const auto a_data = randomNarrowMatrix(rng, spec.m * spec.k,
                                           spec.config.bwa,
                                           spec.config.a_signed);
    const auto b_data = randomNarrowMatrix(rng, spec.k * spec.n,
                                           spec.config.bwb,
                                           spec.config.b_signed);
    const auto geometry =
        geometryForK(computeBsGeometry(spec.config), spec.k);
    const CompressedA a(a_data, spec.m, spec.k, geometry);
    const CompressedB b(b_data, spec.k, spec.n, geometry);

    BlockingParams blocking = BlockingParams::paperDefaults();
    blocking.threads = 1;
    blocking.session = session;
    const std::string label = std::string(spec.name) + "_" +
                              std::to_string(spec.m) + "x" +
                              std::to_string(spec.n) + "x" +
                              std::to_string(spec.k);

    using clock = std::chrono::steady_clock;
    blocking.trace_label = "abft_off_" + label;
    const auto t0 = clock::now();
    const auto off = mixGemm(a, b, blocking);
    const auto t1 = clock::now();
    blocking.fault_policy = FaultPolicy::Detect;
    blocking.trace_label = "abft_detect_cold_" + label;
    const auto cold = mixGemm(a, b, blocking);
    const auto t2 = clock::now();
    blocking.trace_label = "abft_detect_warm_" + label;
    const auto warm = mixGemm(a, b, blocking);
    const auto t3 = clock::now();

    AbftOverheadRow row;
    row.spec = spec;
    row.off_secs = std::chrono::duration<double>(t1 - t0).count();
    row.detect_cold_secs = std::chrono::duration<double>(t2 - t1).count();
    row.detect_warm_secs = std::chrono::duration<double>(t3 - t2).count();
    row.identical = cold.c == off.c && warm.c == off.c &&
                    cold.abft.tiles_flagged == 0 &&
                    warm.abft.tiles_flagged == 0;
    return row;
}

void
writeBenchJson(const std::vector<WallClockRow> &rows,
               const std::vector<AbftOverheadRow> &abft_rows,
               const std::vector<RunReport> &reports, const char *path)
{
    std::ofstream json(path);
    json << std::boolalpha << "{\n"
         << "  \"bench\": \"gemm_suite\",\n"
         << "  \"threads\": 1,\n"
         << "  \"unit\": \"GOPS\",\n"
         << "  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        json << "    {\"config\": \"" << r.spec.name << "\", \"m\": "
             << r.spec.m << ", \"n\": " << r.spec.n << ", \"k\": "
             << r.spec.k << ", \"fast_secs\": " << r.fast_secs
             << ", \"modeled_secs\": " << r.modeled_secs
             << ", \"fast_gops\": " << r.fast_gops
             << ", \"modeled_gops\": " << r.modeled_gops
             << ", \"speedup\": " << r.modeled_secs / r.fast_secs
             << ", \"identical\": " << r.identical << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"abft_overhead\": [\n";
    for (size_t i = 0; i < abft_rows.size(); ++i) {
        const auto &r = abft_rows[i];
        json << "    {\"config\": \"" << r.spec.name << "\", \"m\": "
             << r.spec.m << ", \"n\": " << r.spec.n << ", \"k\": "
             << r.spec.k << ", \"off_secs\": " << r.off_secs
             << ", \"detect_cold_secs\": " << r.detect_cold_secs
             << ", \"detect_warm_secs\": " << r.detect_warm_secs
             << ", \"cold_overhead\": "
             << r.detect_cold_secs / r.off_secs - 1.0
             << ", \"warm_overhead\": "
             << r.detect_warm_secs / r.off_secs - 1.0
             << ", \"identical\": " << r.identical << "}"
             << (i + 1 < abft_rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"run_reports\": [\n";
    for (size_t i = 0; i < reports.size(); ++i)
        json << "    " << runReportToJson(reports[i], "    ")
             << (i + 1 < reports.size() ? "," : "") << "\n";
    json << "  ]\n}\n";
}

} // namespace

int
main()
{
    const GemmTimingModel model(SoCConfig::sargantana());

    // Collect the distinct (m, n, k) shapes over all six networks,
    // remembering how many layer instances map to each.
    std::map<std::tuple<uint64_t, uint64_t, uint64_t>, unsigned> shapes;
    for (const auto &net : allModels()) {
        for (const auto &layer : net.layers) {
            const uint64_t n = layer.conv.groups > 1
                                   ? layer.conv.out_c
                                   : layer.conv.gemmN();
            shapes[{layer.conv.gemmM(), n, layer.conv.gemmK()}]++;
        }
    }

    // Order by MAC volume and keep the heaviest 24 plus the 4 smallest
    // (the degenerate shapes are where GEMM libraries hurt).
    std::vector<std::pair<std::tuple<uint64_t, uint64_t, uint64_t>,
                          unsigned>>
        ordered(shapes.begin(), shapes.end());
    std::sort(ordered.begin(), ordered.end(), [](auto &a, auto &b) {
        const auto [ma, na, ka] = a.first;
        const auto [mb, nb, kb] = b.first;
        return ma * na * ka > mb * nb * kb;
    });
    std::vector<size_t> picks;
    for (size_t i = 0; i < std::min<size_t>(24, ordered.size()); ++i)
        picks.push_back(i);
    for (size_t i = ordered.size() > 4 ? ordered.size() - 4 : 0;
         i < ordered.size(); ++i)
        if (std::find(picks.begin(), picks.end(), i) == picks.end())
            picks.push_back(i);

    std::cout << "CNN-derived GEMM suite (" << shapes.size()
              << " distinct shapes across the six networks; showing "
              << picks.size() << ")\n\n";

    Table t({"m", "n", "k", "uses", "MMACs", "a8-w8 GOPS", "vs DGEMM",
             "a4-w4 GOPS"});
    const auto g88 = computeBsGeometry({8, 8, true, true});
    const auto g44 = computeBsGeometry({4, 4, true, true});
    for (const size_t idx : picks) {
        const auto [m, n, k] = ordered[idx].first;
        const double mmacs =
            static_cast<double>(m) * n * k / 1e6;
        const auto mix88 =
            model.mixGemm(m, n, k, geometryForK(g88, k));
        const auto mix44 =
            model.mixGemm(m, n, k, geometryForK(g44, k));
        const auto dgemm = model.dgemm(m, n, k);
        t.addRow({Table::fmtInt(m), Table::fmtInt(n), Table::fmtInt(k),
                  std::to_string(ordered[idx].second),
                  Table::fmt(mmacs, 1), Table::fmt(mix88.gops, 2),
                  Table::fmt(static_cast<double>(dgemm.cycles) /
                                 mix88.cycles,
                             1) +
                      "x",
                  Table::fmt(mix44.gops, 2)});
    }
    t.print(std::cout);
    std::cout << "\nLarge conv GEMMs reach the Fig. 6 steady state; "
                 "skinny FC (m = 1) and short-k depthwise shapes show "
                 "the register-tile and μ-vector-padding overheads the "
                 "Fig. 7 network results average over.\n";

    std::cout << "\nWall-clock μ-kernel benchmark (single thread): "
                 "word-domain fast path vs modeled μ-engine\n\n";
    const std::vector<WallClockSpec> specs = {
        {"a8-w8", {8, 8, true, true}, 1024, 1024, 1024},
        {"a8-w8", {8, 8, true, true}, 256, 256, 256},
        {"a4-w4", {4, 4, true, true}, 256, 256, 256},
        {"a2-w2", {2, 2, true, true}, 256, 256, 256},
        {"a8-w2", {8, 2, true, true}, 256, 256, 256},
        {"a5-w3", {5, 3, true, true}, 256, 256, 256},
    };
    Table wt({"config", "m=n=k", "fast s", "modeled s", "fast GOPS",
              "speedup", "identical"});
    TraceSession session;
    std::vector<WallClockRow> rows;
    bool all_identical = true;
    for (const auto &spec : specs) {
        const auto row = timeWallClock(spec, &session);
        rows.push_back(row);
        all_identical = all_identical && row.identical;
        wt.addRow({spec.name, Table::fmtInt(spec.m),
                   Table::fmt(row.fast_secs, 3),
                   Table::fmt(row.modeled_secs, 3),
                   Table::fmt(row.fast_gops, 2),
                   Table::fmt(row.modeled_secs / row.fast_secs, 1) + "x",
                   row.identical ? "yes" : "NO"});
    }
    wt.print(std::cout);

    std::cout << "\nABFT overhead on clean GEMMs (FaultPolicy::Detect "
                 "vs Off; cold pays the one-time operand checksum "
                 "build)\n\n";
    const std::vector<WallClockSpec> abft_specs = {
        {"a8-w8", {8, 8, true, true}, 512, 512, 512},
        {"a8-w8", {8, 8, true, true}, 256, 256, 256},
        {"a4-w4", {4, 4, true, true}, 256, 256, 256},
    };
    Table at({"config", "m=n=k", "off s", "detect cold s",
              "detect warm s", "warm ovh", "identical"});
    std::vector<AbftOverheadRow> abft_rows;
    for (const auto &spec : abft_specs) {
        const auto row = timeAbftOverhead(spec, &session);
        abft_rows.push_back(row);
        all_identical = all_identical && row.identical;
        at.addRow({spec.name, Table::fmtInt(spec.m),
                   Table::fmt(row.off_secs, 3),
                   Table::fmt(row.detect_cold_secs, 3),
                   Table::fmt(row.detect_warm_secs, 3),
                   Table::fmt((row.detect_warm_secs / row.off_secs - 1) *
                                  100,
                              1) +
                       "%",
                   row.identical ? "yes" : "NO"});
    }
    at.print(std::cout);

    writeBenchJson(rows, abft_rows, session.reports(), "BENCH_gemm.json");
    std::cout << "\nWrote BENCH_gemm.json. Both kernels produce "
                 "bitwise-identical C and counters, and ABFT "
                 "verification is transparent on clean runs: "
              << (all_identical ? "verified" : "VIOLATED") << ".\n";
    return all_identical ? 0 : 1;
}
