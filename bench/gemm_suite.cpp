/**
 * @file
 * GEMM workload suite: the distinct GEMM shapes the six CNNs actually
 * lower to (the realistic counterpart of Fig. 6's square sweep), priced
 * at a8-w8 and a4-w4 with speed-ups over the DGEMM baseline. Shows
 * where Mix-GEMM's advantage holds across the real shape distribution —
 * large square-ish conv GEMMs, wide 1x1 GEMMs, skinny FC GEMMs, and
 * short-k depthwise GEMMs.
 *
 * A second section times the library itself (wall clock, single
 * thread): the word-domain fast-path μ-kernel against the modeled
 * μ-engine kernel, verifying bitwise identity along the way, and
 * writes the measurements to BENCH_gemm.json for CI tracking. The
 * wall-clock runs execute under a TraceSession, so the JSON also
 * carries the driver's structured RunReports (exact counters,
 * macro-tile timer percentiles, packed bytes) next to the timings.
 *
 * A third section sweeps the μ-kernel registry: the PR-2 scalar
 * per-cell loop (SimdLevel::Off), the default SIMD dispatch, and the
 * autotuned configuration (quick in-process autotune), verifying all
 * three stay bitwise identical. Its rows also feed a bounded
 * "history" array in BENCH_gemm.json: entries are deduplicated by
 * (config, shape, kernel, commit) — the commit comes from GITHUB_SHA
 * or MIXGEMM_COMMIT, else "local" — and capped at kHistoryCap,
 * oldest dropped first, so repeated local runs and CI reruns of the
 * same commit no longer grow the file without bound.
 *
 * A final model-lifecycle section times the packed-weight store on a
 * synthetic resnet18 at three ladder rungs (a8-w8, a4-w4, a2-w2):
 * cold pack + artifact persist, warm mmap load in a fresh store
 * (the lazy-rung materialization path), and the resident LRU hit.
 * Rows land in a "model_lifecycle" array and feed the same bounded
 * history (kernel = "pack_cold" / "mmap_warm").
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <tuple>

#include "common/jsonlite.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/table.h"
#include "dnn/models.h"
#include "gemm/kernels/autotune.h"
#include "gemm/kernels/kernel.h"
#include "gemm/mixgemm.h"
#include "sim/gemm_timing.h"
#include "soc/soc_config.h"
#include "store/modelgen.h"
#include "store/store.h"
#include "trace/json.h"
#include "trace/session.h"

using namespace mixgemm;

namespace
{

struct WallClockSpec
{
    const char *name;
    DataSizeConfig config;
    uint64_t m, n, k;
};

struct WallClockRow
{
    WallClockSpec spec;
    double fast_secs;
    double modeled_secs;
    double fast_gops;
    double modeled_gops;
    bool identical;
};

std::vector<int32_t>
randomNarrowMatrix(Rng &rng, uint64_t elems, unsigned bw, bool is_signed)
{
    std::vector<int32_t> data(elems);
    const int64_t lo = is_signed ? -(int64_t{1} << (bw - 1)) : 0;
    const int64_t hi = is_signed ? (int64_t{1} << (bw - 1)) - 1
                                 : (int64_t{1} << bw) - 1;
    for (auto &v : data)
        v = static_cast<int32_t>(rng.uniformInt(lo, hi));
    return data;
}

WallClockRow
timeWallClock(const WallClockSpec &spec, TraceSession *session)
{
    Rng rng(12345);
    const auto a = randomNarrowMatrix(rng, spec.m * spec.k,
                                      spec.config.bwa,
                                      spec.config.a_signed);
    const auto b = randomNarrowMatrix(rng, spec.k * spec.n,
                                      spec.config.bwb,
                                      spec.config.b_signed);
    const auto geometry =
        geometryForK(computeBsGeometry(spec.config), spec.k);
    BlockingParams blocking = BlockingParams::paperDefaults();
    blocking.threads = 1;
    blocking.session = session;
    blocking.trace_label = std::string(spec.name) + "_" +
                           std::to_string(spec.m) + "x" +
                           std::to_string(spec.n) + "x" +
                           std::to_string(spec.k);

    using clock = std::chrono::steady_clock;
    blocking.kernel_mode = KernelMode::Fast;
    const auto t0 = clock::now();
    const auto fast =
        mixGemm(a, b, spec.m, spec.n, spec.k, geometry, blocking);
    const auto t1 = clock::now();
    blocking.kernel_mode = KernelMode::Modeled;
    const auto modeled =
        mixGemm(a, b, spec.m, spec.n, spec.k, geometry, blocking);
    const auto t2 = clock::now();

    WallClockRow row;
    row.spec = spec;
    row.fast_secs = std::chrono::duration<double>(t1 - t0).count();
    row.modeled_secs = std::chrono::duration<double>(t2 - t1).count();
    const double ops = 2.0 * spec.m * spec.n * spec.k;
    row.fast_gops = ops / row.fast_secs / 1e9;
    row.modeled_gops = ops / row.modeled_secs / 1e9;
    row.identical = fast.c == modeled.c &&
                    fast.counters.all() == modeled.counters.all();
    return row;
}

struct KernelSweepRow
{
    WallClockSpec spec;
    double legacy_secs;  ///< Fast path, SimdLevel::Off (the PR-2 loop)
    double simd_secs;    ///< Fast path, SimdLevel::Auto, paper blocking
    double tuned_secs;   ///< autotuned blocking + μ-kernel
    double legacy_gops, simd_gops, tuned_gops;
    std::string kernel; ///< μ-kernel the tuned run dispatched
    bool identical;
};

/**
 * Registry sweep on pre-compressed operands (packing excluded, so the
 * ratios isolate the μ-kernel): the same GEMM under the legacy scalar
 * loop, the default SIMD dispatch, and the autotuned operating point.
 */
KernelSweepRow
timeKernelSweep(const WallClockSpec &spec, const TuningSet &tuning,
                TraceSession *session)
{
    Rng rng(98765);
    const auto a_data = randomNarrowMatrix(rng, spec.m * spec.k,
                                           spec.config.bwa,
                                           spec.config.a_signed);
    const auto b_data = randomNarrowMatrix(rng, spec.k * spec.n,
                                           spec.config.bwb,
                                           spec.config.b_signed);
    const auto geometry =
        geometryForK(computeBsGeometry(spec.config), spec.k);
    const CompressedA a(a_data, spec.m, spec.k, geometry);
    const CompressedB b(b_data, spec.k, spec.n, geometry);
    const std::string label = std::string(spec.name) + "_" +
                              std::to_string(spec.m) + "x" +
                              std::to_string(spec.n) + "x" +
                              std::to_string(spec.k);

    // Best-of-2 *CPU* time per variant: the suite runs single-threaded
    // on shared CI machines, where wall clock folds in steal time and
    // descheduling and can swing the speedup ratios by 2x between
    // runs. Process CPU time charges each variant only for the cycles
    // it actually executed, which is the like-for-like basis the
    // legacy-vs-SIMD ratio claims.
    constexpr unsigned kReps = 2;
    const auto cpuSecs = [] {
        timespec ts{};
        clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    };
    const auto timeReps = [&](const BlockingParams &params,
                              MixGemmResult &out) {
        double best = 0.0;
        for (unsigned rep = 0; rep < kReps; ++rep) {
            const double start = cpuSecs();
            auto result = mixGemm(a, b, params);
            const double secs = cpuSecs() - start;
            if (rep == 0 || secs < best) {
                best = secs;
                out = std::move(result);
            }
        }
        return best;
    };

    BlockingParams blocking = BlockingParams::paperDefaults();
    blocking.threads = 1;
    blocking.session = session;
    blocking.simd = SimdLevel::Off;
    blocking.trace_label = "kernel_legacy_" + label;
    MixGemmResult legacy, simd, tuned;
    const double legacy_secs = timeReps(blocking, legacy);
    blocking.simd = SimdLevel::Auto;
    blocking.trace_label = "kernel_simd_" + label;
    const double simd_secs = timeReps(blocking, simd);

    BlockingParams tuned_blocking = blockingForConfig(
        &tuning, spec.config, 32 * 1024, 512 * 1024);
    tuned_blocking.threads = 1;
    tuned_blocking.session = session;
    tuned_blocking.trace_label = "kernel_tuned_" + label;
    const double tuned_secs = timeReps(tuned_blocking, tuned);

    KernelSweepRow row;
    row.spec = spec;
    row.legacy_secs = legacy_secs;
    row.simd_secs = simd_secs;
    row.tuned_secs = tuned_secs;
    const double ops = 2.0 * spec.m * spec.n * spec.k;
    row.legacy_gops = ops / row.legacy_secs / 1e9;
    row.simd_gops = ops / row.simd_secs / 1e9;
    row.tuned_gops = ops / row.tuned_secs / 1e9;
    row.kernel = tuned.micro_kernel;
    // The SIMD run shares the legacy run's blocking, so its counters
    // must match bitwise; the tuned run uses a different schedule, and
    // counter totals are a function of the schedule — only its output
    // is required to be identical.
    row.identical = simd.c == legacy.c && tuned.c == legacy.c &&
                    simd.counters.all() == legacy.counters.all();
    return row;
}

struct AbftOverheadRow
{
    WallClockSpec spec;
    double off_secs;         ///< FaultPolicy::Off
    double detect_cold_secs; ///< first Detect run: includes the one-time
                             ///< operand checksum build
    double detect_warm_secs; ///< steady state: checksums already built
    bool identical;          ///< Detect output bitwise equals Off output
};

/**
 * ABFT overhead on a clean GEMM: the same compressed operands run under
 * FaultPolicy::Off and twice under Detect. The first Detect run pays
 * the one-time per-operand checksum build (amortized across every GEMM
 * that reuses the operand — weights in an inference loop); the second
 * is the steady-state verification cost. Both runs report through the
 * trace session, so BENCH_gemm.json's run_reports carry fault_policy
 * and abft_secs alongside the timings.
 */
AbftOverheadRow
timeAbftOverhead(const WallClockSpec &spec, TraceSession *session)
{
    Rng rng(54321);
    const auto a_data = randomNarrowMatrix(rng, spec.m * spec.k,
                                           spec.config.bwa,
                                           spec.config.a_signed);
    const auto b_data = randomNarrowMatrix(rng, spec.k * spec.n,
                                           spec.config.bwb,
                                           spec.config.b_signed);
    const auto geometry =
        geometryForK(computeBsGeometry(spec.config), spec.k);
    const CompressedA a(a_data, spec.m, spec.k, geometry);
    const CompressedB b(b_data, spec.k, spec.n, geometry);

    BlockingParams blocking = BlockingParams::paperDefaults();
    blocking.threads = 1;
    blocking.session = session;
    const std::string label = std::string(spec.name) + "_" +
                              std::to_string(spec.m) + "x" +
                              std::to_string(spec.n) + "x" +
                              std::to_string(spec.k);

    using clock = std::chrono::steady_clock;
    blocking.trace_label = "abft_off_" + label;
    const auto t0 = clock::now();
    const auto off = mixGemm(a, b, blocking);
    const auto t1 = clock::now();
    blocking.fault_policy = FaultPolicy::Detect;
    blocking.trace_label = "abft_detect_cold_" + label;
    const auto cold = mixGemm(a, b, blocking);
    const auto t2 = clock::now();
    blocking.trace_label = "abft_detect_warm_" + label;
    const auto warm = mixGemm(a, b, blocking);
    const auto t3 = clock::now();

    AbftOverheadRow row;
    row.spec = spec;
    row.off_secs = std::chrono::duration<double>(t1 - t0).count();
    row.detect_cold_secs = std::chrono::duration<double>(t2 - t1).count();
    row.detect_warm_secs = std::chrono::duration<double>(t3 - t2).count();
    row.identical = cold.c == off.c && warm.c == off.c &&
                    cold.abft.tiles_flagged == 0 &&
                    warm.abft.tiles_flagged == 0;
    return row;
}

struct LifecycleRow
{
    std::string network;    ///< model the rung is built from
    std::string config;     ///< rung precision, e.g. "a4-w4"
    uint64_t nodes = 0;     ///< packable nodes in the graph
    uint64_t packed_bytes = 0;
    double cold_secs = 0.0;     ///< pack + artifact persist (first run)
    double warm_secs = 0.0;     ///< mmap load in a fresh store
    double resident_secs = 0.0; ///< LRU hit in the warm store
    bool zero_copy = false;     ///< warm load adopted panels, no re-pack
};

/**
 * Model-lifecycle timing for one ladder rung: synthesize the graph at
 * the rung's precision, cold-pack it through a disk-backed store, then
 * mmap-load the artifact in a fresh store (what a lazy rung pays on
 * first materialization when the artifact exists) and hit the resident
 * cache (what every later materialization pays).
 */
LifecycleRow
timeModelLifecycle(const ModelSpec &model, DataSizeConfig config,
                   const std::string &cache_dir)
{
    LifecycleRow row;
    row.network = model.name;
    row.config = config.name();
    const QuantizedGraph graph =
        syntheticQuantizedGraph(model, config.bwa, config.bwb);

    using clock = std::chrono::steady_clock;
    StoreOptions options;
    options.dir = cache_dir;
    {
        PackedWeightStore cold_store(options);
        const auto t0 = clock::now();
        const auto cold = cold_store.load(graph);
        const auto t1 = clock::now();
        if (!cold.ok()) {
            fatal(strCat("lifecycle bench: cold pack failed: ",
                         cold.status().toString()));
        }
        row.cold_secs = std::chrono::duration<double>(t1 - t0).count();
        row.nodes = (*cold)->entries.size();
        row.packed_bytes = (*cold)->packed_bytes;
    }
    PackedWeightStore warm_store(options);
    const PackCounters before = packCounters();
    const auto t2 = clock::now();
    const auto warm = warm_store.load(graph);
    const auto t3 = clock::now();
    const auto resident = warm_store.load(graph);
    const auto t4 = clock::now();
    const PackCounters after = packCounters();
    if (!warm.ok() || !resident.ok())
        fatal("lifecycle bench: warm load failed");
    row.warm_secs = std::chrono::duration<double>(t3 - t2).count();
    row.resident_secs = std::chrono::duration<double>(t4 - t3).count();
    row.zero_copy = (*warm)->from_cache &&
                    after.b_packs == before.b_packs &&
                    after.cluster_builds == before.cluster_builds;
    return row;
}

/**
 * One retained measurement in BENCH_gemm.json's bounded history. The
 * dedup key is (config, m, n, k, kernel, commit): re-running the bench
 * at the same commit replaces the matching entries in place instead of
 * appending, and the array never exceeds kHistoryCap.
 */
struct HistoryEntry
{
    std::string config, kernel, commit;
    uint64_t m = 0, n = 0, k = 0;
    double gops = 0.0;
    double speedup = 0.0; ///< vs the legacy scalar loop, same run

    std::string key() const
    {
        return strCat(config, "|", m, "x", n, "x", k, "|", kernel, "|",
                      commit);
    }
};

constexpr size_t kHistoryCap = 120;

std::string
benchCommit()
{
    for (const char *var : {"GITHUB_SHA", "MIXGEMM_COMMIT"})
        if (const char *sha = std::getenv(var); sha && *sha)
            return sha;
    return "local";
}

/** Prior history from an existing BENCH_gemm.json (empty if none). */
std::vector<HistoryEntry>
loadHistory(const char *path)
{
    std::ifstream in(path);
    if (!in)
        return {};
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto doc = parseJson(buffer.str());
    if (!doc.ok())
        return {}; // pre-history or corrupt file: start fresh
    const JsonValue *history = doc->find("history");
    if (!history || !history->isArray())
        return {};
    std::vector<HistoryEntry> entries;
    for (const JsonValue &item : history->items) {
        if (!item.isObject())
            continue;
        HistoryEntry e;
        e.config = item.find("config") ? item.find("config")->stringOr("")
                                       : "";
        e.kernel = item.find("kernel") ? item.find("kernel")->stringOr("")
                                       : "";
        e.commit = item.find("commit")
                       ? item.find("commit")->stringOr("local")
                       : "local";
        e.m = item.find("m") ? item.find("m")->uintOr(0) : 0;
        e.n = item.find("n") ? item.find("n")->uintOr(0) : 0;
        e.k = item.find("k") ? item.find("k")->uintOr(0) : 0;
        e.gops = item.find("gops") ? item.find("gops")->numberOr(0.0)
                                   : 0.0;
        e.speedup = item.find("speedup")
                        ? item.find("speedup")->numberOr(0.0)
                        : 0.0;
        if (!e.config.empty() && e.m && e.n && e.k)
            entries.push_back(std::move(e));
    }
    return entries;
}

/** Replace same-key entries in place, append the rest, enforce the cap. */
std::vector<HistoryEntry>
mergeHistory(std::vector<HistoryEntry> history,
             const std::vector<HistoryEntry> &fresh)
{
    for (const HistoryEntry &e : fresh) {
        const auto it = std::find_if(
            history.begin(), history.end(),
            [&](const HistoryEntry &h) { return h.key() == e.key(); });
        if (it != history.end())
            *it = e;
        else
            history.push_back(e);
    }
    if (history.size() > kHistoryCap)
        history.erase(history.begin(),
                      history.end() -
                          static_cast<ptrdiff_t>(kHistoryCap));
    return history;
}

void
writeBenchJson(const std::vector<WallClockRow> &rows,
               const std::vector<KernelSweepRow> &sweep_rows,
               const std::vector<AbftOverheadRow> &abft_rows,
               const std::vector<LifecycleRow> &lifecycle_rows,
               const std::vector<RunReport> &reports,
               const std::vector<HistoryEntry> &history, const char *path)
{
    std::ofstream json(path);
    json << std::boolalpha << "{\n"
         << "  \"bench\": \"gemm_suite\",\n"
         << "  \"threads\": 1,\n"
         << "  \"unit\": \"GOPS\",\n"
         << "  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        json << "    {\"config\": \"" << r.spec.name << "\", \"m\": "
             << r.spec.m << ", \"n\": " << r.spec.n << ", \"k\": "
             << r.spec.k << ", \"fast_secs\": " << r.fast_secs
             << ", \"modeled_secs\": " << r.modeled_secs
             << ", \"fast_gops\": " << r.fast_gops
             << ", \"modeled_gops\": " << r.modeled_gops
             << ", \"speedup\": " << r.modeled_secs / r.fast_secs
             << ", \"identical\": " << r.identical << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"kernel_sweep\": [\n";
    for (size_t i = 0; i < sweep_rows.size(); ++i) {
        const auto &r = sweep_rows[i];
        json << "    {\"config\": \"" << r.spec.name << "\", \"m\": "
             << r.spec.m << ", \"n\": " << r.spec.n << ", \"k\": "
             << r.spec.k << ", \"legacy_gops\": " << r.legacy_gops
             << ", \"simd_gops\": " << r.simd_gops
             << ", \"tuned_gops\": " << r.tuned_gops
             << ", \"speedup_vs_legacy\": " << r.tuned_gops / r.legacy_gops
             << ", \"kernel\": \"" << jsonEscape(r.kernel) << "\""
             << ", \"identical\": " << r.identical << "}"
             << (i + 1 < sweep_rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"abft_overhead\": [\n";
    for (size_t i = 0; i < abft_rows.size(); ++i) {
        const auto &r = abft_rows[i];
        json << "    {\"config\": \"" << r.spec.name << "\", \"m\": "
             << r.spec.m << ", \"n\": " << r.spec.n << ", \"k\": "
             << r.spec.k << ", \"off_secs\": " << r.off_secs
             << ", \"detect_cold_secs\": " << r.detect_cold_secs
             << ", \"detect_warm_secs\": " << r.detect_warm_secs
             << ", \"cold_overhead\": "
             << r.detect_cold_secs / r.off_secs - 1.0
             << ", \"warm_overhead\": "
             << r.detect_warm_secs / r.off_secs - 1.0
             << ", \"identical\": " << r.identical << "}"
             << (i + 1 < abft_rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"model_lifecycle\": [\n";
    for (size_t i = 0; i < lifecycle_rows.size(); ++i) {
        const auto &r = lifecycle_rows[i];
        json << "    {\"network\": \"" << jsonEscape(r.network)
             << "\", \"config\": \"" << jsonEscape(r.config)
             << "\", \"nodes\": " << r.nodes
             << ", \"packed_bytes\": " << r.packed_bytes
             << ", \"cold_pack_secs\": " << r.cold_secs
             << ", \"warm_load_secs\": " << r.warm_secs
             << ", \"resident_hit_secs\": " << r.resident_secs
             << ", \"warm_speedup\": " << r.cold_secs / r.warm_secs
             << ", \"zero_copy\": " << r.zero_copy << "}"
             << (i + 1 < lifecycle_rows.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"history\": [\n";
    for (size_t i = 0; i < history.size(); ++i) {
        const auto &e = history[i];
        json << "    {\"config\": \"" << jsonEscape(e.config)
             << "\", \"m\": " << e.m << ", \"n\": " << e.n
             << ", \"k\": " << e.k << ", \"kernel\": \""
             << jsonEscape(e.kernel) << "\", \"commit\": \""
             << jsonEscape(e.commit) << "\", \"gops\": " << e.gops
             << ", \"speedup\": " << e.speedup << "}"
             << (i + 1 < history.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"run_reports\": [\n";
    for (size_t i = 0; i < reports.size(); ++i)
        json << "    " << runReportToJson(reports[i], "    ")
             << (i + 1 < reports.size() ? "," : "") << "\n";
    json << "  ]\n}\n";
}

} // namespace

int
main()
{
    const GemmTimingModel model(SoCConfig::sargantana());

    // Collect the distinct (m, n, k) shapes over all six networks,
    // remembering how many layer instances map to each.
    std::map<std::tuple<uint64_t, uint64_t, uint64_t>, unsigned> shapes;
    for (const auto &net : allModels()) {
        for (const auto &layer : net.layers) {
            const uint64_t n = layer.conv.groups > 1
                                   ? layer.conv.out_c
                                   : layer.conv.gemmN();
            shapes[{layer.conv.gemmM(), n, layer.conv.gemmK()}]++;
        }
    }

    // Order by MAC volume and keep the heaviest 24 plus the 4 smallest
    // (the degenerate shapes are where GEMM libraries hurt).
    std::vector<std::pair<std::tuple<uint64_t, uint64_t, uint64_t>,
                          unsigned>>
        ordered(shapes.begin(), shapes.end());
    std::sort(ordered.begin(), ordered.end(), [](auto &a, auto &b) {
        const auto [ma, na, ka] = a.first;
        const auto [mb, nb, kb] = b.first;
        return ma * na * ka > mb * nb * kb;
    });
    std::vector<size_t> picks;
    for (size_t i = 0; i < std::min<size_t>(24, ordered.size()); ++i)
        picks.push_back(i);
    for (size_t i = ordered.size() > 4 ? ordered.size() - 4 : 0;
         i < ordered.size(); ++i)
        if (std::find(picks.begin(), picks.end(), i) == picks.end())
            picks.push_back(i);

    std::cout << "CNN-derived GEMM suite (" << shapes.size()
              << " distinct shapes across the six networks; showing "
              << picks.size() << ")\n\n";

    Table t({"m", "n", "k", "uses", "MMACs", "a8-w8 GOPS", "vs DGEMM",
             "a4-w4 GOPS"});
    const auto g88 = computeBsGeometry({8, 8, true, true});
    const auto g44 = computeBsGeometry({4, 4, true, true});
    for (const size_t idx : picks) {
        const auto [m, n, k] = ordered[idx].first;
        const double mmacs =
            static_cast<double>(m) * n * k / 1e6;
        const auto mix88 =
            model.mixGemm(m, n, k, geometryForK(g88, k));
        const auto mix44 =
            model.mixGemm(m, n, k, geometryForK(g44, k));
        const auto dgemm = model.dgemm(m, n, k);
        t.addRow({Table::fmtInt(m), Table::fmtInt(n), Table::fmtInt(k),
                  std::to_string(ordered[idx].second),
                  Table::fmt(mmacs, 1), Table::fmt(mix88.gops, 2),
                  Table::fmt(static_cast<double>(dgemm.cycles) /
                                 mix88.cycles,
                             1) +
                      "x",
                  Table::fmt(mix44.gops, 2)});
    }
    t.print(std::cout);
    std::cout << "\nLarge conv GEMMs reach the Fig. 6 steady state; "
                 "skinny FC (m = 1) and short-k depthwise shapes show "
                 "the register-tile and μ-vector-padding overheads the "
                 "Fig. 7 network results average over.\n";

    std::cout << "\nWall-clock μ-kernel benchmark (single thread): "
                 "word-domain fast path vs modeled μ-engine\n\n";
    const std::vector<WallClockSpec> specs = {
        {"a8-w8", {8, 8, true, true}, 1024, 1024, 1024},
        {"a8-w8", {8, 8, true, true}, 256, 256, 256},
        {"a4-w4", {4, 4, true, true}, 256, 256, 256},
        {"a2-w2", {2, 2, true, true}, 256, 256, 256},
        {"a8-w2", {8, 2, true, true}, 256, 256, 256},
        {"a5-w3", {5, 3, true, true}, 256, 256, 256},
    };
    Table wt({"config", "m=n=k", "fast s", "modeled s", "fast GOPS",
              "speedup", "identical"});
    TraceSession session;
    std::vector<WallClockRow> rows;
    bool all_identical = true;
    for (const auto &spec : specs) {
        const auto row = timeWallClock(spec, &session);
        rows.push_back(row);
        all_identical = all_identical && row.identical;
        wt.addRow({spec.name, Table::fmtInt(spec.m),
                   Table::fmt(row.fast_secs, 3),
                   Table::fmt(row.modeled_secs, 3),
                   Table::fmt(row.fast_gops, 2),
                   Table::fmt(row.modeled_secs / row.fast_secs, 1) + "x",
                   row.identical ? "yes" : "NO"});
    }
    wt.print(std::cout);

    std::cout << "\nμ-kernel registry sweep (single thread, packing "
                 "excluded): legacy scalar loop vs SIMD dispatch vs "
                 "autotuned configuration\n\n";
    const std::vector<WallClockSpec> sweep_specs = {
        {"a8-w8", {8, 8, true, true}, 1024, 1024, 1024},
        {"a8-w8", {8, 8, true, true}, 256, 256, 256},
        {"a4-w4", {4, 4, true, true}, 256, 256, 256},
        {"a2-w2", {2, 2, true, true}, 256, 256, 256},
    };
    // Full sweep (not --quick): on AVX-512 hosts the frequency penalty
    // of 512-bit execution can make a narrower kernel the real winner,
    // and only the measured sweep finds that.
    AutotuneOptions tune_options;
    tune_options.configs = {{8, 8, true, true},
                            {4, 4, true, true},
                            {2, 2, true, true}};
    tune_options.m = 128;
    tune_options.n = 128;
    tune_options.k = 256;
    tune_options.reps = 2;
    const TuningSet tuning = runAutotune(tune_options, nullptr);

    Table kt({"config", "m=n=k", "legacy GOPS", "simd GOPS",
              "tuned GOPS", "vs legacy", "kernel", "identical"});
    std::vector<KernelSweepRow> sweep_rows;
    std::vector<HistoryEntry> fresh_history;
    const std::string commit = benchCommit();
    for (const auto &spec : sweep_specs) {
        const auto row = timeKernelSweep(spec, tuning, &session);
        sweep_rows.push_back(row);
        all_identical = all_identical && row.identical;
        kt.addRow({spec.name, Table::fmtInt(spec.m),
                   Table::fmt(row.legacy_gops, 2),
                   Table::fmt(row.simd_gops, 2),
                   Table::fmt(row.tuned_gops, 2),
                   Table::fmt(row.tuned_gops / row.legacy_gops, 1) + "x",
                   row.kernel, row.identical ? "yes" : "NO"});
        fresh_history.push_back({std::string(spec.name), "legacy",
                                 commit, spec.m, spec.n, spec.k,
                                 row.legacy_gops, 1.0});
        fresh_history.push_back({std::string(spec.name), row.kernel,
                                 commit, spec.m, spec.n, spec.k,
                                 row.tuned_gops,
                                 row.tuned_gops / row.legacy_gops});
    }
    kt.print(std::cout);

    std::cout << "\nABFT overhead on clean GEMMs (FaultPolicy::Detect "
                 "vs Off; cold pays the one-time operand checksum "
                 "build)\n\n";
    const std::vector<WallClockSpec> abft_specs = {
        {"a8-w8", {8, 8, true, true}, 512, 512, 512},
        {"a8-w8", {8, 8, true, true}, 256, 256, 256},
        {"a4-w4", {4, 4, true, true}, 256, 256, 256},
    };
    Table at({"config", "m=n=k", "off s", "detect cold s",
              "detect warm s", "warm ovh", "identical"});
    std::vector<AbftOverheadRow> abft_rows;
    for (const auto &spec : abft_specs) {
        const auto row = timeAbftOverhead(spec, &session);
        abft_rows.push_back(row);
        all_identical = all_identical && row.identical;
        at.addRow({spec.name, Table::fmtInt(spec.m),
                   Table::fmt(row.off_secs, 3),
                   Table::fmt(row.detect_cold_secs, 3),
                   Table::fmt(row.detect_warm_secs, 3),
                   Table::fmt((row.detect_warm_secs / row.off_secs - 1) *
                                  100,
                              1) +
                       "%",
                   row.identical ? "yes" : "NO"});
    }
    at.print(std::cout);

    std::cout << "\nModel lifecycle (packed-weight store): cold pack + "
                 "persist vs warm mmap load vs resident LRU hit, one "
                 "row per ladder rung\n\n";
    const std::string cache_dir =
        (std::filesystem::temp_directory_path() /
         "mixgemm_bench_cache")
            .string();
    std::filesystem::remove_all(cache_dir);
    const std::vector<DataSizeConfig> rungs = {
        {8, 8, true, true}, {4, 4, true, true}, {2, 2, true, true}};
    const ModelSpec lifecycle_model = resNet18();
    Table lt({"network", "config", "nodes", "packed MB", "cold s",
              "warm s", "resident s", "warm speedup", "zero-copy"});
    std::vector<LifecycleRow> lifecycle_rows;
    for (const DataSizeConfig &rung : rungs) {
        const auto row =
            timeModelLifecycle(lifecycle_model, rung, cache_dir);
        all_identical = all_identical && row.zero_copy;
        lt.addRow({row.network, row.config, Table::fmtInt(row.nodes),
                   Table::fmt(row.packed_bytes / 1e6, 1),
                   Table::fmt(row.cold_secs, 3),
                   Table::fmt(row.warm_secs, 4),
                   Table::fmt(row.resident_secs, 6),
                   Table::fmt(row.cold_secs / row.warm_secs, 1) + "x",
                   row.zero_copy ? "yes" : "NO"});
        fresh_history.push_back(
            {row.network + "-" + row.config, "pack_cold", commit,
             row.nodes, 1, 1, row.packed_bytes / row.cold_secs / 1e9,
             1.0});
        fresh_history.push_back(
            {row.network + "-" + row.config, "mmap_warm", commit,
             row.nodes, 1, 1, row.packed_bytes / row.warm_secs / 1e9,
             row.cold_secs / row.warm_secs});
        lifecycle_rows.push_back(row);
    }
    lt.print(std::cout);
    std::filesystem::remove_all(cache_dir);

    const auto history =
        mergeHistory(loadHistory("BENCH_gemm.json"), fresh_history);
    writeBenchJson(rows, sweep_rows, abft_rows, lifecycle_rows,
                   session.reports(), history, "BENCH_gemm.json");
    std::cout << "\nWrote BENCH_gemm.json. Both kernels produce "
                 "bitwise-identical C and counters, and ABFT "
                 "verification is transparent on clean runs: "
              << (all_identical ? "verified" : "VIOLATED") << ".\n";
    return all_identical ? 0 : 1;
}
