/**
 * @file
 * GEMM workload suite: the distinct GEMM shapes the six CNNs actually
 * lower to (the realistic counterpart of Fig. 6's square sweep), priced
 * at a8-w8 and a4-w4 with speed-ups over the DGEMM baseline. Shows
 * where Mix-GEMM's advantage holds across the real shape distribution —
 * large square-ish conv GEMMs, wide 1x1 GEMMs, skinny FC GEMMs, and
 * short-k depthwise GEMMs.
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <tuple>

#include "common/table.h"
#include "dnn/models.h"
#include "sim/gemm_timing.h"
#include "soc/soc_config.h"

using namespace mixgemm;

int
main()
{
    const GemmTimingModel model(SoCConfig::sargantana());

    // Collect the distinct (m, n, k) shapes over all six networks,
    // remembering how many layer instances map to each.
    std::map<std::tuple<uint64_t, uint64_t, uint64_t>, unsigned> shapes;
    for (const auto &net : allModels()) {
        for (const auto &layer : net.layers) {
            const uint64_t n = layer.conv.groups > 1
                                   ? layer.conv.out_c
                                   : layer.conv.gemmN();
            shapes[{layer.conv.gemmM(), n, layer.conv.gemmK()}]++;
        }
    }

    // Order by MAC volume and keep the heaviest 24 plus the 4 smallest
    // (the degenerate shapes are where GEMM libraries hurt).
    std::vector<std::pair<std::tuple<uint64_t, uint64_t, uint64_t>,
                          unsigned>>
        ordered(shapes.begin(), shapes.end());
    std::sort(ordered.begin(), ordered.end(), [](auto &a, auto &b) {
        const auto [ma, na, ka] = a.first;
        const auto [mb, nb, kb] = b.first;
        return ma * na * ka > mb * nb * kb;
    });
    std::vector<size_t> picks;
    for (size_t i = 0; i < std::min<size_t>(24, ordered.size()); ++i)
        picks.push_back(i);
    for (size_t i = ordered.size() > 4 ? ordered.size() - 4 : 0;
         i < ordered.size(); ++i)
        if (std::find(picks.begin(), picks.end(), i) == picks.end())
            picks.push_back(i);

    std::cout << "CNN-derived GEMM suite (" << shapes.size()
              << " distinct shapes across the six networks; showing "
              << picks.size() << ")\n\n";

    Table t({"m", "n", "k", "uses", "MMACs", "a8-w8 GOPS", "vs DGEMM",
             "a4-w4 GOPS"});
    const auto g88 = computeBsGeometry({8, 8, true, true});
    const auto g44 = computeBsGeometry({4, 4, true, true});
    for (const size_t idx : picks) {
        const auto [m, n, k] = ordered[idx].first;
        const double mmacs =
            static_cast<double>(m) * n * k / 1e6;
        const auto mix88 =
            model.mixGemm(m, n, k, geometryForK(g88, k));
        const auto mix44 =
            model.mixGemm(m, n, k, geometryForK(g44, k));
        const auto dgemm = model.dgemm(m, n, k);
        t.addRow({Table::fmtInt(m), Table::fmtInt(n), Table::fmtInt(k),
                  std::to_string(ordered[idx].second),
                  Table::fmt(mmacs, 1), Table::fmt(mix88.gops, 2),
                  Table::fmt(static_cast<double>(dgemm.cycles) /
                                 mix88.cycles,
                             1) +
                      "x",
                  Table::fmt(mix44.gops, 2)});
    }
    t.print(std::cout);
    std::cout << "\nLarge conv GEMMs reach the Fig. 6 steady state; "
                 "skinny FC (m = 1) and short-k depthwise shapes show "
                 "the register-tile and μ-vector-padding overheads the "
                 "Fig. 7 network results average over.\n";
    return 0;
}
