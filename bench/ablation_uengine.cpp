/**
 * @file
 * Architectural ablation of the μ-engine (Section V's Bison-e
 * comparison, [58]): the paper attributes Mix-GEMM's 5.4x-13x advantage
 * over Bison-e — which also uses binary segmentation — to four
 * features: the Source Buffers, the DSU, the AccMem, and the tailored
 * BLIS library. This bench isolates them at μ-kernel level:
 *
 *   full       Mix-GEMM μ-engine (buffers, DSU, pipelined, AccMem)
 *   shallow    Mix-GEMM with minimal Source Buffers (one group deep)
 *   bison-e    explicit select/multiply/extract instruction sequences,
 *              exposed multiplier latency, no AccMem (C spilled per
 *              group)
 */

#include <iostream>

#include "common/table.h"
#include "sim/core.h"
#include "sim/kernel_traces.h"
#include "sim/uengine_timing.h"
#include "soc/soc_config.h"

using namespace mixgemm;

namespace
{

double
cyclesPerMac(uint64_t cycles, const BsGeometry &g, unsigned mr,
             unsigned nr, unsigned groups)
{
    return static_cast<double>(cycles) /
           (static_cast<double>(mr) * nr * groups * g.group_extent);
}

} // namespace

int
main()
{
    const SoCConfig soc = SoCConfig::sargantana();
    const unsigned mr = 4;
    const unsigned nr = 4;
    const unsigned groups = 8;
    const auto l1 = [&soc](uint64_t, unsigned, bool) {
        return soc.l1d.hit_latency;
    };

    std::cout << "μ-engine architectural ablation (steady-state "
                 "μ-kernel, cycles per MAC)\n\n";

    Table t({"config", "full μ-engine", "shallow buffers", "Bison-e "
             "style", "full vs Bison-e"});
    for (const auto &cfg :
         {DataSizeConfig{8, 8, true, true}, DataSizeConfig{4, 4, true,
                                                           true},
          DataSizeConfig{2, 2, true, true}}) {
        const auto g = computeBsGeometry(cfg);

        UEngineTiming engine(g, soc.uengine);
        InOrderCore core(soc, l1, &engine);
        const uint64_t full = core.run(
            mixMicroKernelTrace(g, mr, nr, groups, KernelAddresses{}));

        UEngineConfig shallow_cfg = soc.uengine;
        shallow_cfg.srcbuf_depth = g.group_pairs;
        UEngineTiming shallow_engine(g, shallow_cfg);
        InOrderCore shallow_core(soc, l1, &shallow_engine);
        const uint64_t shallow = shallow_core.run(
            mixMicroKernelTrace(g, mr, nr, groups, KernelAddresses{}));

        InOrderCore bison_core(soc, l1);
        const uint64_t bison = bison_core.run(
            bisonEMicroKernelTrace(g, mr, nr, groups,
                                   KernelAddresses{}));

        t.addRow({cfg.name(),
                  Table::fmt(cyclesPerMac(full, g, mr, nr, groups), 3),
                  Table::fmt(cyclesPerMac(shallow, g, mr, nr, groups),
                             3),
                  Table::fmt(cyclesPerMac(bison, g, mr, nr, groups),
                             3),
                  Table::fmt(static_cast<double>(bison) / full, 1) +
                      "x"});
    }
    t.print(std::cout);
    std::cout << "\nPaper Section V: Mix-GEMM outperforms Bison-e by "
                 "10.5x-13x on AlexNet and 5.4x-8.8x on VGG-16, "
                 "attributing the gap to the Source Buffers + DSU "
                 "(single-instruction μ-vector issue), the AccMem "
                 "(no per-group C spills), and the BLIS library.\n";
    return 0;
}
