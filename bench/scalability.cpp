/**
 * @file
 * Section III-B scalability ablation (the paper's "key strength"
 * discussion, beyond its measured evaluation):
 *
 *  1. SIMD-widened μ-engine: 1/2/4 multipliers fed by wider Source
 *     Buffers and 128-bit loads — throughput, area, and efficiency;
 *  2. multi-core scaling: per-core μ-engines with BLIS m-partitioning
 *     and a shared L2 — aggregate GOPS and parallel efficiency
 *     (timing-model projection);
 *  3. host wall-clock threading sweep: the *real* parallel Mix-GEMM
 *     driver (BlockingParams::threads) on this machine, 1..N worker
 *     threads over one 8-bit GEMM, verifying bitwise-identical output
 *     and emitting JSON speedup curves comparable to the paper's
 *     multi-core figure.
 *
 * Usage: scalability [size] [max_threads]
 *   size        GEMM dimension for the wall-clock sweep (default 512)
 *   max_threads top of the sweep (default: hardware concurrency,
 *               at least 4 so the curve is comparable across hosts)
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/random.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "gemm/mixgemm.h"
#include "power/area_model.h"
#include "sim/gemm_timing.h"
#include "sim/multicore.h"
#include "soc/soc_config.h"

using namespace mixgemm;

namespace
{

double
wallMs(const std::chrono::steady_clock::time_point &t0,
       const std::chrono::steady_clock::time_point &t1)
{
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/** Sweep the parallel driver 1..max_threads and report speedups. */
void
hostThreadSweep(uint64_t s, unsigned max_threads)
{
    std::cout << "Host wall-clock threading sweep (a8-w8, " << s
              << "^3, functional μ-engine per worker, "
              << ThreadPool::hardwareConcurrency()
              << " hardware threads on this host):\n";

    const auto geom = computeBsGeometry({8, 8, true, true});
    Rng rng(9000 + s);
    std::vector<int32_t> a(s * s);
    std::vector<int32_t> b(s * s);
    for (auto &v : a)
        v = static_cast<int32_t>(rng.uniformInt(-128, 127));
    for (auto &v : b)
        v = static_cast<int32_t>(rng.uniformInt(-128, 127));
    const CompressedA ca(a, s, s, geom);
    const CompressedB cb(b, s, s, geom);

    // Smaller macro tiles than the Table I defaults so the tile list
    // comfortably outnumbers the workers being swept.
    BlockingParams blocking = BlockingParams::paperDefaults();
    blocking.mc = 64;
    blocking.nc = 128;

    struct Point
    {
        unsigned threads;
        double ms;
    };
    std::vector<Point> points;
    std::vector<int64_t> c_serial;
    uint64_t bs_ip_serial = 0;
    bool identical = true;
    for (unsigned t = 1; t <= max_threads; t *= 2) {
        blocking.threads = t;
        const auto t0 = std::chrono::steady_clock::now();
        auto result = mixGemm(ca, cb, blocking);
        const auto t1 = std::chrono::steady_clock::now();
        points.push_back({t, wallMs(t0, t1)});
        if (t == 1) {
            c_serial = std::move(result.c);
            bs_ip_serial = result.counters.get("bs_ip");
        } else {
            identical = identical && result.c == c_serial &&
                        result.counters.get("bs_ip") == bs_ip_serial;
        }
    }

    Table sweep({"threads", "wall ms", "speed-up", "efficiency %"});
    std::cout << "JSON: [";
    for (size_t i = 0; i < points.size(); ++i) {
        const double speedup = points[0].ms / points[i].ms;
        sweep.addRow({std::to_string(points[i].threads),
                      Table::fmt(points[i].ms, 1),
                      Table::fmt(speedup, 2) + "x",
                      Table::fmt(100 * speedup / points[i].threads, 0)});
        std::cout << (i ? "," : "") << "{\"threads\":"
                  << points[i].threads << ",\"wall_ms\":"
                  << points[i].ms << ",\"speedup\":" << speedup << "}";
    }
    std::cout << "]\n";
    sweep.print(std::cout);
    std::cout << (identical
                      ? "Parallel C and counters bitwise-identical to "
                        "the serial run.\n"
                      : "ERROR: parallel run diverged from serial!\n");
    std::cout << "Speed-up saturates at the physical core count; the "
                 "paper scales the same jc/ic partition across "
                 "Sargantana cores with one μ-engine each.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "Section III-B — scalability ablations\n\n";

    const uint64_t s = 512;

    std::cout << "SIMD-widened μ-engine (a8-w8 and a2-w2, " << s
              << "^3 GEMM):\n";
    Table simd({"multipliers", "a8-w8 GOPS", "a2-w2 GOPS",
                "μ-engine area μm²", "area x"});
    const AreaModel base_area;
    for (const unsigned mult : {1u, 2u, 4u}) {
        SoCConfig soc = SoCConfig::sargantana();
        soc.uengine.multipliers = mult;
        const GemmTimingModel model(soc);
        const auto g88 = computeBsGeometry({8, 8, true, true});
        const auto g22 = computeBsGeometry({2, 2, true, true});
        UEngineConfig ue = soc.uengine;
        ue.srcbuf_depth = soc.uengine.srcbuf_depth;
        const AreaModel area(ue, 64 * mult);
        simd.addRow({std::to_string(mult),
                     Table::fmt(model.mixGemm(s, s, s, g88).gops, 2),
                     Table::fmt(model.mixGemm(s, s, s, g22).gops, 2),
                     Table::fmt(area.uengineArea(), 0),
                     Table::fmt(area.uengineArea() /
                                    base_area.uengineArea(),
                                2) +
                         "x"});
    }
    simd.print(std::cout);
    std::cout << "Wider engines eventually bound on the scalar issue "
                 "rate (one bs.ip per cycle), as the paper's SIMD "
                 "discussion anticipates.\n\n";

    std::cout << "Multi-core scaling (a8-w8, m-partitioned " << s
              << "^3 GEMM, shared 512 KB L2, timing model):\n";
    Table mc({"cores", "aggregate GOPS", "speed-up", "efficiency %"});
    const auto geom = computeBsGeometry({8, 8, true, true});
    for (const unsigned cores : {1u, 2u, 4u, 8u}) {
        const auto t = multicoreMixGemm(s, s, s, geom,
                                        SoCConfig::sargantana(), cores);
        mc.addRow({std::to_string(cores), Table::fmt(t.gops, 2),
                   Table::fmt(t.speedup, 2) + "x",
                   Table::fmt(100 * t.efficiency, 0)});
    }
    mc.print(std::cout);
    std::cout << "Paper: the BLIS-based library parallelizes with "
                 "per-core performance close to single-threaded; one "
                 "μ-engine per core costs ~1 % area each.\n\n";

    const uint64_t sweep_size =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;
    const unsigned max_threads =
        argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr,
                                                      10))
                 : std::max(4u, ThreadPool::hardwareConcurrency());
    hostThreadSweep(sweep_size ? sweep_size : 512,
                    max_threads ? max_threads : 1);
    return 0;
}
