/**
 * @file
 * Section III-B scalability ablation (the paper's "key strength"
 * discussion, beyond its measured evaluation):
 *
 *  1. SIMD-widened μ-engine: 1/2/4 multipliers fed by wider Source
 *     Buffers and 128-bit loads — throughput, area, and efficiency;
 *  2. multi-core scaling: per-core μ-engines with BLIS m-partitioning
 *     and a shared L2 — aggregate GOPS and parallel efficiency.
 */

#include <iostream>

#include "common/table.h"
#include "power/area_model.h"
#include "sim/gemm_timing.h"
#include "sim/multicore.h"
#include "soc/soc_config.h"

using namespace mixgemm;

int
main()
{
    std::cout << "Section III-B — scalability ablations\n\n";

    const uint64_t s = 512;

    std::cout << "SIMD-widened μ-engine (a8-w8 and a2-w2, " << s
              << "^3 GEMM):\n";
    Table simd({"multipliers", "a8-w8 GOPS", "a2-w2 GOPS",
                "μ-engine area μm²", "area x"});
    const AreaModel base_area;
    for (const unsigned mult : {1u, 2u, 4u}) {
        SoCConfig soc = SoCConfig::sargantana();
        soc.uengine.multipliers = mult;
        const GemmTimingModel model(soc);
        const auto g88 = computeBsGeometry({8, 8, true, true});
        const auto g22 = computeBsGeometry({2, 2, true, true});
        UEngineConfig ue = soc.uengine;
        ue.srcbuf_depth = soc.uengine.srcbuf_depth;
        const AreaModel area(ue, 64 * mult);
        simd.addRow({std::to_string(mult),
                     Table::fmt(model.mixGemm(s, s, s, g88).gops, 2),
                     Table::fmt(model.mixGemm(s, s, s, g22).gops, 2),
                     Table::fmt(area.uengineArea(), 0),
                     Table::fmt(area.uengineArea() /
                                    base_area.uengineArea(),
                                2) +
                         "x"});
    }
    simd.print(std::cout);
    std::cout << "Wider engines eventually bound on the scalar issue "
                 "rate (one bs.ip per cycle), as the paper's SIMD "
                 "discussion anticipates.\n\n";

    std::cout << "Multi-core scaling (a8-w8, m-partitioned " << s
              << "^3 GEMM, shared 512 KB L2):\n";
    Table mc({"cores", "aggregate GOPS", "speed-up", "efficiency %"});
    const auto geom = computeBsGeometry({8, 8, true, true});
    for (const unsigned cores : {1u, 2u, 4u, 8u}) {
        const auto t = multicoreMixGemm(s, s, s, geom,
                                        SoCConfig::sargantana(), cores);
        mc.addRow({std::to_string(cores), Table::fmt(t.gops, 2),
                   Table::fmt(t.speedup, 2) + "x",
                   Table::fmt(100 * t.efficiency, 0)});
    }
    mc.print(std::cout);
    std::cout << "Paper: the BLIS-based library parallelizes with "
                 "per-core performance close to single-threaded; one "
                 "μ-engine per core costs ~1 % area each.\n";
    return 0;
}
