/**
 * @file
 * Fig. 7: performance-vs-TOP-1 Pareto frontier for the six CNNs.
 *
 * For each network, every (a, w) configuration is priced on the
 * simulated SoC and paired with its QAT TOP-1 from the accuracy
 * database; the Pareto-optimal points are printed together with the
 * measured FP32 OpenBLAS baseline (SiFive U740 model) and the speed-up
 * range over it. Paper anchors: speed-ups 5.3x-15.1x, a8-w8 always
 * shown, losses < 1.5 points above 4-bit.
 */

#include <iostream>

#include "accuracy/pareto.h"
#include "accuracy/qat_database.h"
#include "baselines/software_baselines.h"
#include "common/table.h"
#include "dnn/models.h"
#include "dnn/network_timing.h"
#include "soc/soc_config.h"

using namespace mixgemm;

int
main()
{
    const GemmTimingModel timing(SoCConfig::sargantana());
    const auto &db = AccuracyDatabase::paperQat();
    const auto &fp32_model = openblasFp32U740();

    std::cout << "Fig. 7 — performance vs TOP-1 Pareto frontier "
                 "(simulated SoC + QAT accuracy database)\n";

    for (const auto &model : allModels()) {
        const double fp32_gops = fp32_model.networkGops(model);
        const double fp32_top1 = db.fp32Top1(model.name);

        std::vector<DataSizeConfig> configs = allSupportedConfigs();
        std::vector<ParetoPoint> points;
        std::vector<double> gops(configs.size());
        for (size_t i = 0; i < configs.size(); ++i) {
            gops[i] =
                timeNetworkMixGemm(model, timing, configs[i]).gops;
            points.push_back({gops[i], db.top1(model.name, configs[i])});
        }
        const auto frontier = paretoFrontier(points);

        double min_up = 1e300;
        double max_up = 0.0;
        for (size_t i = 0; i < configs.size(); ++i) {
            min_up = std::min(min_up, gops[i] / fp32_gops);
            max_up = std::max(max_up, gops[i] / fp32_gops);
        }

        std::cout << "\n" << model.name << "  (FP32 baseline "
                  << Table::fmt(fp32_gops, 2) << " GOPS / "
                  << Table::fmt(fp32_top1, 2)
                  << " % TOP-1; Mix-GEMM speed-up range "
                  << Table::fmt(min_up, 1) << "x-"
                  << Table::fmt(max_up, 1) << "x)\n";

        Table t({"config", "GOPS", "TOP-1 %", "vs FP32", "on frontier"});
        // Always include a8-w8 as the paper does.
        auto print_row = [&](size_t i, bool frontier_pt) {
            t.addRow({configs[i].name(), Table::fmt(gops[i], 2),
                      Table::fmt(points[i].accuracy, 2),
                      Table::fmt(gops[i] / fp32_gops, 1) + "x",
                      frontier_pt ? "yes" : "no"});
        };
        bool a8w8_on_frontier = false;
        for (const size_t idx : frontier) {
            print_row(idx, true);
            a8w8_on_frontier =
                a8w8_on_frontier || configs[idx].name() == "a8-w8";
        }
        if (!a8w8_on_frontier) {
            for (size_t i = 0; i < configs.size(); ++i)
                if (configs[i].name() == "a8-w8")
                    print_row(i, false);
        }
        t.print(std::cout);
    }

    std::cout << "\nPaper anchors: AlexNet 5.8-15.1x, VGG-16 5.8-14.6x, "
                 "ResNet-18 5.7-13.8x, MobileNet-V1 5.3-10.6x, RegNet "
                 "5.7-11x, EfficientNet-B0 5.7-14.5x over FP32.\n";
    return 0;
}
