/**
 * @file
 * Table III: comparison with the state of the art.
 *
 * Prints the published rows (gathered data, src/baselines) and computes
 * the Mix-GEMM row with our simulator: the Convolution* micro-kernel
 * (16x16x32 input, 64x3x3x32 filter) and the six CNNs, as GOPS and
 * TOPS/W ranges from a8-w8 down to a2-w2, plus the area-efficiency
 * comparison against the decoupled accelerators after DeepScaleTool-
 * style node scaling.
 */

#include <iostream>

#include "baselines/related_work.h"
#include "common/table.h"
#include "dnn/models.h"
#include "dnn/network_timing.h"
#include "power/area_model.h"
#include "power/energy_model.h"
#include "power/tech_scaling.h"
#include "soc/soc_config.h"
#include "tensor/packing.h"

using namespace mixgemm;

namespace
{

struct Range
{
    double lo = 1e300;
    double hi = 0.0;
    void
    add(double v)
    {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    std::string
    str(int precision = 1) const
    {
        return Table::fmt(lo, precision) + "-" +
               Table::fmt(hi, precision);
    }
};

double
gemmGopsPerWatt(const GemmTimingModel &timing, const EnergyModel &em,
                const BsGeometry &geom, uint64_t m, uint64_t n,
                uint64_t k)
{
    const auto t = timing.mixGemm(m, n, k, geom);
    const auto r = em.mixGemmEnergyFromShape(geom, m, n, k, t.cycles);
    return r.gops_per_watt;
}

} // namespace

int
main()
{
    const SoCConfig soc = SoCConfig::sargantana();
    const GemmTimingModel timing(soc);
    const EnergyModel energy(soc);
    const AreaModel area;

    std::cout << "Table III — comparison with the state of the art "
                 "(published rows + computed Mix-GEMM row)\n\n";

    // --- Published rows.
    Table t({"work", "data sizes", "mixed", "SoC", "GHz", "nm", "mm²",
             "benchmark", "GOPS", "TOPS/W"});
    for (const auto &row : relatedWorkTable()) {
        bool first = true;
        for (const auto &r : row.results) {
            t.addRow({first ? row.citation + " " + row.name : "",
                      first ? row.data_sizes : "",
                      first ? (row.mixed_precision ? "yes" : "no") : "",
                      first ? row.soc : "",
                      first ? Table::fmt(row.freq_ghz, 2) : "",
                      first && row.tech_nm > 0
                          ? std::to_string(row.tech_nm)
                          : "",
                      first && row.area_mm2 > 0
                          ? Table::fmt(row.area_mm2, 4)
                          : "",
                      r.benchmark, r.perf_gops.toString(),
                      r.eff_tops_w.present() ? r.eff_tops_w.toString(2)
                                             : "-"});
            first = false;
        }
        t.addSeparator();
    }

    // --- Computed Mix-GEMM row.
    const double mix_area = area.uengineArea() / 1e6; // mm²
    bool first = true;
    auto add_mix_row = [&](const std::string &bench, const Range &perf,
                           const Range &eff) {
        t.addRow({first ? "This work: Mix-GEMM" : "",
                  first ? "All 8b-2b" : "", first ? "yes" : "",
                  first ? "RV64" : "",
                  first ? Table::fmt(soc.freq_ghz, 2) : "",
                  first ? "22" : "",
                  first ? Table::fmt(mix_area, 4) : "", bench,
                  perf.str(), eff.str(2)});
        first = false;
    };

    // Convolution* kernel.
    {
        const ConvSpec conv = tableIIIConvolution();
        Range perf;
        Range eff;
        for (const unsigned bw : {8u, 4u, 2u}) {
            const auto geom = geometryForK(
                computeBsGeometry({bw, bw, true, true}), conv.gemmK());
            const auto tt = timing.mixGemm(conv.gemmM(), conv.gemmN(),
                                           conv.gemmK(), geom);
            perf.add(tt.gops);
            eff.add(gemmGopsPerWatt(timing, energy, geom, conv.gemmM(),
                                    conv.gemmN(), conv.gemmK()) /
                    1000.0);
        }
        add_mix_row("Convolution", perf, eff);
    }

    // The six CNNs, a8-w8 .. a2-w2.
    const EnergyModel em(soc);
    for (const auto &model : allModels()) {
        Range perf;
        Range eff;
        for (unsigned bw = 2; bw <= 8; ++bw) {
            const DataSizeConfig cfg{bw, bw, true, true};
            const auto nt = timeNetworkMixGemm(model, timing, cfg);
            perf.add(nt.gops);
            // Network efficiency via per-layer activity.
            double energy_pj = 0.0;
            for (size_t i = 0; i < model.layers.size(); ++i) {
                const auto &layer = model.layers[i];
                DataSizeConfig lcfg = cfg;
                if (layer.is_first || layer.is_last)
                    lcfg.bwa = lcfg.bwb = 8;
                const uint64_t k = layer.conv.gemmK();
                const auto geom =
                    geometryForK(computeBsGeometry(lcfg), k);
                const uint64_t n = layer.conv.groups > 1
                                       ? layer.conv.out_c
                                       : layer.conv.gemmN();
                energy_pj +=
                    em.mixGemmEnergyFromShape(geom, layer.conv.gemmM(),
                                              n, k,
                                              nt.layers[i].cycles)
                        .energy_uj *
                    1e6;
            }
            eff.add(2.0 * static_cast<double>(model.totalMacs()) /
                    energy_pj);
        }
        add_mix_row(model.name, perf, eff);
    }
    t.print(std::cout);

    // --- Area-efficiency comparison against decoupled accelerators.
    std::cout << "\nArea comparison after node scaling (65 -> 22 nm, "
                 "DeepScaleTool-style):\n";
    const double eyeriss22 = scaleArea(12.25, 65, 22);
    const double unpu22 = scaleArea(16.0, 65, 22);
    std::cout << "  Eyeriss " << Table::fmt(eyeriss22, 2)
              << " mm² -> Mix-GEMM needs "
              << Table::fmt(eyeriss22 / mix_area, 1)
              << "x less area (paper: 96.8x)\n";
    std::cout << "  UNPU    " << Table::fmt(unpu22, 2)
              << " mm² -> Mix-GEMM needs "
              << Table::fmt(unpu22 / mix_area, 1)
              << "x less area (paper: 126.5x)\n";
    return 0;
}
