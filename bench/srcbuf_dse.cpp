/**
 * @file
 * Section III-C: Source Buffer depth exploration.
 *
 * For depths 8/16/32, replays the Mix-GEMM μ-kernel through the core +
 * μ-engine timing models for every supported configuration and reports
 * the PMU metrics the paper's DSE used: the fraction of cycles the core
 * stalls on full Source Buffers (paper: 17.8 / 14.3 / 11.2 %), the
 * bs.get drain stalls (paper: noticeable only at depth 32, 2.3 %), and
 * the μ-engine area cost of each depth (paper: +67.6 % for 32).
 */

#include <iostream>

#include "common/table.h"
#include "power/area_model.h"
#include "sim/core.h"
#include "sim/kernel_traces.h"
#include "soc/soc_config.h"

using namespace mixgemm;

int
main()
{
    const SoCConfig soc = SoCConfig::sargantana();
    std::cout << "Section III-C — Source Buffer depth DSE (all 49 "
                 "configurations, μ-kernel replay)\n\n";

    Table t({"depth", "srcbuf-full stalls %", "bs.get stalls %",
             "μ-engine area μm²", "area vs 16"});
    const AreaModel ref_area;
    for (const unsigned depth : {8u, 16u, 32u}) {
        uint64_t stall = 0;
        uint64_t get_stall = 0;
        uint64_t total = 0;
        for (const auto &cfg : allSupportedConfigs()) {
            const auto geom = computeBsGeometry(cfg);
            UEngineConfig ue = soc.uengine;
            ue.srcbuf_depth = depth;
            UEngineTiming engine(geom, ue);
            const auto l1 = [&](uint64_t, unsigned, bool) {
                return soc.l1d.hit_latency;
            };
            InOrderCore core(soc, l1, &engine);
            // 8 consecutive μ-kernels of 8 accumulation groups each.
            const auto trace =
                mixMicroKernelTrace(geom, 4, 4, 8, KernelAddresses{});
            for (int rep = 0; rep < 8; ++rep)
                core.run(trace);
            stall +=
                engine.counters().get("srcbuf_full_stall_cycles");
            get_stall += core.counters().get("bs_get_stall_cycles");
            total += core.now();
        }
        UEngineConfig ue = soc.uengine;
        ue.srcbuf_depth = depth;
        const AreaModel area(ue);
        t.addRow({std::to_string(depth),
                  Table::fmt(100.0 * stall / total, 1),
                  Table::fmt(100.0 * get_stall / total, 1),
                  Table::fmt(area.uengineArea(), 0),
                  Table::fmt(100.0 * (area.uengineArea() /
                                          ref_area.uengineArea() -
                                      1.0),
                             1) +
                      " %"});
    }
    t.print(std::cout);
    std::cout << "\nPaper: srcbuf-full stalls 17.8 / 14.3 / 11.2 % for "
                 "depths 8/16/32; bs.get stalls 2.3 % at depth 32; "
                 "area +67.6 % from 16 to 32 -> depth 16 chosen.\n";
    return 0;
}
