/**
 * @file
 * The Introduction's motivating comparison: on a stock scalar ISA,
 * sub-byte quantization "saves memory but not compute" — packed
 * operands must be decompressed with bit-manipulation instructions
 * before every MAC, so performance does not scale with the data size.
 * Mix-GEMM's whole point is making the same compressed data *compute*
 * faster. All rows share one SoC model and a 512^3 GEMM.
 */

#include <iostream>

#include "common/logging.h"
#include "common/table.h"
#include "sim/gemm_timing.h"
#include "soc/soc_config.h"

using namespace mixgemm;

int
main()
{
    const GemmTimingModel model(SoCConfig::sargantana());
    const uint64_t s = 512;
    const double dgemm =
        static_cast<double>(model.dgemm(s, s, s).cycles);

    std::cout << "Introduction motivation — what sub-byte data buys "
                 "with and without hardware support (512^3 GEMM)\n\n";

    Table t({"data size", "storage vs FP64", "software decompress",
             "Mix-GEMM", "hardware benefit"});
    for (const unsigned bw : {8u, 6u, 4u, 2u}) {
        const auto geom = computeBsGeometry({bw, bw, true, true});
        const double sw =
            dgemm / model.subByteSoftware(s, s, s, bw).cycles;
        const double mix =
            dgemm / model.mixGemm(s, s, s, geom).cycles;
        t.addRow({strCat(bw, "-bit"), Table::fmt(64.0 / bw, 0) + "x",
                  Table::fmt(sw, 1) + "x", Table::fmt(mix, 1) + "x",
                  Table::fmt(mix / sw, 1) + "x"});
    }
    const double i8 = dgemm / model.int8Gemm(s, s, s).cycles;
    t.addSeparator();
    t.addRow({"int8 BLIS (byte loads)", "8x", Table::fmt(i8, 1) + "x",
              "-", "-"});
    t.print(std::cout);

    std::cout << "\nSoftware decompression is flat in the data size "
                 "(the shift/mask work replaces the saved loads), "
                 "while Mix-GEMM's speed-up grows as operands shrink — "
                 "the gap the μ-engine exists to close.\n";
    return 0;
}
