/**
 * @file
 * PTQ vs QAT across data sizes on the synthetic task — the empirical
 * backing for the paper's Section II-A claim that PTQ "is effective at
 * higher precisions like 7- and 8-bit" while "QAT can scale down to
 * narrower data sizes". Every number here comes from actually training
 * and evaluating models (no synthesized accuracies).
 */

#include <iostream>

#include "common/table.h"
#include "nn/qat.h"
#include "runtime/ptq.h"

using namespace mixgemm;

int
main()
{
    const PatternDataset train_set(480, 123);
    const PatternDataset test_set(160, 777);
    const PatternDataset calib(64, 999);

    Network float_net = makeSmallCnn(QatConfig{false, 8, 8});
    TrainConfig tc;
    train(float_net, train_set, tc);
    const double float_acc = evaluate(float_net, test_set);

    std::cout << "PTQ vs QAT on the synthetic pattern task (FP32 "
                 "reference "
              << Table::fmt(100 * float_acc, 1) << " %)\n\n";

    NaiveBackend backend;
    Table t({"bits", "PTQ top-1 %", "QAT top-1 %", "QAT advantage"});
    Network warm = makeSmallCnn(QatConfig{true, 4, 4});
    bool have_warm = false;
    for (const unsigned bits : {8u, 6u, 4u, 3u, 2u}) {
        PtqOptions opt;
        opt.a_bits = bits;
        opt.w_bits = bits;
        const auto ptq = buildPtqGraph(float_net, calib, opt);
        const double ptq_acc = ptq.evaluate(test_set, backend);

        Network qat_net = makeSmallCnn(QatConfig{true, bits, bits});
        TrainConfig qtc = tc;
        if (bits <= 3 && have_warm) {
            copyParameters(warm, qat_net);
            qtc.lr = tc.lr / 3;
        } else {
            copyParameters(float_net, qat_net);
        }
        train(qat_net, train_set, qtc);
        if (bits == 4) {
            copyParameters(qat_net, warm);
            have_warm = true;
        }
        const double qat_acc = evaluate(qat_net, test_set);

        t.addRow({std::to_string(bits),
                  Table::fmt(100 * ptq_acc, 1),
                  Table::fmt(100 * qat_acc, 1),
                  Table::fmt(100 * (qat_acc - ptq_acc), 1) + " pts"});
    }
    t.print(std::cout);
    std::cout << "\nPTQ holds to ~4 bits and collapses below; QAT "
                 "(with the paper's warm-start schedule) extends the "
                 "usable range downward.\n";
    return 0;
}
