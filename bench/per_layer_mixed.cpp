/**
 * @file
 * Per-layer mixed-precision ablation: the design freedom the 1-cycle
 * bs.set reconfiguration enables (Section III-B). For each network and
 * accuracy budget, compares the best *uniform* configuration against a
 * greedy *per-layer* assignment: the per-layer plan should be at least
 * as fast for the same estimated accuracy.
 */

#include <iostream>
#include <map>

#include "accuracy/qat_database.h"
#include "common/table.h"
#include "dnn/mixed_precision.h"
#include "dnn/network_timing.h"
#include "soc/soc_config.h"

using namespace mixgemm;

int
main()
{
    const GemmTimingModel timing(SoCConfig::sargantana());
    const auto &db = AccuracyDatabase::paperQat();

    std::cout << "Per-layer mixed precision vs best uniform "
                 "configuration (greedy under an accuracy budget)\n\n";

    Table t({"network", "budget pts", "best uniform", "uniform GOPS",
             "per-layer GOPS", "gain", "distinct configs"});

    for (const auto &model : allModels()) {
        for (const double budget : {0.5, 1.0, 3.0}) {
            // Best uniform config within the *same* loss model.
            double best_gops = 0.0;
            std::string best_name = "-";
            for (const auto &cfg : allSupportedConfigs()) {
                std::vector<DataSizeConfig> uniform(model.layers.size(),
                                                    cfg);
                for (size_t i = 0; i < model.layers.size(); ++i)
                    if (model.layers[i].is_first ||
                        model.layers[i].is_last)
                        uniform[i] = DataSizeConfig{8, 8, true, true};
                const double loss =
                    estimatePlanLoss(model, uniform, db);
                if (loss > budget)
                    continue;
                const uint64_t cycles =
                    planCycles(model, timing, uniform);
                const double gops =
                    2.0 * static_cast<double>(model.totalMacs()) *
                    timing.soc().freq_ghz /
                    static_cast<double>(cycles);
                if (gops > best_gops) {
                    best_gops = gops;
                    best_name = cfg.name();
                }
            }

            MixedPrecisionOptions opt;
            opt.max_loss = budget;
            const auto plan =
                optimizeMixedPrecision(model, timing, db, opt);
            std::map<std::string, unsigned> distinct;
            for (const auto &c : plan.layer_configs)
                distinct[c.name()]++;

            t.addRow({model.name, Table::fmt(budget, 1), best_name,
                      Table::fmt(best_gops, 2),
                      Table::fmt(plan.gops, 2),
                      Table::fmt(best_gops > 0
                                     ? 100.0 * (plan.gops / best_gops -
                                                1.0)
                                     : 0.0,
                                 0) +
                          " %",
                      std::to_string(distinct.size())});
        }
        t.addSeparator();
    }
    t.print(std::cout);
    std::cout << "\nPer-layer plans downgrade insensitive layers "
                 "further than any uniform choice could, at equal "
                 "estimated accuracy.\n";
    return 0;
}
