/**
 * @file
 * Table II: μ-engine area breakdown and SoC overhead, from the
 * calibrated parametric area model (GF 22FDX class), printed next to
 * the paper's post-PnR values.
 */

#include <iostream>

#include "common/table.h"
#include "power/area_model.h"

using namespace mixgemm;

int
main()
{
    const AreaModel model;

    std::cout << "Table II — μ-engine area breakdown (22 nm class)\n\n";
    Table t({"component", "area μm²", "SoC overhead %",
             "paper μm²"});
    const char *paper[] = {"4934.63", "1094.45", "2832.46", "1842.25",
                           "741.58", "1214.35", "981.43"};
    const auto parts = model.breakdown();
    for (size_t i = 0; i < parts.size(); ++i)
        t.addRow({parts[i].name, Table::fmt(parts[i].um2, 2),
                  Table::fmt(100 * parts[i].soc_overhead, 2),
                  paper[i]});
    t.addSeparator();
    t.addRow({"Total: μ-engine", Table::fmt(model.uengineArea(), 2),
              Table::fmt(100 * model.uengineOverhead(), 2),
              "13641.14"});
    t.print(std::cout);

    std::cout << "\nSoC area: " << Table::fmt(model.socArea(), 2)
              << " mm² total (paper: 1.96 mm²), logic "
              << Table::fmt(model.socLogicArea(), 2)
              << " mm²; μ-engine accounts for "
              << Table::fmt(100 * model.uengineOverhead(), 2)
              << " % (paper: 1 %).\n";

    UEngineConfig deep;
    deep.srcbuf_depth = 32;
    const AreaModel d32(deep);
    std::cout << "Source Buffers 16 -> 32 μ-vectors: μ-engine grows "
              << Table::fmt(
                     100 * (d32.uengineArea() / model.uengineArea() -
                            1.0),
                     1)
              << " % (paper: +67.6 %).\n";
    return 0;
}
