/**
 * @file
 * Fig. 6: speed-up of Mix-GEMM over the BLIS-based DGEMM baseline on
 * square matrices (64..2048 per dimension), for the paper's 12
 * activation/weight configurations, plus the int8-BLIS reference row
 * (the paper measures ~2.5x for it).
 *
 * Paper steady-state anchors: a8-w8 10.2x, a4-w4 ~16x, a2-w2 27.2x.
 */

#include <iostream>
#include <vector>

#include "common/table.h"
#include "sim/gemm_timing.h"
#include "soc/soc_config.h"

using namespace mixgemm;

int
main()
{
    const GemmTimingModel model(SoCConfig::sargantana());
    const std::vector<uint64_t> sizes{64, 128, 256, 512, 1024, 2048};
    // The 12 configurations plotted in Fig. 6.
    const std::vector<DataSizeConfig> configs{
        {8, 8, true, true}, {8, 6, true, true}, {8, 4, true, true},
        {8, 2, true, true}, {6, 6, true, true}, {6, 4, true, true},
        {6, 2, true, true}, {4, 4, true, true}, {4, 2, true, true},
        {3, 3, true, true}, {2, 2, true, true}, {5, 5, true, true},
    };

    std::cout << "Fig. 6 — Mix-GEMM speed-up over BLIS DGEMM, square "
                 "matrices (simulated " << model.soc().name << ")\n\n";

    std::vector<std::string> headers{"config"};
    for (const uint64_t s : sizes)
        headers.push_back(std::to_string(s));
    headers.push_back("steady");
    Table t(headers);

    std::vector<double> dgemm_cycles;
    for (const uint64_t s : sizes)
        dgemm_cycles.push_back(
            static_cast<double>(model.dgemm(s, s, s).cycles));

    for (const auto &cfg : configs) {
        const auto geom = computeBsGeometry(cfg);
        std::vector<std::string> row{cfg.name()};
        double steady = 0.0;
        for (size_t i = 0; i < sizes.size(); ++i) {
            const uint64_t s = sizes[i];
            const auto mix = model.mixGemm(s, s, s, geom);
            const double speedup =
                dgemm_cycles[i] / static_cast<double>(mix.cycles);
            row.push_back(Table::fmt(speedup, 1) + "x");
            steady = speedup; // largest size = steady state
        }
        row.push_back(Table::fmt(steady, 1) + "x");
        t.addRow(std::move(row));
    }

    // int8-BLIS reference row.
    {
        std::vector<std::string> row{"int8 BLIS"};
        double steady = 0.0;
        for (size_t i = 0; i < sizes.size(); ++i) {
            const uint64_t s = sizes[i];
            const auto i8 = model.int8Gemm(s, s, s);
            const double speedup =
                dgemm_cycles[i] / static_cast<double>(i8.cycles);
            row.push_back(Table::fmt(speedup, 1) + "x");
            steady = speedup;
        }
        row.push_back(Table::fmt(steady, 1) + "x");
        t.addSeparator();
        t.addRow(std::move(row));
    }
    t.print(std::cout);

    std::cout << "\nPaper anchors (steady state): a8-w8 10.2x, a4-w4 "
                 "~16x, a2-w2 27.2x, int8 BLIS ~2.5x.\n";
    std::cout << "DGEMM baseline at 2048^3: "
              << Table::fmt(model.dgemm(2048, 2048, 2048).gops, 2)
              << " GOPS, "
              << Table::fmt(model.dgemm(2048, 2048, 2048)
                                .cycles_per_mac,
                            2)
              << " cycles/MAC.\n";
    return 0;
}
