/**
 * @file
 * Section IV-B cache sensitivity: Mix-GEMM performance with reduced L1
 * and L2 capacities, averaged over all supported configurations on the
 * Fig. 6 square-GEMM workload. Paper: shrinking L1 64->16 KB costs
 * 5.2 % on average, L2 512->64 KB costs 7 %, both cost 11.8 %, while
 * the small-cache SoC is 53 % smaller.
 */

#include <iostream>

#include "common/logging.h"
#include "common/stats.h"
#include "common/table.h"
#include "power/area_model.h"
#include "sim/gemm_timing.h"
#include "soc/soc_config.h"

using namespace mixgemm;

namespace
{

/** Mean cycles over all configs and a size sweep for one SoC. */
double
meanCycles(const SoCConfig &soc)
{
    const GemmTimingModel model(soc);
    RunningStat ratio;
    double total = 0.0;
    for (const auto &cfg : allSupportedConfigs()) {
        const auto geom = computeBsGeometry(cfg);
        for (const uint64_t s : {256u, 512u, 1024u}) {
            total += static_cast<double>(
                model.mixGemm(s, s, s, geom).cycles);
        }
    }
    (void)ratio;
    return total;
}

SoCConfig
withCaches(uint64_t l1_kb, uint64_t l2_kb)
{
    SoCConfig c = SoCConfig::sargantana();
    c.l1d.size_bytes = l1_kb * 1024;
    c.l2.size_bytes = l2_kb * 1024;
    c.name = strCat("L1 ", l1_kb, "KB / L2 ", l2_kb, "KB");
    return c;
}

} // namespace

int
main()
{
    std::cout << "Section IV-B — cache-size sensitivity (all configs, "
                 "square GEMMs 256..1024)\n\n";

    const SoCConfig base = withCaches(64, 512);
    const double base_cycles = meanCycles(base);

    Table t({"L1", "L2", "avg slowdown %", "SoC area mm²",
             "area vs 64/512"});
    const double base_area =
        AreaModel::socAreaForCaches(64 * 1024, 512 * 1024);
    for (const auto &[l1, l2] :
         {std::pair<uint64_t, uint64_t>{64, 512}, {32, 512}, {16, 512},
          {64, 64}, {16, 64}}) {
        const SoCConfig soc = withCaches(l1, l2);
        const double cycles = meanCycles(soc);
        const double area =
            AreaModel::socAreaForCaches(l1 * 1024, l2 * 1024);
        t.addRow({strCat(l1, " KB"), strCat(l2, " KB"),
                  Table::fmt(100.0 * (cycles / base_cycles - 1.0), 1),
                  Table::fmt(area, 2),
                  Table::fmt(100.0 * (area / base_area - 1.0), 0) +
                      " %"});
    }
    t.print(std::cout);
    std::cout << "\nPaper: L1 64->16 KB -5.2 % perf, L2 512->64 KB "
                 "-7 %, both -11.8 %, SoC area -53 %.\n";
    return 0;
}
