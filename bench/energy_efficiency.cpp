/**
 * @file
 * Section IV-C: energy efficiency of Mix-GEMM on the six CNNs, from
 * post-execution activity (μ-engine + multiplier power, as the paper
 * computes it). Paper ranges: AlexNet 522.1 GOPS/W - 1.3 TOPS/W,
 * VGG-16 524.3-1300, ResNet-18 509-1200, MobileNet-V1 477.5-944.1,
 * RegNet 503.3-982, EfficientNet-B0 509.7-1300.
 */

#include <iostream>

#include "common/table.h"
#include "dnn/models.h"
#include "dnn/network_timing.h"
#include "power/energy_model.h"
#include "soc/soc_config.h"
#include "tensor/packing.h"

using namespace mixgemm;

namespace
{

double
networkGopsPerWatt(const ModelSpec &model, const GemmTimingModel &timing,
                   const DataSizeConfig &config, const EnergyModel &em)
{
    const auto t = timeNetworkMixGemm(model, timing, config);
    double energy_pj = 0.0;
    for (size_t i = 0; i < model.layers.size(); ++i) {
        const auto &layer = model.layers[i];
        DataSizeConfig cfg = config;
        if (layer.is_first || layer.is_last)
            cfg.bwa = cfg.bwb = 8;
        const uint64_t k = layer.conv.gemmK();
        const auto geom = geometryForK(computeBsGeometry(cfg), k);
        const uint64_t n = layer.conv.groups > 1 ? layer.conv.out_c
                                                 : layer.conv.gemmN();
        energy_pj += em.mixGemmEnergyFromShape(geom, layer.conv.gemmM(),
                                               n, k,
                                               t.layers[i].cycles)
                         .energy_uj *
                     1e6;
    }
    return 2.0 * static_cast<double>(model.totalMacs()) / energy_pj *
           1e3;
}

} // namespace

int
main()
{
    const SoCConfig soc = SoCConfig::sargantana();
    const GemmTimingModel timing(soc);
    const EnergyModel energy(soc);

    std::cout << "Section IV-C — energy efficiency (μ-engine + "
                 "multiplier activity model)\n\n";

    const struct
    {
        const char *name;
        double paper_lo;
        double paper_hi;
    } paper[] = {
        {"AlexNet", 522.1, 1300.0},    {"VGG-16", 524.3, 1300.0},
        {"ResNet-18", 509.0, 1200.0},  {"MobileNet-V1", 477.5, 944.1},
        {"RegNet-X-400MF", 503.3, 982.0},
        {"EfficientNet-B0", 509.7, 1300.0},
    };

    Table t({"network", "GOPS/W a8-w8", "GOPS/W a4-w4", "GOPS/W a2-w2",
             "measured range", "paper range"});
    const auto models = allModels();
    for (size_t i = 0; i < models.size(); ++i) {
        double lo = 1e300;
        double hi = 0.0;
        double g8 = 0.0, g4 = 0.0, g2 = 0.0;
        for (unsigned bw = 2; bw <= 8; ++bw) {
            const double g = networkGopsPerWatt(
                models[i], timing, {bw, bw, true, true}, energy);
            lo = std::min(lo, g);
            hi = std::max(hi, g);
            if (bw == 8)
                g8 = g;
            if (bw == 4)
                g4 = g;
            if (bw == 2)
                g2 = g;
        }
        t.addRow({models[i].name, Table::fmt(g8, 0), Table::fmt(g4, 0),
                  Table::fmt(g2, 0),
                  Table::fmt(lo, 0) + "-" + Table::fmt(hi, 0),
                  Table::fmt(paper[i].paper_lo, 0) + "-" +
                      Table::fmt(paper[i].paper_hi, 0)});
    }
    t.print(std::cout);
    std::cout << "\nEfficiency rises as data sizes shrink: more MACs "
                 "per multiplier activation (binary segmentation).\n";
    return 0;
}
