/**
 * @file
 * google-benchmark microbenchmarks of the host-side library itself:
 * the binary-segmentation datapath, the functional μ-engine, μ-vector
 * packing, the full functional Mix-GEMM, and one QAT training step.
 * These measure *this implementation on the host*, not the simulated
 * SoC — they guard against performance regressions in the repo.
 */

#include <benchmark/benchmark.h>

#include "bs/cluster.h"
#include "bs/engine.h"
#include "bs/microvector.h"
#include "common/random.h"
#include "gemm/mixgemm.h"
#include "nn/qat.h"

using namespace mixgemm;

namespace
{

void
BM_ClusterInnerProduct(benchmark::State &state)
{
    const unsigned bw = static_cast<unsigned>(state.range(0));
    const auto g = computeBsGeometry({bw, bw, true, true});
    Rng rng(1);
    std::vector<int32_t> a(g.cluster_size);
    std::vector<int32_t> b(g.cluster_size);
    for (unsigned i = 0; i < g.cluster_size; ++i) {
        a[i] = static_cast<int32_t>(
            rng.uniformInt(-(1 << (bw - 1)), (1 << (bw - 1)) - 1));
        b[i] = static_cast<int32_t>(
            rng.uniformInt(-(1 << (bw - 1)), (1 << (bw - 1)) - 1));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(clusterInnerProduct(a, b, g));
    state.SetItemsProcessed(state.iterations() * g.cluster_size);
}
BENCHMARK(BM_ClusterInnerProduct)->Arg(8)->Arg(4)->Arg(2);

void
BM_BsEngineGroup(benchmark::State &state)
{
    const unsigned bw = static_cast<unsigned>(state.range(0));
    const auto g = computeBsGeometry({bw, bw, true, true});
    BsEngine engine;
    engine.set(g, 16);
    Rng rng(2);
    std::vector<uint64_t> a_words(g.group_pairs);
    std::vector<uint64_t> b_words(g.group_pairs);
    for (auto &w : a_words)
        w = rng.next() & 0x7f7f7f7f7f7f7f7full;
    for (auto &w : b_words)
        w = rng.next() & 0x7f7f7f7f7f7f7f7full;
    size_t slot = 0;
    for (auto _ : state) {
        for (unsigned p = 0; p < g.group_pairs; ++p)
            engine.ip(a_words[p], b_words[p]);
        if (++slot == 16) {
            slot = 0;
            for (unsigned s = 0; s < 16; ++s)
                benchmark::DoNotOptimize(engine.get(s));
        }
    }
    state.SetItemsProcessed(state.iterations() * g.group_extent);
}
BENCHMARK(BM_BsEngineGroup)->Arg(8)->Arg(4)->Arg(2);

void
BM_PackMicroVectorStream(benchmark::State &state)
{
    const unsigned bw = static_cast<unsigned>(state.range(0));
    Rng rng(3);
    std::vector<int32_t> elems(4096);
    for (auto &e : elems)
        e = static_cast<int32_t>(
            rng.uniformInt(-(1 << (bw - 1)), (1 << (bw - 1)) - 1));
    for (auto _ : state)
        benchmark::DoNotOptimize(packMicroVectorStream(elems, bw, true));
    state.SetItemsProcessed(state.iterations() * elems.size());
}
BENCHMARK(BM_PackMicroVectorStream)->Arg(8)->Arg(2);

void
BM_MixGemmFunctional(benchmark::State &state)
{
    const uint64_t s = static_cast<uint64_t>(state.range(0));
    const auto g = computeBsGeometry({8, 8, true, true});
    Rng rng(4);
    std::vector<int32_t> a(s * s);
    std::vector<int32_t> b(s * s);
    for (auto &v : a)
        v = static_cast<int32_t>(rng.uniformInt(-128, 127));
    for (auto &v : b)
        v = static_cast<int32_t>(rng.uniformInt(-128, 127));
    const CompressedA ca(a, s, s, g);
    const CompressedB cb(b, s, s, g);
    for (auto _ : state)
        benchmark::DoNotOptimize(mixGemm(ca, cb));
    state.SetItemsProcessed(state.iterations() * s * s * s);
}
BENCHMARK(BM_MixGemmFunctional)->Arg(32)->Arg(64);

void
BM_QatTrainingStep(benchmark::State &state)
{
    const PatternDataset data(16, 5);
    Network net = makeSmallCnn(QatConfig{true, 4, 4});
    size_t idx = 0;
    for (auto _ : state) {
        const auto &s = data.samples()[idx % data.size()];
        const auto logits = net.forward(s.image, true);
        double loss = 0.0;
        net.backward(softmaxCrossEntropyGrad(logits, s.label, loss));
        net.step(0.01, 0.9);
        ++idx;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QatTrainingStep);

} // namespace

BENCHMARK_MAIN();
