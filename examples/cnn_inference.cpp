/**
 * @file
 * CNN inference on the simulated Mix-GEMM SoC.
 *
 * Prices all six evaluation networks at a handful of data-size
 * configurations on the Sargantana-like SoC, reporting throughput,
 * single-image latency, speedup over the on-SoC DGEMM baseline, and
 * energy efficiency — plus a per-layer breakdown for ResNet-18.
 */

#include <iostream>

#include "baselines/software_baselines.h"
#include "common/table.h"
#include "dnn/models.h"
#include "dnn/network_timing.h"
#include "power/energy_model.h"
#include "soc/soc_config.h"
#include "tensor/packing.h"

using namespace mixgemm;

namespace
{

/** Network energy: per-layer activity through the energy model. */
double
networkGopsPerWatt(const ModelSpec &model, const NetworkTiming &timing,
                   const DataSizeConfig &config, const EnergyModel &em)
{
    double energy_pj = 0.0;
    for (size_t i = 0; i < model.layers.size(); ++i) {
        const auto &layer = model.layers[i];
        DataSizeConfig cfg = config;
        if (layer.is_first || layer.is_last)
            cfg.bwa = cfg.bwb = 8;
        const uint64_t k = layer.conv.gemmK();
        const auto geom = geometryForK(computeBsGeometry(cfg), k);
        const uint64_t n = layer.conv.groups > 1 ? layer.conv.out_c
                                                 : layer.conv.gemmN();
        const auto r = em.mixGemmEnergyFromShape(
            geom, layer.conv.gemmM(), n, k, timing.layers[i].cycles);
        energy_pj += r.energy_uj * 1e6;
    }
    return 2.0 * static_cast<double>(model.totalMacs()) / energy_pj *
           1e3;
}

} // namespace

int
main()
{
    const SoCConfig soc = SoCConfig::sargantana();
    GemmTimingModel timing(soc);
    const EnergyModel energy(soc);

    std::cout << "CNN inference on " << soc.name << " @ " << soc.freq_ghz
              << " GHz (32 KB L1d, 512 KB L2)\n\n";

    const std::vector<DataSizeConfig> configs{
        {8, 8, true, true}, {5, 5, true, true}, {4, 4, true, true},
        {2, 2, true, true},
    };

    Table t({"network", "GMACs", "config", "GOPS", "latency ms",
             "vs DGEMM", "GOPS/W"});
    for (const auto &model : allModels()) {
        const auto dgemm = timeNetworkDgemm(model, timing);
        for (const auto &cfg : configs) {
            const auto mix = timeNetworkMixGemm(model, timing, cfg);
            const double speedup =
                static_cast<double>(dgemm.total_cycles) /
                static_cast<double>(mix.total_cycles);
            const double gpw =
                networkGopsPerWatt(model, mix, cfg, energy);
            t.addRow({model.name,
                      Table::fmt(model.totalMacs() / 1e9, 2), cfg.name(),
                      Table::fmt(mix.gops, 2),
                      Table::fmt(mix.latency_ms, 2),
                      Table::fmt(speedup, 1) + "x",
                      Table::fmt(gpw, 0)});
        }
        t.addSeparator();
    }
    t.print(std::cout);

    std::cout << "\nPer-layer breakdown: ResNet-18 at a4-w4\n";
    const auto resnet = resNet18();
    const auto detail =
        timeNetworkMixGemm(resnet, timing, {4, 4, true, true});
    Table lt({"layer", "MMACs", "cycles", "GOPS"});
    for (const auto &l : detail.layers)
        lt.addRow({l.name, Table::fmt(l.macs / 1e6, 1),
                   Table::fmtInt(l.cycles), Table::fmt(l.gops, 2)});
    lt.print(std::cout);

    std::cout << "\nFP32 OpenBLAS baseline (SiFive U740 model): "
              << Table::fmt(openblasFp32U740().networkGops(resnet), 2)
              << " GOPS on ResNet-18\n";
    return 0;
}
