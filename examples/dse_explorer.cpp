/**
 * @file
 * Design-space explorer: given a network and a maximum acceptable TOP-1
 * drop, enumerate all 49 activation/weight configurations, price each
 * on the simulated SoC, and report the Pareto-optimal deployments with
 * throughput, memory footprint, and energy-efficiency estimates — the
 * trade-off exploration that Mix-GEMM's per-layer reconfigurability
 * (one bs.set) enables.
 *
 * Usage: dse_explorer [network] [max_top1_drop]
 *   network        one of: alexnet vgg16 resnet18 mobilenet regnet
 *                  efficientnet (default resnet18)
 *   max_top1_drop  in percentage points (default 2.0)
 */

#include <iostream>
#include <string>

#include "accuracy/pareto.h"
#include "accuracy/qat_database.h"
#include "common/table.h"
#include "dnn/models.h"
#include "dnn/network_timing.h"
#include "power/energy_model.h"
#include "soc/soc_config.h"

using namespace mixgemm;

namespace
{

ModelSpec
modelByKey(const std::string &key)
{
    if (key == "alexnet")
        return alexNet();
    if (key == "vgg16")
        return vgg16();
    if (key == "resnet18")
        return resNet18();
    if (key == "mobilenet")
        return mobileNetV1();
    if (key == "regnet")
        return regNetX400MF();
    if (key == "efficientnet")
        return efficientNetB0();
    fatal("unknown network '" + key +
          "'; expected alexnet|vgg16|resnet18|mobilenet|regnet|"
          "efficientnet");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string key = argc > 1 ? argv[1] : "resnet18";
    const double max_drop = argc > 2 ? std::stod(argv[2]) : 2.0;

    const auto model = modelByKey(key);
    const auto &db = AccuracyDatabase::paperQat();
    const SoCConfig soc = SoCConfig::sargantana();
    GemmTimingModel timing(soc);
    const double fp32 = db.fp32Top1(model.name);

    std::cout << "DSE for " << model.name << " (FP32 TOP-1 "
              << Table::fmt(fp32, 2) << " %), max drop "
              << Table::fmt(max_drop, 1) << " points\n\n";

    struct Candidate
    {
        DataSizeConfig config;
        double gops;
        double top1;
        double mem_rel; ///< weight footprint relative to 8-bit
    };
    std::vector<Candidate> candidates;
    std::vector<ParetoPoint> points;
    for (const auto &cfg : allSupportedConfigs()) {
        const auto t = timeNetworkMixGemm(model, timing, cfg);
        const double top1 = db.top1(model.name, cfg);
        candidates.push_back(
            {cfg, t.gops, top1, static_cast<double>(cfg.bwb) / 8.0});
        points.push_back({t.gops, top1});
    }

    const auto frontier = paretoFrontier(points);
    Table t({"config", "GOPS", "TOP-1 %", "drop", "weights vs 8b",
             "meets target"});
    for (const size_t idx : frontier) {
        const auto &c = candidates[idx];
        const double drop = fp32 - c.top1;
        t.addRow({c.config.name(), Table::fmt(c.gops, 2),
                  Table::fmt(c.top1, 2), Table::fmt(drop, 2),
                  Table::fmt(100 * c.mem_rel, 0) + " %",
                  drop <= max_drop ? "yes" : "no"});
    }
    t.print(std::cout);

    // Recommend: fastest Pareto point within the accuracy budget.
    const Candidate *best = nullptr;
    for (const size_t idx : frontier) {
        const auto &c = candidates[idx];
        if (fp32 - c.top1 <= max_drop &&
            (!best || c.gops > best->gops))
            best = &c;
    }
    if (best) {
        std::cout << "\nRecommended deployment: " << best->config.name()
                  << " -> " << Table::fmt(best->gops, 2) << " GOPS at "
                  << Table::fmt(best->top1, 2) << " % TOP-1 ("
                  << Table::fmt(100 * (1 - best->mem_rel), 0)
                  << " % weight-memory saving vs 8-bit)\n";
    } else {
        std::cout << "\nNo configuration meets the accuracy target; "
                     "consider per-layer mixed precision.\n";
    }
    return 0;
}
