/**
 * @file
 * The ISA extension end to end: write the Mix-GEMM inner loop in RV64
 * assembly with the three custom instructions, assemble it to real
 * instruction words, execute it on the functional instruction-set
 * simulator (whose custom-0 opcode is wired to the bit-exact μ-engine),
 * and verify the result — the software equivalent of the paper's
 * extended-GNU-toolchain + FPGA flow.
 */

#include <iostream>

#include "bs/microvector.h"
#include "common/random.h"
#include "common/table.h"
#include "isa/encoding.h"
#include "iss/assembler.h"
#include "iss/machine.h"

using namespace mixgemm;

int
main()
{
    const auto g = computeBsGeometry({8, 8, true, true});
    std::cout << "Assembling a bs.* inner-product kernel (a8-w8, "
              << g.cluster_size << " MAC/cycle geometry)\n\n";

    // Host side: two quantized 96-element vectors, packed as μ-vectors.
    const uint64_t k = 96;
    Rng rng(2024);
    std::vector<int32_t> a(k);
    std::vector<int32_t> b(k);
    for (auto &v : a)
        v = static_cast<int32_t>(rng.uniformInt(-128, 127));
    for (auto &v : b)
        v = static_cast<int32_t>(rng.uniformInt(-128, 127));
    int64_t expected = 0;
    for (uint64_t i = 0; i < k; ++i)
        expected += int64_t{a[i]} * b[i];
    const auto a_words = packMicroVectorStream(a, 8, true);
    const auto b_words = packMicroVectorStream(b, 8, true);

    // Device side: the kernel, in assembly.
    BsSetConfig cfg;
    cfg.bwa = 8;
    cfg.bwb = 8;
    cfg.cluster_size = static_cast<uint8_t>(g.cluster_size);
    cfg.cw = static_cast<uint8_t>(g.cw);
    cfg.ip_length = static_cast<uint16_t>(g.group_extent);
    cfg.slice_lsb = static_cast<uint8_t>(g.slice_lsb);
    cfg.slice_msb = static_cast<uint8_t>(g.slice_msb);

    Program p;
    p.li(A0, packBsSetConfig(cfg));
    p.li(A1, 1);
    p.bsSet(A0, A1);                      // bs.set: configure engine
    p.li(T0, 0x10000);                    // A μ-vector pointer
    p.li(T1, 0x20000);                    // B μ-vector pointer
    p.li(T2, a_words.size());
    p.label("pair");
    p.ld(A2, T0, 0);
    p.ld(A3, T1, 0);
    p.bsIp(A2, A3);                       // bs.ip: issue a pair
    p.addi(T0, T0, 8);
    p.addi(T1, T1, 8);
    p.addi(T2, T2, -1);
    p.bne(T2, ZERO, "pair");
    p.li(A4, 0);
    p.bsGet(A0, A4);                      // bs.get: collect slot 0
    p.ebreak();

    const auto words = p.assemble();
    std::cout << "program: " << words.size()
              << " instructions; first bs.ip encodes as 0x" << std::hex
              << [&] {
                     BsInstruction i;
                     i.funct3 = BsFunct3::kIp;
                     i.rs1 = A2;
                     i.rs2 = A3;
                     return encodeBsInstruction(i);
                 }()
              << std::dec << " ("
              << disassembleBs({BsFunct3::kIp, 0, A2, A3}) << ")\n";

    RiscvMachine machine;
    machine.writeBlock(0x10000, a_words);
    machine.writeBlock(0x20000, b_words);
    machine.loadProgram(words, 0x1000);
    const auto halt = machine.run();

    Table t({"metric", "value"});
    t.addRow({"halt", halt == HaltReason::kEbreak ? "ebreak (ok)"
                                                  : "ERROR"});
    t.addRow({"instructions executed",
              Table::fmtInt(machine.instructionsExecuted())});
    for (const auto &kv : machine.counters().all())
        t.addRow({kv.first, Table::fmtInt(kv.second)});
    t.addRow({"result", std::to_string(
                            static_cast<int64_t>(machine.reg(A0)))});
    t.addRow({"expected", std::to_string(expected)});
    t.addRow({"match", static_cast<int64_t>(machine.reg(A0)) == expected
                           ? "yes"
                           : "NO"});
    t.print(std::cout);
    return static_cast<int64_t>(machine.reg(A0)) == expected ? 0 : 1;
}
