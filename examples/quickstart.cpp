/**
 * @file
 * Quickstart: the Mix-GEMM public API in three steps.
 *
 *  1. Walk through the paper's Fig. 1 binary-segmentation example
 *     (inner product of [4,7,3,6] and [3,2,0,1] via two 16-bit
 *     multiplications).
 *  2. Quantize a small floating-point GEMM to a mixed a6-w4
 *     configuration.
 *  3. Run it through the Mix-GEMM library (compressed μ-vectors +
 *     functional μ-engine) and verify against a naive integer GEMM.
 */

#include <iostream>
#include <vector>

#include "bs/cluster.h"
#include "bs/geometry.h"
#include "common/random.h"
#include "common/table.h"
#include "gemm/mixgemm.h"
#include "gemm/reference.h"
#include "quant/calibration.h"

using namespace mixgemm;

namespace
{

void
fig1Example()
{
    std::cout << "== 1. Binary segmentation (paper Fig. 1) ==\n";
    DataSizeConfig cfg{3, 2, false, false};
    const auto g = computeBsGeometry(cfg, /*mul_width=*/16);
    std::cout << "config " << cfg.name() << " on a 16-bit multiplier: cw="
              << g.cw << " bits, input-cluster size=" << g.cluster_size
              << ", slice [" << g.slice_msb << ":" << g.slice_lsb
              << "]\n";

    const std::vector<int32_t> a{4, 7, 3, 6};
    const std::vector<int32_t> b{3, 2, 0, 1};
    int64_t total = 0;
    for (size_t base = 0; base < a.size(); base += g.cluster_size) {
        const auto as = std::span(a).subspan(base, g.cluster_size);
        const auto bs = std::span(b).subspan(base, g.cluster_size);
        const uint64_t ca = packClusterA(as, g);
        const uint64_t cb = packClusterB(bs, g);
        const int64_t partial =
            extractInnerProduct(clusterMultiply(ca, cb, g), g);
        std::cout << "  clusters " << ca << " x " << cb
                  << " -> partial inner product " << partial << "\n";
        total += partial;
    }
    std::cout << "  total = " << total << " (expected 4*3+7*2+3*0+6*1 = "
              << 4 * 3 + 7 * 2 + 3 * 0 + 6 * 1 << ")\n\n";
}

void
quantizedGemm()
{
    std::cout << "== 2./3. Quantize and multiply (a6-w4) ==\n";
    const uint64_t m = 8, n = 8, k = 64;
    Rng rng(42);
    std::vector<double> a_f(m * k);
    std::vector<double> b_f(k * n);
    for (auto &v : a_f)
        v = rng.normal();
    for (auto &v : b_f)
        v = rng.normal(0.0, 0.2);

    // Calibrate symmetric scales, then quantize.
    const auto a_params = calibrateAbsmax(a_f, 6, true);
    const auto b_params = calibrateAbsmax(b_f, 4, true);
    const auto a_q = quantize(a_f, a_params);
    const auto b_q = quantize(b_f, b_params);
    std::cout << "activation scale " << a_params.scale
              << ", weight scale " << b_params.scale << "\n";

    // Compress into μ-vectors and run the μ-engine-backed GEMM.
    const auto geom = computeBsGeometry({6, 4, true, true});
    std::cout << "geometry: " << geom.cluster_size
              << " MAC/cycle, kua/kub = " << geom.kua << "/" << geom.kub
              << ", group extent " << geom.group_extent << " elements ("
              << geom.group_cycles << " cycles)\n";
    const auto result = mixGemm(a_q, b_q, m, n, k, geom);

    const auto reference = referenceGemmInt(a_q, b_q, m, n, k);
    bool ok = true;
    for (size_t i = 0; i < reference.size(); ++i)
        ok = ok && reference[i] == result.c[i];
    std::cout << "Mix-GEMM vs naive integer GEMM: "
              << (ok ? "bit-exact match" : "MISMATCH") << "\n";

    Table t({"counter", "value"});
    for (const auto &kv : result.counters.all())
        t.addRow({kv.first, Table::fmtInt(kv.second)});
    t.print(std::cout);

    // Dequantized result sample.
    const double requant = a_params.scale * b_params.scale;
    std::cout << "C[0,0] = " << result.c[0] << " (int) = "
              << requant * static_cast<double>(result.c[0])
              << " (dequantized, float reference "
              << [&] {
                     double acc = 0.0;
                     for (uint64_t l = 0; l < k; ++l)
                         acc += a_f[l] * b_f[l * n];
                     return acc;
                 }()
              << ")\n";
}

} // namespace

int
main()
{
    fig1Example();
    quantizedGemm();
    return 0;
}
