/**
 * @file
 * The full Fig. 3 workflow, end to end and for real (no synthetic
 * accuracy numbers here):
 *
 *   train (QAT, several data sizes) -> export quantized graph ->
 *   deploy through the Mix-GEMM backend -> verify against the naive
 *   integer backend.
 *
 * Uses the procedural pattern dataset as the laptop-scale ImageNet
 * substitute; 2-bit configurations warm-start from the 4-bit
 * checkpoint exactly as Section IV-A describes.
 */

#include <iostream>

#include "common/table.h"
#include "nn/qat.h"
#include "runtime/backend.h"
#include "runtime/qgraph.h"

using namespace mixgemm;

int
main()
{
    const PatternDataset train_set(480, 123);
    const PatternDataset test_set(160, 777);
    TrainConfig tc;
    tc.epochs = 6;

    std::cout << "QAT on the synthetic pattern dataset ("
              << train_set.size() << " train / " << test_set.size()
              << " test, " << unsigned(PatternDataset::kNumClasses)
              << " classes)\n\n";

    Network fp32 = makeSmallCnn(QatConfig{false, 8, 8});
    train(fp32, train_set, tc);
    const double fp32_acc = evaluate(fp32, test_set);
    std::cout << "FP32 reference accuracy: "
              << Table::fmt(100 * fp32_acc, 1) << " %\n\n";

    Table t({"config", "QAT top-1 %", "deployed top-1 %",
             "backends agree", "bs.ip issued"});

    Network q4 = makeSmallCnn(QatConfig{true, 4, 4});
    for (const auto &[a_bits, w_bits] :
         {std::pair<unsigned, unsigned>{8, 8}, {4, 4}, {2, 2}}) {
        Network net = makeSmallCnn(QatConfig{true, a_bits, w_bits});
        TrainConfig cfg = tc;
        if (a_bits <= 2) {
            // Warm start aggressive quantization from the 4-bit model.
            copyParameters(q4, net);
            cfg.lr = tc.lr / 3;
        }
        train(net, train_set, cfg);
        if (a_bits == 4)
            copyParameters(net, q4);
        const double qat_acc = evaluate(net, test_set);

        const auto graph = QuantizedGraph::fromNetwork(net);
        NaiveBackend naive;
        MixGemmBackend mix;
        const double deployed = graph.evaluate(test_set, mix);
        bool agree = true;
        for (size_t i = 0; i < 16; ++i) {
            const auto &img = test_set.samples()[i].image;
            agree = agree &&
                    graph.predict(img, naive) == graph.predict(img, mix);
        }
        t.addRow({strCat("a", a_bits, "-w", w_bits),
                  Table::fmt(100 * qat_acc, 1),
                  Table::fmt(100 * deployed, 1), agree ? "yes" : "NO",
                  Table::fmtInt(mix.totalBsIp())});
    }
    t.print(std::cout);
    std::cout << "\nDeployment path: quantize -> im2row -> compressed "
                 "μ-vectors -> bs.set/bs.ip/bs.get -> requantize.\n";
    return 0;
}
