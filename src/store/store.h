/**
 * @file
 * Content-addressed packed-weight store (ROADMAP item 2).
 *
 * Registration used to pay O(pack) per model per process; the store
 * turns every load after the first into O(mmap). A model's packable
 * weights hash to a content key — weights bytes ⊕ quantization config
 * ⊕ packing geometry inputs ⊕ artifact format version — and that key
 * names a relocatable artifact on disk (see artifact.h). load() then
 * resolves in one of three ways, cheapest first:
 *
 *   resident hit:  the model is already materialized in this process —
 *                  shared_ptr handed out, zero work.
 *   artifact hit:  the artifact exists on disk — mmap + validate +
 *                  zero-copy adoption, no packing, no expansion.
 *   miss:          pack fresh (μ-vectors + cluster panels), persist the
 *                  artifact for every future process, hand it out.
 *
 * Resident models are LRU-evicted under a byte budget; eviction only
 * drops the store's reference, so in-flight GEMMs holding the
 * shared_ptr (and through it the mapping) are never invalidated. A
 * corrupt or stale artifact is rejected by validation and silently
 * re-packed over — the cache self-heals.
 */

#ifndef MIXGEMM_STORE_STORE_H
#define MIXGEMM_STORE_STORE_H

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "runtime/prepack.h"
#include "runtime/qgraph.h"
#include "store/artifact.h"

namespace mixgemm
{

struct TuningSet;

/**
 * Content key over the packable (conv/linear) weight tensors of
 * @p graph: FNV-1a across the artifact format version and, per tensor,
 * its node index, GEMM shape, data-size configuration, and raw
 * quantized weight bytes. Changing any packing-relevant input changes
 * the key, so an artifact can never be adopted for the wrong weights.
 */
uint64_t weightContentKey(const QuantizedGraph &graph);

/** Total weight + bias payload bytes of a graph (budget accounting). */
uint64_t graphWeightBytes(const QuantizedGraph &graph);

/**
 * Pack every conv/linear weight tensor of @p graph into owned
 * CompressedB panels (depthwise nodes run per-channel sub-GEMMs and
 * are skipped). With @p build_panels the cluster-domain expansion is
 * built too, so the artifact carries it and mapped loads skip both.
 */
Expected<PackedModel> packGraphWeights(const QuantizedGraph &graph,
                                       bool build_panels = true);

/**
 * A PackedModel bound to one graph instance: maps each weight tensor's
 * data pointer to its packed panels, implementing the backend-facing
 * PrepackedWeights lookup. build() re-validates shape and config of
 * every entry against the graph, so a mismatched artifact cannot be
 * silently consumed. Immutable after build; safe to share across
 * worker threads.
 */
class PackedModelIndex final : public PrepackedWeights
{
  public:
    static Expected<std::shared_ptr<const PackedModelIndex>> build(
        std::shared_ptr<const PackedModel> model,
        const QuantizedGraph &graph);

    const CompressedB *find(const int32_t *data, uint64_t k, uint64_t n,
                            const DataSizeConfig &config) const override;

    const std::shared_ptr<const PackedModel> &model() const
    {
        return model_;
    }

  private:
    struct Entry
    {
        const int32_t *data = nullptr;
        const CompressedB *weights = nullptr;
    };

    PackedModelIndex() = default;

    std::shared_ptr<const PackedModel> model_;
    std::vector<Entry> entries_; ///< sorted by data pointer
};

/** Store construction knobs. */
struct StoreOptions
{
    /** Artifact directory; created on first persist. "" disables disk
     * entirely (the store degrades to a resident pack cache). */
    std::string dir = "mixgemm_cache";
    /** LRU budget over resident model bytes; 0 = unbounded. */
    uint64_t resident_budget_bytes = 0;
    /** Verify artifact checksums on load (keep on; off only for
     * measuring raw mmap cost). */
    bool verify_checksums = true;
    /** Persist fresh packs as artifacts. */
    bool persist = true;
    /**
     * Fault hook consulted before each artifact load, with a monotonic
     * per-store load index. A non-ok return is treated exactly like a
     * corrupt mapping: the artifact is rejected and re-packed over
     * (self-heal). Used by the chaos plane to inject deterministic
     * store faults; null — the default — is free.
     */
    std::function<Status(uint64_t load_index)> load_fault_hook;
};

/** Monotonic store counters (snapshot via PackedWeightStore::stats()). */
struct StoreStats
{
    uint64_t hits = 0;           ///< resident or artifact loads
    uint64_t misses = 0;         ///< cold packs
    uint64_t packs = 0;          ///< packGraphWeights runs
    uint64_t artifact_loads = 0; ///< zero-copy mmap adoptions
    uint64_t artifact_writes = 0;///< artifacts persisted
    uint64_t rejected = 0;       ///< corrupt/stale artifacts re-packed over
    uint64_t stale_tmp_swept = 0;///< crash-leftover *.tmp removed on open
    uint64_t evictions = 0;      ///< resident models dropped by budget
    uint64_t resident_bytes = 0; ///< current resident footprint
    uint64_t resident_models = 0;///< current resident count
};

/** The content-addressed packed-weight cache. Thread-safe. */
class PackedWeightStore
{
  public:
    explicit PackedWeightStore(StoreOptions options);

    /**
     * Packed weights for @p graph: resident hit, artifact mmap, or
     * cold pack (persisted when configured). @p tuning, when given, is
     * embedded in freshly written artifacts (PR 6 metadata rides along;
     * a loaded model exposes it via PackedModel::tuning_json).
     */
    Expected<std::shared_ptr<const PackedModel>> load(
        const QuantizedGraph &graph, const TuningSet *tuning = nullptr);

    /** Drop a resident model (its artifact stays). False if absent. */
    bool evictModel(uint64_t key);

    /** Drop every resident model (artifacts stay). */
    void clear();

    StoreStats stats() const;

    /** Artifact path for a content key ("" when disk is disabled). */
    std::string artifactPath(uint64_t key) const;

    const StoreOptions &options() const { return options_; }

  private:
    struct Resident
    {
        uint64_t key = 0;
        std::shared_ptr<const PackedModel> model;
        uint64_t bytes = 0;
    };

    void insertLocked(uint64_t key,
                      std::shared_ptr<const PackedModel> model);
    void enforceBudgetLocked(uint64_t keep_key);

    StoreOptions options_;
    mutable std::mutex mutex_;
    uint64_t load_index_ = 0; ///< artifact-load counter (fault hook)
    std::list<Resident> lru_; ///< front = most recently used
    std::unordered_map<uint64_t, std::list<Resident>::iterator> by_key_;
    StoreStats stats_;
};

} // namespace mixgemm

#endif // MIXGEMM_STORE_STORE_H
