#include "store/store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "gemm/kernels/autotune.h"

namespace mixgemm
{

namespace
{

/// Whether @p node carries a whole-tensor B operand the backend can
/// consume pre-packed. Depthwise nodes slice per-channel k x 1
/// sub-operands out of weights_q and are not worth caching.
bool
packableNode(const QNode &node)
{
    return (node.kind == QNode::Kind::kConv ||
            node.kind == QNode::Kind::kLinear) &&
           !node.weights_q.empty();
}

/// GEMM (k, n) of a packable node, exactly as runQNode issues it.
std::pair<uint64_t, uint64_t>
nodeGemmShape(const QNode &node)
{
    if (node.kind == QNode::Kind::kLinear)
        return {node.spec.in_c, node.spec.out_c};
    return {node.spec.gemmK(), node.spec.gemmN()};
}

DataSizeConfig
nodeConfig(const QNode &node)
{
    return {node.a_params.bits, node.w_params.bits,
            node.a_params.is_signed, node.w_params.is_signed};
}

void
hashValue(uint64_t &hash, uint64_t value)
{
    hash = fnv1a64(&value, sizeof(value), hash);
}

} // namespace

uint64_t
weightContentKey(const QuantizedGraph &graph)
{
    uint64_t hash = fnv1a64("mixgemm-weight-store", 20);
    hashValue(hash, kArtifactVersion);
    const auto &nodes = graph.nodes();
    for (size_t i = 0; i < nodes.size(); ++i) {
        const QNode &node = nodes[i];
        if (!packableNode(node))
            continue;
        const auto [k, n] = nodeGemmShape(node);
        const DataSizeConfig config = nodeConfig(node);
        hashValue(hash, i);
        hashValue(hash, k);
        hashValue(hash, n);
        hashValue(hash, config.bwa);
        hashValue(hash, config.bwb);
        hashValue(hash, config.a_signed ? 1 : 0);
        hashValue(hash, config.b_signed ? 1 : 0);
        // The bulk of the key is the raw weight bytes; the chunked
        // checksum keeps hashing off the warm-load critical path (a
        // byte-serial FNV here would cost as much as the mmap + verify
        // combined on a large model).
        hash = artifactChecksum(node.weights_q.data(),
                                node.weights_q.size() * sizeof(int32_t),
                                hash);
    }
    return hash;
}

uint64_t
graphWeightBytes(const QuantizedGraph &graph)
{
    uint64_t bytes = 0;
    for (const QNode &node : graph.nodes()) {
        bytes += node.weights_q.size() * sizeof(int32_t) +
                 node.bias.size() * sizeof(double);
    }
    return bytes;
}

Expected<PackedModel>
packGraphWeights(const QuantizedGraph &graph, bool build_panels)
{
    PackedModel model;
    model.key = weightContentKey(graph);
    const auto &nodes = graph.nodes();
    for (size_t i = 0; i < nodes.size(); ++i) {
        const QNode &node = nodes[i];
        if (!packableNode(node))
            continue;
        const auto [k, n] = nodeGemmShape(node);
        if (node.weights_q.size() != k * n) {
            return Status::invalidArgument(
                strCat("packGraphWeights: node ", i, ": ",
                       node.weights_q.size(), " weights, spec says ", k,
                       " x ", n));
        }
        auto geometry = tryComputeBsGeometry(nodeConfig(node));
        if (!geometry.ok()) {
            return Status::invalidArgument(
                strCat("packGraphWeights: node ", i, ": ",
                       geometry.status().message()));
        }
        auto packed = tryCompressB(node.weights_q, k, n,
                                   geometryForK(*geometry, k));
        if (!packed.ok()) {
            return Status::invalidArgument(
                strCat("packGraphWeights: node ", i, ": ",
                       packed.status().message()));
        }
        if (build_panels)
            packed->ensureClusterPanels();
        model.packed_bytes +=
            packed->bytes() +
            (build_panels ? packed->clusterPanelWordCount() * 8 : 0);
        model.entries.push_back(PackedEntry{i, std::move(*packed)});
    }
    return model;
}

Expected<std::shared_ptr<const PackedModelIndex>>
PackedModelIndex::build(std::shared_ptr<const PackedModel> model,
                        const QuantizedGraph &graph)
{
    if (!model)
        return Status::invalidArgument("PackedModelIndex: null model");
    auto index = std::shared_ptr<PackedModelIndex>(new PackedModelIndex);
    index->entries_.reserve(model->entries.size());
    const auto &nodes = graph.nodes();
    for (const PackedEntry &entry : model->entries) {
        if (entry.node_index >= nodes.size()) {
            return Status::failedPrecondition(
                strCat("PackedModelIndex: entry for node ",
                       entry.node_index, ", graph has ", nodes.size()));
        }
        const QNode &node = nodes[entry.node_index];
        if (!packableNode(node)) {
            return Status::failedPrecondition(
                strCat("PackedModelIndex: node ", entry.node_index,
                       " is not a packable conv/linear node"));
        }
        const auto [k, n] = nodeGemmShape(node);
        if (entry.weights.k() != k || entry.weights.n() != n ||
            !(entry.weights.geometry().config == nodeConfig(node))) {
            return Status::failedPrecondition(
                strCat("PackedModelIndex: node ", entry.node_index,
                       ": packed ", entry.weights.k(), " x ",
                       entry.weights.n(), " ",
                       entry.weights.geometry().config.name(),
                       " does not match graph (", k, " x ", n, " ",
                       nodeConfig(node).name(), ")"));
        }
        index->entries_.push_back(
            Entry{node.weights_q.data(), &entry.weights});
    }
    std::sort(index->entries_.begin(), index->entries_.end(),
              [](const Entry &a, const Entry &b) {
                  return std::less<const int32_t *>()(a.data, b.data);
              });
    index->model_ = std::move(model);
    return std::shared_ptr<const PackedModelIndex>(std::move(index));
}

const CompressedB *
PackedModelIndex::find(const int32_t *data, uint64_t k, uint64_t n,
                       const DataSizeConfig &config) const
{
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), data,
        [](const Entry &entry, const int32_t *key) {
            return std::less<const int32_t *>()(entry.data, key);
        });
    if (it == entries_.end() || it->data != data)
        return nullptr;
    const CompressedB *b = it->weights;
    if (b->k() != k || b->n() != n || !(b->geometry().config == config))
        return nullptr;
    return b;
}

PackedWeightStore::PackedWeightStore(StoreOptions options)
    : options_(std::move(options))
{
    if (options_.dir.empty())
        return;
    // Sweep temp files left by a crash mid-persist: writeArtifact
    // stages to "<key>.mgw.tmp" and renames, so any *.mgw.tmp that
    // survived to the next open is garbage from an interrupted write.
    std::error_code ec;
    std::filesystem::directory_iterator it(options_.dir, ec);
    if (ec)
        return;
    for (const auto &entry : it) {
        const std::string name = entry.path().filename().string();
        constexpr const char kSuffix[] = ".mgw.tmp";
        constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
        if (name.size() <= kSuffixLen ||
            name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) !=
                0)
            continue;
        std::error_code rm;
        if (std::filesystem::remove(entry.path(), rm) && !rm) {
            ++stats_.stale_tmp_swept;
            warn(strCat("packed-weight store: swept stale temp file '",
                        entry.path().string(), "'"));
        }
    }
}

std::string
PackedWeightStore::artifactPath(uint64_t key) const
{
    if (options_.dir.empty())
        return "";
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.mgw",
                  static_cast<unsigned long long>(key));
    return options_.dir + "/" + name;
}

Expected<std::shared_ptr<const PackedModel>>
PackedWeightStore::load(const QuantizedGraph &graph,
                        const TuningSet *tuning)
{
    const uint64_t key = weightContentKey(graph);
    std::lock_guard<std::mutex> lock(mutex_);

    if (auto it = by_key_.find(key); it != by_key_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++stats_.hits;
        return it->second->model;
    }

    const std::string path = artifactPath(key);
    if (!path.empty()) {
        std::error_code ec;
        if (std::filesystem::exists(path, ec)) {
            const uint64_t load_index = load_index_++;
            Status fault;
            if (options_.load_fault_hook)
                fault = options_.load_fault_hook(load_index);
            if (fault.ok()) {
                auto loaded =
                    loadArtifact(path, options_.verify_checksums, key);
                if (loaded.ok()) {
                    ++stats_.hits;
                    ++stats_.artifact_loads;
                    auto model = std::make_shared<const PackedModel>(
                        std::move(*loaded));
                    insertLocked(key, model);
                    enforceBudgetLocked(key);
                    return model;
                }
                fault = loaded.status();
            }
            // Corrupt/stale artifact (or an injected fault): self-heal
            // by re-packing over it.
            warn(strCat("packed-weight store: rejecting artifact: ",
                        fault.toString()));
            ++stats_.rejected;
        }
    }

    ++stats_.misses;
    auto packed = packGraphWeights(graph);
    if (!packed.ok())
        return packed.status();
    ++stats_.packs;
    packed->key = key;
    if (tuning)
        packed->tuning_json = tuning->toJson();
    if (options_.persist && !path.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options_.dir, ec);
        const Status written = writeArtifact(*packed, path);
        if (written.ok()) {
            packed->path = path;
            ++stats_.artifact_writes;
        } else {
            warn(strCat("packed-weight store: persist failed: ",
                        written.toString()));
        }
    }
    auto model = std::make_shared<const PackedModel>(std::move(*packed));
    insertLocked(key, model);
    enforceBudgetLocked(key);
    return model;
}

void
PackedWeightStore::insertLocked(uint64_t key,
                                std::shared_ptr<const PackedModel> model)
{
    const uint64_t bytes =
        model->from_cache ? model->mapped_bytes : model->packed_bytes;
    lru_.push_front(Resident{key, std::move(model), bytes});
    by_key_[key] = lru_.begin();
    stats_.resident_bytes += bytes;
    stats_.resident_models = lru_.size();
}

void
PackedWeightStore::enforceBudgetLocked(uint64_t keep_key)
{
    if (options_.resident_budget_bytes == 0)
        return;
    while (stats_.resident_bytes > options_.resident_budget_bytes &&
           lru_.size() > 1) {
        auto victim = std::prev(lru_.end());
        if (victim->key == keep_key)
            break;
        stats_.resident_bytes -= victim->bytes;
        ++stats_.evictions;
        by_key_.erase(victim->key);
        lru_.erase(victim);
    }
    stats_.resident_models = lru_.size();
}

bool
PackedWeightStore::evictModel(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = by_key_.find(key);
    if (it == by_key_.end())
        return false;
    stats_.resident_bytes -= it->second->bytes;
    ++stats_.evictions;
    lru_.erase(it->second);
    by_key_.erase(it);
    stats_.resident_models = lru_.size();
    return true;
}

void
PackedWeightStore::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.evictions += lru_.size();
    lru_.clear();
    by_key_.clear();
    stats_.resident_bytes = 0;
    stats_.resident_models = 0;
}

StoreStats
PackedWeightStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace mixgemm
