/**
 * @file
 * On-disk packed-weight artifacts: pack once, mmap forever.
 *
 * Packing a model's weights into μ-vector panels and cluster-domain
 * expansion panels is pure overhead the paper amortizes across operand
 * reuse; an artifact amortizes it across *processes*. The file carries,
 * per packable weight tensor, the exact bytes a CompressedB holds in
 * memory — the packed 64-bit words and the pre-expanded cluster panels
 * — at 8-byte-aligned offsets, so a loader can `mmap` the file
 * read-only and adopt the panels zero-copy (CompressedB::adopt
 * borrowed-storage mode). Layout (all fields little-endian, fixed
 * width):
 *
 *   header (56 B): magic "MGWPACK1", format version, endianness marker
 *     0x01020304, content key, node count, tuning-blob length, total
 *     file bytes, payload FNV-1a, header FNV-1a
 *   node table: one 80 B record per tensor — graph node index, k, n,
 *     data-size configuration, word/panel offsets and counts
 *   tuning blob: the producer's TuningSet JSON (PR 6), "" when absent
 *   payloads: packed words, then cluster-panel words, per node
 *
 * Every load validates before it allocates or adopts anything: magic,
 * version, endianness, both checksums, and every offset/count against
 * the true file size — truncated, bit-flipped, wrong-endian and
 * version-mismatched artifacts come back as structured errors
 * (Status/Expected), never as crashes or wild reads. The fuzz suite in
 * tests/test_store.cc hammers exactly these paths under ASan/UBSan.
 */

#ifndef MIXGEMM_STORE_ARTIFACT_H
#define MIXGEMM_STORE_ARTIFACT_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/packing.h"

namespace mixgemm
{

/** Artifact format version; any layout change bumps it. */
constexpr uint32_t kArtifactVersion = 1;

/** Endianness marker as written by the packing host. */
constexpr uint32_t kArtifactEndian = 0x01020304;

/** Serialized header size in bytes (see the file comment). */
constexpr uint64_t kArtifactHeaderBytes = 56;

/** Byte offset of the endianness marker inside the header. */
constexpr uint64_t kArtifactEndianOffset = 12;

/** FNV-1a 64-bit hash (also the content-key hash primitive). */
uint64_t fnv1a64(const void *data, size_t len,
                 uint64_t seed = 0xcbf29ce484222325ull);

/**
 * Artifact checksum: FNV-1a folded over 8-byte chunks (byte-wise tail).
 * Byte-serial FNV caps validated warm loads at a few hundred MB/s — the
 * multiply dependency chain advances one byte per step; folding a word
 * at a time keeps the same any-single-bit-flip detection (xor + odd
 * multiply is a bijection per step) at ~8x the throughput, which is
 * what keeps a checksummed mmap load an order of magnitude faster than
 * a cold pack. Exported so the adversarial tests can re-seal artifacts
 * they mutate.
 */
uint64_t artifactChecksum(const void *data, size_t len,
                          uint64_t seed = 0xcbf29ce484222325ull);

/**
 * RAII read-only memory mapping of one file. Shared (shared_ptr) as
 * the keepalive of every CompressedB adopted from it: the mapping
 * unmaps when the last borrower releases it, so evicting an artifact
 * from the store never invalidates in-flight GEMMs.
 */
class MappedFile
{
  public:
    static Expected<std::shared_ptr<MappedFile>> open(
        const std::string &path);
    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const uint8_t *data() const
    {
        return static_cast<const uint8_t *>(addr_);
    }
    uint64_t size() const { return size_; }

  private:
    MappedFile(void *addr, uint64_t size) : addr_(addr), size_(size) {}

    void *addr_ = nullptr;
    uint64_t size_ = 0;
};

/** One packed weight tensor of a model. */
struct PackedEntry
{
    uint64_t node_index = 0; ///< index into QuantizedGraph::nodes()
    CompressedB weights;     ///< packed (owned or artifact-borrowed)
};

/** A model's packed weights: fresh (owned) or artifact-backed. */
struct PackedModel
{
    uint64_t key = 0;          ///< content key; also the artifact stem
    std::string path;          ///< artifact path; "" if never persisted
    bool from_cache = false;   ///< adopted zero-copy from a mapping
    uint64_t mapped_bytes = 0; ///< artifact mapping size (0 when owned)
    uint64_t packed_bytes = 0; ///< μ-vector + cluster-panel bytes
    std::string tuning_json;   ///< embedded tuning metadata ("" = none)
    std::vector<PackedEntry> entries;
};

/**
 * Serialize @p model to @p path (write-to-temp + rename, so a crashed
 * writer never leaves a half-written artifact under the final name).
 * Cluster panels are built first when absent — the artifact always
 * carries them, that is where the zero-copy win lives.
 */
Status writeArtifact(const PackedModel &model, const std::string &path);

/**
 * Map @p path read-only and adopt its panels zero-copy. Validation
 * precedes every allocation (see the file comment); @p expected_key,
 * when non-zero, must match the header's content key (a stale or
 * misnamed artifact is rejected as kFailedPrecondition). With
 * @p verify_checksum false the two FNV sums are skipped — structural
 * bounds checks still run.
 */
Expected<PackedModel> loadArtifact(const std::string &path,
                                   bool verify_checksum = true,
                                   uint64_t expected_key = 0);

} // namespace mixgemm

#endif // MIXGEMM_STORE_ARTIFACT_H
