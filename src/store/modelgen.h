/**
 * @file
 * Deterministic synthetic quantized graphs from the paper's layer
 * tables (src/dnn/models.h). The pack lifecycle — CLI `pack`
 * subcommand, CI cold-vs-warm assertion, bench model-lifecycle section
 * — needs real network weight *shapes* without a training run: this
 * generator fills each layer's GEMM-shaped weight tensor with
 * xorshift-derived codes that exactly fit the requested bitwidths.
 * Same (model, bits, seed) ⇒ byte-identical weights ⇒ the same content
 * key, on every platform: the determinism the content-addressed store
 * is keyed on.
 */

#ifndef MIXGEMM_STORE_MODELGEN_H
#define MIXGEMM_STORE_MODELGEN_H

#include <cstdint>

#include "dnn/models.h"
#include "runtime/qgraph.h"

namespace mixgemm
{

/**
 * Build a quantized graph with @p model's layer geometry and
 * deterministic synthetic weights: grouped layers become depthwise
 * nodes, everything else conv nodes, each followed by ReLU (except the
 * last). @p a_bits / @p w_bits must be in the packable [2, 8] range;
 * @p max_layers > 0 truncates the network (cheap CI runs).
 */
QuantizedGraph syntheticQuantizedGraph(const ModelSpec &model,
                                       unsigned a_bits, unsigned w_bits,
                                       uint64_t seed = 1,
                                       size_t max_layers = 0);

} // namespace mixgemm

#endif // MIXGEMM_STORE_MODELGEN_H
