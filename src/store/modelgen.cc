#include "store/modelgen.h"

#include "common/logging.h"

namespace mixgemm
{

namespace
{

/// xorshift64: deterministic, platform-independent, no <random> (libc++
/// and libstdc++ disagree on distribution algorithms).
uint64_t
xorshift64(uint64_t &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

/// Uniform signed code in the (bits, signed) clamp range.
int32_t
randomCode(uint64_t &state, const QuantParams &params)
{
    const int64_t lo = params.qmin();
    const int64_t hi = params.qmax();
    const uint64_t span = static_cast<uint64_t>(hi - lo + 1);
    return static_cast<int32_t>(lo + static_cast<int64_t>(
                                         xorshift64(state) % span));
}

} // namespace

QuantizedGraph
syntheticQuantizedGraph(const ModelSpec &model, unsigned a_bits,
                        unsigned w_bits, uint64_t seed,
                        size_t max_layers)
{
    if (a_bits < 2 || a_bits > 8 || w_bits < 2 || w_bits > 8)
        fatal(strCat("syntheticQuantizedGraph: bitwidths a", a_bits,
                     "-w", w_bits, " outside the packable [2, 8]"));
    uint64_t state = seed ? seed : 0x9e3779b97f4a7c15ull;
    // Mix the model identity in so two networks with an identical
    // first layer still get distinct weights.
    for (const char c : model.name)
        state = (state ^ static_cast<uint8_t>(c)) * 0x100000001b3ull;

    size_t count = model.layers.size();
    if (max_layers > 0 && max_layers < count)
        count = max_layers;

    std::vector<QNode> nodes;
    nodes.reserve(count * 2);
    for (size_t i = 0; i < count; ++i) {
        const LayerSpec &layer = model.layers[i];
        QNode node;
        node.spec = layer.conv;
        node.a_params = QuantParams{1.0 / 64, 0, a_bits, true};
        node.w_params = QuantParams{1.0 / 64, 0, w_bits, true};
        uint64_t weight_count = 0;
        if (layer.conv.groups > 1) {
            node.kind = QNode::Kind::kDepthwise;
            weight_count = uint64_t{layer.conv.groups} *
                           layer.conv.gemmK();
        } else if (layer.conv.in_h == 1 && layer.conv.in_w == 1 &&
                   layer.conv.kh == 1 && layer.conv.kw == 1) {
            node.kind = QNode::Kind::kLinear;
            weight_count = uint64_t{layer.conv.in_c} * layer.conv.out_c;
        } else {
            node.kind = QNode::Kind::kConv;
            weight_count = layer.conv.gemmK() * layer.conv.gemmN();
        }
        node.weights_q.resize(weight_count);
        for (int32_t &w : node.weights_q)
            w = randomCode(state, node.w_params);
        node.bias.assign(layer.conv.out_c, 0.0);
        nodes.push_back(std::move(node));
        if (i + 1 < count) {
            QNode relu;
            relu.kind = QNode::Kind::kRelu;
            nodes.push_back(std::move(relu));
        }
    }
    return QuantizedGraph(std::move(nodes));
}

} // namespace mixgemm
