#include "store/artifact.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

#include "bs/geometry.h"
#include "common/logging.h"

namespace mixgemm
{

namespace
{

/// Serialized header, field for field (56 bytes, 8-aligned). The
/// in-file layout is this struct's host layout, gated by the endian
/// marker: a foreign-endian reader sees 0x04030201 and rejects the
/// file before touching any other field.
struct ArtifactHeader
{
    char magic[8];
    uint32_t version;
    uint32_t endian;
    uint64_t content_key;
    uint32_t node_count;
    uint32_t tuning_bytes;
    uint64_t file_bytes;
    uint64_t payload_fnv; ///< FNV-1a of [kArtifactHeaderBytes, file end)
    uint64_t header_fnv;  ///< FNV-1a of the 48 bytes preceding this field
};
static_assert(sizeof(ArtifactHeader) == kArtifactHeaderBytes);
static_assert(offsetof(ArtifactHeader, endian) == kArtifactEndianOffset);

/// One node-table record (80 bytes, 8-aligned).
struct ArtifactNode
{
    uint64_t node_index;
    uint64_t k;
    uint64_t n;
    uint32_t bwa;
    uint32_t bwb;
    uint32_t a_signed;
    uint32_t b_signed;
    uint64_t words_off;
    uint64_t words_count;
    uint64_t panels_off;
    uint64_t panels_count;
    uint32_t panel_words_per_group;
    uint32_t reserved;
};
static_assert(sizeof(ArtifactNode) == 80);

constexpr char kMagic[8] = {'M', 'G', 'W', 'P', 'A', 'C', 'K', '1'};

uint64_t
align8(uint64_t value)
{
    return (value + 7) & ~uint64_t{7};
}

/// Bounds-check a [off, off + count*8) word range against @p size,
/// overflow-safely: off must be 8-aligned and inside the file, and
/// count must fit in the remaining bytes.
bool
wordRangeOk(uint64_t off, uint64_t count, uint64_t size)
{
    if (off % 8 != 0 || off > size)
        return false;
    return count <= (size - off) / 8;
}

} // namespace

uint64_t
fnv1a64(const void *data, size_t len, uint64_t seed)
{
    const auto *bytes = static_cast<const uint8_t *>(data);
    uint64_t hash = seed;
    for (size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

uint64_t
artifactChecksum(const void *data, size_t len, uint64_t seed)
{
    const auto *bytes = static_cast<const uint8_t *>(data);
    uint64_t hash = seed;
    size_t i = 0;
    for (; i + 8 <= len; i += 8) {
        uint64_t chunk;
        std::memcpy(&chunk, bytes + i, 8);
        hash = (hash ^ chunk) * 0x100000001b3ull;
    }
    for (; i < len; ++i)
        hash = (hash ^ bytes[i]) * 0x100000001b3ull;
    return hash;
}

Expected<std::shared_ptr<MappedFile>>
MappedFile::open(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        return Status::notFound(strCat("artifact '", path,
                                       "': ", std::strerror(errno)));
    }
    struct stat st = {};
    if (fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        return Status::unavailable(strCat("artifact '", path, "': fstat: ",
                                          std::strerror(err)));
    }
    if (st.st_size <= 0) {
        ::close(fd);
        return Status::dataLoss(strCat("artifact '", path, "': empty file"));
    }
    const auto size = static_cast<uint64_t>(st.st_size);
    void *addr = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (addr == MAP_FAILED) {
        return Status::unavailable(strCat("artifact '", path, "': mmap: ",
                                          std::strerror(errno)));
    }
    return std::shared_ptr<MappedFile>(new MappedFile(addr, size));
}

MappedFile::~MappedFile()
{
    if (addr_)
        munmap(addr_, size_);
}

Status
writeArtifact(const PackedModel &model, const std::string &path)
{
    if (path.empty())
        return Status::invalidArgument("writeArtifact: empty path");
    if (model.entries.size() >
        std::numeric_limits<uint32_t>::max()) {
        return Status::invalidArgument("writeArtifact: too many entries");
    }
    if (model.tuning_json.size() >
        std::numeric_limits<uint32_t>::max()) {
        return Status::invalidArgument(
            "writeArtifact: tuning blob too large");
    }

    // The artifact always carries cluster panels — the zero-copy win
    // on load is skipping both the pack and the expansion.
    for (const PackedEntry &entry : model.entries)
        entry.weights.ensureClusterPanels();

    // Lay out offsets: header, node table, tuning blob, 8-aligned
    // word payloads (words then panels, per node).
    std::vector<ArtifactNode> table(model.entries.size());
    uint64_t offset = kArtifactHeaderBytes +
                      table.size() * sizeof(ArtifactNode);
    offset = align8(offset + model.tuning_json.size());
    for (size_t i = 0; i < model.entries.size(); ++i) {
        const PackedEntry &entry = model.entries[i];
        const CompressedB &b = entry.weights;
        ArtifactNode &node = table[i];
        node.node_index = entry.node_index;
        node.k = b.k();
        node.n = b.n();
        node.bwa = b.geometry().config.bwa;
        node.bwb = b.geometry().config.bwb;
        node.a_signed = b.geometry().config.a_signed ? 1 : 0;
        node.b_signed = b.geometry().config.b_signed ? 1 : 0;
        node.words_off = offset;
        node.words_count = b.words().size();
        offset += node.words_count * 8;
        node.panels_off = offset;
        node.panels_count = b.clusterPanelWordCount();
        node.panel_words_per_group = b.clusterWordsPerGroup();
        offset += node.panels_count * 8;
    }
    const uint64_t file_bytes = offset;

    std::vector<uint8_t> buffer(file_bytes, 0);
    uint8_t *base = buffer.data();
    for (size_t i = 0; i < model.entries.size(); ++i) {
        const CompressedB &b = model.entries[i].weights;
        if (table[i].words_count) {
            std::memcpy(base + table[i].words_off, b.words().data(),
                        table[i].words_count * 8);
        }
        if (table[i].panels_count) {
            std::memcpy(base + table[i].panels_off, b.groupClusters(0, 0),
                        table[i].panels_count * 8);
        }
    }
    if (!table.empty()) {
        std::memcpy(base + kArtifactHeaderBytes, table.data(),
                    table.size() * sizeof(ArtifactNode));
    }
    if (!model.tuning_json.empty()) {
        std::memcpy(base + kArtifactHeaderBytes +
                        table.size() * sizeof(ArtifactNode),
                    model.tuning_json.data(), model.tuning_json.size());
    }

    ArtifactHeader header = {};
    std::memcpy(header.magic, kMagic, sizeof(kMagic));
    header.version = kArtifactVersion;
    header.endian = kArtifactEndian;
    header.content_key = model.key;
    header.node_count = static_cast<uint32_t>(model.entries.size());
    header.tuning_bytes = static_cast<uint32_t>(model.tuning_json.size());
    header.file_bytes = file_bytes;
    header.payload_fnv = artifactChecksum(
        base + kArtifactHeaderBytes, file_bytes - kArtifactHeaderBytes);
    header.header_fnv =
        artifactChecksum(&header, offsetof(ArtifactHeader, header_fnv));
    std::memcpy(base, &header, sizeof(header));

    // Write-to-temp + fsync + rename + directory fsync: concurrent
    // loaders either see the old artifact or the complete new one,
    // never a torn write — and after a crash *at any point*, either the
    // old content or the new content is durably on disk (the fsync
    // before the rename keeps the rename from outrunning the data; the
    // directory fsync makes the rename itself durable). A stale *.tmp
    // left by a crash mid-write is swept by PackedWeightStore on open.
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        return Status::unavailable(strCat("writeArtifact: cannot open '",
                                          tmp, "': ",
                                          std::strerror(errno)));
    }
    uint64_t written = 0;
    while (written < file_bytes) {
        const ssize_t n = ::write(fd, base + written,
                                  file_bytes - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            const int err = errno;
            ::close(fd);
            std::remove(tmp.c_str());
            return Status::unavailable(
                strCat("writeArtifact: short write to '", tmp, "': ",
                       std::strerror(err)));
        }
        written += static_cast<uint64_t>(n);
    }
    if (::fsync(fd) != 0) {
        const int err = errno;
        ::close(fd);
        std::remove(tmp.c_str());
        return Status::unavailable(strCat("writeArtifact: fsync '", tmp,
                                          "': ", std::strerror(err)));
    }
    if (::close(fd) != 0) {
        const int err = errno;
        std::remove(tmp.c_str());
        return Status::unavailable(strCat("writeArtifact: close '", tmp,
                                          "': ", std::strerror(err)));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        std::remove(tmp.c_str());
        return Status::unavailable(strCat("writeArtifact: rename to '", path,
                                          "': ", std::strerror(err)));
    }
    // Durability of the rename is best-effort: a failure here leaves a
    // fully valid file that may revert to absent after a crash, which
    // the store handles by re-packing.
    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirfd >= 0) {
        ::fsync(dirfd);
        ::close(dirfd);
    }
    return Status();
}

Expected<PackedModel>
loadArtifact(const std::string &path, bool verify_checksum,
             uint64_t expected_key)
{
    auto mapped = MappedFile::open(path);
    if (!mapped.ok())
        return mapped.status();
    const std::shared_ptr<MappedFile> &file = *mapped;
    const uint8_t *base = file->data();
    const uint64_t size = file->size();

    if (size < kArtifactHeaderBytes) {
        return Status::dataLoss(strCat("artifact '", path,
                                       "': shorter than header"));
    }
    ArtifactHeader header;
    std::memcpy(&header, base, sizeof(header));
    if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0)
        return Status::dataLoss(strCat("artifact '", path, "': bad magic"));
    if (header.endian != kArtifactEndian) {
        return Status::dataLoss(strCat(
            "artifact '", path, "': endianness mismatch (marker 0x",
            std::to_string(header.endian), ")"));
    }
    if (header.version != kArtifactVersion) {
        return Status::failedPrecondition(strCat(
            "artifact '", path, "': format version ", header.version,
            " != supported ", kArtifactVersion));
    }
    if (header.file_bytes != size) {
        return Status::dataLoss(strCat("artifact '", path,
                                       "': header says ", header.file_bytes,
                                       " bytes, file has ", size));
    }
    if (verify_checksum) {
        const uint64_t header_fnv =
            artifactChecksum(base, offsetof(ArtifactHeader, header_fnv));
        if (header_fnv != header.header_fnv) {
            return Status::dataLoss(strCat("artifact '", path,
                                           "': header checksum mismatch"));
        }
        const uint64_t payload_fnv = artifactChecksum(
            base + kArtifactHeaderBytes, size - kArtifactHeaderBytes);
        if (payload_fnv != header.payload_fnv) {
            return Status::dataLoss(strCat("artifact '", path,
                                           "': payload checksum mismatch"));
        }
    }
    if (expected_key != 0 && header.content_key != expected_key) {
        return Status::failedPrecondition(strCat(
            "artifact '", path, "': content key mismatch (stale or "
            "misnamed artifact)"));
    }

    // Structural bounds: the node table and tuning blob must fit, with
    // every arithmetic step overflow-checked against the real size.
    const uint64_t max_nodes =
        (size - kArtifactHeaderBytes) / sizeof(ArtifactNode);
    if (header.node_count > max_nodes) {
        return Status::dataLoss(strCat("artifact '", path, "': node table (",
                                       header.node_count,
                                       " entries) exceeds file"));
    }
    const uint64_t table_end = kArtifactHeaderBytes +
                               uint64_t{header.node_count} *
                                   sizeof(ArtifactNode);
    if (header.tuning_bytes > size - table_end) {
        return Status::dataLoss(strCat("artifact '", path,
                                       "': tuning blob exceeds file"));
    }
    const uint64_t payload_start = align8(table_end + header.tuning_bytes);

    PackedModel model;
    model.key = header.content_key;
    model.path = path;
    model.from_cache = true;
    model.mapped_bytes = size;
    model.tuning_json.assign(
        reinterpret_cast<const char *>(base + table_end),
        header.tuning_bytes);
    model.entries.reserve(header.node_count);

    for (uint32_t i = 0; i < header.node_count; ++i) {
        ArtifactNode node;
        std::memcpy(&node, base + kArtifactHeaderBytes +
                               uint64_t{i} * sizeof(ArtifactNode),
                    sizeof(node));
        if (!wordRangeOk(node.words_off, node.words_count, size) ||
            !wordRangeOk(node.panels_off, node.panels_count, size) ||
            node.words_off < payload_start ||
            node.panels_off < payload_start) {
            return Status::dataLoss(strCat("artifact '", path, "': node ", i,
                                           ": payload range out of bounds"));
        }
        const DataSizeConfig config{node.bwa, node.bwb, node.a_signed != 0,
                                    node.b_signed != 0};
        auto geometry = tryComputeBsGeometry(config);
        if (!geometry.ok()) {
            return Status::dataLoss(strCat("artifact '", path, "': node ", i,
                                           ": ", geometry.status().message()));
        }
        const BsGeometry geom = geometryForK(*geometry, node.k);
        const auto *words = reinterpret_cast<const uint64_t *>(
            base + node.words_off);
        const auto *panels = reinterpret_cast<const uint64_t *>(
            base + node.panels_off);
        auto adopted = CompressedB::adopt(
            node.k, node.n, geom, {words, node.words_count}, file,
            {panels, node.panels_count}, node.panel_words_per_group);
        if (!adopted.ok()) {
            return Status::dataLoss(strCat("artifact '", path, "': node ", i,
                                           ": ", adopted.status().message()));
        }
        model.packed_bytes += node.words_count * 8 + node.panels_count * 8;
        model.entries.push_back(
            PackedEntry{node.node_index, std::move(*adopted)});
    }
    return model;
}

} // namespace mixgemm
