#include "quant/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mixgemm
{

namespace
{

/** The @p percentile percentile of |values| (nearest-rank method). */
double
absPercentile(std::span<const double> values, double percentile)
{
    if (values.empty())
        fatal("calibration requires at least one value");
    std::vector<double> mags(values.size());
    for (size_t i = 0; i < values.size(); ++i)
        mags[i] = std::abs(values[i]);
    // Nearest-rank: the ceil(p/100 * n)-th smallest magnitude.
    size_t rank = static_cast<size_t>(
        std::ceil(percentile / 100.0 * static_cast<double>(mags.size())));
    rank = std::clamp<size_t>(rank, 1, mags.size());
    std::nth_element(mags.begin(), mags.begin() + (rank - 1), mags.end());
    return mags[rank - 1];
}

QuantParams
paramsFromAbsmax(double absmax, unsigned bits, bool is_signed)
{
    QuantParams p;
    p.bits = bits;
    p.is_signed = is_signed;
    p.zero_point = 0;
    p.scale = absmax > 0.0 ? absmax / p.qmax() : 1.0;
    return p;
}

} // namespace

QuantParams
calibrateAbsmax(std::span<const double> values, unsigned bits,
                bool is_signed)
{
    if (values.empty())
        fatal("calibrateAbsmax requires at least one value");
    double absmax = 0.0;
    for (const double v : values)
        absmax = std::max(absmax, std::abs(v));
    return paramsFromAbsmax(absmax, bits, is_signed);
}

QuantParams
calibratePercentile(std::span<const double> values, double percentile,
                    unsigned bits, bool is_signed)
{
    if (percentile <= 0.0 || percentile > 100.0)
        fatal("percentile must be in (0, 100]");
    return paramsFromAbsmax(absPercentile(values, percentile), bits,
                            is_signed);
}

PercentileCalibrator::PercentileCalibrator(double percentile, unsigned bits,
                                           bool is_signed)
    : percentile_(percentile), bits_(bits), is_signed_(is_signed)
{
    if (percentile <= 0.0 || percentile > 100.0)
        fatal("percentile must be in (0, 100]");
}

void
PercentileCalibrator::addBatch(std::span<const double> values)
{
    percentile_sum_ += absPercentile(values, percentile_);
    ++batches_;
}

QuantParams
PercentileCalibrator::finish() const
{
    if (batches_ == 0)
        fatal("PercentileCalibrator::finish with no batches");
    return paramsFromAbsmax(percentile_sum_ / batches_, bits_, is_signed_);
}

QuantParams
calibratePowerOfTwo(std::span<const double> values, unsigned bits,
                    bool is_signed)
{
    QuantParams p = calibrateAbsmax(values, bits, is_signed);
    // Round the scale up to the next power of two so the full absmax
    // range stays representable.
    p.scale = std::exp2(std::ceil(std::log2(p.scale)));
    return p;
}

bool
isPowerOfTwoScale(const QuantParams &params)
{
    if (params.scale <= 0.0)
        return false;
    const double l = std::log2(params.scale);
    return l == std::nearbyint(l);
}

int
scaleShift(const QuantParams &params)
{
    if (!isPowerOfTwoScale(params))
        fatal("scaleShift: scale is not a power of two");
    return static_cast<int>(std::nearbyint(std::log2(params.scale)));
}

std::vector<QuantParams>
calibratePerChannelAbsmax(std::span<const double> values, size_t channels,
                          unsigned bits, bool is_signed)
{
    if (channels == 0 || values.size() % channels != 0)
        fatal("calibratePerChannelAbsmax: bad channel count");
    const size_t per_channel = values.size() / channels;
    std::vector<QuantParams> params;
    params.reserve(channels);
    for (size_t c = 0; c < channels; ++c)
        params.push_back(calibrateAbsmax(
            values.subspan(c * per_channel, per_channel), bits, is_signed));
    return params;
}

std::vector<double>
biasCorrection(std::span<const double> float_outputs,
               std::span<const double> quant_outputs, size_t channels)
{
    if (channels == 0 || float_outputs.size() != quant_outputs.size() ||
        float_outputs.size() % channels != 0)
        fatal("biasCorrection: mismatched shapes");
    const size_t samples = float_outputs.size() / channels;
    std::vector<double> corrections(channels, 0.0);
    for (size_t s = 0; s < samples; ++s)
        for (size_t c = 0; c < channels; ++c)
            corrections[c] += float_outputs[s * channels + c] -
                              quant_outputs[s * channels + c];
    for (auto &c : corrections)
        c /= static_cast<double>(samples);
    return corrections;
}

} // namespace mixgemm
