/**
 * @file
 * Uniform affine integer quantization (Section II-A, Eq. 1-2).
 *
 *   q(x) = clamp(round(x / s + z), y_min, y_max)
 *
 * with scale s, zero-point z, and clamp range derived from the bitwidth
 * and signedness. The paper's deployed models use symmetric quantization
 * (z = 0) with per-channel weight scales and per-tensor activation
 * scales; this module supports the general asymmetric form as well so the
 * design space of Section II-A is fully representable.
 */

#ifndef MIXGEMM_QUANT_QUANTIZER_H
#define MIXGEMM_QUANT_QUANTIZER_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace mixgemm
{

/** Quantization parameters for one tensor (or one channel). */
struct QuantParams
{
    double scale = 1.0;     ///< s in Eq. 1; must be > 0
    int32_t zero_point = 0; ///< z in Eq. 1; 0 for symmetric quantization
    unsigned bits = 8;      ///< n_b in Eq. 2
    bool is_signed = true;  ///< selects the signed/unsigned clamp range

    /** Lower clamp bound y_min (Eq. 2). */
    int32_t qmin() const;
    /** Upper clamp bound y_max (Eq. 2). */
    int32_t qmax() const;
    /** True when zero_point == 0. */
    bool symmetric() const { return zero_point == 0; }
};

/**
 * Validate a QuantParams loaded from external input (config file, model
 * checkpoint): positive finite scale, bits in [1, 16], zero-point inside
 * the clamp range.
 */
Status validateQuantParams(const QuantParams &params);

/**
 * Build a validated QuantParams from externally-supplied fields —
 * the checked construction path for deserializers and CLIs. Returns
 * the violation from validateQuantParams() on bad input.
 */
Expected<QuantParams> makeQuantParams(double scale, int32_t zero_point,
                                      unsigned bits, bool is_signed);

/** Quantize one value (Eq. 1). */
int32_t quantize(double x, const QuantParams &params);

/** Dequantize one value: s * (q - z). */
double dequantize(int32_t q, const QuantParams &params);

/** Fake-quantize: dequantize(quantize(x)) — the QAT forward operator. */
double fakeQuantize(double x, const QuantParams &params);

/** Quantize a tensor. */
std::vector<int32_t> quantize(std::span<const double> values,
                              const QuantParams &params);

/** Dequantize a tensor. */
std::vector<double> dequantize(std::span<const int32_t> values,
                               const QuantParams &params);

/**
 * Quantize a 2-D weight tensor per-channel (one scale per output
 * channel, as in the paper's weight quantization).
 *
 * @param values row-major [channels x per_channel] data
 * @param params one QuantParams per channel (params.size() == channels)
 */
std::vector<int32_t> quantizePerChannel(
    std::span<const double> values, size_t channels,
    std::span<const QuantParams> params);

/**
 * The effective requantization multiplier that folds input and weight
 * scales into the output scale: (s_a * s_w) / s_out. Used by the runtime
 * to map int32 accumulators back to the next layer's input format.
 */
double requantizeMultiplier(const QuantParams &a, const QuantParams &w,
                            const QuantParams &out);

/**
 * Integer-only requantization, the fixed-point path an edge deployment
 * runs (no floating point in the inference loop): a real multiplier in
 * (0, 1) is represented as a Q31 fixed-point mantissa plus a right
 * shift, and applied with a rounding doubling-high multiply — the
 * TFLite/gemmlowp convention.
 */
struct FixedPointMultiplier
{
    int32_t mantissa = 0; ///< Q31, in [2^30, 2^31) for nonzero inputs
    int shift = 0;        ///< total right shift after the high multiply
};

/**
 * Decompose @p multiplier into Q31 mantissa + shift.
 * @pre 0 < multiplier < 1 (the usual requant regime; larger values are
 *      supported up to 2^30 by negative shifts)
 */
FixedPointMultiplier quantizeMultiplier(double multiplier);

/**
 * Apply: round(acc * multiplier) using only integer ops (64-bit
 * rounding multiply followed by a rounding arithmetic shift).
 * Matches the double-precision product within 1 LSB.
 */
int32_t requantizeFixedPoint(int64_t acc,
                             const FixedPointMultiplier &multiplier);

} // namespace mixgemm

#endif // MIXGEMM_QUANT_QUANTIZER_H
