#include "quant/quantizer.h"

#include <algorithm>
#include <cmath>

#include "common/bitutils.h"
#include "common/logging.h"

namespace mixgemm
{

int32_t
QuantParams::qmin() const
{
    return is_signed ? -(int32_t{1} << (bits - 1)) : 0;
}

int32_t
QuantParams::qmax() const
{
    return is_signed ? (int32_t{1} << (bits - 1)) - 1
                     : (int32_t{1} << bits) - 1;
}

Status
validateQuantParams(const QuantParams &params)
{
    if (!std::isfinite(params.scale) || params.scale <= 0.0)
        return Status::invalidArgument(
            "QuantParams: scale must be positive and finite");
    if (params.bits < 1 || params.bits > 16)
        return Status::invalidArgument(
            strCat("QuantParams: bits must be in [1, 16], got ",
                   params.bits));
    // A zero-point outside the representable range can never be hit by
    // a quantized value, which breaks dequantization round trips.
    if (params.zero_point < params.qmin() ||
        params.zero_point > params.qmax())
        return Status::invalidArgument(
            strCat("QuantParams: zero-point ", params.zero_point,
                   " outside the clamp range [", params.qmin(), ", ",
                   params.qmax(), "]"));
    return Status();
}

Expected<QuantParams>
makeQuantParams(double scale, int32_t zero_point, unsigned bits,
                bool is_signed)
{
    QuantParams params;
    params.scale = scale;
    params.zero_point = zero_point;
    params.bits = bits;
    params.is_signed = is_signed;
    if (Status s = validateQuantParams(params); !s.ok())
        return s;
    return params;
}

int32_t
quantize(double x, const QuantParams &params)
{
    if (params.scale <= 0.0)
        fatal("quantize: scale must be positive");
    if (params.bits < 1 || params.bits > 16)
        fatal("quantize: bits must be in [1, 16]");
    const double q = std::nearbyint(x / params.scale) + params.zero_point;
    const double lo = params.qmin();
    const double hi = params.qmax();
    return static_cast<int32_t>(std::clamp(q, lo, hi));
}

double
dequantize(int32_t q, const QuantParams &params)
{
    return params.scale * (q - params.zero_point);
}

double
fakeQuantize(double x, const QuantParams &params)
{
    return dequantize(quantize(x, params), params);
}

std::vector<int32_t>
quantize(std::span<const double> values, const QuantParams &params)
{
    std::vector<int32_t> out(values.size());
    for (size_t i = 0; i < values.size(); ++i)
        out[i] = quantize(values[i], params);
    return out;
}

std::vector<double>
dequantize(std::span<const int32_t> values, const QuantParams &params)
{
    std::vector<double> out(values.size());
    for (size_t i = 0; i < values.size(); ++i)
        out[i] = dequantize(values[i], params);
    return out;
}

std::vector<int32_t>
quantizePerChannel(std::span<const double> values, size_t channels,
                   std::span<const QuantParams> params)
{
    if (channels == 0 || values.size() % channels != 0)
        fatal("quantizePerChannel: size not divisible by channel count");
    if (params.size() != channels)
        fatal("quantizePerChannel: one QuantParams required per channel");
    const size_t per_channel = values.size() / channels;
    std::vector<int32_t> out(values.size());
    for (size_t c = 0; c < channels; ++c)
        for (size_t i = 0; i < per_channel; ++i)
            out[c * per_channel + i] =
                quantize(values[c * per_channel + i], params[c]);
    return out;
}

double
requantizeMultiplier(const QuantParams &a, const QuantParams &w,
                     const QuantParams &out)
{
    if (out.scale <= 0.0)
        fatal("requantizeMultiplier: output scale must be positive");
    return a.scale * w.scale / out.scale;
}

FixedPointMultiplier
quantizeMultiplier(double multiplier)
{
    if (multiplier <= 0.0)
        fatal("quantizeMultiplier: multiplier must be positive");
    FixedPointMultiplier fp;
    int exponent = 0;
    const double mantissa = std::frexp(multiplier, &exponent);
    // mantissa in [0.5, 1) -> Q31 in [2^30, 2^31].
    int64_t q = static_cast<int64_t>(std::nearbyint(
        mantissa * static_cast<double>(int64_t{1} << 31)));
    if (q == (int64_t{1} << 31)) { // rounding overflow: 1.0 * 2^e
        q /= 2;
        ++exponent;
    }
    fp.mantissa = static_cast<int32_t>(q);
    fp.shift = 31 - exponent;
    if (fp.shift < 0)
        fatal("quantizeMultiplier: multiplier too large");
    return fp;
}

int32_t
requantizeFixedPoint(int64_t acc, const FixedPointMultiplier &multiplier)
{
    // acc * (mantissa / 2^31) * 2^exponent collapses to one rounding
    // right shift by `shift` = 31 - exponent; round half away from
    // zero like nearbyint on the exact product.
    const int128 product =
        static_cast<int128>(acc) * multiplier.mantissa;
    const unsigned total_shift =
        static_cast<unsigned>(multiplier.shift);
    if (total_shift == 0)
        return static_cast<int32_t>(product);
    const int128 rounding = int128{1} << (total_shift - 1);
    const int128 shifted =
        product >= 0 ? (product + rounding) >> total_shift
                     : -((-product + rounding) >> total_shift);
    return static_cast<int32_t>(shifted);
}

} // namespace mixgemm
