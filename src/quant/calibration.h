/**
 * @file
 * Post-training calibration of quantization scales (Section IV-A).
 *
 * The paper initializes activation quantization by averaging the 99.999
 * percentile of activation absolute values over calibration batches, and
 * quantizes weights per-channel with scale computed from the tensor
 * absmax; a bias-correction pass then compensates the mean shift
 * quantization introduces. This module implements those three
 * ingredients.
 */

#ifndef MIXGEMM_QUANT_CALIBRATION_H
#define MIXGEMM_QUANT_CALIBRATION_H

#include <span>
#include <vector>

#include "quant/quantizer.h"

namespace mixgemm
{

/**
 * Symmetric scale from the absolute maximum: s = absmax / qmax.
 * An all-zero tensor calibrates to scale 1 (any scale represents it).
 */
QuantParams calibrateAbsmax(std::span<const double> values, unsigned bits,
                            bool is_signed);

/**
 * Symmetric scale from the given percentile of |values| (the paper uses
 * 99.999). @p percentile is in (0, 100].
 */
QuantParams calibratePercentile(std::span<const double> values,
                                double percentile, unsigned bits,
                                bool is_signed);

/**
 * Running percentile calibrator: feeds batches, averages the per-batch
 * percentile as the paper does over 8 calibration batches.
 */
class PercentileCalibrator
{
  public:
    PercentileCalibrator(double percentile, unsigned bits, bool is_signed);

    /** Accumulate one batch of activation values. */
    void addBatch(std::span<const double> values);

    /** Final parameters; averages the per-batch percentiles. */
    QuantParams finish() const;

    /** Number of batches observed. */
    unsigned batches() const { return batches_; }

  private:
    double percentile_;
    unsigned bits_;
    bool is_signed_;
    double percentile_sum_ = 0.0;
    unsigned batches_ = 0;
};

/**
 * Symmetric calibration with the scale rounded up to a power of two:
 * requantization then reduces to an arithmetic shift, the
 * hardware-friendly variant edge deployments often prefer (no
 * multiplier in the requant path). The representable range can grow by
 * up to 2x relative to absmax calibration, costing at most one bit of
 * effective resolution.
 */
QuantParams calibratePowerOfTwo(std::span<const double> values,
                                unsigned bits, bool is_signed);

/** True when the scale is an exact (possibly negative) power of two. */
bool isPowerOfTwoScale(const QuantParams &params);

/**
 * log2 of a power-of-two scale (the requantization shift amount).
 * @throws FatalError when the scale is not a power of two.
 */
int scaleShift(const QuantParams &params);

/** Per-channel absmax calibration of a [channels x per_channel] tensor. */
std::vector<QuantParams> calibratePerChannelAbsmax(
    std::span<const double> values, size_t channels, unsigned bits,
    bool is_signed);

/**
 * Bias correction (Nagel et al., cited as [50]): returns the per-channel
 * corrections E[Wx] - E[W_q x] to *add* to the layer bias so the
 * quantized layer's expected output matches the float layer's.
 *
 * @param float_outputs   row-major [samples x channels] float-layer
 *                        pre-activation outputs on calibration data
 * @param quant_outputs   same shape, outputs of the quantized layer
 */
std::vector<double> biasCorrection(std::span<const double> float_outputs,
                                   std::span<const double> quant_outputs,
                                   size_t channels);

} // namespace mixgemm

#endif // MIXGEMM_QUANT_CALIBRATION_H
