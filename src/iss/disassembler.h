/**
 * @file
 * Disassembler for the ISS's instruction subset (RV64I+M plus the
 * Mix-GEMM custom-0 instructions). Produces GNU-style mnemonics for
 * debugging assembled programs and machine traces.
 */

#ifndef MIXGEMM_ISS_DISASSEMBLER_H
#define MIXGEMM_ISS_DISASSEMBLER_H

#include <cstdint>
#include <string>
#include <vector>

namespace mixgemm
{

/**
 * Render one instruction word; unknown encodings render as
 * ".word 0x????????" rather than throwing.
 */
std::string disassemble(uint32_t insn);

/** Render a whole program with PC-relative branch/jump targets. */
std::string disassembleProgram(const std::vector<uint32_t> &words,
                               uint64_t base = 0);

} // namespace mixgemm

#endif // MIXGEMM_ISS_DISASSEMBLER_H
