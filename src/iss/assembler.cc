#include "iss/assembler.h"

#include "common/logging.h"
#include "isa/encoding.h"

namespace mixgemm
{

namespace
{

uint32_t
rType(uint32_t funct7, unsigned rs2, unsigned rs1, uint32_t funct3,
      unsigned rd, uint32_t opcode)
{
    return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
           (rd << 7) | opcode;
}

uint32_t
iType(int32_t imm, unsigned rs1, uint32_t funct3, unsigned rd,
      uint32_t opcode)
{
    if (imm < -2048 || imm > 2047)
        fatal(strCat("assembler: I-immediate ", imm, " out of range"));
    return (static_cast<uint32_t>(imm & 0xfff) << 20) | (rs1 << 15) |
           (funct3 << 12) | (rd << 7) | opcode;
}

uint32_t
sType(int32_t imm, unsigned rs2, unsigned rs1, uint32_t funct3,
      uint32_t opcode)
{
    if (imm < -2048 || imm > 2047)
        fatal(strCat("assembler: S-immediate ", imm, " out of range"));
    const uint32_t u = static_cast<uint32_t>(imm & 0xfff);
    return ((u >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
           ((u & 0x1f) << 7) | opcode;
}

uint32_t
bType(int32_t offset, unsigned rs1, unsigned rs2, uint32_t funct3)
{
    if (offset < -4096 || offset > 4094 || (offset & 1))
        fatal(strCat("assembler: branch offset ", offset,
                     " out of range"));
    const uint32_t u = static_cast<uint32_t>(offset);
    return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25) |
           (rs2 << 20) | (rs1 << 15) | (funct3 << 12) |
           (((u >> 1) & 0xf) << 8) | (((u >> 11) & 1) << 7) | 0x63;
}

uint32_t
jType(int32_t offset, unsigned rd)
{
    if (offset < -(1 << 20) || offset >= (1 << 20) || (offset & 1))
        fatal(strCat("assembler: jal offset ", offset, " out of range"));
    const uint32_t u = static_cast<uint32_t>(offset);
    return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3ff) << 21) |
           (((u >> 11) & 1) << 20) | (((u >> 12) & 0xff) << 12) |
           (rd << 7) | 0x6f;
}

} // namespace

void
Program::addi(unsigned rd, unsigned rs1, int32_t imm)
{
    emit(iType(imm, rs1, 0, rd, 0x13));
}

void
Program::add(unsigned rd, unsigned rs1, unsigned rs2)
{
    emit(rType(0x00, rs2, rs1, 0, rd, 0x33));
}

void
Program::sub(unsigned rd, unsigned rs1, unsigned rs2)
{
    emit(rType(0x20, rs2, rs1, 0, rd, 0x33));
}

void
Program::slli(unsigned rd, unsigned rs1, unsigned shamt)
{
    emit((shamt << 20) | (rs1 << 15) | (1u << 12) | (rd << 7) | 0x13);
}

void
Program::srli(unsigned rd, unsigned rs1, unsigned shamt)
{
    emit((shamt << 20) | (rs1 << 15) | (5u << 12) | (rd << 7) | 0x13);
}

void
Program::srai(unsigned rd, unsigned rs1, unsigned shamt)
{
    // RV64 funct6 = 010000; shamt occupies bits [25:20].
    emit((0x10u << 26) | ((shamt & 0x3f) << 20) | (rs1 << 15) |
         (5u << 12) | (rd << 7) | 0x13);
}

void
Program::andi(unsigned rd, unsigned rs1, int32_t imm)
{
    emit(iType(imm, rs1, 7, rd, 0x13));
}

void
Program::mul(unsigned rd, unsigned rs1, unsigned rs2)
{
    emit(rType(0x01, rs2, rs1, 0, rd, 0x33));
}

void
Program::addiw(unsigned rd, unsigned rs1, int32_t imm)
{
    emit(iType(imm, rs1, 0, rd, 0x1b));
}

void
Program::li(unsigned rd, uint64_t value)
{
    // The standard RV64 materialization (as compilers emit it):
    // small -> addi; int32 -> lui + addiw; otherwise build the upper
    // bits recursively, shift by 12, and add the low 12 bits.
    const int64_t v = static_cast<int64_t>(value);
    if (v >= -2048 && v <= 2047) {
        addi(rd, ZERO, static_cast<int32_t>(v));
        return;
    }
    const int32_t low =
        static_cast<int32_t>(((v & 0xfff) ^ 0x800) - 0x800);
    if (v >= INT32_MIN && v <= INT32_MAX) {
        const uint32_t hi20 =
            static_cast<uint32_t>((v - low) & 0xfffff000);
        emit(hi20 | (rd << 7) | 0x37); // lui (addiw sign-fixes the rest)
        if (low != 0)
            addiw(rd, rd, low);
        return;
    }
    li(rd, static_cast<uint64_t>((v - low) >> 12));
    slli(rd, rd, 12);
    if (low != 0)
        addi(rd, rd, low);
}

void
Program::ld(unsigned rd, unsigned rs1, int32_t offset)
{
    emit(iType(offset, rs1, 3, rd, 0x03));
}

void
Program::lw(unsigned rd, unsigned rs1, int32_t offset)
{
    emit(iType(offset, rs1, 2, rd, 0x03));
}

void
Program::lbu(unsigned rd, unsigned rs1, int32_t offset)
{
    emit(iType(offset, rs1, 4, rd, 0x03));
}

void
Program::sd(unsigned rs2, unsigned rs1, int32_t offset)
{
    emit(sType(offset, rs2, rs1, 3, 0x23));
}

void
Program::sw(unsigned rs2, unsigned rs1, int32_t offset)
{
    emit(sType(offset, rs2, rs1, 2, 0x23));
}

void
Program::label(const std::string &name)
{
    if (labels_.count(name))
        fatal("assembler: duplicate label '" + name + "'");
    labels_[name] = words_.size();
}

void
Program::beq(unsigned rs1, unsigned rs2, const std::string &target)
{
    fixups_.push_back({words_.size(), target, false});
    emit(bType(0, rs1, rs2, 0));
}

void
Program::bne(unsigned rs1, unsigned rs2, const std::string &target)
{
    fixups_.push_back({words_.size(), target, false});
    emit(bType(0, rs1, rs2, 1));
}

void
Program::blt(unsigned rs1, unsigned rs2, const std::string &target)
{
    fixups_.push_back({words_.size(), target, false});
    emit(bType(0, rs1, rs2, 4));
}

void
Program::bge(unsigned rs1, unsigned rs2, const std::string &target)
{
    fixups_.push_back({words_.size(), target, false});
    emit(bType(0, rs1, rs2, 5));
}

void
Program::jal(unsigned rd, const std::string &target)
{
    fixups_.push_back({words_.size(), target, true});
    emit(jType(0, rd));
}

void
Program::ebreak()
{
    emit(0x00100073);
}

void
Program::bsSet(unsigned rs1, unsigned rs2)
{
    BsInstruction insn;
    insn.funct3 = BsFunct3::kSet;
    insn.rs1 = static_cast<uint8_t>(rs1);
    insn.rs2 = static_cast<uint8_t>(rs2);
    emit(encodeBsInstruction(insn));
}

void
Program::bsIp(unsigned rs1, unsigned rs2)
{
    BsInstruction insn;
    insn.funct3 = BsFunct3::kIp;
    insn.rs1 = static_cast<uint8_t>(rs1);
    insn.rs2 = static_cast<uint8_t>(rs2);
    emit(encodeBsInstruction(insn));
}

void
Program::bsGet(unsigned rd, unsigned rs1)
{
    BsInstruction insn;
    insn.funct3 = BsFunct3::kGet;
    insn.rd = static_cast<uint8_t>(rd);
    insn.rs1 = static_cast<uint8_t>(rs1);
    emit(encodeBsInstruction(insn));
}

std::vector<uint32_t>
Program::assemble() const
{
    std::vector<uint32_t> out = words_;
    for (const Fixup &f : fixups_) {
        const auto it = labels_.find(f.target);
        if (it == labels_.end())
            fatal("assembler: undefined label '" + f.target + "'");
        const int64_t offset =
            (static_cast<int64_t>(it->second) -
             static_cast<int64_t>(f.index)) *
            4;
        const uint32_t old = out[f.index];
        if (f.is_jal) {
            const unsigned rd = (old >> 7) & 0x1f;
            out[f.index] = jType(static_cast<int32_t>(offset), rd);
        } else {
            const unsigned rs1 = (old >> 15) & 0x1f;
            const unsigned rs2 = (old >> 20) & 0x1f;
            const uint32_t funct3 = (old >> 12) & 0x7;
            out[f.index] = bType(static_cast<int32_t>(offset), rs1, rs2,
                                 funct3);
        }
    }
    return out;
}

} // namespace mixgemm
