#include "iss/machine.h"

#include "common/bitutils.h"
#include "common/logging.h"
#include "isa/encoding.h"

namespace mixgemm
{

namespace
{

/** Sign-extended immediate extractors for the standard formats. */
int64_t
immI(uint32_t insn)
{
    return static_cast<int32_t>(insn) >> 20;
}

int64_t
immS(uint32_t insn)
{
    const uint32_t raw = ((insn >> 25) << 5) | ((insn >> 7) & 0x1f);
    return signExtend64(raw, 12);
}

int64_t
immB(uint32_t insn)
{
    const uint32_t raw = (((insn >> 31) & 1) << 12) |
                         (((insn >> 7) & 1) << 11) |
                         (((insn >> 25) & 0x3f) << 5) |
                         (((insn >> 8) & 0xf) << 1);
    return signExtend64(raw, 13);
}

int64_t
immU(uint32_t insn)
{
    return static_cast<int32_t>(insn & 0xfffff000);
}

int64_t
immJ(uint32_t insn)
{
    const uint32_t raw = (((insn >> 31) & 1) << 20) |
                         (((insn >> 12) & 0xff) << 12) |
                         (((insn >> 20) & 1) << 11) |
                         (((insn >> 21) & 0x3ff) << 1);
    return signExtend64(raw, 21);
}

} // namespace

RiscvMachine::RiscvMachine()
    : engine_(64) // generous AccMem so programs choose their slots
{
}

std::vector<uint8_t> &
RiscvMachine::page(uint64_t addr)
{
    auto &p = pages_[addr / kPageBytes];
    if (p.empty())
        p.assign(kPageBytes, 0);
    return p;
}

const std::vector<uint8_t> *
RiscvMachine::pageIfPresent(uint64_t addr) const
{
    const auto it = pages_.find(addr / kPageBytes);
    return it == pages_.end() ? nullptr : &it->second;
}

uint64_t
RiscvMachine::reg(unsigned index) const
{
    if (index >= 32)
        fatal("RiscvMachine: register index out of range");
    return index == 0 ? 0 : regs_[index];
}

void
RiscvMachine::setReg(unsigned index, uint64_t value)
{
    if (index >= 32)
        fatal("RiscvMachine: register index out of range");
    if (index != 0)
        regs_[index] = value;
}

uint8_t
RiscvMachine::readByte(uint64_t addr) const
{
    const auto *p = pageIfPresent(addr);
    return p ? (*p)[addr % kPageBytes] : 0;
}

void
RiscvMachine::writeByte(uint64_t addr, uint8_t value)
{
    page(addr)[addr % kPageBytes] = value;
}

uint64_t
RiscvMachine::readWord(uint64_t addr, unsigned bytes) const
{
    uint64_t value = 0;
    for (unsigned i = 0; i < bytes; ++i)
        value |= uint64_t{readByte(addr + i)} << (8 * i);
    return value;
}

void
RiscvMachine::writeWord(uint64_t addr, uint64_t value, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        writeByte(addr + i, static_cast<uint8_t>(value >> (8 * i)));
}

void
RiscvMachine::writeBlock(uint64_t addr, std::span<const uint64_t> words)
{
    for (size_t i = 0; i < words.size(); ++i)
        writeWord(addr + 8 * i, words[i], 8);
}

void
RiscvMachine::loadProgram(std::span<const uint32_t> words, uint64_t base)
{
    for (size_t i = 0; i < words.size(); ++i)
        writeWord(base + 4 * i, words[i], 4);
    pc_ = base;
    halt_ = HaltReason::kRunning;
}

bool
RiscvMachine::step()
{
    const uint32_t insn =
        static_cast<uint32_t>(readWord(pc_, 4));
    ++executed_;
    return execute(insn);
}

HaltReason
RiscvMachine::run(uint64_t max_steps)
{
    for (uint64_t i = 0; i < max_steps; ++i)
        if (!step())
            return halt_;
    halt_ = HaltReason::kRunning;
    return halt_;
}

bool
RiscvMachine::execute(uint32_t insn)
{
    const uint32_t opcode = insn & 0x7f;
    const unsigned rd = (insn >> 7) & 0x1f;
    const unsigned rs1 = (insn >> 15) & 0x1f;
    const unsigned rs2 = (insn >> 20) & 0x1f;
    const unsigned funct3 = (insn >> 12) & 0x7;
    const unsigned funct7 = (insn >> 25) & 0x7f;
    uint64_t next_pc = pc_ + 4;

    const uint64_t a = reg(rs1);
    const uint64_t b = reg(rs2);

    switch (opcode) {
      case 0x37: // lui
        setReg(rd, static_cast<uint64_t>(immU(insn)));
        break;
      case 0x17: // auipc
        setReg(rd, pc_ + static_cast<uint64_t>(immU(insn)));
        break;
      case 0x6f: // jal
        setReg(rd, pc_ + 4);
        next_pc = pc_ + static_cast<uint64_t>(immJ(insn));
        counters_.inc("jumps");
        break;
      case 0x67: // jalr
        setReg(rd, pc_ + 4);
        next_pc = (a + static_cast<uint64_t>(immI(insn))) & ~uint64_t{1};
        counters_.inc("jumps");
        break;
      case 0x63: { // branches
        bool taken = false;
        switch (funct3) {
          case 0: taken = a == b; break;               // beq
          case 1: taken = a != b; break;               // bne
          case 4: taken = static_cast<int64_t>(a) <
                          static_cast<int64_t>(b); break; // blt
          case 5: taken = static_cast<int64_t>(a) >=
                          static_cast<int64_t>(b); break; // bge
          case 6: taken = a < b; break;                // bltu
          case 7: taken = a >= b; break;               // bgeu
          default:
            halt_ = HaltReason::kBadInsn;
            return false;
        }
        if (taken)
            next_pc = pc_ + static_cast<uint64_t>(immB(insn));
        counters_.inc("branches");
        break;
      }
      case 0x03: { // loads
        const uint64_t addr = a + static_cast<uint64_t>(immI(insn));
        switch (funct3) {
          case 0: setReg(rd, static_cast<uint64_t>(signExtend64(
                              readWord(addr, 1), 8))); break;  // lb
          case 1: setReg(rd, static_cast<uint64_t>(signExtend64(
                              readWord(addr, 2), 16))); break; // lh
          case 2: setReg(rd, static_cast<uint64_t>(signExtend64(
                              readWord(addr, 4), 32))); break; // lw
          case 3: setReg(rd, readWord(addr, 8)); break;        // ld
          case 4: setReg(rd, readWord(addr, 1)); break;        // lbu
          case 5: setReg(rd, readWord(addr, 2)); break;        // lhu
          case 6: setReg(rd, readWord(addr, 4)); break;        // lwu
          default:
            halt_ = HaltReason::kBadInsn;
            return false;
        }
        counters_.inc("loads");
        break;
      }
      case 0x23: { // stores
        const uint64_t addr = a + static_cast<uint64_t>(immS(insn));
        switch (funct3) {
          case 0: writeWord(addr, b, 1); break; // sb
          case 1: writeWord(addr, b, 2); break; // sh
          case 2: writeWord(addr, b, 4); break; // sw
          case 3: writeWord(addr, b, 8); break; // sd
          default:
            halt_ = HaltReason::kBadInsn;
            return false;
        }
        counters_.inc("stores");
        break;
      }
      case 0x13: { // ALU immediate
        const int64_t imm = immI(insn);
        switch (funct3) {
          case 0: setReg(rd, a + imm); break;                  // addi
          case 1: setReg(rd, a << (imm & 0x3f)); break;        // slli
          case 2: setReg(rd, static_cast<int64_t>(a) < imm);
                  break;                                       // slti
          case 3: setReg(rd, a < static_cast<uint64_t>(imm));
                  break;                                       // sltiu
          case 4: setReg(rd, a ^ imm); break;                  // xori
          case 5:
            if (funct7 & 0x20)
                setReg(rd, static_cast<uint64_t>(
                               static_cast<int64_t>(a) >>
                               (imm & 0x3f))); // srai
            else
                setReg(rd, a >> (imm & 0x3f)); // srli
            break;
          case 6: setReg(rd, a | imm); break;                  // ori
          case 7: setReg(rd, a & imm); break;                  // andi
        }
        break;
      }
      case 0x1b: { // ALU immediate, word (addiw/slliw/...)
        const int64_t imm = immI(insn);
        int32_t w = static_cast<int32_t>(a);
        switch (funct3) {
          case 0: w = static_cast<int32_t>(a + imm); break;    // addiw
          case 1: w = static_cast<int32_t>(a) << (imm & 0x1f);
                  break;                                       // slliw
          case 5:
            if (funct7 & 0x20)
                w = static_cast<int32_t>(a) >> (imm & 0x1f);   // sraiw
            else
                w = static_cast<int32_t>(
                    static_cast<uint32_t>(a) >> (imm & 0x1f)); // srliw
            break;
          default:
            halt_ = HaltReason::kBadInsn;
            return false;
        }
        setReg(rd, static_cast<uint64_t>(static_cast<int64_t>(w)));
        break;
      }
      case 0x33: { // R-type ALU / RV64M
        if (funct7 == 0x01) { // M extension
            switch (funct3) {
              case 0: setReg(rd, a * b); break; // mul
              case 1:  // mulh
                setReg(rd, static_cast<uint64_t>(
                               (static_cast<int128>(
                                    static_cast<int64_t>(a)) *
                                static_cast<int64_t>(b)) >>
                               64));
                break;
              case 3: // mulhu
                setReg(rd, static_cast<uint64_t>(
                               (static_cast<uint128>(a) * b) >> 64));
                break;
              default:
                halt_ = HaltReason::kBadInsn;
                return false;
            }
            counters_.inc("muls");
            break;
        }
        switch (funct3) {
          case 0:
            setReg(rd, funct7 & 0x20 ? a - b : a + b);
            break;
          case 1: setReg(rd, a << (b & 0x3f)); break;
          case 2: setReg(rd, static_cast<int64_t>(a) <
                             static_cast<int64_t>(b)); break;
          case 3: setReg(rd, a < b); break;
          case 4: setReg(rd, a ^ b); break;
          case 5:
            if (funct7 & 0x20)
                setReg(rd, static_cast<uint64_t>(
                               static_cast<int64_t>(a) >> (b & 0x3f)));
            else
                setReg(rd, a >> (b & 0x3f));
            break;
          case 6: setReg(rd, a | b); break;
          case 7: setReg(rd, a & b); break;
        }
        break;
      }
      case kCustom0Opcode: { // bs.set / bs.ip / bs.get
        const auto decoded = decodeBsInstruction(insn);
        if (!decoded) {
            halt_ = HaltReason::kBadInsn;
            return false;
        }
        switch (decoded->funct3) {
          case BsFunct3::kSet: {
            const BsSetConfig cfg = unpackBsSetConfig(a);
            DataSizeConfig ds;
            ds.bwa = cfg.bwa;
            ds.bwb = cfg.bwb;
            ds.a_signed = cfg.a_signed;
            ds.b_signed = cfg.b_signed;
            engine_.set(computeBsGeometry(ds),
                        static_cast<unsigned>(b));
            counters_.inc("bs_set");
            break;
          }
          case BsFunct3::kIp:
            engine_.ip(a, b);
            counters_.inc("bs_ip");
            break;
          case BsFunct3::kGet:
            setReg(rd, static_cast<uint64_t>(
                           engine_.get(static_cast<unsigned>(a))));
            counters_.inc("bs_get");
            break;
        }
        break;
      }
      case 0x73: // system: ebreak/ecall halt the machine
        halt_ = HaltReason::kEbreak;
        return false;
      default:
        halt_ = HaltReason::kBadInsn;
        return false;
    }

    pc_ = next_pc;
    return true;
}

} // namespace mixgemm
