#include "iss/disassembler.h"

#include <sstream>

#include "common/bitutils.h"
#include "common/logging.h"
#include "isa/encoding.h"

namespace mixgemm
{

namespace
{

std::string
r(unsigned idx)
{
    return "x" + std::to_string(idx);
}

int64_t
immI(uint32_t insn)
{
    return static_cast<int32_t>(insn) >> 20;
}

int64_t
immS(uint32_t insn)
{
    const uint32_t raw = ((insn >> 25) << 5) | ((insn >> 7) & 0x1f);
    return signExtend64(raw, 12);
}

int64_t
immB(uint32_t insn)
{
    const uint32_t raw = (((insn >> 31) & 1) << 12) |
                         (((insn >> 7) & 1) << 11) |
                         (((insn >> 25) & 0x3f) << 5) |
                         (((insn >> 8) & 0xf) << 1);
    return signExtend64(raw, 13);
}

int64_t
immJ(uint32_t insn)
{
    const uint32_t raw = (((insn >> 31) & 1) << 20) |
                         (((insn >> 12) & 0xff) << 12) |
                         (((insn >> 20) & 1) << 11) |
                         (((insn >> 21) & 0x3ff) << 1);
    return signExtend64(raw, 21);
}

std::string
unknown(uint32_t insn)
{
    std::ostringstream os;
    os << ".word 0x" << std::hex << insn;
    return os.str();
}

} // namespace

std::string
disassemble(uint32_t insn)
{
    const uint32_t opcode = insn & 0x7f;
    const unsigned rd = (insn >> 7) & 0x1f;
    const unsigned rs1 = (insn >> 15) & 0x1f;
    const unsigned rs2 = (insn >> 20) & 0x1f;
    const unsigned funct3 = (insn >> 12) & 0x7;
    const unsigned funct7 = (insn >> 25) & 0x7f;
    std::ostringstream os;

    switch (opcode) {
      case 0x37:
        os << "lui " << r(rd) << ", 0x" << std::hex << (insn >> 12);
        return os.str();
      case 0x17:
        os << "auipc " << r(rd) << ", 0x" << std::hex << (insn >> 12);
        return os.str();
      case 0x6f:
        os << "jal " << r(rd) << ", " << immJ(insn);
        return os.str();
      case 0x67:
        os << "jalr " << r(rd) << ", " << immI(insn) << "(" << r(rs1)
           << ")";
        return os.str();
      case 0x63: {
        static const char *names[] = {"beq", "bne", nullptr, nullptr,
                                      "blt", "bge", "bltu", "bgeu"};
        if (!names[funct3])
            return unknown(insn);
        os << names[funct3] << " " << r(rs1) << ", " << r(rs2) << ", "
           << immB(insn);
        return os.str();
      }
      case 0x03: {
        static const char *names[] = {"lb", "lh", "lw", "ld",
                                      "lbu", "lhu", "lwu", nullptr};
        if (!names[funct3])
            return unknown(insn);
        os << names[funct3] << " " << r(rd) << ", " << immI(insn) << "("
           << r(rs1) << ")";
        return os.str();
      }
      case 0x23: {
        static const char *names[] = {"sb", "sh", "sw", "sd"};
        if (funct3 > 3)
            return unknown(insn);
        os << names[funct3] << " " << r(rs2) << ", " << immS(insn) << "("
           << r(rs1) << ")";
        return os.str();
      }
      case 0x13: {
        static const char *names[] = {"addi", "slli", "slti", "sltiu",
                                      "xori", nullptr, "ori", "andi"};
        if (funct3 == 1) {
            os << "slli " << r(rd) << ", " << r(rs1) << ", "
               << ((insn >> 20) & 0x3f);
            return os.str();
        }
        if (funct3 == 5) {
            os << ((insn >> 30) & 1 ? "srai " : "srli ") << r(rd) << ", "
               << r(rs1) << ", " << ((insn >> 20) & 0x3f);
            return os.str();
        }
        os << names[funct3] << " " << r(rd) << ", " << r(rs1) << ", "
           << immI(insn);
        return os.str();
      }
      case 0x1b:
        if (funct3 == 0) {
            os << "addiw " << r(rd) << ", " << r(rs1) << ", "
               << immI(insn);
            return os.str();
        }
        return unknown(insn);
      case 0x33: {
        if (funct7 == 0x01) {
            static const char *names[] = {"mul", "mulh", "mulhsu",
                                          "mulhu", "div", "divu",
                                          "rem", "remu"};
            os << names[funct3] << " " << r(rd) << ", " << r(rs1)
               << ", " << r(rs2);
            return os.str();
        }
        static const char *names[] = {"add", "sll", "slt", "sltu",
                                      "xor", "srl", "or", "and"};
        std::string name = names[funct3];
        if (funct7 & 0x20)
            name = funct3 == 0 ? "sub" : "sra";
        os << name << " " << r(rd) << ", " << r(rs1) << ", " << r(rs2);
        return os.str();
      }
      case kCustom0Opcode: {
        const auto decoded = decodeBsInstruction(insn);
        return decoded ? disassembleBs(*decoded) : unknown(insn);
      }
      case 0x73:
        return insn == 0x00100073 ? "ebreak" : "ecall";
      default:
        return unknown(insn);
    }
}

std::string
disassembleProgram(const std::vector<uint32_t> &words, uint64_t base)
{
    std::ostringstream os;
    for (size_t i = 0; i < words.size(); ++i) {
        os << std::hex << (base + 4 * i) << std::dec << ":\t"
           << disassemble(words[i]) << "\n";
    }
    return os.str();
}

} // namespace mixgemm
