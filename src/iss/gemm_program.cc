#include "iss/gemm_program.h"

#include "common/bitutils.h"
#include "common/logging.h"
#include "isa/encoding.h"
#include "tensor/packing.h"

namespace mixgemm
{

namespace
{

/** bs.set operand word for a geometry. */
uint64_t
setWord(const BsGeometry &g)
{
    BsSetConfig cfg;
    cfg.bwa = static_cast<uint8_t>(g.config.bwa);
    cfg.bwb = static_cast<uint8_t>(g.config.bwb);
    cfg.a_signed = g.config.a_signed;
    cfg.b_signed = g.config.b_signed;
    cfg.cluster_size = static_cast<uint8_t>(g.cluster_size);
    cfg.cw = static_cast<uint8_t>(g.cw);
    cfg.ip_length = static_cast<uint16_t>(g.group_extent);
    cfg.slice_lsb = static_cast<uint8_t>(g.slice_lsb);
    cfg.slice_msb = static_cast<uint8_t>(g.slice_msb);
    return packBsSetConfig(cfg);
}

/** Emit "ld rd, addr" with the address materialized in T0. */
void
loadAbsolute(Program &p, unsigned rd, uint64_t addr)
{
    p.li(T0, addr);
    p.ld(rd, T0, 0);
}

} // namespace

Program
generateMixGemmProgram(uint64_t m, uint64_t n, uint64_t k,
                       const BsGeometry &geometry,
                       const GemmProgramLayout &layout)
{
    if (m == 0 || n == 0 || k == 0)
        fatal("generateMixGemmProgram: empty GEMM");
    constexpr unsigned mr = 4;
    constexpr unsigned nr = 4;
    const unsigned k_groups = kGroupCount(k, geometry);
    const unsigned kua = geometry.kua;
    const unsigned kub = geometry.kub;
    const unsigned pairs = geometry.group_pairs;

    // The generator knows every address at emission time, so it emits
    // a fully unrolled program — what a JIT backend for the extension
    // would produce for a fixed problem shape.
    Program p;
    p.li(A0, setWord(geometry));
    p.li(A1, mr * nr);
    p.bsSet(A0, A1);

    for (uint64_t jr = 0; jr < n; jr += nr) {
        for (uint64_t ir = 0; ir < m; ir += mr) {
            for (unsigned g = 0; g < k_groups; ++g) {
                for (unsigned i = 0; i < nr; ++i) {
                    const uint64_t col = jr + i;
                    for (unsigned j = 0; j < mr; ++j) {
                        const uint64_t row = ir + j;
                        for (unsigned pp = 0; pp < pairs; ++pp) {
                            if (row < m && pp < kua) {
                                const uint64_t addr =
                                    layout.a_base +
                                    8 * ((row * k_groups + g) * kua +
                                         pp);
                                loadAbsolute(p, A2, addr);
                            } else {
                                p.li(A2, 0);
                            }
                            if (col < n && pp < kub) {
                                const uint64_t addr =
                                    layout.b_base +
                                    8 * ((col * k_groups + g) * kub +
                                         pp);
                                loadAbsolute(p, A3, addr);
                            } else {
                                p.li(A3, 0);
                            }
                            p.bsIp(A2, A3);
                        }
                    }
                }
            }
            // Collect the tile: slot i * mr + j -> C[ir + j, jr + i].
            for (unsigned i = 0; i < nr; ++i) {
                for (unsigned j = 0; j < mr; ++j) {
                    p.li(A4, uint64_t{i} * mr + j);
                    p.bsGet(A0, A4);
                    const uint64_t row = ir + j;
                    const uint64_t col = jr + i;
                    if (row < m && col < n) {
                        p.li(T0,
                             layout.c_base + 8 * (row * n + col));
                        p.sd(A0, T0, 0);
                    }
                }
            }
        }
    }
    p.ebreak();
    return p;
}

} // namespace mixgemm
