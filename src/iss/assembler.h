/**
 * @file
 * Tiny two-pass assembler for the ISS: builds RV64I+M+bs programs
 * programmatically with label-based control flow, so tests and examples
 * can write the paper's kernels "in assembly" without an external
 * toolchain. Only the encodings the machine executes are provided.
 *
 * Usage:
 *   Program p;
 *   p.li(T0, 42);
 *   p.label("loop");
 *   p.addi(T0, T0, -1);
 *   p.bne(T0, ZERO, "loop");
 *   p.ebreak();
 *   auto words = p.assemble();
 */

#ifndef MIXGEMM_ISS_ASSEMBLER_H
#define MIXGEMM_ISS_ASSEMBLER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mixgemm
{

/** Conventional register aliases (subset). */
enum Reg : unsigned
{
    ZERO = 0, RA = 1, SP = 2, T0 = 5, T1 = 6, T2 = 7,
    S0 = 8, S1 = 9, A0 = 10, A1 = 11, A2 = 12, A3 = 13,
    A4 = 14, A5 = 15, A6 = 16, A7 = 17, S2 = 18, S3 = 19,
    S4 = 20, S5 = 21, S6 = 22, S7 = 23, S8 = 24, S9 = 25,
    S10 = 26, S11 = 27, T3 = 28, T4 = 29, T5 = 30, T6 = 31,
};

/** Two-pass program builder. */
class Program
{
  public:
    // --- ALU register/immediate.
    void addi(unsigned rd, unsigned rs1, int32_t imm);
    void addiw(unsigned rd, unsigned rs1, int32_t imm);
    void add(unsigned rd, unsigned rs1, unsigned rs2);
    void sub(unsigned rd, unsigned rs1, unsigned rs2);
    void slli(unsigned rd, unsigned rs1, unsigned shamt);
    void srli(unsigned rd, unsigned rs1, unsigned shamt);
    void srai(unsigned rd, unsigned rs1, unsigned shamt);
    void andi(unsigned rd, unsigned rs1, int32_t imm);
    void mul(unsigned rd, unsigned rs1, unsigned rs2);

    /** Load a (possibly wide) immediate via lui/addi/slli sequences. */
    void li(unsigned rd, uint64_t value);

    // --- Memory.
    void ld(unsigned rd, unsigned rs1, int32_t offset);
    void lw(unsigned rd, unsigned rs1, int32_t offset);
    void lbu(unsigned rd, unsigned rs1, int32_t offset);
    void sd(unsigned rs2, unsigned rs1, int32_t offset);
    void sw(unsigned rs2, unsigned rs1, int32_t offset);

    // --- Control flow (label-based).
    void label(const std::string &name);
    void beq(unsigned rs1, unsigned rs2, const std::string &target);
    void bne(unsigned rs1, unsigned rs2, const std::string &target);
    void blt(unsigned rs1, unsigned rs2, const std::string &target);
    void bge(unsigned rs1, unsigned rs2, const std::string &target);
    void jal(unsigned rd, const std::string &target);
    void ebreak();

    // --- Mix-GEMM custom instructions.
    void bsSet(unsigned rs1, unsigned rs2);
    void bsIp(unsigned rs1, unsigned rs2);
    void bsGet(unsigned rd, unsigned rs1);

    /**
     * Resolve labels and return the instruction words.
     * @throws FatalError on undefined labels or out-of-range branches.
     */
    std::vector<uint32_t> assemble() const;

    /** Instructions emitted so far (branch targets are placeholders). */
    size_t size() const { return words_.size(); }

  private:
    struct Fixup
    {
        size_t index;
        std::string target;
        bool is_jal;
    };

    void emit(uint32_t word) { words_.push_back(word); }

    std::vector<uint32_t> words_;
    std::map<std::string, size_t> labels_;
    std::vector<Fixup> fixups_;
};

} // namespace mixgemm

#endif // MIXGEMM_ISS_ASSEMBLER_H
