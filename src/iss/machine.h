/**
 * @file
 * Functional RV64 instruction-set simulator with the Mix-GEMM ISA
 * extension.
 *
 * The paper compiles its library with a GNU toolchain extended with
 * bs.set/bs.ip/bs.get and runs it on an FPGA-emulated SoC. This ISS is
 * the software stand-in for that flow: it decodes and executes *real
 * encoded* RV64I+M instructions plus the three custom-0 instructions
 * (wired to the bit-exact functional μ-engine of bs/engine.h), so
 * kernels written at the assembly level produce the same values the
 * hardware would. Timing is the job of src/sim; this machine is purely
 * functional and exists to validate the ISA extension end to end:
 * encode -> decode -> execute -> binary-segmentation arithmetic.
 *
 * Supported subset: the RV64I ALU/branch/load/store/jump instructions
 * and RV64M multiplies — enough to hand-write blocked GEMM kernels
 * (see tests/test_iss.cc, which runs one against the reference GEMM).
 *
 * Custom-instruction register conventions (R-type, custom-0):
 *   bs.set rd, rs1, rs2   rs1 = packed BsSetConfig word,
 *                         rs2 = active AccMem slots
 *   bs.ip  rd, rs1, rs2   rs1 = A μ-vector, rs2 = B μ-vector
 *   bs.get rd, rs1, rs2   rs1 = AccMem slot index; rd = value
 */

#ifndef MIXGEMM_ISS_MACHINE_H
#define MIXGEMM_ISS_MACHINE_H

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "bs/engine.h"
#include "common/stats.h"

namespace mixgemm
{

/** Why the machine stopped. */
enum class HaltReason
{
    kRunning,   ///< step limit reached without halting
    kEbreak,    ///< program executed ebreak (normal completion)
    kBadInsn,   ///< undecodable or unsupported instruction
};

/** Functional RV64I+M+bs machine. */
class RiscvMachine
{
  public:
    RiscvMachine();

    /** Load a program (32-bit words) at @p base and set the PC. */
    void loadProgram(std::span<const uint32_t> words, uint64_t base);

    /** Read/write integer registers (x0 stays 0). */
    uint64_t reg(unsigned index) const;
    void setReg(unsigned index, uint64_t value);

    /** Byte-granular memory access (sparse backing store). */
    uint8_t readByte(uint64_t addr) const;
    void writeByte(uint64_t addr, uint8_t value);
    uint64_t readWord(uint64_t addr, unsigned bytes) const;
    void writeWord(uint64_t addr, uint64_t value, unsigned bytes);

    /** Bulk helpers for test setup. */
    void writeBlock(uint64_t addr, std::span<const uint64_t> words);

    /** Execute one instruction; returns false when halted. */
    bool step();

    /**
     * Run until ebreak, an undecodable instruction, or @p max_steps.
     * @return the halt reason.
     */
    HaltReason run(uint64_t max_steps = 100'000'000);

    uint64_t pc() const { return pc_; }
    HaltReason haltReason() const { return halt_; }
    uint64_t instructionsExecuted() const { return executed_; }
    const CounterSet &counters() const { return counters_; }

    /** The attached functional μ-engine (inspectable by tests). */
    BsEngine &engine() { return engine_; }

  private:
    uint64_t regs_[32] = {};
    uint64_t pc_ = 0;
    std::map<uint64_t, std::vector<uint8_t>> pages_;
    BsEngine engine_;
    HaltReason halt_ = HaltReason::kRunning;
    uint64_t executed_ = 0;
    CounterSet counters_;

    static constexpr uint64_t kPageBytes = 4096;

    std::vector<uint8_t> &page(uint64_t addr);
    const std::vector<uint8_t> *pageIfPresent(uint64_t addr) const;

    /** Execute one decoded instruction word; returns false to halt. */
    bool execute(uint32_t insn);
};

} // namespace mixgemm

#endif // MIXGEMM_ISS_MACHINE_H
