/**
 * @file
 * Assembly-level Mix-GEMM generator: emits the complete blocked GEMM of
 * Algorithm 1 as an RV64+bs program for the ISS — the closest software
 * analogue of "the GEMM library compiled by the extended GNU toolchain"
 * the paper runs on its FPGA platform.
 *
 * The generated program walks the compressed operand layouts of
 * tensor/packing.h directly (register-tiled mr x nr = 4 x 4 μ-kernels
 * over accumulation groups, AccMem-collected C tiles, zero-padded edge
 * handling), producing bit-identical results to the host-side library —
 * which tests assert for a matrix of shapes and configurations.
 */

#ifndef MIXGEMM_ISS_GEMM_PROGRAM_H
#define MIXGEMM_ISS_GEMM_PROGRAM_H

#include <cstdint>

#include "bs/geometry.h"
#include "iss/assembler.h"

namespace mixgemm
{

/** Memory layout the generated program expects. */
struct GemmProgramLayout
{
    uint64_t a_base = 0x100000; ///< CompressedA words
    uint64_t b_base = 0x200000; ///< CompressedB words
    uint64_t c_base = 0x300000; ///< row-major int64 C output
};

/**
 * Generate a full m x n x k Mix-GEMM program for @p geometry.
 *
 * Edge tiles (m or n not multiples of 4) are handled the library way:
 * out-of-range rows/columns issue zero μ-vectors and their bs.get
 * results are discarded. The program ends with ebreak.
 *
 * @pre m, n >= 1 and k >= 1; the AccMem must hold 16 slots.
 */
Program generateMixGemmProgram(uint64_t m, uint64_t n, uint64_t k,
                               const BsGeometry &geometry,
                               const GemmProgramLayout &layout =
                                   GemmProgramLayout{});

} // namespace mixgemm

#endif // MIXGEMM_ISS_GEMM_PROGRAM_H
