#include "sim/full_trace.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "sim/cache.h"
#include "sim/core.h"
#include "sim/kernel_traces.h"
#include "sim/uengine_timing.h"
#include "tensor/packing.h"
#include "trace/tracer.h"

namespace mixgemm
{

namespace
{

/**
 * Gather-pack trace: load each (possibly scattered) source word and
 * store it to a contiguous destination, with loop overhead per 8 words
 * — the CreatePanel procedures of Algorithm 1.
 */
UopTrace
gatherPackTrace(const std::vector<uint64_t> &src_addrs, uint64_t dst_base)
{
    UopTrace trace;
    trace.reserve(src_addrs.size() * 2 + src_addrs.size() / 8 + 1);
    for (size_t w = 0; w < src_addrs.size(); ++w) {
        trace.push_back(Uop::load(7, src_addrs[w], 8));
        trace.push_back(Uop::store(7, dst_base + 8 * w, 8));
        if ((w + 1) % 8 == 0)
            trace.push_back(Uop::branch());
    }
    return trace;
}

} // namespace

FullTraceResult
simulateMixGemmFullTrace(uint64_t m, uint64_t n, uint64_t k,
                         const BsGeometry &geometry, const SoCConfig &soc,
                         const BlockingParams &blocking,
                         const TraceMemoryMap &map)
{
    TRACE_SCOPE("sim", "full_trace_mixgemm");
    blocking.validate();
    if (m == 0 || n == 0 || k == 0)
        fatal("simulateMixGemmFullTrace: empty GEMM");

    // Word-index helpers mirroring the CompressedA/B layouts (no data
    // needed — timing only depends on addresses).
    const unsigned k_groups = kGroupCount(k, geometry);
    const unsigned kua = geometry.kua;
    const unsigned kub = geometry.kub;
    auto a_word_addr = [&](uint64_t row, unsigned g, unsigned w) {
        return map.a_matrix + 8 * ((row * k_groups + g) * kua + w);
    };
    auto b_word_addr = [&](uint64_t col, unsigned g, unsigned w) {
        return map.b_matrix + 8 * ((col * k_groups + g) * kub + w);
    };

    const unsigned mr = blocking.mr;
    const unsigned nr = blocking.nr;
    const unsigned kc_groups = std::max<unsigned>(
        1, static_cast<unsigned>(blocking.kc / geometry.group_extent));

    MemoryHierarchy memory(soc.l1d, soc.l2, soc.mem_latency);
    UEngineTiming engine(geometry, soc.uengine);
    InOrderCore core(
        soc,
        [&memory](uint64_t addr, unsigned size, bool is_write) {
            return memory.access(addr, size, is_write);
        },
        &engine);

    core.run({Uop::bsSet()});

    std::vector<uint64_t> src;
    for (uint64_t jc = 0; jc < n; jc += blocking.nc) {
        const uint64_t nc_eff = std::min<uint64_t>(blocking.nc, n - jc);
        for (unsigned gc = 0; gc < k_groups; gc += kc_groups) {
            const unsigned g1 =
                std::min<unsigned>(gc + kc_groups, k_groups);
            const unsigned groups = g1 - gc;

            // Pack the B panel: per column, its [gc, g1) words.
            {
                TRACE_SCOPE("sim", "pack_b_panel");
                src.clear();
                for (uint64_t col = jc; col < jc + nc_eff; ++col)
                    for (unsigned g = gc; g < g1; ++g)
                        for (unsigned w = 0; w < kub; ++w)
                            src.push_back(b_word_addr(col, g, w));
                core.run(gatherPackTrace(src, map.b_panel));
            }

            for (uint64_t ic = 0; ic < m; ic += blocking.mc) {
                const uint64_t mc_eff =
                    std::min<uint64_t>(blocking.mc, m - ic);

                // Pack the A panel: μ-panel order [ir][g][j][w].
                {
                    TRACE_SCOPE("sim", "pack_a_panel");
                    src.clear();
                    for (uint64_t ir = 0; ir < mc_eff; ir += mr)
                        for (unsigned g = gc; g < g1; ++g)
                            for (unsigned j = 0; j < mr; ++j)
                                for (unsigned w = 0; w < kua; ++w)
                                    src.push_back(a_word_addr(
                                        std::min<uint64_t>(ic + ir + j,
                                                           m - 1),
                                        g, w));
                    core.run(gatherPackTrace(src, map.a_panel));
                }

                TRACE_SCOPE("sim", "ukernel_sweep");
                const uint64_t a_upanel_bytes =
                    uint64_t{8} * groups * mr * kua;
                const uint64_t b_upanel_bytes =
                    uint64_t{8} * groups * nr * kub;
                for (uint64_t jr = 0; jr < nc_eff; jr += nr) {
                    for (uint64_t ir = 0; ir < mc_eff; ir += mr) {
                        KernelAddresses addr;
                        addr.a_panel =
                            map.a_panel + (ir / mr) * a_upanel_bytes;
                        addr.b_panel =
                            map.b_panel + (jr / nr) * b_upanel_bytes;
                        addr.c_base = map.c_matrix +
                                      ((ic + ir) * n + jc + jr) * 8;
                        addr.c_row_stride = n * 8;
                        core.run(mixMicroKernelTrace(geometry, mr, nr,
                                                     groups, addr));
                    }
                }
            }
        }
    }

    FullTraceResult result;
    result.cycles = core.now();
    result.counters.merge(core.counters());
    result.counters.merge(engine.counters());
    result.counters.merge(memory.counters());
    return result;
}

FullTraceResult
simulateDgemmFullTrace(uint64_t m, uint64_t n, uint64_t k,
                       const SoCConfig &soc,
                       const BlockingParams &blocking,
                       const TraceMemoryMap &map)
{
    TRACE_SCOPE("sim", "full_trace_dgemm");
    blocking.validate();
    if (m == 0 || n == 0 || k == 0)
        fatal("simulateDgemmFullTrace: empty GEMM");

    auto a_addr = [&](uint64_t row, uint64_t l) {
        return map.a_matrix + 8 * (row * k + l);
    };
    auto b_addr = [&](uint64_t l, uint64_t col) {
        return map.b_matrix + 8 * (l * n + col);
    };

    const unsigned mr = blocking.mr;
    const unsigned nr = blocking.nr;

    MemoryHierarchy memory(soc.l1d, soc.l2, soc.mem_latency);
    InOrderCore core(
        soc, [&memory](uint64_t addr, unsigned size, bool is_write) {
            return memory.access(addr, size, is_write);
        });

    std::vector<uint64_t> src;
    for (uint64_t jc = 0; jc < n; jc += blocking.nc) {
        const uint64_t nc_eff = std::min<uint64_t>(blocking.nc, n - jc);
        for (uint64_t lc = 0; lc < k; lc += blocking.kc) {
            const uint64_t kc_eff =
                std::min<uint64_t>(blocking.kc, k - lc);

            // Pack the B panel in μ-panel-major order.
            src.clear();
            for (uint64_t jr = 0; jr < nc_eff; jr += nr)
                for (uint64_t l = lc; l < lc + kc_eff; ++l)
                    for (unsigned i = 0; i < nr; ++i)
                        src.push_back(b_addr(
                            l, std::min<uint64_t>(jc + jr + i, n - 1)));
            core.run(gatherPackTrace(src, map.b_panel));

            for (uint64_t ic = 0; ic < m; ic += blocking.mc) {
                const uint64_t mc_eff =
                    std::min<uint64_t>(blocking.mc, m - ic);
                src.clear();
                for (uint64_t ir = 0; ir < mc_eff; ir += mr)
                    for (uint64_t l = lc; l < lc + kc_eff; ++l)
                        for (unsigned j = 0; j < mr; ++j)
                            src.push_back(a_addr(
                                std::min<uint64_t>(ic + ir + j, m - 1),
                                l));
                core.run(gatherPackTrace(src, map.a_panel));

                const uint64_t a_upanel_bytes = 8 * kc_eff * mr;
                const uint64_t b_upanel_bytes = 8 * kc_eff * nr;
                for (uint64_t jr = 0; jr < nc_eff; jr += nr) {
                    for (uint64_t ir = 0; ir < mc_eff; ir += mr) {
                        KernelAddresses addr;
                        addr.a_panel =
                            map.a_panel + (ir / mr) * a_upanel_bytes;
                        addr.b_panel =
                            map.b_panel + (jr / nr) * b_upanel_bytes;
                        addr.c_base = map.c_matrix +
                                      ((ic + ir) * n + jc + jr) * 8;
                        addr.c_row_stride = n * 8;
                        core.run(dgemmMicroKernelTrace(
                            static_cast<unsigned>(std::min<uint64_t>(
                                mr, mc_eff - ir)),
                            static_cast<unsigned>(std::min<uint64_t>(
                                nr, nc_eff - jr)),
                            kc_eff, addr));
                    }
                }
            }
        }
    }

    FullTraceResult result;
    result.cycles = core.now();
    result.counters.merge(core.counters());
    result.counters.merge(memory.counters());
    return result;
}

} // namespace mixgemm
