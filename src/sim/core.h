/**
 * @file
 * Cycle model of the 7-stage, single-issue, in-order RV64 core
 * (Section IV-A) executing μ-op traces.
 *
 * The model captures the effects that determine GEMM kernel throughput
 * on such a core:
 *   - one instruction issued per cycle, in order;
 *   - a register scoreboard: an instruction waits until its source
 *     registers' producers have completed (load-use and FP-latency
 *     stalls);
 *   - non-fully-pipelined FP units (initiation intervals);
 *   - per-access load latency supplied by a callback, so the caller
 *     chooses between a real cache hierarchy (full-trace mode) and a
 *     steady-state policy (hybrid mode);
 *   - bs.ip back-pressure and bs.get drain stalls via UEngineTiming.
 *
 * State (current cycle, scoreboard, μ-engine) persists across run()
 * calls so a GEMM can be simulated as a sequence of kernel traces.
 */

#ifndef MIXGEMM_SIM_CORE_H
#define MIXGEMM_SIM_CORE_H

#include <cstdint>
#include <functional>

#include "common/stats.h"
#include "isa/uop.h"
#include "sim/uengine_timing.h"
#include "soc/soc_config.h"

namespace mixgemm
{

/** Returns the load-use latency of an access, in cycles. */
using LoadLatencyFn =
    std::function<unsigned(uint64_t addr, unsigned size, bool is_write)>;

/** In-order single-issue core executing μ-op traces. */
class InOrderCore
{
  public:
    /**
     * @param config   SoC timing parameters
     * @param load_fn  load/store latency callback
     * @param engine   μ-engine timing model, or nullptr when the trace
     *                 contains no bs.* μ-ops
     */
    InOrderCore(const SoCConfig &config, LoadLatencyFn load_fn,
                UEngineTiming *engine = nullptr);

    /** Execute a trace; returns the cycle count consumed by this call. */
    uint64_t run(const UopTrace &trace);

    /** Current core cycle (monotonic across run() calls). */
    uint64_t now() const { return now_; }

    /** Stall/issue counters accumulated so far. */
    const CounterSet &counters() const { return counters_; }

    /** Reset time, scoreboard, and counters (the engine is reset by its
     * owner through UEngineTiming::reset). */
    void reset();

  private:
    SoCConfig config_;
    LoadLatencyFn load_fn_;
    UEngineTiming *engine_;
    uint64_t now_ = 0;
    uint64_t reg_ready_[64] = {};
    uint64_t fmul_free_ = 0;
    uint64_t fadd_free_ = 0;
    CounterSet counters_;
};

} // namespace mixgemm

#endif // MIXGEMM_SIM_CORE_H
