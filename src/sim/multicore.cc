#include "sim/multicore.h"

#include <algorithm>

#include "common/bitutils.h"
#include "common/logging.h"

namespace mixgemm
{

MulticoreTiming
multicoreMixGemm(uint64_t m, uint64_t n, uint64_t k,
                 const BsGeometry &geometry, const SoCConfig &soc,
                 unsigned cores)
{
    if (cores == 0)
        fatal("multicoreMixGemm: at least one core required");

    const GemmTimingModel single(soc);
    const uint64_t single_cycles = single.mixGemm(m, n, k, geometry)
                                       .cycles;

    MulticoreTiming t;
    t.cores = cores;
    if (cores == 1) {
        t.cycles = single_cycles;
    } else {
        // Each core works on an m/cores row slab with its share of the
        // shared L2 (power-of-two rounded down for a valid cache
        // geometry).
        SoCConfig per_core = soc;
        uint64_t l2_share = soc.l2.size_bytes / cores;
        uint64_t pow2 = 1;
        while (pow2 * 2 <= l2_share)
            pow2 *= 2;
        per_core.l2.size_bytes = std::max<uint64_t>(pow2,
                                                    soc.l1d.size_bytes);
        const GemmTimingModel model(per_core);
        const uint64_t slab = divCeil(m, cores);
        // The slowest core owns a full slab.
        t.cycles = model.mixGemm(slab, n, k, geometry).cycles;
    }
    t.gops = 2.0 * static_cast<double>(m) * n * k * soc.freq_ghz /
             static_cast<double>(t.cycles);
    t.speedup = static_cast<double>(single_cycles) /
                static_cast<double>(t.cycles);
    t.efficiency = t.speedup / cores;
    return t;
}

} // namespace mixgemm
