/**
 * @file
 * Multi-core scaling model (Section III-B scalability: the BLIS-based
 * library parallelizes with near-constant per-core throughput, and one
 * μ-engine is instantiated per core at negligible area cost).
 *
 * Work is partitioned over the GEMM m dimension (independent row
 * panels, the standard BLIS threading strategy); each core runs the
 * single-core hybrid timing model against its private L1 and an equal
 * share of the shared L2. Total time is the slowest core's time.
 */

#ifndef MIXGEMM_SIM_MULTICORE_H
#define MIXGEMM_SIM_MULTICORE_H

#include "sim/gemm_timing.h"

namespace mixgemm
{

/** Multi-core Mix-GEMM timing result. */
struct MulticoreTiming
{
    unsigned cores = 1;
    uint64_t cycles = 0;   ///< slowest core
    double gops = 0.0;     ///< aggregate
    double speedup = 1.0;  ///< vs single core
    double efficiency = 1.0; ///< speedup / cores
};

/**
 * Price an m x n x k Mix-GEMM on @p cores cores of the given SoC.
 * @pre cores >= 1
 */
MulticoreTiming multicoreMixGemm(uint64_t m, uint64_t n, uint64_t k,
                                 const BsGeometry &geometry,
                                 const SoCConfig &soc, unsigned cores);

} // namespace mixgemm

#endif // MIXGEMM_SIM_MULTICORE_H
