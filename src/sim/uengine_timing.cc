#include "sim/uengine_timing.h"

#include <algorithm>

#include "common/bitutils.h"
#include "common/logging.h"

namespace mixgemm
{

UEngineTiming::UEngineTiming(const BsGeometry &geometry,
                             const UEngineConfig &config)
    : geometry_(geometry), config_(config)
{
    if (config.srcbuf_depth < geometry.group_pairs)
        fatal("UEngineTiming: Source Buffers shallower than one group");
    if (config.multipliers == 0)
        fatal("UEngineTiming: at least one multiplier required");
    pending_.reserve(geometry.group_pairs);
}

unsigned
UEngineTiming::groupCycles() const
{
    // With w multipliers the DSU dispatches w chunks per cycle
    // (Section III-B scalability).
    return static_cast<unsigned>(
        divCeil(geometry_.group_cycles, config_.multipliers));
}

void
UEngineTiming::reset(const BsGeometry &geometry)
{
    geometry_ = geometry;
    occupancy_.clear();
    pending_.clear();
    engine_free_ = 0;
    busy_cycles_ = 0;
}

unsigned
UEngineTiming::retireOffset(unsigned p) const
{
    // Pairs retire as the DSU consumes their μ-vectors; model the
    // consumption as uniform across the group's cycles (exact boundaries
    // differ by at most one cycle, which the DSE results are
    // insensitive to).
    return static_cast<unsigned>(
        divCeil(uint64_t{p + 1} * groupCycles(),
                geometry_.group_pairs));
}

uint64_t
UEngineTiming::issueIp(uint64_t cycle)
{
    // Wait for a free Source Buffer slot.
    uint64_t issue = cycle;
    if (occupancy_.size() + pending_.size() >= config_.srcbuf_depth) {
        const uint64_t free_at = occupancy_.front();
        if (free_at > issue) {
            counters_.inc("srcbuf_full_stall_cycles", free_at - issue);
            issue = free_at;
        }
        occupancy_.pop_front();
    }
    // Drop any other slots that have already retired by now.
    while (!occupancy_.empty() && occupancy_.front() <= issue)
        occupancy_.pop_front();

    pending_.push_back(issue);
    counters_.inc("bs_ip_issued");

    if (pending_.size() == geometry_.group_pairs) {
        // Group fully buffered: schedule its processing.
        const uint64_t start = std::max(engine_free_, pending_.back() + 1);
        for (unsigned p = 0; p < geometry_.group_pairs; ++p)
            occupancy_.push_back(start + retireOffset(p));
        engine_free_ = start + groupCycles();
        busy_cycles_ += groupCycles();
        counters_.inc("groups_processed");
        pending_.clear();
    }
    return issue;
}

uint64_t
UEngineTiming::drainCycle() const
{
    return engine_free_ + config_.pipeline_depth;
}

} // namespace mixgemm
