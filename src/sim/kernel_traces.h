/**
 * @file
 * μ-op trace builders for the inner kernels whose throughput the paper's
 * evaluation measures. Each builder emits the dynamic instruction
 * sequence a compiled RV64G(+bs) μ-kernel executes, with realistic
 * register allocation and addressing:
 *
 *  - Mix-GEMM μ-kernel (Algorithm 1 lines 1-14): per accumulation group,
 *    load kua x mr A μ-vectors and kub x nr B μ-vectors into the RF,
 *    issue group_pairs bs.ip per output cell, then collect the C μ-panel
 *    with mr x nr bs.get and accumulate it into C;
 *  - BLIS DGEMM μ-kernel: per k step, mr + nr FP64 loads and mr x nr
 *    fmul/fadd pairs into a register accumulator tile;
 *  - int8 BLIS μ-kernel: packed 64-bit loads of eight 8-bit elements,
 *    per-element extract ALU ops, and integer mul/add per cell.
 *
 * Addresses follow the panel layouts of tensor/packing.h so full-trace
 * simulation exercises a real cache hierarchy; hybrid mode replays the
 * same traces with a steady-state latency policy.
 */

#ifndef MIXGEMM_SIM_KERNEL_TRACES_H
#define MIXGEMM_SIM_KERNEL_TRACES_H

#include <cstdint>

#include "bs/geometry.h"
#include "isa/uop.h"

namespace mixgemm
{

/** Address bases for one μ-kernel invocation. */
struct KernelAddresses
{
    uint64_t a_panel = 0x10000000;  ///< packed A μ-panel base
    uint64_t b_panel = 0x20000000;  ///< packed B μ-panel base
    uint64_t c_base = 0x30000000;   ///< C tile base (row-major)
    uint64_t c_row_stride = 4 * 8;  ///< C row stride in bytes
};

/**
 * Mix-GEMM μ-kernel trace: @p groups accumulation groups over an
 * mr x nr C μ-panel, plus the bs.get collection and C update epilogue.
 *
 * @param load_words μ-vectors fetched per load instruction (1 for the
 *        64-bit scalar core; 2 for the 128-bit-load SIMD variant of
 *        Section III-B's scalability discussion)
 */
UopTrace mixMicroKernelTrace(const BsGeometry &geometry, unsigned mr,
                             unsigned nr, unsigned groups,
                             const KernelAddresses &addr,
                             unsigned load_words = 1);

/** BLIS DGEMM μ-kernel trace over @p kc k steps. */
UopTrace dgemmMicroKernelTrace(unsigned mr, unsigned nr, uint64_t kc,
                               const KernelAddresses &addr);

/**
 * int8 BLIS μ-kernel trace over @p kc k steps, using packed 64-bit
 * loads (8 elements per load) and one extract ALU op per element use.
 */
UopTrace int8MicroKernelTrace(unsigned mr, unsigned nr, uint64_t kc,
                              const KernelAddresses &addr);

/**
 * Packing loop trace: stream @p words 64-bit words from a source region
 * to a destination panel (load + store + bookkeeping every word, one
 * branch per @p words_per_iter words).
 */
UopTrace packingTrace(uint64_t words, uint64_t src_base, uint64_t dst_base,
                      unsigned words_per_iter = 8);

/**
 * Software sub-byte decompression kernel (the Introduction's
 * motivation: on a stock ISA, sub-byte operands "have to be ...
 * decompressed before the actual computation exploiting costly
 * bit-manipulation operations"). Operands are stored packed at
 * @p bw bits (so memory footprint matches Mix-GEMM), but every element
 * use costs two bit-manipulation ALU ops (shift + mask/sign-extend)
 * before its scalar multiply-accumulate.
 */
UopTrace subByteSoftwareKernelTrace(unsigned bw, unsigned mr, unsigned nr,
                                    uint64_t kc,
                                    const KernelAddresses &addr);

/**
 * Bison-e-style kernel trace (Section V, [58]): binary segmentation
 * through custom instructions but *without* the μ-engine's structures.
 * Per input-cluster chunk the core must explicitly (a) select/align
 * the chunk from the loaded μ-vectors (1 ALU op — no DSU), (b) issue
 * the segmented multiply on the shared multiplier (1 mul — no
 * pipelined engine, so the multiplier's latency is exposed), (c)
 * extract-and-accumulate (1 ALU dependent on the multiply — no DFU/
 * AccMem), and (d) per output element, store the accumulator back
 * (no AccMem to hold the C μ-panel, so C traffic goes through memory
 * every group as the paper's third criticism states).
 */
UopTrace bisonEMicroKernelTrace(const BsGeometry &geometry, unsigned mr,
                                unsigned nr, unsigned groups,
                                const KernelAddresses &addr);

} // namespace mixgemm

#endif // MIXGEMM_SIM_KERNEL_TRACES_H
