#include "sim/core.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace mixgemm
{

InOrderCore::InOrderCore(const SoCConfig &config, LoadLatencyFn load_fn,
                         UEngineTiming *engine)
    : config_(config), load_fn_(std::move(load_fn)), engine_(engine)
{
    config.validate();
}

void
InOrderCore::reset()
{
    now_ = 0;
    std::memset(reg_ready_, 0, sizeof(reg_ready_));
    fmul_free_ = 0;
    fadd_free_ = 0;
    counters_ = CounterSet{};
}

uint64_t
InOrderCore::run(const UopTrace &trace)
{
    const uint64_t start = now_;
    const CoreTimings &t = config_.core;

    for (const Uop &uop : trace) {
        // In-order single issue: one instruction per cycle at best.
        uint64_t issue = now_;

        // Read-after-write: wait for source operands.
        uint64_t ready = issue;
        if (uop.src1 != kNoReg)
            ready = std::max(ready, reg_ready_[uop.src1]);
        if (uop.src2 != kNoReg)
            ready = std::max(ready, reg_ready_[uop.src2]);
        if (ready > issue) {
            counters_.inc("raw_stall_cycles", ready - issue);
            issue = ready;
        }

        uint64_t next_issue = issue + 1;
        uint64_t dst_ready = issue + 1;

        switch (uop.kind) {
          case UopKind::kAlu:
          case UopKind::kNop:
            dst_ready = issue + t.alu_latency;
            break;
          case UopKind::kMul:
            dst_ready = issue + t.mul_latency;
            break;
          case UopKind::kFmul:
            if (fmul_free_ > issue) {
                counters_.inc("fu_struct_stall_cycles",
                              fmul_free_ - issue);
                issue = fmul_free_;
                next_issue = issue + 1;
            }
            fmul_free_ = issue + t.fmul_interval;
            dst_ready = issue + t.fmul_latency;
            break;
          case UopKind::kFadd:
            if (fadd_free_ > issue) {
                counters_.inc("fu_struct_stall_cycles",
                              fadd_free_ - issue);
                issue = fadd_free_;
                next_issue = issue + 1;
            }
            fadd_free_ = issue + t.fadd_interval;
            dst_ready = issue + t.fadd_latency;
            break;
          case UopKind::kLoad: {
            const unsigned lat = load_fn_(uop.addr, uop.size, false);
            dst_ready = issue + lat;
            counters_.inc("loads");
            break;
          }
          case UopKind::kStore:
            load_fn_(uop.addr, uop.size, true);
            counters_.inc("stores");
            break;
          case UopKind::kBranch:
            next_issue = issue + 1 + t.branch_penalty;
            counters_.inc("branches");
            break;
          case UopKind::kBsSet:
            if (!engine_)
                fatal("core: bs.set in trace but no μ-engine attached");
            engine_->reset(engine_->geometry());
            break;
          case UopKind::kBsIp: {
            if (!engine_)
                fatal("core: bs.ip in trace but no μ-engine attached");
            const uint64_t actual = engine_->issueIp(issue);
            if (actual > issue) {
                issue = actual;
                next_issue = issue + 1;
            }
            break;
          }
          case UopKind::kBsGet: {
            if (!engine_)
                fatal("core: bs.get in trace but no μ-engine attached");
            const uint64_t drained = engine_->drainCycle();
            if (drained > issue) {
                counters_.inc("bs_get_stall_cycles", drained - issue);
                issue = drained;
                next_issue = issue + 1;
            }
            dst_ready = issue + 2; // AccMem read + writeback
            break;
          }
        }

        if (uop.dst != kNoReg)
            reg_ready_[uop.dst] = dst_ready;
        counters_.inc("instructions");
        now_ = next_issue;
    }

    counters_.set("cycles", now_);
    return now_ - start;
}

} // namespace mixgemm
