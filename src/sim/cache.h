/**
 * @file
 * Set-associative LRU cache model and a two-level hierarchy.
 *
 * Used two ways: (a) by the full-trace simulator, which drives every
 * load/store of a small GEMM through it, and (b) by the hybrid GEMM
 * timing model, which replays only panel-granularity streams. The model
 * is write-allocate/write-back with no coherence (single core) and no
 * MSHR modelling: each miss pays the next level's latency in full, which
 * matches an in-order core that blocks on use.
 */

#ifndef MIXGEMM_SIM_CACHE_H
#define MIXGEMM_SIM_CACHE_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "soc/soc_config.h"

namespace mixgemm
{

/** One set-associative write-back cache level. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access one line-aligned block. Returns true on hit. On miss the
     * line is allocated (LRU victim evicted).
     */
    bool access(uint64_t addr, bool is_write);

    /** Probe without modifying state. */
    bool contains(uint64_t addr) const;

    /** Invalidate everything (e.g., between benchmark repetitions). */
    void reset();

    const CacheConfig &config() const { return config_; }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    uint64_t setIndex(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;

    CacheConfig config_;
    uint64_t num_sets_;
    std::vector<Line> lines_; ///< num_sets_ x associativity
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** L1 + L2 + memory, returning a load-use latency per access. */
class MemoryHierarchy
{
  public:
    MemoryHierarchy(const CacheConfig &l1, const CacheConfig &l2,
                    unsigned mem_latency);

    /**
     * Perform one access of @p size bytes at @p addr; accesses that
     * straddle line boundaries touch every covered line and pay the
     * worst latency. Returns the load-use latency in cycles.
     */
    unsigned access(uint64_t addr, unsigned size, bool is_write);

    /** Counter snapshot: l1_hits/l1_misses/l2_hits/l2_misses. */
    CounterSet counters() const;

    void reset();

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    unsigned memLatency() const { return mem_latency_; }

  private:
    Cache l1_;
    Cache l2_;
    unsigned mem_latency_;
};

} // namespace mixgemm

#endif // MIXGEMM_SIM_CACHE_H
