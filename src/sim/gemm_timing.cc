#include "sim/gemm_timing.h"

#include <algorithm>

#include "common/bitutils.h"
#include "common/logging.h"
#include "sim/core.h"
#include "sim/kernel_traces.h"
#include "tensor/packing.h"
#include "trace/tracer.h"

namespace mixgemm
{

namespace
{

constexpr unsigned kLineBytes = 64;

/** Cache lines covering @p bytes. */
uint64_t
lines(uint64_t bytes)
{
    return divCeil(bytes, kLineBytes);
}

/**
 * Packing issue cost per 64-bit word moved: load + store + amortized
 * loop overhead of a software-pipelined copy loop.
 */
constexpr double kPackCyclesPerWord = 2.25;

} // namespace

GemmTimingModel::GemmTimingModel(const SoCConfig &soc,
                                 std::optional<BlockingParams> blocking)
    : soc_(soc)
{
    soc.validate();
    blocking_ = blocking.value_or(
        deriveBlocking(soc.l1d.size_bytes, soc.l2.size_bytes, 8, 4, 4));
    blocking_.validate();
}

uint64_t
GemmTimingModel::kernelCycles(GemmKind kind, const BsGeometry *geometry,
                              unsigned mr, unsigned nr, uint64_t kc,
                              unsigned sub_bw) const
{
    KernelKey key{kind, mr, nr, kc,
                  geometry ? geometry->group_extent : 0,
                  geometry ? geometry->config.name()
                           : strCat("sw", sub_bw)};
    const auto it = kernel_cache_.find(key);
    if (it != kernel_cache_.end())
        return it->second;

    // Only cache misses simulate a μ-kernel trace; span it so hybrid
    // model runs show where their wall-clock goes.
    TRACE_SCOPE("sim", "kernel_trace_sim");

    // Steady state: μ-panel operand accesses hit L1 (the BLIS blocking
    // invariant); the analytic layer charges the difference for the
    // passes where they do not.
    const auto l1_hit = [this](uint64_t, unsigned, bool) {
        return soc_.l1d.hit_latency;
    };

    uint64_t cycles = 0;
    KernelAddresses addr;
    switch (kind) {
      case GemmKind::kMixGemm: {
        UEngineTiming engine(*geometry, soc_.uengine);
        InOrderCore core(soc_, l1_hit, &engine);
        // SIMD-widened engines pair with 128-bit μ-vector loads.
        const unsigned load_words =
            std::min(2u, soc_.uengine.multipliers);
        cycles = core.run(
            mixMicroKernelTrace(*geometry, mr, nr,
                                static_cast<unsigned>(kc), addr,
                                load_words));
        break;
      }
      case GemmKind::kDgemm: {
        InOrderCore core(soc_, l1_hit);
        cycles = core.run(dgemmMicroKernelTrace(mr, nr, kc, addr));
        break;
      }
      case GemmKind::kInt8Gemm: {
        InOrderCore core(soc_, l1_hit);
        cycles = core.run(int8MicroKernelTrace(mr, nr, kc, addr));
        break;
      }
      case GemmKind::kSubByteSW: {
        InOrderCore core(soc_, l1_hit);
        cycles = core.run(
            subByteSoftwareKernelTrace(sub_bw, mr, nr, kc, addr));
        break;
      }
    }
    kernel_cache_.emplace(key, cycles);
    return cycles;
}

GemmTiming
GemmTimingModel::compose(GemmKind kind, const BsGeometry *geometry,
                         uint64_t m, uint64_t n, uint64_t k,
                         unsigned sub_bw) const
{
    TRACE_SCOPE("sim", "hybrid_compose");
    if (m == 0 || n == 0 || k == 0)
        fatal("GemmTimingModel: empty GEMM");

    // Per-kind layout parameters.
    //   k_units     : granularity of the k loop (groups for Mix-GEMM)
    //   wpu_a/wpu_b : 64-bit panel words per row/column per k unit
    //   c_bytes     : bytes per C element
    uint64_t k_units = k;
    uint64_t kc_units = blocking_.kc;
    double wpu_a = 1.0;
    double wpu_b = 1.0;
    unsigned c_bytes = 8;
    switch (kind) {
      case GemmKind::kMixGemm:
        k_units = kGroupCount(k, *geometry);
        kc_units = std::max<uint64_t>(
            1, blocking_.kc / geometry->group_extent);
        wpu_a = geometry->kua;
        wpu_b = geometry->kub;
        // The deployed library stores C as int32 (the AccMem holds
        // wider accumulators, but quantized-DNN outputs requantize
        // from 32-bit).
        c_bytes = 4;
        break;
      case GemmKind::kDgemm:
        k_units = k;
        kc_units = blocking_.kc;
        wpu_a = 1.0;
        wpu_b = 1.0;
        c_bytes = 8;
        break;
      case GemmKind::kInt8Gemm:
        k_units = k;
        kc_units = blocking_.kc;
        wpu_a = 1.0 / 8.0;
        wpu_b = 1.0 / 8.0;
        c_bytes = 4;
        break;
      case GemmKind::kSubByteSW:
        k_units = k;
        kc_units = blocking_.kc;
        wpu_a = static_cast<double>(sub_bw) / 64.0;
        wpu_b = static_cast<double>(sub_bw) / 64.0;
        c_bytes = 4;
        break;
    }

    const unsigned mr = blocking_.mr;
    const unsigned nr = blocking_.nr;
    const unsigned l1_hit = soc_.l1d.hit_latency;
    const unsigned l2_hit = soc_.l2.hit_latency;
    const unsigned mem = soc_.mem_latency;
    const uint64_t l1_size = soc_.l1d.size_bytes;
    const uint64_t l2_size = soc_.l2.size_bytes;

    // Source level of packing reads: panels of a matrix that fits in
    // half of L2 are re-read from L2 after the first pass; otherwise
    // every pack streams from DRAM.
    const uint64_t a_matrix_bytes =
        static_cast<uint64_t>(m * k_units * wpu_a * 8.0);
    const uint64_t b_matrix_bytes =
        static_cast<uint64_t>(n * k_units * wpu_b * 8.0);
    const unsigned a_src_lat = a_matrix_bytes > l2_size / 2 ? mem : l2_hit;
    const unsigned b_src_lat = b_matrix_bytes > l2_size / 2 ? mem : l2_hit;
    const uint64_t c_total_bytes = m * n * c_bytes;

    uint64_t kernel_cycles = 0;
    uint64_t packing_cycles = 0;
    uint64_t mem_penalty = 0;
    uint64_t kernel_count = 0;
    uint64_t pen_a_pack = 0;
    uint64_t pen_b_pack = 0;
    uint64_t pen_a_refetch = 0;
    uint64_t pen_b_refetch = 0;
    uint64_t pen_c = 0;

    for (uint64_t jc = 0; jc < n; jc += blocking_.nc) {
        const uint64_t nc_eff = std::min<uint64_t>(blocking_.nc, n - jc);
        for (uint64_t gc = 0; gc < k_units; gc += kc_units) {
            const uint64_t kc_eff =
                std::min<uint64_t>(kc_units, k_units - gc);

            // --- B panel packing (once per (jc, gc)).
            const uint64_t b_panel_words =
                static_cast<uint64_t>(nc_eff * kc_eff * wpu_b);
            const uint64_t b_panel_bytes = b_panel_words * 8;
            packing_cycles += static_cast<uint64_t>(
                b_panel_words * kPackCyclesPerWord);
            pen_b_pack += lines(b_panel_bytes) * (b_src_lat - l1_hit);

            for (uint64_t ic = 0; ic < m; ic += blocking_.mc) {
                const uint64_t mc_eff =
                    std::min<uint64_t>(blocking_.mc, m - ic);

                // --- A panel packing (once per (jc, gc, ic)).
                const uint64_t a_panel_words =
                    static_cast<uint64_t>(mc_eff * kc_eff * wpu_a);
                const uint64_t a_panel_bytes = a_panel_words * 8;
                packing_cycles += static_cast<uint64_t>(
                    a_panel_words * kPackCyclesPerWord);
                pen_a_pack +=
                    lines(a_panel_bytes) * (a_src_lat - l1_hit);

                // --- μ-kernel instances.
                const uint64_t jr_full = nc_eff / nr;
                const unsigned nr_edge =
                    static_cast<unsigned>(nc_eff % nr);
                const uint64_t ir_full = mc_eff / mr;
                const unsigned mr_edge =
                    static_cast<unsigned>(mc_eff % mr);
                const uint64_t jr_passes = jr_full + (nr_edge ? 1 : 0);
                const uint64_t ir_passes = ir_full + (mr_edge ? 1 : 0);

                if (kind == GemmKind::kMixGemm) {
                    // The Mix-GEMM μ-kernel always walks the full
                    // mr x nr AccMem tile; edge cells carry zero words.
                    kernel_cycles +=
                        jr_passes * ir_passes *
                        kernelCycles(kind, geometry, mr, nr, kc_eff,
                                     0);
                    kernel_count += jr_passes * ir_passes;
                } else {
                    auto cost = [&](unsigned mre, unsigned nre) {
                        return kernelCycles(kind, nullptr, mre, nre,
                                            kc_eff, sub_bw);
                    };
                    kernel_cycles += jr_full * ir_full * cost(mr, nr);
                    if (nr_edge)
                        kernel_cycles += ir_full * cost(mr, nr_edge);
                    if (mr_edge)
                        kernel_cycles += jr_full * cost(mr_edge, nr);
                    if (nr_edge && mr_edge)
                        kernel_cycles += cost(mr_edge, nr_edge);
                    kernel_count += jr_passes * ir_passes;
                }

                // --- Panel refetch penalties.
                // The A panel streams from L2 through L1 on every jr
                // pass: even when it nominally fits L1, the concurrent
                // B μ-panel and C traffic evict it between passes, so
                // the traffic is charged unconditionally (it is
                // independent of mc — smaller panels stream more
                // often).
                pen_a_refetch +=
                    jr_passes * lines(a_panel_bytes) * (l2_hit - l1_hit);
                // B μ-panels are read once per jr pass; they miss L1
                // whenever the whole B panel exceeds its L1 share.
                const uint64_t b_reads =
                    b_panel_bytes > l1_size / 2 ? 1 : 0;
                pen_b_refetch +=
                    b_reads * lines(b_panel_bytes) * (l2_hit - l1_hit);

                // --- C tile traffic: every k pass revisits the C
                // block. Between two visits of the same block, the
                // whole C matrix plus the streamed panels pass through
                // the caches, so residency is judged against the total
                // C footprint, not the block size.
                if (gc > 0 && c_total_bytes > l1_size / 2) {
                    const uint64_t c_block_bytes =
                        mc_eff * nc_eff * c_bytes;
                    const unsigned c_lat =
                        c_total_bytes > l2_size / 2 ? mem : l2_hit;
                    pen_c += lines(c_block_bytes) * (c_lat - l1_hit);
                }
            }
        }
    }

    mem_penalty =
        pen_a_pack + pen_b_pack + pen_a_refetch + pen_b_refetch + pen_c;

    GemmTiming t;
    t.cycles = kernel_cycles + packing_cycles + mem_penalty;
    t.ops = 2 * m * n * k;
    t.cycles_per_mac =
        static_cast<double>(t.cycles) / (static_cast<double>(m) * n * k);
    t.gops = static_cast<double>(t.ops) * soc_.freq_ghz /
             static_cast<double>(t.cycles);
    t.counters.set("kernel_cycles", kernel_cycles);
    t.counters.set("packing_cycles", packing_cycles);
    t.counters.set("mem_penalty_cycles", mem_penalty);
    t.counters.set("mem_penalty_a_pack", pen_a_pack);
    t.counters.set("mem_penalty_b_pack", pen_b_pack);
    t.counters.set("mem_penalty_a_refetch", pen_a_refetch);
    t.counters.set("mem_penalty_b_refetch", pen_b_refetch);
    t.counters.set("mem_penalty_c", pen_c);
    t.counters.set("micro_kernels", kernel_count);
    return t;
}

GemmTiming
GemmTimingModel::mixGemm(uint64_t m, uint64_t n, uint64_t k,
                         const BsGeometry &geometry) const
{
    return compose(GemmKind::kMixGemm, &geometry, m, n, k);
}

GemmTiming
GemmTimingModel::dgemm(uint64_t m, uint64_t n, uint64_t k) const
{
    return compose(GemmKind::kDgemm, nullptr, m, n, k);
}

GemmTiming
GemmTimingModel::int8Gemm(uint64_t m, uint64_t n, uint64_t k) const
{
    return compose(GemmKind::kInt8Gemm, nullptr, m, n, k);
}

GemmTiming
GemmTimingModel::subByteSoftware(uint64_t m, uint64_t n, uint64_t k,
                                 unsigned bw) const
{
    if (bw < 2 || bw > 8)
        fatal("subByteSoftware: bw must be in [2, 8]");
    return compose(GemmKind::kSubByteSW, nullptr, m, n, k, bw);
}

} // namespace mixgemm
