/**
 * @file
 * Full-trace GEMM simulation: the validation path for the hybrid timing
 * model.
 *
 * For small problems, the *entire* dynamic execution of the blocked
 * Mix-GEMM (or DGEMM baseline) is replayed μ-op by μ-op through the
 * in-order core, the real two-level cache hierarchy, and the μ-engine
 * timing model: panel packing with the true scattered source addresses,
 * every μ-kernel with its true panel/C addresses, and all loop
 * overhead. No analytic shortcuts — every load goes through the cache
 * simulator.
 *
 * tests/test_sim_integration.cc uses this to bound the error of the
 * hybrid composition (sim/gemm_timing.h), which is what prices the
 * large GEMMs of Fig. 6.
 */

#ifndef MIXGEMM_SIM_FULL_TRACE_H
#define MIXGEMM_SIM_FULL_TRACE_H

#include <cstdint>

#include "bs/geometry.h"
#include "common/stats.h"
#include "gemm/blocking.h"
#include "soc/soc_config.h"

namespace mixgemm
{

/** Result of a full-trace simulation. */
struct FullTraceResult
{
    uint64_t cycles = 0;
    CounterSet counters; ///< core + engine + cache counters merged
};

/** Memory map used by the full-trace simulator. */
struct TraceMemoryMap
{
    uint64_t a_matrix = 0x10000000;  ///< compressed A operand
    uint64_t b_matrix = 0x20000000;  ///< compressed B operand
    uint64_t c_matrix = 0x30000000;  ///< C output (8 B elements)
    uint64_t a_panel = 0x40000000;   ///< packed A panel buffer
    uint64_t b_panel = 0x50000000;   ///< packed B panel buffer
};

/**
 * Replay a complete Mix-GEMM of shape m x n x k at @p geometry.
 * Intended for small shapes (the trace grows with m*n*k).
 */
FullTraceResult simulateMixGemmFullTrace(
    uint64_t m, uint64_t n, uint64_t k, const BsGeometry &geometry,
    const SoCConfig &soc,
    const BlockingParams &blocking = BlockingParams::paperDefaults(),
    const TraceMemoryMap &map = TraceMemoryMap{});

/** Replay a complete blocked DGEMM of shape m x n x k. */
FullTraceResult simulateDgemmFullTrace(
    uint64_t m, uint64_t n, uint64_t k, const SoCConfig &soc,
    const BlockingParams &blocking = BlockingParams::paperDefaults(),
    const TraceMemoryMap &map = TraceMemoryMap{});

} // namespace mixgemm

#endif // MIXGEMM_SIM_FULL_TRACE_H
