/**
 * @file
 * Hybrid (cycle + analytic) GEMM timing model.
 *
 * Large GEMMs (Fig. 6 runs to 2048^3) cannot be replayed μ-op by μ-op in
 * reasonable time, so this model composes:
 *
 *  1. *Cycle-accurate μ-kernel simulation*: each distinct μ-kernel shape
 *     (mr_eff, nr_eff, k extent) is replayed once through the in-order
 *     core + μ-engine models with steady-state (L1-hit) operand loads —
 *     the BLIS invariant that μ-panels are L1 resident — and memoized.
 *  2. *Exact loop accounting*: the BLIS 5-loop structure is walked at
 *     panel granularity (a few hundred iterations even at 2048^3) to
 *     count kernel instances of each shape, packing passes, and C tile
 *     passes, including all edge cases.
 *  3. *Analytic memory penalties*: panel packing pays per-line source
 *     miss latency (L2 or DRAM depending on matrix footprint), and
 *     per-pass panel/C refetch penalties are charged when the respective
 *     footprint exceeds the cache level that should hold it.
 *
 * The same model prices Mix-GEMM, the BLIS DGEMM baseline, and the int8
 * BLIS baseline, so Fig. 6 speedups come out of one consistent machine
 * model. The composition is validated against full-trace simulation on
 * small problems by tests/test_sim_integration.cc.
 */

#ifndef MIXGEMM_SIM_GEMM_TIMING_H
#define MIXGEMM_SIM_GEMM_TIMING_H

#include <cstdint>
#include <map>
#include <optional>

#include "bs/geometry.h"
#include "common/stats.h"
#include "gemm/blocking.h"
#include "soc/soc_config.h"

namespace mixgemm
{

/** Timing result of one simulated GEMM. */
struct GemmTiming
{
    uint64_t cycles = 0;
    uint64_t ops = 0;          ///< 2 * m * n * k
    double gops = 0.0;         ///< at the SoC frequency
    double cycles_per_mac = 0.0;
    CounterSet counters;       ///< kernel/packing/memory breakdown
};

/** Which GEMM implementation to price. */
enum class GemmKind
{
    kMixGemm,    ///< compressed μ-vector GEMM through the μ-engine
    kDgemm,      ///< BLIS FP64 baseline
    kInt8Gemm,   ///< BLIS int8 scalar baseline
    kSubByteSW,  ///< packed sub-byte operands, software decompression
};

/** Hybrid timing model for one SoC configuration. */
class GemmTimingModel
{
  public:
    /**
     * @param soc SoC description; blocking is derived from its caches
     *        unless @p blocking is given (DSE sweeps override it).
     */
    explicit GemmTimingModel(
        const SoCConfig &soc,
        std::optional<BlockingParams> blocking = std::nullopt);

    /** Price a Mix-GEMM of the given shape and data-size geometry. */
    GemmTiming mixGemm(uint64_t m, uint64_t n, uint64_t k,
                       const BsGeometry &geometry) const;

    /** Price the BLIS DGEMM baseline. */
    GemmTiming dgemm(uint64_t m, uint64_t n, uint64_t k) const;

    /** Price the BLIS int8 baseline. */
    GemmTiming int8Gemm(uint64_t m, uint64_t n, uint64_t k) const;

    /**
     * Price the software sub-byte baseline of the Introduction:
     * operands stored packed at @p bw bits (Mix-GEMM's footprint) but
     * decompressed with shift/mask instructions before every scalar
     * MAC. Quantifies "saving memory without the compute benefit".
     */
    GemmTiming subByteSoftware(uint64_t m, uint64_t n, uint64_t k,
                               unsigned bw) const;

    const BlockingParams &blocking() const { return blocking_; }
    const SoCConfig &soc() const { return soc_; }

  private:
    struct KernelKey
    {
        GemmKind kind;
        unsigned mr, nr;
        uint64_t kc; ///< groups for mix, k steps otherwise
        unsigned group_extent; ///< distinguishes short-k geometries
        std::string config;
        auto operator<=>(const KernelKey &) const = default;
    };

    /** Cycle-simulate one μ-kernel shape (memoized). */
    uint64_t kernelCycles(GemmKind kind, const BsGeometry *geometry,
                          unsigned mr, unsigned nr, uint64_t kc,
                          unsigned sub_bw) const;

    GemmTiming compose(GemmKind kind, const BsGeometry *geometry,
                       uint64_t m, uint64_t n, uint64_t k,
                       unsigned sub_bw = 0) const;

    SoCConfig soc_;
    BlockingParams blocking_;
    mutable std::map<KernelKey, uint64_t> kernel_cache_;
};

} // namespace mixgemm

#endif // MIXGEMM_SIM_GEMM_TIMING_H
