#include "sim/pmu.h"

#include "common/logging.h"
#include "common/table.h"

namespace mixgemm
{

void
Pmu::ingest(const CounterSet &counters)
{
    counters_.merge(counters);
}

void
Pmu::setWindow(uint64_t cycles, uint64_t macs)
{
    window_cycles_ = cycles;
    window_macs_ = macs;
}

PmuMetrics
Pmu::metrics() const
{
    PmuMetrics m;
    m.cycles = window_cycles_ != 0 ? window_cycles_
                                   : counters_.get("cycles");
    m.instructions = counters_.get("instructions");
    if (m.cycles == 0)
        return m;
    const double cycles = static_cast<double>(m.cycles);
    m.ipc = static_cast<double>(m.instructions) / cycles;
    m.srcbuf_stall_frac =
        static_cast<double>(counters_.get("srcbuf_full_stall_cycles")) /
        cycles;
    m.bs_get_stall_frac =
        static_cast<double>(counters_.get("bs_get_stall_cycles")) /
        cycles;
    m.raw_stall_frac =
        static_cast<double>(counters_.get("raw_stall_cycles")) / cycles;
    const uint64_t busy = counters_.get("engine_busy_cycles");
    m.engine_busy_frac = static_cast<double>(busy) / cycles;
    m.macs_per_cycle = static_cast<double>(window_macs_) / cycles;
    const uint64_t l1_hits = counters_.get("l1_hits");
    const uint64_t l1_misses = counters_.get("l1_misses");
    if (l1_hits + l1_misses > 0)
        m.l1_miss_rate = static_cast<double>(l1_misses) /
                         static_cast<double>(l1_hits + l1_misses);
    return m;
}

void
Pmu::printReport(std::ostream &os, const std::string &title) const
{
    const PmuMetrics m = metrics();
    os << title << "\n";
    Table t({"metric", "value"});
    t.addRow({"cycles", Table::fmtInt(m.cycles)});
    t.addRow({"instructions", Table::fmtInt(m.instructions)});
    t.addRow({"IPC", Table::fmt(m.ipc, 3)});
    t.addRow({"srcbuf-full stalls",
              Table::fmt(100 * m.srcbuf_stall_frac, 1) + " %"});
    t.addRow({"bs.get stalls",
              Table::fmt(100 * m.bs_get_stall_frac, 1) + " %"});
    t.addRow({"RAW stalls",
              Table::fmt(100 * m.raw_stall_frac, 1) + " %"});
    if (m.engine_busy_frac > 0.0)
        t.addRow({"μ-engine busy",
                  Table::fmt(100 * m.engine_busy_frac, 1) + " %"});
    if (m.macs_per_cycle > 0.0)
        t.addRow({"MAC/cycle", Table::fmt(m.macs_per_cycle, 2)});
    if (m.l1_miss_rate > 0.0)
        t.addRow({"L1d miss rate",
                  Table::fmt(100 * m.l1_miss_rate, 2) + " %"});
    t.print(os);
}

} // namespace mixgemm
