/**
 * @file
 * Timing model of the μ-engine (Section III-B, Fig. 5).
 *
 * The functional value computation lives in bs/engine.h; this class
 * models *when* things happen: bs.ip operands enter the depth-limited
 * Source Buffers, the engine consumes whole accumulation groups at the
 * DSU chunk-schedule rate through its 4-stage pipeline
 * (DSU/DCU/MUL/DFU), pairs retire and free buffer slots progressively,
 * and bs.get cannot complete until the engine has drained. The core
 * model (core.h) consults this object when issuing bs.* μ-ops, which is
 * how the paper's Source-Buffer-full stalls (17.8 / 14.3 / 11.2 % for
 * depths 8/16/32) and bs.get stalls arise in simulation.
 */

#ifndef MIXGEMM_SIM_UENGINE_TIMING_H
#define MIXGEMM_SIM_UENGINE_TIMING_H

#include <cstdint>
#include <deque>
#include <vector>

#include "bs/geometry.h"
#include "common/stats.h"
#include "soc/soc_config.h"

namespace mixgemm
{

/** Cycle-level model of Source Buffers, group processing, and drain. */
class UEngineTiming
{
  public:
    UEngineTiming(const BsGeometry &geometry, const UEngineConfig &config);

    /**
     * Issue one bs.ip whose operands are ready at @p cycle. Returns the
     * cycle at which the instruction actually issues (>= cycle; later
     * when the Source Buffers are full). Buffer-full wait cycles are
     * accumulated in the "srcbuf_full_stall_cycles" counter.
     */
    uint64_t issueIp(uint64_t cycle);

    /**
     * Earliest cycle at which a bs.get issued now would have its value
     * ready: all buffered groups processed plus the pipeline depth.
     */
    uint64_t drainCycle() const;

    /** Reconfigure (bs.set): clears buffers and sequencing state. */
    void reset(const BsGeometry &geometry);

    /** Total group-processing cycles so far. */
    uint64_t busyCycles() const { return busy_cycles_; }

    const CounterSet &counters() const { return counters_; }
    const BsGeometry &geometry() const { return geometry_; }

    /** Group processing cycles for this engine width. */
    unsigned groupCycles() const;

  private:
    /** Retire-time offset (cycles after group start) of pair p. */
    unsigned retireOffset(unsigned p) const;

    BsGeometry geometry_;
    UEngineConfig config_;
    /** Retire cycles of pairs currently occupying buffer slots (FIFO). */
    std::deque<uint64_t> occupancy_;
    /** Issue cycles of pairs in the group being assembled. */
    std::vector<uint64_t> pending_;
    /** Cycle the engine finishes its last scheduled group. */
    uint64_t engine_free_ = 0;
    uint64_t busy_cycles_ = 0;
    CounterSet counters_;
};

} // namespace mixgemm

#endif // MIXGEMM_SIM_UENGINE_TIMING_H
