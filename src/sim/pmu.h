/**
 * @file
 * Performance Monitoring Unit (Section III-C: "We equip the μ-engine
 * with a PMU to collect its metrics during execution").
 *
 * Aggregates the raw counters of the core, the μ-engine timing model,
 * and the cache hierarchy into the derived metrics the paper's DSE
 * reads off it — stall-cycle fractions, IPC, MAC throughput, and cache
 * miss rates — and renders a report table.
 */

#ifndef MIXGEMM_SIM_PMU_H
#define MIXGEMM_SIM_PMU_H

#include <ostream>
#include <string>

#include "common/stats.h"

namespace mixgemm
{

/** Derived PMU metrics over one measured execution window. */
struct PmuMetrics
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    double ipc = 0.0;
    /** Fraction of cycles stalled on full Source Buffers (§III-C). */
    double srcbuf_stall_frac = 0.0;
    /** Fraction of cycles stalled waiting for bs.get drains. */
    double bs_get_stall_frac = 0.0;
    /** Fraction of cycles lost to RAW dependences. */
    double raw_stall_frac = 0.0;
    /** μ-engine busy fraction. */
    double engine_busy_frac = 0.0;
    /** Sustained MACs per cycle (0 when no group was processed). */
    double macs_per_cycle = 0.0;
    /** L1 data miss rate over L1 accesses (0 when untracked). */
    double l1_miss_rate = 0.0;
};

/** Counter aggregator with derived-metric computation. */
class Pmu
{
  public:
    /** Merge a counter snapshot (core, engine, or cache counters). */
    void ingest(const CounterSet &counters);

    /**
     * Record the measurement window and the MACs it covered (used for
     * the MAC/cycle rate; pass 0 when unknown).
     */
    void setWindow(uint64_t cycles, uint64_t macs);

    /** Compute the derived metrics from everything ingested. */
    PmuMetrics metrics() const;

    /** Render a paper-style report table. */
    void printReport(std::ostream &os,
                     const std::string &title = "PMU report") const;

    const CounterSet &raw() const { return counters_; }

  private:
    CounterSet counters_;
    uint64_t window_cycles_ = 0;
    uint64_t window_macs_ = 0;
};

} // namespace mixgemm

#endif // MIXGEMM_SIM_PMU_H
