#include "sim/cache.h"

#include <algorithm>

#include "common/logging.h"

namespace mixgemm
{

namespace
{

/** Validate before any member initializer divides by config fields. */
const CacheConfig &
validated(const CacheConfig &config)
{
    config.validate();
    return config;
}

} // namespace

Cache::Cache(const CacheConfig &config)
    : config_(validated(config)), num_sets_(config.sets()),
      lines_(num_sets_ * config.associativity)
{
}

uint64_t
Cache::setIndex(uint64_t addr) const
{
    return (addr / config_.line_bytes) & (num_sets_ - 1);
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return addr / config_.line_bytes / num_sets_;
}

bool
Cache::access(uint64_t addr, bool is_write)
{
    ++tick_;
    const uint64_t set = setIndex(addr);
    const uint64_t tag = tagOf(addr);
    Line *ways = &lines_[set * config_.associativity];

    for (unsigned w = 0; w < config_.associativity; ++w) {
        Line &line = ways[w];
        if (line.valid && line.tag == tag) {
            line.lru = tick_;
            line.dirty = line.dirty || is_write;
            ++hits_;
            return true;
        }
    }

    // Miss: evict the first invalid way, else the least-recently-used.
    Line *victim = &ways[0];
    for (unsigned w = 0; w < config_.associativity; ++w) {
        if (!ways[w].valid) {
            victim = &ways[w];
            break;
        }
        if (ways[w].lru < victim->lru)
            victim = &ways[w];
    }

    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = tick_;
    victim->dirty = is_write;
    return false;
}

bool
Cache::contains(uint64_t addr) const
{
    const uint64_t set = setIndex(addr);
    const uint64_t tag = tagOf(addr);
    const Line *ways = &lines_[set * config_.associativity];
    for (unsigned w = 0; w < config_.associativity; ++w)
        if (ways[w].valid && ways[w].tag == tag)
            return true;
    return false;
}

void
Cache::reset()
{
    std::fill(lines_.begin(), lines_.end(), Line{});
    tick_ = 0;
    hits_ = 0;
    misses_ = 0;
}

MemoryHierarchy::MemoryHierarchy(const CacheConfig &l1,
                                 const CacheConfig &l2,
                                 unsigned mem_latency)
    : l1_(l1), l2_(l2), mem_latency_(mem_latency)
{
    if (l2.size_bytes < l1.size_bytes)
        warn("MemoryHierarchy: L2 smaller than L1");
}

unsigned
MemoryHierarchy::access(uint64_t addr, unsigned size, bool is_write)
{
    const unsigned line = l1_.config().line_bytes;
    const uint64_t first = addr / line;
    const uint64_t last = (addr + std::max(size, 1u) - 1) / line;
    unsigned worst = l1_.config().hit_latency;
    for (uint64_t l = first; l <= last; ++l) {
        const uint64_t line_addr = l * line;
        unsigned latency = l1_.config().hit_latency;
        if (!l1_.access(line_addr, is_write)) {
            latency = l2_.config().hit_latency;
            if (!l2_.access(line_addr, is_write))
                latency = mem_latency_;
        }
        worst = std::max(worst, latency);
    }
    return worst;
}

CounterSet
MemoryHierarchy::counters() const
{
    CounterSet c;
    c.set("l1_hits", l1_.hits());
    c.set("l1_misses", l1_.misses());
    c.set("l2_hits", l2_.hits());
    c.set("l2_misses", l2_.misses());
    return c;
}

void
MemoryHierarchy::reset()
{
    l1_.reset();
    l2_.reset();
}

} // namespace mixgemm
