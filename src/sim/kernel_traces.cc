#include "sim/kernel_traces.h"

#include "common/logging.h"

namespace mixgemm
{

namespace
{

// Register allocation (model): x5/x6 pointers, x7 temp/index,
// x8..x23 A μ-vector slice, x24..x31 + x8-reuse B slice. We model at
// most 16 A and 16 B registers (Table I: kua*mr = kub*nr = 16), mapping
// indices modulo the available range; FP registers f0.. hold the DGEMM
// accumulator tile and operand elements.
constexpr RegId kPtrA = 5;
constexpr RegId kPtrB = 6;
constexpr RegId kTmp = 7;
constexpr RegId kABase = 8;   // up to 16 regs: x8..x23
constexpr RegId kBBase = 24;  // up to 8 regs: x24..x31 (wraps)

RegId
aReg(unsigned i)
{
    return static_cast<RegId>(kABase + i % 16);
}

RegId
bReg(unsigned i)
{
    return static_cast<RegId>(kBBase + i % 8);
}

RegId
fReg(unsigned i)
{
    return static_cast<RegId>(kFpRegBase + i % 32);
}

} // namespace

UopTrace
mixMicroKernelTrace(const BsGeometry &geometry, unsigned mr, unsigned nr,
                    unsigned groups, const KernelAddresses &addr,
                    unsigned load_words)
{
    if (mr == 0 || nr == 0 || groups == 0)
        fatal("mixMicroKernelTrace: empty kernel");
    if (load_words == 0)
        fatal("mixMicroKernelTrace: load width must be positive");
    UopTrace trace;
    const unsigned kua = geometry.kua;
    const unsigned kub = geometry.kub;
    const unsigned pairs = geometry.group_pairs;
    trace.reserve(uint64_t{groups} *
                      (mr * kua + nr * kub + uint64_t{mr} * nr *
                       (pairs + 1) + nr + 2) +
                  uint64_t{mr} * nr * 4 + 4);

    const uint8_t load_size = static_cast<uint8_t>(8 * load_words);
    uint64_t a_word = 0; // running word offsets into the packed panels
    uint64_t b_word = 0;
    for (unsigned g = 0; g < groups; ++g) {
        // Refill the RF-resident A and B μ-vector slices for this
        // group; wide (128-bit) loads fetch load_words μ-vectors each.
        for (unsigned w = 0; w < mr * kua; w += load_words) {
            trace.push_back(
                Uop::load(aReg(w), addr.a_panel + 8 * a_word, load_size));
            a_word += load_words;
        }
        for (unsigned w = 0; w < nr * kub; w += load_words) {
            trace.push_back(
                Uop::load(bReg(w), addr.b_panel + 8 * b_word, load_size));
            b_word += load_words;
        }
        trace.push_back(Uop::alu(kPtrA, kPtrA)); // advance panel pointers
        trace.push_back(Uop::alu(kPtrB, kPtrB));
        // Issue the accumulation groups: nr x mr cells x pairs.
        for (unsigned i = 0; i < nr; ++i) {
            for (unsigned j = 0; j < mr; ++j) {
                for (unsigned p = 0; p < pairs; ++p) {
                    const RegId ar =
                        p < kua ? aReg(j * kua + p) : kTmp;
                    const RegId br =
                        p < kub ? bReg(i * kub + p) : kTmp;
                    trace.push_back(Uop::bsIp(ar, br));
                }
                trace.push_back(Uop::alu(kTmp)); // cell bookkeeping
            }
            trace.push_back(Uop::branch()); // row loop back-edge
        }
    }

    // Epilogue: collect the C μ-panel from AccMem and accumulate into C.
    for (unsigned i = 0; i < nr; ++i) {
        for (unsigned j = 0; j < mr; ++j) {
            const uint64_t c_addr =
                addr.c_base + j * addr.c_row_stride + uint64_t{i} * 8;
            trace.push_back(
                Uop::bsGet(kTmp, static_cast<uint16_t>(i * mr + j)));
            trace.push_back(Uop::load(aReg(0), c_addr, 8));
            trace.push_back(Uop::alu(aReg(0), aReg(0), kTmp));
            trace.push_back(Uop::store(aReg(0), c_addr, 8));
        }
    }
    trace.push_back(Uop::branch()); // kernel return
    return trace;
}

UopTrace
dgemmMicroKernelTrace(unsigned mr, unsigned nr, uint64_t kc,
                      const KernelAddresses &addr)
{
    if (mr == 0 || nr == 0 || kc == 0)
        fatal("dgemmMicroKernelTrace: empty kernel");
    UopTrace trace;
    trace.reserve(kc * (mr + nr + 2 * uint64_t{mr} * nr + 2) +
                  uint64_t{mr} * nr * 3 + 2);

    // FP register map: f0..f(mr*nr-1) accumulators, then operands.
    const unsigned acc0 = 0;
    const unsigned fa0 = mr * nr;
    const unsigned fb0 = fa0 + mr;
    const unsigned ftmp = fb0 + nr;

    uint64_t a_off = 0;
    uint64_t b_off = 0;
    for (uint64_t l = 0; l < kc; ++l) {
        for (unsigned j = 0; j < mr; ++j)
            trace.push_back(
                Uop::load(fReg(fa0 + j), addr.a_panel + 8 * a_off++, 8));
        for (unsigned i = 0; i < nr; ++i)
            trace.push_back(
                Uop::load(fReg(fb0 + i), addr.b_panel + 8 * b_off++, 8));
        // Software-pipelined cell loop: the fadd consuming a product is
        // emitted two cells after its fmul (4 rotating temporaries), so
        // RAW latency is hidden and only the FP units' initiation
        // intervals bound throughput — what a production BLIS μ-kernel
        // schedule achieves.
        const unsigned cells = mr * nr;
        for (unsigned c = 0; c < cells + 2; ++c) {
            if (c < cells) {
                const unsigned j = c / nr;
                const unsigned i = c % nr;
                trace.push_back(Uop::fmul(fReg(ftmp + c % 4),
                                          fReg(fa0 + j),
                                          fReg(fb0 + i)));
            }
            if (c >= 2) {
                const unsigned d = c - 2;
                trace.push_back(Uop::fadd(fReg(acc0 + d),
                                          fReg(acc0 + d),
                                          fReg(ftmp + d % 4)));
            }
        }
        trace.push_back(Uop::alu(kPtrA, kPtrA)); // pointer bump
        trace.push_back(Uop::branch());          // k-loop back-edge
    }

    // Epilogue: C tile update.
    for (unsigned j = 0; j < mr; ++j) {
        for (unsigned i = 0; i < nr; ++i) {
            const uint64_t c_addr =
                addr.c_base + j * addr.c_row_stride + uint64_t{i} * 8;
            trace.push_back(Uop::load(fReg(ftmp), c_addr, 8));
            trace.push_back(Uop::fadd(fReg(ftmp), fReg(ftmp),
                                      fReg(acc0 + j * nr + i)));
            trace.push_back(Uop::store(fReg(ftmp), c_addr, 8));
        }
    }
    trace.push_back(Uop::branch());
    return trace;
}

UopTrace
int8MicroKernelTrace(unsigned mr, unsigned nr, uint64_t kc,
                     const KernelAddresses &addr)
{
    if (mr == 0 || nr == 0 || kc == 0)
        fatal("int8MicroKernelTrace: empty kernel");
    UopTrace trace;

    // Integer register map mirroring the DGEMM kernel: accumulators live
    // in x8.., operands extracted into kTmp-adjacent temps.
    auto acc = [&](unsigned j, unsigned i) {
        return aReg(j * nr + i);
    };
    uint64_t a_off = 0;
    uint64_t b_off = 0;
    for (uint64_t l = 0; l < kc; ++l) {
        // Packed operand loads amortized over 8 k steps.
        if (l % 8 == 0) {
            for (unsigned j = 0; j < mr; ++j)
                trace.push_back(
                    Uop::load(bReg(j), addr.a_panel + 8 * a_off++, 8));
            for (unsigned i = 0; i < nr; ++i)
                trace.push_back(Uop::load(bReg(mr + i),
                                          addr.b_panel + 8 * b_off++,
                                          8));
        }
        // Per-element extraction (shift + sign-extend folded into one
        // modelled ALU op per element use).
        for (unsigned j = 0; j < mr; ++j)
            trace.push_back(Uop::alu(bReg(j), bReg(j)));
        for (unsigned i = 0; i < nr; ++i)
            trace.push_back(Uop::alu(bReg(mr + i), bReg(mr + i)));
        // Software-pipelined MAC loop (lag-2 accumulate through three
        // rotating temporaries), hiding the integer-multiply latency as
        // a scheduled production kernel would.
        const unsigned cells = mr * nr;
        const RegId tmp[3] = {kTmp, 2, 3};
        for (unsigned c = 0; c < cells + 2; ++c) {
            if (c < cells) {
                const unsigned j = c / nr;
                const unsigned i = c % nr;
                trace.push_back(
                    Uop::mul(tmp[c % 3], bReg(j), bReg(mr + i)));
            }
            if (c >= 2) {
                const unsigned d = c - 2;
                trace.push_back(Uop::alu(acc(d / nr, d % nr),
                                         acc(d / nr, d % nr),
                                         tmp[d % 3]));
            }
        }
        trace.push_back(Uop::alu(kPtrA, kPtrA));
        trace.push_back(Uop::branch());
    }

    // Epilogue: C tile update (int32 C elements).
    for (unsigned j = 0; j < mr; ++j) {
        for (unsigned i = 0; i < nr; ++i) {
            const uint64_t c_addr =
                addr.c_base + j * addr.c_row_stride + uint64_t{i} * 4;
            trace.push_back(Uop::load(kTmp, c_addr, 4));
            trace.push_back(Uop::alu(kTmp, kTmp, acc(j, i)));
            trace.push_back(Uop::store(kTmp, c_addr, 4));
        }
    }
    trace.push_back(Uop::branch());
    return trace;
}

UopTrace
subByteSoftwareKernelTrace(unsigned bw, unsigned mr, unsigned nr,
                           uint64_t kc, const KernelAddresses &addr)
{
    if (bw < 2 || bw > 8)
        fatal("subByteSoftwareKernelTrace: bw must be in [2, 8]");
    if (mr == 0 || nr == 0 || kc == 0)
        fatal("subByteSoftwareKernelTrace: empty kernel");
    UopTrace trace;
    const unsigned elems_per_word = 64 / bw;

    // Accumulators in aReg(0..mr*nr-1); packed operand words in
    // bReg(0..mr+nr-1); extraction temporaries kTmp/x2/x3.
    auto acc = [&](unsigned j, unsigned i) { return aReg(j * nr + i); };
    uint64_t a_off = 0;
    uint64_t b_off = 0;
    for (uint64_t l = 0; l < kc; ++l) {
        if (l % elems_per_word == 0) {
            for (unsigned j = 0; j < mr; ++j)
                trace.push_back(
                    Uop::load(bReg(j), addr.a_panel + 8 * a_off++, 8));
            for (unsigned i = 0; i < nr; ++i)
                trace.push_back(Uop::load(bReg(mr + i),
                                          addr.b_panel + 8 * b_off++,
                                          8));
        }
        // Per element use: shift + mask/sign-extend (two ALU ops, the
        // "costly bit-manipulation" of the Introduction), then MAC.
        for (unsigned j = 0; j < mr; ++j) {
            trace.push_back(Uop::alu(2, bReg(j)));
            trace.push_back(Uop::alu(2, 2));
        }
        for (unsigned i = 0; i < nr; ++i) {
            trace.push_back(Uop::alu(3, bReg(mr + i)));
            trace.push_back(Uop::alu(3, 3));
        }
        const unsigned cells = mr * nr;
        const RegId tmp[3] = {kTmp, 2, 3};
        for (unsigned c = 0; c < cells + 2; ++c) {
            if (c < cells)
                trace.push_back(Uop::mul(tmp[c % 3], 2, 3));
            if (c >= 2) {
                const unsigned d = c - 2;
                trace.push_back(Uop::alu(acc(d / nr, d % nr),
                                         acc(d / nr, d % nr),
                                         tmp[d % 3]));
            }
        }
        trace.push_back(Uop::alu(kPtrA, kPtrA));
        trace.push_back(Uop::branch());
    }

    for (unsigned j = 0; j < mr; ++j) {
        for (unsigned i = 0; i < nr; ++i) {
            const uint64_t c_addr =
                addr.c_base + j * addr.c_row_stride + uint64_t{i} * 4;
            trace.push_back(Uop::load(kTmp, c_addr, 4));
            trace.push_back(Uop::alu(kTmp, kTmp, acc(j, i)));
            trace.push_back(Uop::store(kTmp, c_addr, 4));
        }
    }
    trace.push_back(Uop::branch());
    return trace;
}

UopTrace
bisonEMicroKernelTrace(const BsGeometry &geometry, unsigned mr,
                       unsigned nr, unsigned groups,
                       const KernelAddresses &addr)
{
    if (mr == 0 || nr == 0 || groups == 0)
        fatal("bisonEMicroKernelTrace: empty kernel");
    UopTrace trace;
    const unsigned kua = geometry.kua;
    const unsigned kub = geometry.kub;
    const unsigned chunks = geometry.group_cycles; // DSU chunk count

    uint64_t a_word = 0;
    uint64_t b_word = 0;
    for (unsigned g = 0; g < groups; ++g) {
        // Operand μ-vector loads (same data volume as Mix-GEMM).
        for (unsigned w = 0; w < mr * kua; ++w)
            trace.push_back(
                Uop::load(aReg(w), addr.a_panel + 8 * a_word++, 8));
        for (unsigned w = 0; w < nr * kub; ++w)
            trace.push_back(
                Uop::load(bReg(w), addr.b_panel + 8 * b_word++, 8));
        trace.push_back(Uop::alu(kPtrA, kPtrA));
        trace.push_back(Uop::alu(kPtrB, kPtrB));
        // Per output cell: every input-cluster chunk costs an explicit
        // select, a segmented multiply, and a dependent
        // extract-accumulate; the multiply latency is exposed because
        // the accumulate consumes it immediately (no engine pipeline).
        for (unsigned i = 0; i < nr; ++i) {
            for (unsigned j = 0; j < mr; ++j) {
                const RegId acc = aReg(j);
                for (unsigned c = 0; c < chunks; ++c) {
                    trace.push_back(
                        Uop::alu(kTmp, aReg(j * kua), bReg(i * kub)));
                    trace.push_back(Uop::mul(2, kTmp, kTmp));
                    trace.push_back(Uop::alu(acc, acc, 2));
                }
                // No AccMem: spill the cell accumulator every group.
                const uint64_t c_addr = addr.c_base +
                                        j * addr.c_row_stride +
                                        uint64_t{i} * 8;
                trace.push_back(Uop::load(3, c_addr, 8));
                trace.push_back(Uop::alu(3, 3, acc));
                trace.push_back(Uop::store(3, c_addr, 8));
            }
            trace.push_back(Uop::branch());
        }
    }
    trace.push_back(Uop::branch());
    return trace;
}

UopTrace
packingTrace(uint64_t words, uint64_t src_base, uint64_t dst_base,
             unsigned words_per_iter)
{
    UopTrace trace;
    trace.reserve(words * 2 + words / std::max(1u, words_per_iter) + 1);
    for (uint64_t w = 0; w < words; ++w) {
        trace.push_back(Uop::load(kTmp, src_base + 8 * w, 8));
        trace.push_back(Uop::store(kTmp, dst_base + 8 * w, 8));
        if (words_per_iter != 0 && (w + 1) % words_per_iter == 0)
            trace.push_back(Uop::branch());
    }
    return trace;
}

} // namespace mixgemm
