#include "runtime/qgraph.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "trace/session.h"
#include "trace/tracer.h"

namespace mixgemm
{

namespace
{

/** Per-tensor symmetric absmax parameters for a weight tensor. */
QuantParams
weightParams(std::span<const double> values, unsigned bits)
{
    double absmax = 0.0;
    for (const double v : values)
        absmax = std::max(absmax, std::abs(v));
    QuantParams p;
    p.bits = bits;
    p.is_signed = true;
    p.scale = absmax > 0.0 ? absmax / p.qmax() : 1.0;
    return p;
}

QuantParams
activationParams(double scale, unsigned bits, bool is_signed)
{
    QuantParams p;
    p.bits = bits;
    p.is_signed = is_signed;
    p.scale = scale > 0.0 ? scale : 1.0;
    return p;
}

/** Quantize a float tensor into integer values (as doubles). */
Tensor<double>
quantizeTensor(const Tensor<double> &t, const QuantParams &params)
{
    Tensor<double> q(t.shape());
    for (size_t i = 0; i < t.size(); ++i)
        q[i] = static_cast<double>(quantize(t[i], params));
    return q;
}

std::vector<int32_t>
toInt(const Tensor<double> &t)
{
    std::vector<int32_t> out(t.size());
    for (size_t i = 0; i < t.size(); ++i)
        out[i] = static_cast<int32_t>(std::lround(t[i]));
    return out;
}

const char *
kindName(QNode::Kind kind)
{
    switch (kind) {
      case QNode::Kind::kConv:
        return "conv";
      case QNode::Kind::kDepthwise:
        return "depthwise";
      case QNode::Kind::kLinear:
        return "linear";
      case QNode::Kind::kRelu:
        return "relu";
      case QNode::Kind::kMaxPool2:
        return "maxpool2";
      case QNode::Kind::kFlatten:
        return "flatten";
    }
    return "unknown";
}

} // namespace

QNode
makeConvNode(const Conv2d &conv, const QuantParams &a_params,
             const QuantParams &w_params)
{
    QNode node;
    node.kind = QNode::Kind::kConv;
    node.spec.in_c = conv.inChannels();
    node.spec.out_c = conv.outChannels();
    node.spec.kh = node.spec.kw = conv.kernel();
    node.spec.pad = conv.padding();
    node.spec.stride = 1;
    node.a_params = a_params;
    node.w_params = w_params;
    // B operand in im2row column order: row (c, ky, kx), col o.
    const uint64_t k = node.spec.gemmK();
    const uint64_t n = node.spec.gemmN();
    node.weights_q.resize(k * n);
    for (unsigned o = 0; o < node.spec.out_c; ++o) {
        uint64_t row = 0;
        for (unsigned c = 0; c < node.spec.in_c; ++c)
            for (unsigned ky = 0; ky < node.spec.kh; ++ky)
                for (unsigned kx = 0; kx < node.spec.kw; ++kx, ++row)
                    node.weights_q[row * n + o] = quantize(
                        conv.weights().at(o, c, ky, kx), node.w_params);
    }
    node.bias = conv.bias();
    return node;
}

QNode
makeLinearNode(const Linear &fc, const QuantParams &a_params,
               const QuantParams &w_params)
{
    QNode node;
    node.kind = QNode::Kind::kLinear;
    node.spec.in_c = fc.inFeatures();
    node.spec.out_c = fc.outFeatures();
    node.spec.in_h = node.spec.in_w = 1;
    node.a_params = a_params;
    node.w_params = w_params;
    const uint64_t k = fc.inFeatures();
    const uint64_t n = fc.outFeatures();
    node.weights_q.resize(k * n);
    for (unsigned o = 0; o < n; ++o)
        for (unsigned i = 0; i < k; ++i)
            node.weights_q[i * n + o] =
                quantize(fc.weights().at(o, i), node.w_params);
    node.bias = fc.bias();
    return node;
}

QNode
makeDepthwiseNode(const DepthwiseConv2d &conv,
                  const QuantParams &a_params,
                  const QuantParams &w_params)
{
    QNode node;
    node.kind = QNode::Kind::kDepthwise;
    node.spec.in_c = conv.channels();
    node.spec.out_c = conv.channels();
    node.spec.groups = conv.channels();
    node.spec.kh = node.spec.kw = conv.kernel();
    node.spec.pad = conv.padding();
    node.spec.stride = 1;
    node.a_params = a_params;
    node.w_params = w_params;
    // Per channel: one k x 1 column in (ky, kx) order.
    const uint64_t k = uint64_t{conv.kernel()} * conv.kernel();
    node.weights_q.resize(k * conv.channels());
    for (unsigned c = 0; c < conv.channels(); ++c) {
        uint64_t row = 0;
        for (unsigned ky = 0; ky < conv.kernel(); ++ky)
            for (unsigned kx = 0; kx < conv.kernel(); ++kx, ++row)
                node.weights_q[c * k + row] = quantize(
                    conv.weights().at(c, 0, ky, kx), node.w_params);
    }
    node.bias = conv.bias();
    return node;
}

QuantizedGraph
QuantizedGraph::fromNetwork(const Network &network)
{
    QuantizedGraph graph;
    for (const auto &layer : network.layers()) {
        if (const auto *conv = dynamic_cast<const Conv2d *>(layer.get())) {
            if (!conv->qat().enabled)
                fatal("QuantizedGraph: export requires a QAT-trained "
                      "network (activation scales are learned during "
                      "training)");
            graph.nodes_.push_back(makeConvNode(
                *conv,
                activationParams(conv->activationScale(),
                                 conv->qat().a_bits,
                                 !conv->qat().unsigned_activations),
                weightParams(conv->weights().flat(),
                             conv->qat().w_bits)));
        } else if (const auto *fc =
                       dynamic_cast<const Linear *>(layer.get())) {
            if (!fc->qat().enabled)
                fatal("QuantizedGraph: export requires a QAT-trained "
                      "network");
            graph.nodes_.push_back(makeLinearNode(
                *fc,
                activationParams(fc->activationScale(),
                                 fc->qat().a_bits,
                                 !fc->qat().unsigned_activations),
                weightParams(fc->weights().flat(), fc->qat().w_bits)));
        } else if (const auto *dw = dynamic_cast<const DepthwiseConv2d *>(
                       layer.get())) {
            if (!dw->qat().enabled)
                fatal("QuantizedGraph: export requires a QAT-trained "
                      "network");
            graph.nodes_.push_back(makeDepthwiseNode(
                *dw,
                activationParams(dw->activationScale(),
                                 dw->qat().a_bits,
                                 !dw->qat().unsigned_activations),
                weightParams(dw->weights().flat(), dw->qat().w_bits)));
        } else if (dynamic_cast<const Relu *>(layer.get())) {
            QNode node;
            node.kind = QNode::Kind::kRelu;
            graph.nodes_.push_back(std::move(node));
        } else if (dynamic_cast<const MaxPool2 *>(layer.get())) {
            QNode node;
            node.kind = QNode::Kind::kMaxPool2;
            graph.nodes_.push_back(std::move(node));
        } else if (dynamic_cast<const Flatten *>(layer.get())) {
            QNode node;
            node.kind = QNode::Kind::kFlatten;
            graph.nodes_.push_back(std::move(node));
        } else {
            fatal(strCat("QuantizedGraph: unsupported layer ",
                         layer->name()));
        }
    }
    if (graph.nodes_.empty())
        fatal("QuantizedGraph: empty network");
    return graph;
}

Tensor<double>
runQNode(const QNode &node, const Tensor<double> &input,
         GemmBackend &backend)
{
    Tensor<double> t = input;
    {
        switch (node.kind) {
          case QNode::Kind::kConv: {
            ConvSpec spec = node.spec;
            spec.in_h = static_cast<unsigned>(t.dim(2));
            spec.in_w = static_cast<unsigned>(t.dim(3));
            spec.validate();
            const auto qa = quantizeTensor(t, node.a_params);
            const auto a_int = toInt(im2row(qa, spec));
            const DataSizeConfig cfg{node.a_params.bits,
                                     node.w_params.bits,
                                     node.a_params.is_signed,
                                     node.w_params.is_signed};
            const auto c = backend.gemm(a_int, node.weights_q,
                                        spec.gemmM(), spec.gemmN(),
                                        spec.gemmK(), cfg);
            const double requant =
                node.a_params.scale * node.w_params.scale;
            Tensor<double> out({1, spec.out_c, spec.outH(),
                                spec.outW()});
            uint64_t row = 0;
            for (unsigned y = 0; y < spec.outH(); ++y)
                for (unsigned x = 0; x < spec.outW(); ++x, ++row)
                    for (unsigned o = 0; o < spec.out_c; ++o)
                        out.at(0, o, y, x) =
                            requant *
                                static_cast<double>(
                                    c[row * spec.out_c + o]) +
                            node.bias[o];
            t = std::move(out);
            break;
          }
          case QNode::Kind::kDepthwise: {
            ConvSpec spec = node.spec;
            spec.in_h = static_cast<unsigned>(t.dim(2));
            spec.in_w = static_cast<unsigned>(t.dim(3));
            spec.validate();
            const auto qa = quantizeTensor(t, node.a_params);
            const DataSizeConfig cfg{node.a_params.bits,
                                     node.w_params.bits,
                                     node.a_params.is_signed,
                                     node.w_params.is_signed};
            const double requant =
                node.a_params.scale * node.w_params.scale;
            const uint64_t k = spec.gemmK(); // kh * kw per channel
            Tensor<double> out({1, spec.out_c, spec.outH(),
                                spec.outW()});
            for (unsigned c = 0; c < spec.groups; ++c) {
                const auto a_int = toInt(im2row(qa, spec, c));
                const std::span<const int32_t> w_col(
                    node.weights_q.data() + uint64_t{c} * k, k);
                const auto col = backend.gemm(a_int, w_col,
                                              spec.gemmM(), 1, k, cfg);
                uint64_t row = 0;
                for (unsigned y = 0; y < spec.outH(); ++y)
                    for (unsigned x = 0; x < spec.outW(); ++x, ++row)
                        out.at(0, c, y, x) =
                            requant * static_cast<double>(col[row]) +
                            node.bias[c];
            }
            t = std::move(out);
            break;
          }
          case QNode::Kind::kLinear: {
            const uint64_t k = node.spec.in_c;
            const uint64_t n = node.spec.out_c;
            if (t.size() != k)
                fatal("QuantizedGraph: linear input size mismatch");
            const auto qa = quantizeTensor(t, node.a_params);
            const auto a_int = toInt(qa);
            const DataSizeConfig cfg{node.a_params.bits,
                                     node.w_params.bits,
                                     node.a_params.is_signed,
                                     node.w_params.is_signed};
            const auto c =
                backend.gemm(a_int, node.weights_q, 1, n, k, cfg);
            const double requant =
                node.a_params.scale * node.w_params.scale;
            Tensor<double> out({1, n});
            for (unsigned o = 0; o < n; ++o)
                out[o] = requant * static_cast<double>(c[o]) +
                         node.bias[o];
            t = std::move(out);
            break;
          }
          case QNode::Kind::kRelu:
            for (auto &v : t.flat())
                v = std::max(v, 0.0);
            break;
          case QNode::Kind::kMaxPool2: {
            const unsigned c = static_cast<unsigned>(t.dim(1));
            const unsigned h = static_cast<unsigned>(t.dim(2));
            const unsigned w = static_cast<unsigned>(t.dim(3));
            Tensor<double> out({1, c, h / 2, w / 2});
            for (unsigned cc = 0; cc < c; ++cc)
                for (unsigned y = 0; y < h / 2; ++y)
                    for (unsigned x = 0; x < w / 2; ++x)
                        out.at(0, cc, y, x) = std::max(
                            {t.at(0, cc, 2 * y, 2 * x),
                             t.at(0, cc, 2 * y, 2 * x + 1),
                             t.at(0, cc, 2 * y + 1, 2 * x),
                             t.at(0, cc, 2 * y + 1, 2 * x + 1)});
            t = std::move(out);
            break;
          }
          case QNode::Kind::kFlatten:
            t = Tensor<double>({1, t.size()},
                               std::vector<double>(t.flat().begin(),
                                                   t.flat().end()));
            break;
        }
    }
    return t;
}

std::vector<double>
QuantizedGraph::run(const Tensor<double> &image,
                    GemmBackend &backend) const
{
    auto logits = tryRun(image, backend);
    if (!logits.ok())
        fatal(strCat("QuantizedGraph::run: ",
                     logits.status().toString()));
    return std::move(*logits);
}

Expected<std::vector<double>>
QuantizedGraph::tryRun(const Tensor<double> &image,
                       GemmBackend &backend) const
{
    Tensor<double> t = image;
    TraceSession *session = backend.traceSession();
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const QNode &node = nodes_[i];
        // Dynamic span names (evaluated only when a tracer is active)
        // so Perfetto shows one slice per layer, e.g. "conv#0".
        TraceSpan span("layer", [&] {
            return strCat(kindName(node.kind), "#", i);
        });
        using clock = std::chrono::steady_clock;
        const auto start = session ? clock::now() : clock::time_point{};
        t = runQNode(node, t, backend);
        // Only GEMM-bearing nodes refresh the backend status; checking
        // after elementwise nodes would re-read a stale report from an
        // earlier run.
        const bool ran_gemm = node.kind == QNode::Kind::kConv ||
                              node.kind == QNode::Kind::kDepthwise ||
                              node.kind == QNode::Kind::kLinear;
        if (ran_gemm)
            if (Status s = backend.lastStatus(); !s.ok())
                return s;
        if (session) {
            session->recordTimerNs(
                strCat("layer/", kindName(node.kind), "#", i),
                static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        clock::now() - start)
                        .count()));
        }
    }
    return std::vector<double>(t.flat().begin(), t.flat().end());
}

unsigned
QuantizedGraph::predict(const Tensor<double> &image,
                        GemmBackend &backend) const
{
    const auto logits = run(image, backend);
    unsigned best = 0;
    for (unsigned i = 1; i < logits.size(); ++i)
        if (logits[i] > logits[best])
            best = i;
    return best;
}

double
QuantizedGraph::evaluate(const PatternDataset &data,
                         GemmBackend &backend) const
{
    size_t correct = 0;
    for (const Sample &s : data.samples())
        correct += predict(s.image, backend) == s.label;
    return static_cast<double>(correct) /
           static_cast<double>(data.size());
}

} // namespace mixgemm
