/**
 * @file
 * Pluggable integer GEMM backends for the quantized inference runtime —
 * the role Mix-GEMM plays as an ONNX Runtime backend in Fig. 3. The
 * naive backend is the correctness oracle; the Mix-GEMM backend routes
 * every quantized matrix multiplication through the compressed μ-vector
 * format and the functional μ-engine, so deployment-path results are
 * bit-identical to the reference (verified by tests).
 */

#ifndef MIXGEMM_RUNTIME_BACKEND_H
#define MIXGEMM_RUNTIME_BACKEND_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bs/geometry.h"
#include "gemm/blocking.h"
#include "gemm/mixgemm.h"
#include "runtime/prepack.h"
#include "trace/session.h"

namespace mixgemm
{

struct TuningSet; // gemm/kernels/autotune.h

/** Integer GEMM provider: C(m x n) = A(m x k) * B(k x n). */
class GemmBackend
{
  public:
    virtual ~GemmBackend() = default;

    /**
     * Multiply quantized operands. Values must fit the bitwidths in
     * @p config.
     */
    virtual std::vector<int64_t> gemm(std::span<const int32_t> a,
                                      std::span<const int32_t> b,
                                      uint64_t m, uint64_t n, uint64_t k,
                                      const DataSizeConfig &config) = 0;

    virtual std::string name() const = 0;

    /**
     * Worker threads this backend computes with (0 = one per hardware
     * thread). The runtime reuses the same knob for its elementwise
     * passes (zero-point corrections, requantization) so whole-network
     * inference scales with the GEMM. Results never depend on it.
     */
    virtual unsigned threads() const { return 1; }

    /**
     * Observability sink attached to this backend, or nullptr. The
     * runtime uses it to record per-layer timers; backends that support
     * it also append one RunReport per GEMM. Results never depend on it.
     */
    virtual TraceSession *traceSession() const { return nullptr; }

    /**
     * Terminal status of the most recent gemm() call. Backends that
     * support cooperative cancellation report kCancelled /
     * kDeadlineExceeded here when their token tripped mid-GEMM (the
     * returned C is then discarded partial work); the runtime's
     * checked graph execution (QuantizedGraph::tryRun) consults this
     * after every node so an expired deadline stops the network at the
     * next layer instead of computing garbage to the end.
     */
    virtual Status lastStatus() const { return Status(); }
};

/** Triple-loop reference backend. */
class NaiveBackend : public GemmBackend
{
  public:
    std::vector<int64_t> gemm(std::span<const int32_t> a,
                              std::span<const int32_t> b, uint64_t m,
                              uint64_t n, uint64_t k,
                              const DataSizeConfig &config) override;
    std::string name() const override { return "naive"; }
};

/** Mix-GEMM backend: compressed μ-vectors through the μ-engine. */
class MixGemmBackend : public GemmBackend
{
  public:
    /**
     * @param threads worker threads for the parallel Mix-GEMM driver
     *        (1 = serial, 0 = one per hardware thread); output is
     *        bitwise identical for every value.
     * @param mode μ-kernel implementation (see KernelMode); Fast and
     *        Modeled produce bitwise-identical outputs and counters.
     */
    explicit MixGemmBackend(unsigned threads = 1,
                            KernelMode mode = KernelMode::Fast)
        : threads_(threads), kernel_mode_(mode)
    {
    }

    std::vector<int64_t> gemm(std::span<const int32_t> a,
                              std::span<const int32_t> b, uint64_t m,
                              uint64_t n, uint64_t k,
                              const DataSizeConfig &config) override;
    std::string name() const override { return "mixgemm"; }
    unsigned threads() const override { return threads_; }

    /** Change the worker-thread count for subsequent calls. */
    void setThreads(unsigned threads) { threads_ = threads; }

    /** Change the μ-kernel implementation for subsequent calls. */
    void setKernelMode(KernelMode mode) { kernel_mode_ = mode; }
    KernelMode kernelMode() const { return kernel_mode_; }

    /** Total bs.ip instructions issued across all calls. */
    uint64_t totalBsIp() const { return total_bs_ip_; }

    /**
     * Attach (or detach, with nullptr) an observability session: every
     * subsequent gemm() appends a RunReport labeled with the current
     * trace label to it. The session must outlive the attachment.
     */
    void attachTraceSession(TraceSession *session) { session_ = session; }
    TraceSession *traceSession() const override { return session_; }

    /** RunReport label for subsequent gemm() calls (layer name, ...). */
    void setTraceLabel(std::string label) { trace_label_ = std::move(label); }
    const std::string &traceLabel() const { return trace_label_; }

    /**
     * Request-scoped trace identity for subsequent gemm() calls: copied
     * into each RunReport (tenant, request id, rung) so served GEMMs
     * stitch into one per-request story. clearRequestContext() resets
     * to the unscoped default. Pure metadata.
     */
    void setRequestContext(RequestContext ctx)
    {
        request_ctx_ = std::move(ctx);
    }
    void clearRequestContext() { request_ctx_ = RequestContext{}; }
    const RequestContext &requestContext() const { return request_ctx_; }

    /**
     * Attach (or detach, with nullptr) an autotuner tuning set (see
     * gemm/kernels/autotune.h): every subsequent gemm() whose
     * configuration has a tuned entry runs with that entry's cache
     * blocking, register blocking, and μ-kernel instead of the paper
     * defaults. Not owned; must outlive the attachment. Tuning only
     * moves work between bitwise-identical kernels, so outputs and
     * counter totals are unchanged.
     */
    void setTuning(const TuningSet *tuning) { tuning_ = tuning; }
    const TuningSet *tuning() const { return tuning_; }

    /**
     * ABFT policy for subsequent gemm() calls (Off — the default —
     * skips all checksum work). Detection/correction verdicts of the
     * most recent call are available from lastAbft().
     */
    void setFaultPolicy(FaultPolicy policy) { fault_policy_ = policy; }
    FaultPolicy faultPolicy() const { return fault_policy_; }

    /**
     * Attach (or detach, with nullptr) a fault-injection engine: every
     * subsequent gemm() plans and applies its faults. Not owned; must
     * outlive the attachment. Campaign use only — see fault/campaign.h.
     */
    void setFaultInjector(FaultInjector *injector) { fault_ = injector; }
    FaultInjector *faultInjector() const { return fault_; }

    /** Per-tile recompute budget under FaultPolicy::DetectRetry. */
    void setAbftMaxRetries(unsigned retries) { abft_retries_ = retries; }
    unsigned abftMaxRetries() const { return abft_retries_; }

    /** ABFT outcome of the most recent gemm() call. */
    const AbftOutcome &lastAbft() const { return last_abft_; }

    /**
     * Attach (or detach, with nullptr) a cancellation token: every
     * subsequent gemm() polls it at macro-tile boundaries and stops
     * early once it trips, reporting the reason via lastStatus().
     * Untriggered, the serving path stays bitwise-identical to direct
     * execution. Not owned; must outlive the attachment.
     */
    void setCancelToken(const CancelToken *token) { cancel_ = token; }
    const CancelToken *cancelToken() const { return cancel_; }

    /**
     * Attach (or detach, with nullptr) a pre-packed weight provider
     * (see runtime/prepack.h): every subsequent gemm() first asks it
     * for the B operand by data pointer + shape + config, and on a hit
     * skips B packing and cluster expansion entirely, computing from
     * the provider's (possibly mmap-borrowed) panels. Bitwise
     * identical to fresh packing — the packed-weight store's identity
     * tests pin this across the config matrix. Not owned; must outlive
     * the attachment.
     */
    void setPrepacked(const PrepackedWeights *provider)
    {
        prepacked_ = provider;
    }
    const PrepackedWeights *prepacked() const { return prepacked_; }

    /** gemm() calls served from the pre-packed provider. */
    uint64_t prepackHits() const { return prepack_hits_; }
    /** gemm() calls the provider was asked about but could not serve. */
    uint64_t prepackMisses() const { return prepack_misses_; }

    Status lastStatus() const override { return last_status_; }

  private:
    unsigned threads_ = 1;
    KernelMode kernel_mode_ = KernelMode::Fast;
    uint64_t total_bs_ip_ = 0;
    TraceSession *session_ = nullptr;
    std::string trace_label_ = "mixgemm";
    RequestContext request_ctx_;
    const TuningSet *tuning_ = nullptr;
    FaultPolicy fault_policy_ = FaultPolicy::Off;
    FaultInjector *fault_ = nullptr;
    unsigned abft_retries_ = 2;
    AbftOutcome last_abft_;
    const CancelToken *cancel_ = nullptr;
    const PrepackedWeights *prepacked_ = nullptr;
    uint64_t prepack_hits_ = 0;
    uint64_t prepack_misses_ = 0;
    Status last_status_;
};

} // namespace mixgemm

#endif // MIXGEMM_RUNTIME_BACKEND_H
