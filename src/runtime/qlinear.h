/**
 * @file
 * QLinear-style integer matmul with zero-point handling.
 *
 * Uniform affine quantization (Eq. 1) in its general asymmetric form
 * represents x as s * (q - z). A quantized GEMM therefore expands to
 *
 *   C[i,j] = sum_k (qa[i,k] - za) * (qb[k,j] - zb)
 *          = sum_k qa*qb  - za * colsum_b[j] - zb * rowsum_a[i]
 *            + K * za * zb
 *
 * so an asymmetric multiply is one integer GEMM (through any
 * GemmBackend, including the μ-engine-backed one) plus rank-1
 * corrections from precomputable row/column sums — exactly how ONNX
 * Runtime's QLinearMatMul lowers. This module implements that
 * expansion and the matching requantization helpers, enabling the
 * unsigned/asymmetric quadrant of the μ-engine's configuration space
 * to be exercised end to end.
 */

#ifndef MIXGEMM_RUNTIME_QLINEAR_H
#define MIXGEMM_RUNTIME_QLINEAR_H

#include <cstdint>
#include <span>
#include <vector>

#include "quant/quantizer.h"
#include "runtime/backend.h"

namespace mixgemm
{

/**
 * Asymmetric integer GEMM: inputs are raw quantized codes (including
 * their zero-point offsets); the result is the exact integer
 * sum_k (qa - za)(qb - zb) per output element.
 *
 * @param a row-major m x k codes in the (a_params.bits, signedness)
 *          range
 * @param b row-major k x n codes
 */
std::vector<int64_t> qlinearGemm(std::span<const int32_t> a,
                                 std::span<const int32_t> b, uint64_t m,
                                 uint64_t n, uint64_t k,
                                 const QuantParams &a_params,
                                 const QuantParams &b_params,
                                 GemmBackend &backend);

/**
 * Per-channel variant: column j of B is quantized with b_params[j]
 * (shared bitwidth/signedness, per-channel scale and zero point, as
 * the paper's per-channel weight quantization produces). Returns the
 * *dequantized* C in doubles: C = a_scale * b_scale[j] * C_int.
 */
std::vector<double> qlinearGemmPerChannel(
    std::span<const int32_t> a, std::span<const int32_t> b, uint64_t m,
    uint64_t n, uint64_t k, const QuantParams &a_params,
    std::span<const QuantParams> b_params, GemmBackend &backend);

} // namespace mixgemm

#endif // MIXGEMM_RUNTIME_QLINEAR_H
