/**
 * @file
 * Quantized inference graph: the deployment half of the Fig. 3
 * workflow. A trained QAT Network (src/nn) is exported into an integer
 * graph — per-layer quantized weights plus activation/weight scales —
 * and executed with any GemmBackend: convolutions lower through im2row
 * to integer GEMMs, accumulators requantize back to float for the
 * non-linearities, mirroring the QLinear op pattern of ONNX Runtime.
 */

#ifndef MIXGEMM_RUNTIME_QGRAPH_H
#define MIXGEMM_RUNTIME_QGRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "nn/qat.h"
#include "quant/quantizer.h"
#include "runtime/backend.h"
#include "tensor/conv.h"

namespace mixgemm
{

/** One node of the quantized graph. */
struct QNode
{
    enum class Kind
    {
        kConv,      ///< quantized convolution (im2row + GEMM)
        kDepthwise, ///< quantized depthwise conv (one GEMM per channel)
        kLinear,    ///< quantized fully-connected (GEMM with m = 1)
        kRelu,
        kMaxPool2,
        kFlatten,
    };

    Kind kind = Kind::kRelu;
    // kConv / kLinear payload:
    ConvSpec spec;                 ///< conv geometry (kLinear: 1x1)
    std::vector<int32_t> weights_q;///< quantized B operand, k x n
    std::vector<double> bias;
    QuantParams a_params;          ///< activation quantization
    QuantParams w_params;          ///< weight quantization
};

/** Executable quantized graph. */
class QuantizedGraph
{
  public:
    QuantizedGraph() = default;

    /** Build directly from nodes (used by the PTQ pipeline and the
     * deserializer). */
    explicit QuantizedGraph(std::vector<QNode> nodes);

    /**
     * Export a trained QAT network. Conv2d/Linear layers must have run
     * at least one forward pass (training sets the activation EMA
     * scales this export reuses).
     */
    static QuantizedGraph fromNetwork(const Network &network);

    /**
     * Serialize to a line-oriented text format (the repository's
     * stand-in for an ONNX model file). Stable across platforms.
     */
    std::string serialize() const;

    /** Inverse of serialize(). @throws FatalError on malformed input. */
    static QuantizedGraph deserialize(const std::string &text);

    /**
     * Checked inverse of serialize() for untrusted bytes (model files
     * from disk or the network): every malformed input — bad magic,
     * truncated records, counts that disagree with the layer geometry,
     * out-of-range quantization parameters or weight codes, trailing
     * garbage — comes back as a kDataLoss/kInvalidArgument Status
     * instead of a crash, with payload sizes bounds-checked against the
     * input length *before* any allocation, so hostile headers cannot
     * force huge buffers. The format is a linear node list (the graph
     * is a chain by construction), so cyclic or dangling references are
     * unrepresentable and need no reference validation.
     */
    static Expected<QuantizedGraph> tryDeserialize(const std::string &text);

    /**
     * Load and deserialize a graph file with the paranoia serving-mode
     * registration needs: a missing/unreadable path comes back as
     * kNotFound/kUnavailable with the errno text, a file larger than
     * @p max_bytes as kResourceExhausted *before* any buffer is sized
     * from it (a garbage path can't force a huge allocation), a short
     * read as kDataLoss, and the bytes then go through
     * tryDeserialize() with all of its structural validation.
     */
    static Expected<QuantizedGraph> fromFile(
        const std::string &path, size_t max_bytes = kMaxGraphFileBytes);

    /** Default fromFile() size cap: far above any real graph here. */
    static constexpr size_t kMaxGraphFileBytes = 64u << 20;

    /** Run one image; returns the float logits. */
    std::vector<double> run(const Tensor<double> &image,
                            GemmBackend &backend) const;

    /**
     * Checked variant of run() for the serving path: after every node
     * the backend's lastStatus() is consulted, so a GEMM that stopped
     * on a tripped cancellation token (deadline, watchdog) aborts the
     * network at that layer and returns the reason instead of running
     * the remaining layers on discarded partial work. With no
     * cancellation-capable backend attached this is run() exactly.
     */
    Expected<std::vector<double>> tryRun(const Tensor<double> &image,
                                         GemmBackend &backend) const;

    /** Predicted class (argmax of logits). */
    unsigned predict(const Tensor<double> &image,
                     GemmBackend &backend) const;

    /** TOP-1 accuracy over a dataset. */
    double evaluate(const PatternDataset &data,
                    GemmBackend &backend) const;

    const std::vector<QNode> &nodes() const { return nodes_; }
    std::vector<QNode> &nodes() { return nodes_; }

  private:
    std::vector<QNode> nodes_;
};

/** Execute one node on an input tensor (exposed for the PTQ
 * bias-correction pass, which runs the graph layer by layer). */
Tensor<double> runQNode(const QNode &node, const Tensor<double> &input,
                        GemmBackend &backend);

/** Build a conv node from a trained layer with explicit quantization
 * parameters (the QAT export and the PTQ pipeline share this). */
QNode makeConvNode(const Conv2d &conv, const QuantParams &a_params,
                   const QuantParams &w_params);

/** Build a linear node from a trained layer. */
QNode makeLinearNode(const Linear &fc, const QuantParams &a_params,
                     const QuantParams &w_params);

/** Build a depthwise-conv node from a trained layer. */
QNode makeDepthwiseNode(const DepthwiseConv2d &conv,
                        const QuantParams &a_params,
                        const QuantParams &w_params);

} // namespace mixgemm

#endif // MIXGEMM_RUNTIME_QGRAPH_H
