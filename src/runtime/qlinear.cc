#include "runtime/qlinear.h"

#include "common/logging.h"
#include "common/thread_pool.h"
#include "trace/tracer.h"

namespace mixgemm
{

namespace
{

DataSizeConfig
configFor(const QuantParams &a, const QuantParams &b)
{
    DataSizeConfig cfg;
    cfg.bwa = a.bits;
    cfg.bwb = b.bits;
    cfg.a_signed = a.is_signed;
    cfg.b_signed = b.is_signed;
    return cfg;
}

/**
 * Row sums of a (m x k) and column sums of b (k x n), parallelized over
 * disjoint output ranges so results are exact and order-independent.
 */
void
operandSums(std::span<const int32_t> a, std::span<const int32_t> b,
            uint64_t m, uint64_t n, uint64_t k, bool need_row,
            bool need_col, unsigned threads, std::vector<int64_t> &row_sum,
            std::vector<int64_t> &col_sum)
{
    TRACE_SCOPE("runtime", "operand_sums");
    if (need_row)
        parallelFor(m, threads, [&](uint64_t i0, uint64_t i1) {
            for (uint64_t i = i0; i < i1; ++i)
                for (uint64_t l = 0; l < k; ++l)
                    row_sum[i] += a[i * k + l];
        });
    if (need_col)
        parallelFor(n, threads, [&](uint64_t j0, uint64_t j1) {
            for (uint64_t l = 0; l < k; ++l)
                for (uint64_t j = j0; j < j1; ++j)
                    col_sum[j] += b[l * n + j];
        });
}

} // namespace

std::vector<int64_t>
qlinearGemm(std::span<const int32_t> a, std::span<const int32_t> b,
            uint64_t m, uint64_t n, uint64_t k,
            const QuantParams &a_params, const QuantParams &b_params,
            GemmBackend &backend)
{
    if (a.size() != m * k || b.size() != k * n)
        fatal("qlinearGemm: operand sizes do not match dimensions");
    const int64_t za = a_params.zero_point;
    const int64_t zb = b_params.zero_point;

    auto c = backend.gemm(a, b, m, n, k, configFor(a_params, b_params));

    if (za != 0 || zb != 0) {
        // Rank-1 corrections from row/column sums; integer arithmetic
        // over disjoint row ranges, so the parallel pass is exact.
        TRACE_SCOPE("runtime", "qlinear_correction");
        const unsigned threads = backend.threads();
        std::vector<int64_t> row_sum(m, 0);
        std::vector<int64_t> col_sum(n, 0);
        operandSums(a, b, m, n, k, zb != 0, za != 0, threads, row_sum,
                    col_sum);
        const int64_t kzz = static_cast<int64_t>(k) * za * zb;
        parallelFor(m, threads, [&](uint64_t i0, uint64_t i1) {
            for (uint64_t i = i0; i < i1; ++i)
                for (uint64_t j = 0; j < n; ++j)
                    c[i * n + j] += kzz - za * col_sum[j] -
                                    zb * row_sum[i];
        });
    }
    return c;
}

std::vector<double>
qlinearGemmPerChannel(std::span<const int32_t> a,
                      std::span<const int32_t> b, uint64_t m, uint64_t n,
                      uint64_t k, const QuantParams &a_params,
                      std::span<const QuantParams> b_params,
                      GemmBackend &backend)
{
    if (b_params.size() != n)
        fatal("qlinearGemmPerChannel: one QuantParams per column "
              "required");
    // All channels must share bitwidth/signedness (one bs.set per
    // layer); scales and zero points may differ.
    for (const auto &p : b_params)
        if (p.bits != b_params[0].bits ||
            p.is_signed != b_params[0].is_signed)
            fatal("qlinearGemmPerChannel: channels must share the "
                  "weight data size");

    // Handle per-channel zero points by folding them into the
    // correction pass after one shared integer GEMM.
    const auto cfg_b = b_params[0];
    auto c = backend.gemm(a, b, m, n, k, configFor(a_params, cfg_b));

    const unsigned threads = backend.threads();
    const int64_t za = a_params.zero_point;
    std::vector<int64_t> row_sum(m, 0);
    std::vector<int64_t> col_sum(n, 0);
    bool any_zb = false;
    for (const auto &p : b_params)
        any_zb = any_zb || p.zero_point != 0;
    operandSums(a, b, m, n, k, any_zb, za != 0, threads, row_sum,
                col_sum);

    std::vector<double> out(m * n);
    TRACE_SCOPE("runtime", "requant_per_channel");
    parallelFor(n, threads, [&](uint64_t j0, uint64_t j1) {
        for (uint64_t j = j0; j < j1; ++j) {
            const int64_t zb = b_params[j].zero_point;
            const int64_t kzz = static_cast<int64_t>(k) * za * zb;
            const double requant = a_params.scale * b_params[j].scale;
            for (uint64_t i = 0; i < m; ++i) {
                const int64_t corrected = c[i * n + j] + kzz -
                                          za * col_sum[j] -
                                          zb * row_sum[i];
                out[i * n + j] =
                    requant * static_cast<double>(corrected);
            }
        }
    });
    return out;
}

} // namespace mixgemm
