/**
 * @file
 * Text serialization of QuantizedGraph — the repository's stand-in for
 * the ONNX model files of the paper's deployment flow (Fig. 3). One
 * node per "node" line; weights/bias payloads follow as counted lines.
 * Floating-point fields round-trip exactly via 17 significant digits.
 */

#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/logging.h"
#include "runtime/qgraph.h"

namespace mixgemm
{

namespace
{

constexpr const char *kMagic = "mixgemm-qgraph-v1";

const char *
kindName(QNode::Kind kind)
{
    switch (kind) {
      case QNode::Kind::kConv: return "conv";
      case QNode::Kind::kDepthwise: return "depthwise";
      case QNode::Kind::kLinear: return "linear";
      case QNode::Kind::kRelu: return "relu";
      case QNode::Kind::kMaxPool2: return "maxpool2";
      case QNode::Kind::kFlatten: return "flatten";
    }
    return "?";
}

Expected<QNode::Kind>
kindFromName(const std::string &name)
{
    if (name == "conv")
        return QNode::Kind::kConv;
    if (name == "depthwise")
        return QNode::Kind::kDepthwise;
    if (name == "linear")
        return QNode::Kind::kLinear;
    if (name == "relu")
        return QNode::Kind::kRelu;
    if (name == "maxpool2")
        return QNode::Kind::kMaxPool2;
    if (name == "flatten")
        return QNode::Kind::kFlatten;
    return Status::dataLoss("qgraph: unknown node kind '" + name + "'");
}

void
writeParams(std::ostream &os, const QuantParams &p)
{
    os << p.bits << ' ' << (p.is_signed ? 1 : 0) << ' ' << p.zero_point
       << ' ' << std::setprecision(17) << p.scale;
}

Expected<QuantParams>
readParams(std::istream &is)
{
    unsigned bits = 0;
    int is_signed = 0;
    int32_t zero_point = 0;
    double scale = 0.0;
    if (!(is >> bits >> is_signed >> zero_point >> scale))
        return Status::dataLoss(
            "qgraph: truncated quantization parameters");
    // Routed through the checked constructor so a hostile file cannot
    // smuggle in a zero scale or a 64-bit-shift bit count.
    return makeQuantParams(scale, zero_point, bits, is_signed != 0);
}

/** Upper bound on layer channel/kernel extents a serialized graph may
 * claim; generous for any edge DNN, small enough that size products
 * below never overflow 64 bits. */
constexpr unsigned kMaxExtent = 1u << 16;

} // namespace

QuantizedGraph::QuantizedGraph(std::vector<QNode> nodes)
    : nodes_(std::move(nodes))
{
    if (nodes_.empty())
        fatal("QuantizedGraph: empty node list");
}

std::string
QuantizedGraph::serialize() const
{
    std::ostringstream os;
    os << kMagic << '\n' << nodes_.size() << '\n';
    for (const QNode &n : nodes_) {
        os << "node " << kindName(n.kind) << '\n';
        if (n.kind == QNode::Kind::kConv ||
            n.kind == QNode::Kind::kDepthwise ||
            n.kind == QNode::Kind::kLinear) {
            os << n.spec.in_c << ' ' << n.spec.out_c << ' ' << n.spec.kh
               << ' ' << n.spec.pad << '\n';
            os << "a_params ";
            writeParams(os, n.a_params);
            os << '\n';
            os << "w_params ";
            writeParams(os, n.w_params);
            os << '\n';
            os << "weights " << n.weights_q.size() << '\n';
            for (size_t i = 0; i < n.weights_q.size(); ++i)
                os << n.weights_q[i]
                   << ((i + 1) % 16 == 0 || i + 1 == n.weights_q.size()
                           ? '\n'
                           : ' ');
            os << "bias " << n.bias.size() << '\n' << std::setprecision(17);
            for (size_t i = 0; i < n.bias.size(); ++i)
                os << n.bias[i]
                   << ((i + 1) % 8 == 0 || i + 1 == n.bias.size()
                           ? '\n'
                           : ' ');
        }
    }
    return os.str();
}

Expected<QuantizedGraph>
QuantizedGraph::tryDeserialize(const std::string &text)
{
    std::istringstream is(text);
    std::string magic;
    if (!(is >> magic) || magic != kMagic)
        return Status::dataLoss(
            "qgraph: bad magic (expected mixgemm-qgraph-v1)");
    size_t count = 0;
    if (!(is >> count) || count == 0)
        return Status::dataLoss("qgraph: bad node count");
    // Every node record is at least "node X" (6 bytes), so a count the
    // input cannot possibly hold is malformed — reject it before the
    // reserve below turns it into an allocation.
    if (count > text.size() / 6)
        return Status::dataLoss(
            strCat("qgraph: node count ", count,
                   " exceeds what the input could hold"));

    std::vector<QNode> nodes;
    nodes.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        std::string tag;
        std::string kind;
        if (!(is >> tag >> kind) || tag != "node")
            return Status::dataLoss("qgraph: expected a node record");
        Expected<QNode::Kind> parsed_kind = kindFromName(kind);
        if (!parsed_kind.ok())
            return parsed_kind.status();
        QNode n;
        n.kind = *parsed_kind;
        if (n.kind == QNode::Kind::kConv ||
            n.kind == QNode::Kind::kDepthwise ||
            n.kind == QNode::Kind::kLinear) {
            unsigned k = 0;
            if (!(is >> n.spec.in_c >> n.spec.out_c >> k >> n.spec.pad))
                return Status::dataLoss(
                    "qgraph: truncated layer geometry");
            if (n.spec.in_c == 0 || n.spec.in_c > kMaxExtent ||
                n.spec.out_c == 0 || n.spec.out_c > kMaxExtent ||
                k == 0 || k > kMaxExtent || n.spec.pad >= kMaxExtent)
                return Status::invalidArgument(
                    strCat("qgraph: layer geometry out of range (in_c=",
                           n.spec.in_c, " out_c=", n.spec.out_c, " k=",
                           k, " pad=", n.spec.pad, ")"));
            n.spec.kh = n.spec.kw = k;
            n.spec.stride = 1;
            if (n.kind == QNode::Kind::kLinear)
                n.spec.in_h = n.spec.in_w = 1;
            if (n.kind == QNode::Kind::kDepthwise) {
                if (n.spec.out_c != n.spec.in_c)
                    return Status::invalidArgument(
                        "qgraph: depthwise node with out_c != in_c");
                n.spec.groups = n.spec.in_c;
            }
            std::string ptag;
            if (!(is >> ptag) || ptag != "a_params")
                return Status::dataLoss("qgraph: expected a_params");
            Expected<QuantParams> a_params = readParams(is);
            if (!a_params.ok())
                return a_params.status();
            n.a_params = *a_params;
            if (!(is >> ptag) || ptag != "w_params")
                return Status::dataLoss("qgraph: expected w_params");
            Expected<QuantParams> w_params = readParams(is);
            if (!w_params.ok())
                return w_params.status();
            n.w_params = *w_params;
            size_t wn = 0;
            if (!(is >> ptag >> wn) || ptag != "weights")
                return Status::dataLoss("qgraph: expected weights");
            // The weight count is fully determined by the geometry just
            // read; accepting anything else either truncates the GEMM's
            // B operand or over-reads past it at execution time.
            const uint64_t expected_wn =
                n.spec.gemmK() * n.spec.gemmN() * n.spec.groups;
            if (wn != expected_wn)
                return Status::dataLoss(
                    strCat("qgraph: weight count ", wn,
                           " does not match the layer geometry (",
                           expected_wn, " expected)"));
            n.weights_q.resize(wn);
            for (auto &w : n.weights_q) {
                if (!(is >> w))
                    return Status::dataLoss(
                        "qgraph: truncated weights");
                if (w < n.w_params.qmin() || w > n.w_params.qmax())
                    return Status::invalidArgument(
                        strCat("qgraph: weight code ", w,
                               " outside the declared ",
                               n.w_params.bits, "-bit range"));
            }
            size_t bn = 0;
            if (!(is >> ptag >> bn) || ptag != "bias")
                return Status::dataLoss("qgraph: expected bias");
            if (bn != n.spec.out_c)
                return Status::dataLoss(
                    strCat("qgraph: bias count ", bn,
                           " does not match out_c=", n.spec.out_c));
            n.bias.resize(bn);
            for (auto &b : n.bias) {
                if (!(is >> b))
                    return Status::dataLoss("qgraph: truncated bias");
                if (!std::isfinite(b))
                    return Status::invalidArgument(
                        "qgraph: non-finite bias value");
            }
        }
        nodes.push_back(std::move(n));
    }
    // Anything after the declared records is not this format.
    std::string trailing;
    if (is >> trailing)
        return Status::dataLoss(
            "qgraph: trailing garbage after the last node");
    return QuantizedGraph(std::move(nodes));
}

QuantizedGraph
QuantizedGraph::deserialize(const std::string &text)
{
    Expected<QuantizedGraph> graph = tryDeserialize(text);
    if (!graph.ok())
        fatal(graph.status().toString());
    return *graph;
}

Expected<QuantizedGraph>
QuantizedGraph::fromFile(const std::string &path, size_t max_bytes)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is) {
        const int err = errno;
        const std::string detail =
            err ? std::strerror(err) : "cannot open";
        if (err == ENOENT)
            return Status::notFound(
                strCat("qgraph file '", path, "': ", detail));
        return Status::unavailable(
            strCat("qgraph file '", path, "': ", detail));
    }
    const std::streamoff size = is.tellg();
    if (size < 0)
        return Status::unavailable(
            strCat("qgraph file '", path, "': cannot determine size"));
    // Size gate before the read buffer exists: a huge (or
    // hostile-sparse) file is refused without allocating for it.
    if (static_cast<uint64_t>(size) > max_bytes)
        return Status::resourceExhausted(
            strCat("qgraph file '", path, "' is ", size,
                   " bytes; limit is ", max_bytes));
    std::string text(static_cast<size_t>(size), '\0');
    is.seekg(0);
    is.read(text.data(), size);
    if (is.gcount() != size)
        return Status::dataLoss(
            strCat("qgraph file '", path, "': short read (",
                   is.gcount(), " of ", size, " bytes)"));
    return tryDeserialize(text);
}

} // namespace mixgemm
