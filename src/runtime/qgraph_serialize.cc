/**
 * @file
 * Text serialization of QuantizedGraph — the repository's stand-in for
 * the ONNX model files of the paper's deployment flow (Fig. 3). One
 * node per "node" line; weights/bias payloads follow as counted lines.
 * Floating-point fields round-trip exactly via 17 significant digits.
 */

#include <iomanip>
#include <sstream>

#include "common/logging.h"
#include "runtime/qgraph.h"

namespace mixgemm
{

namespace
{

constexpr const char *kMagic = "mixgemm-qgraph-v1";

const char *
kindName(QNode::Kind kind)
{
    switch (kind) {
      case QNode::Kind::kConv: return "conv";
      case QNode::Kind::kDepthwise: return "depthwise";
      case QNode::Kind::kLinear: return "linear";
      case QNode::Kind::kRelu: return "relu";
      case QNode::Kind::kMaxPool2: return "maxpool2";
      case QNode::Kind::kFlatten: return "flatten";
    }
    return "?";
}

QNode::Kind
kindFromName(const std::string &name)
{
    if (name == "conv")
        return QNode::Kind::kConv;
    if (name == "depthwise")
        return QNode::Kind::kDepthwise;
    if (name == "linear")
        return QNode::Kind::kLinear;
    if (name == "relu")
        return QNode::Kind::kRelu;
    if (name == "maxpool2")
        return QNode::Kind::kMaxPool2;
    if (name == "flatten")
        return QNode::Kind::kFlatten;
    fatal("qgraph: unknown node kind '" + name + "'");
}

void
writeParams(std::ostream &os, const QuantParams &p)
{
    os << p.bits << ' ' << (p.is_signed ? 1 : 0) << ' ' << p.zero_point
       << ' ' << std::setprecision(17) << p.scale;
}

QuantParams
readParams(std::istream &is)
{
    QuantParams p;
    int is_signed = 0;
    if (!(is >> p.bits >> is_signed >> p.zero_point >> p.scale))
        fatal("qgraph: truncated quantization parameters");
    p.is_signed = is_signed != 0;
    return p;
}

} // namespace

QuantizedGraph::QuantizedGraph(std::vector<QNode> nodes)
    : nodes_(std::move(nodes))
{
    if (nodes_.empty())
        fatal("QuantizedGraph: empty node list");
}

std::string
QuantizedGraph::serialize() const
{
    std::ostringstream os;
    os << kMagic << '\n' << nodes_.size() << '\n';
    for (const QNode &n : nodes_) {
        os << "node " << kindName(n.kind) << '\n';
        if (n.kind == QNode::Kind::kConv ||
            n.kind == QNode::Kind::kDepthwise ||
            n.kind == QNode::Kind::kLinear) {
            os << n.spec.in_c << ' ' << n.spec.out_c << ' ' << n.spec.kh
               << ' ' << n.spec.pad << '\n';
            os << "a_params ";
            writeParams(os, n.a_params);
            os << '\n';
            os << "w_params ";
            writeParams(os, n.w_params);
            os << '\n';
            os << "weights " << n.weights_q.size() << '\n';
            for (size_t i = 0; i < n.weights_q.size(); ++i)
                os << n.weights_q[i]
                   << ((i + 1) % 16 == 0 || i + 1 == n.weights_q.size()
                           ? '\n'
                           : ' ');
            os << "bias " << n.bias.size() << '\n' << std::setprecision(17);
            for (size_t i = 0; i < n.bias.size(); ++i)
                os << n.bias[i]
                   << ((i + 1) % 8 == 0 || i + 1 == n.bias.size()
                           ? '\n'
                           : ' ');
        }
    }
    return os.str();
}

QuantizedGraph
QuantizedGraph::deserialize(const std::string &text)
{
    std::istringstream is(text);
    std::string magic;
    if (!(is >> magic) || magic != kMagic)
        fatal("qgraph: bad magic (expected mixgemm-qgraph-v1)");
    size_t count = 0;
    if (!(is >> count) || count == 0)
        fatal("qgraph: bad node count");

    std::vector<QNode> nodes;
    nodes.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        std::string tag;
        std::string kind;
        if (!(is >> tag >> kind) || tag != "node")
            fatal("qgraph: expected a node record");
        QNode n;
        n.kind = kindFromName(kind);
        if (n.kind == QNode::Kind::kConv ||
            n.kind == QNode::Kind::kDepthwise ||
            n.kind == QNode::Kind::kLinear) {
            unsigned k = 0;
            if (!(is >> n.spec.in_c >> n.spec.out_c >> k >> n.spec.pad))
                fatal("qgraph: truncated layer geometry");
            n.spec.kh = n.spec.kw = k;
            n.spec.stride = 1;
            if (n.kind == QNode::Kind::kLinear)
                n.spec.in_h = n.spec.in_w = 1;
            if (n.kind == QNode::Kind::kDepthwise)
                n.spec.groups = n.spec.in_c;
            std::string ptag;
            if (!(is >> ptag) || ptag != "a_params")
                fatal("qgraph: expected a_params");
            n.a_params = readParams(is);
            if (!(is >> ptag) || ptag != "w_params")
                fatal("qgraph: expected w_params");
            n.w_params = readParams(is);
            size_t wn = 0;
            if (!(is >> ptag >> wn) || ptag != "weights")
                fatal("qgraph: expected weights");
            n.weights_q.resize(wn);
            for (auto &w : n.weights_q)
                if (!(is >> w))
                    fatal("qgraph: truncated weights");
            size_t bn = 0;
            if (!(is >> ptag >> bn) || ptag != "bias")
                fatal("qgraph: expected bias");
            n.bias.resize(bn);
            for (auto &b : n.bias)
                if (!(is >> b))
                    fatal("qgraph: truncated bias");
        }
        nodes.push_back(std::move(n));
    }
    return QuantizedGraph(std::move(nodes));
}

} // namespace mixgemm
