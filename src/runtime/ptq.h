/**
 * @file
 * Post-Training Quantization pipeline (Section II-A / IV-A).
 *
 * The paper initializes QAT from PTQ: activation scales come from
 * averaging the 99.999 percentile of activation magnitudes over
 * calibration batches, weights quantize per-tensor from their absmax,
 * and a bias-correction pass compensates the mean output shift. This
 * module implements that pipeline against a *float-trained* network,
 * producing a deployable QuantizedGraph without any retraining — and,
 * as the paper observes, it holds up at 7-8 bits but collapses at
 * aggressive data sizes where QAT is required (tested).
 */

#ifndef MIXGEMM_RUNTIME_PTQ_H
#define MIXGEMM_RUNTIME_PTQ_H

#include "nn/dataset.h"
#include "nn/qat.h"
#include "runtime/qgraph.h"

namespace mixgemm
{

/** PTQ knobs (defaults follow the paper's setup). */
struct PtqOptions
{
    unsigned a_bits = 8;
    unsigned w_bits = 8;
    double percentile = 99.999; ///< activation calibration percentile
    unsigned calibration_samples = 64;
    bool bias_correction = true;
    unsigned bias_samples = 64;
};

/**
 * Calibrate and quantize a float-trained network into an executable
 * quantized graph. The network is run (unmodified) over calibration
 * data to observe per-layer activation ranges.
 */
QuantizedGraph buildPtqGraph(Network &network, const PatternDataset &data,
                             const PtqOptions &options = PtqOptions{});

} // namespace mixgemm

#endif // MIXGEMM_RUNTIME_PTQ_H
