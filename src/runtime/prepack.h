/**
 * @file
 * Pre-packed weight lookup for GEMM backends.
 *
 * MixGemmBackend receives B operands as raw int32 spans (the QNode
 * weight tensors) and historically re-packed them on every call — per
 * layer, per inference. A PrepackedWeights provider breaks that: the
 * packed-weight store (src/store) indexes a model's packed panels by
 * the weight tensor's data pointer, and the backend consults it before
 * packing. QNode::weights_q vectors are pointer-stable for the life of
 * a registered graph, which is exactly the provider's required
 * lifetime, so the pointer is a sound key; k, n and the data-size
 * configuration are re-validated on every hit anyway.
 *
 * The interface lives in src/runtime (not src/store) so the backend
 * depends only on the abstraction and the store can depend on the
 * backend-facing runtime types without a cycle.
 */

#ifndef MIXGEMM_RUNTIME_PREPACK_H
#define MIXGEMM_RUNTIME_PREPACK_H

#include <cstdint>

#include "bs/geometry.h"

namespace mixgemm
{

class CompressedB;

/** Read-only provider of pre-packed B operands for a GEMM backend. */
class PrepackedWeights
{
  public:
    virtual ~PrepackedWeights() = default;

    /**
     * The packed B operand for the weight tensor at @p data with shape
     * k x n under @p config, or nullptr when this provider holds no
     * match (the backend then packs fresh, as without a provider). The
     * returned operand must stay valid for the provider's lifetime and
     * be safe for concurrent read-only GEMM use from many threads.
     */
    virtual const CompressedB *find(const int32_t *data, uint64_t k,
                                    uint64_t n,
                                    const DataSizeConfig &config) const = 0;
};

} // namespace mixgemm

#endif // MIXGEMM_RUNTIME_PREPACK_H
