#include "runtime/ptq.h"

#include <algorithm>

#include "common/logging.h"
#include "quant/calibration.h"

namespace mixgemm
{

namespace
{

/** Per-tensor symmetric absmax weight parameters. */
QuantParams
weightAbsmax(std::span<const double> values, unsigned bits)
{
    return calibrateAbsmax(values, bits, true);
}

} // namespace

QuantizedGraph
buildPtqGraph(Network &network, const PatternDataset &data,
              const PtqOptions &options)
{
    if (data.size() == 0)
        fatal("buildPtqGraph: empty calibration dataset");
    const size_t cal_count =
        std::min<size_t>(options.calibration_samples, data.size());

    // --- 1. Observe per-layer input activation ranges on the float
    //        network (the paper averages the 99.999 percentile over
    //        calibration batches).
    const auto &layers = network.layers();
    std::vector<PercentileCalibrator> calibrators;
    calibrators.reserve(layers.size());
    for (size_t i = 0; i < layers.size(); ++i)
        calibrators.emplace_back(options.percentile, options.a_bits,
                                 true);

    for (size_t s = 0; s < cal_count; ++s) {
        Tensor<double> t = data.samples()[s].image;
        for (size_t i = 0; i < layers.size(); ++i) {
            Layer *layer = layers[i].get();
            if (dynamic_cast<Conv2d *>(layer) ||
                dynamic_cast<Linear *>(layer) ||
                dynamic_cast<DepthwiseConv2d *>(layer))
                calibrators[i].addBatch(t.flat());
            t = layer->forward(t, false);
        }
    }

    // --- 2. Quantize weights (per-tensor absmax) and assemble nodes.
    std::vector<QNode> nodes;
    for (size_t i = 0; i < layers.size(); ++i) {
        Layer *layer = layers[i].get();
        if (auto *conv = dynamic_cast<Conv2d *>(layer)) {
            QuantParams ap = calibrators[i].finish();
            ap.bits = options.a_bits;
            nodes.push_back(makeConvNode(
                *conv, ap,
                weightAbsmax(conv->weights().flat(), options.w_bits)));
        } else if (auto *fc = dynamic_cast<Linear *>(layer)) {
            QuantParams ap = calibrators[i].finish();
            ap.bits = options.a_bits;
            nodes.push_back(makeLinearNode(
                *fc, ap,
                weightAbsmax(fc->weights().flat(), options.w_bits)));
        } else if (auto *dw = dynamic_cast<DepthwiseConv2d *>(layer)) {
            QuantParams ap = calibrators[i].finish();
            ap.bits = options.a_bits;
            nodes.push_back(makeDepthwiseNode(
                *dw, ap,
                weightAbsmax(dw->weights().flat(), options.w_bits)));
        } else if (dynamic_cast<Relu *>(layer)) {
            QNode n;
            n.kind = QNode::Kind::kRelu;
            nodes.push_back(n);
        } else if (dynamic_cast<MaxPool2 *>(layer)) {
            QNode n;
            n.kind = QNode::Kind::kMaxPool2;
            nodes.push_back(n);
        } else if (dynamic_cast<Flatten *>(layer)) {
            QNode n;
            n.kind = QNode::Kind::kFlatten;
            nodes.push_back(n);
        } else {
            fatal(strCat("buildPtqGraph: unsupported layer ",
                         layer->name()));
        }
    }
    QuantizedGraph graph(std::move(nodes));

    // --- 3. Bias correction (Nagel et al.): walk float and quantized
    //        paths together; at each linear node, shift its bias by
    //        the mean per-channel output difference, then continue
    //        both paths with the corrected node.
    if (options.bias_correction) {
        const size_t bias_count =
            std::min<size_t>(options.bias_samples, data.size());
        NaiveBackend backend;
        for (size_t ni = 0; ni < graph.nodes().size(); ++ni) {
            QNode &node = graph.nodes()[ni];
            if (node.kind != QNode::Kind::kConv &&
                node.kind != QNode::Kind::kDepthwise &&
                node.kind != QNode::Kind::kLinear)
                continue;
            std::vector<double> f_out;
            std::vector<double> q_out;
            for (size_t s = 0; s < bias_count; ++s) {
                // Drive both paths up to this node.
                Tensor<double> ft = data.samples()[s].image;
                Tensor<double> qt = data.samples()[s].image;
                for (size_t j = 0; j < ni; ++j) {
                    ft = layers[j]->forward(ft, false);
                    qt = runQNode(graph.nodes()[j], qt, backend);
                }
                const auto f_layer = layers[ni]->forward(ft, false);
                const auto q_layer = runQNode(node, qt, backend);
                // Per-channel means over the spatial extent.
                const size_t channels = node.spec.out_c;
                const size_t per_c = f_layer.size() / channels;
                for (size_t c = 0; c < channels; ++c) {
                    double fm = 0.0;
                    double qm = 0.0;
                    if (node.kind != QNode::Kind::kLinear) {
                        for (size_t p = 0; p < per_c; ++p) {
                            fm += f_layer[c * per_c + p];
                            qm += q_layer[c * per_c + p];
                        }
                        fm /= static_cast<double>(per_c);
                        qm /= static_cast<double>(per_c);
                    } else {
                        fm = f_layer[c];
                        qm = q_layer[c];
                    }
                    f_out.push_back(fm);
                    q_out.push_back(qm);
                }
            }
            const auto corrections =
                biasCorrection(f_out, q_out, node.spec.out_c);
            for (size_t c = 0; c < corrections.size(); ++c)
                node.bias[c] += corrections[c];
        }
    }
    return graph;
}

} // namespace mixgemm
