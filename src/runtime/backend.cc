#include "runtime/backend.h"

#include "gemm/kernels/autotune.h"
#include "gemm/mixgemm.h"
#include "gemm/reference.h"

namespace mixgemm
{

std::vector<int64_t>
NaiveBackend::gemm(std::span<const int32_t> a, std::span<const int32_t> b,
                   uint64_t m, uint64_t n, uint64_t k,
                   const DataSizeConfig &)
{
    return referenceGemmInt(a, b, m, n, k);
}

std::vector<int64_t>
MixGemmBackend::gemm(std::span<const int32_t> a,
                     std::span<const int32_t> b, uint64_t m, uint64_t n,
                     uint64_t k, const DataSizeConfig &config)
{
    const auto geometry = geometryForK(computeBsGeometry(config), k);
    BlockingParams blocking = BlockingParams::paperDefaults();
    if (tuning_)
        if (const TuningEntry *entry = tuning_->find(config))
            applyTuning(*entry, blocking);
    blocking.threads = threads_;
    blocking.kernel_mode = kernel_mode_;
    blocking.session = session_;
    blocking.trace_label = trace_label_;
    blocking.trace_tenant = request_ctx_.tenant;
    blocking.trace_request_id = request_ctx_.request_id;
    blocking.trace_rung = request_ctx_.rung;
    blocking.fault_policy = fault_policy_;
    blocking.fault = fault_;
    blocking.abft_max_retries = abft_retries_;
    blocking.cancel = cancel_;

    // Pre-packed B (weight store): skip packing + expansion entirely
    // and compute from the provider's panels — zero-copy when they
    // borrow a mapped artifact. Bitwise identical either way.
    const CompressedB *pb =
        prepacked_ ? prepacked_->find(b.data(), k, n, config) : nullptr;
    MixGemmResult result;
    if (pb) {
        ++prepack_hits_;
        blocking.weight_source =
            pb->borrowsStorage() ? "store-mmap" : "prepacked";
        if (pb->borrowsStorage()) {
            blocking.weight_bytes_mapped =
                pb->bytes() + (pb->clusterPanelsBuilt()
                                   ? pb->clusterPanelWordCount() * 8
                                   : 0);
        }
        const CompressedA ca(a, m, k, geometry);
        result = mixGemm(ca, *pb, blocking);
    } else {
        if (prepacked_)
            ++prepack_misses_;
        result = mixGemm(a, b, m, n, k, geometry, blocking);
    }
    total_bs_ip_ += result.counters.get(Counter::BsIp);
    last_abft_ = result.abft;
    last_status_ = result.status;
    // ABFT retry exhaustion on a compute fault is transient from the
    // caller's perspective — a whole-GEMM re-execution may land on
    // clean hardware — so report it retriable (kUnavailable). Input
    // corruption is not: recomputation reads the same corrupt words.
    if (last_status_.ok() && result.abft.tiles_uncorrected > 0 &&
        result.abft.input_k_mismatches == 0)
        last_status_ = Status::unavailable(
            strCat("ABFT: ", result.abft.tiles_uncorrected,
                   " tile(s) uncorrected after retry budget"));
    return std::move(result.c);
}

} // namespace mixgemm
