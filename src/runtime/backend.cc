#include "runtime/backend.h"

#include "gemm/mixgemm.h"
#include "gemm/reference.h"

namespace mixgemm
{

std::vector<int64_t>
NaiveBackend::gemm(std::span<const int32_t> a, std::span<const int32_t> b,
                   uint64_t m, uint64_t n, uint64_t k,
                   const DataSizeConfig &)
{
    return referenceGemmInt(a, b, m, n, k);
}

std::vector<int64_t>
MixGemmBackend::gemm(std::span<const int32_t> a,
                     std::span<const int32_t> b, uint64_t m, uint64_t n,
                     uint64_t k, const DataSizeConfig &config)
{
    const auto geometry = geometryForK(computeBsGeometry(config), k);
    BlockingParams blocking = BlockingParams::paperDefaults();
    blocking.threads = threads_;
    blocking.kernel_mode = kernel_mode_;
    blocking.session = session_;
    blocking.trace_label = trace_label_;
    blocking.fault_policy = fault_policy_;
    blocking.fault = fault_;
    blocking.abft_max_retries = abft_retries_;
    auto result = mixGemm(a, b, m, n, k, geometry, blocking);
    total_bs_ip_ += result.counters.get(Counter::BsIp);
    last_abft_ = result.abft;
    return std::move(result.c);
}

} // namespace mixgemm
