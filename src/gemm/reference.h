/**
 * @file
 * Naive reference GEMMs used as correctness oracles for the blocked
 * implementations. Triple loop, no tiling, no cleverness.
 */

#ifndef MIXGEMM_GEMM_REFERENCE_H
#define MIXGEMM_GEMM_REFERENCE_H

#include <cstdint>
#include <span>
#include <vector>

namespace mixgemm
{

/** C(m x n) = A(m x k) * B(k x n) on int32 inputs, int64 accumulation. */
std::vector<int64_t> referenceGemmInt(std::span<const int32_t> a,
                                      std::span<const int32_t> b,
                                      uint64_t m, uint64_t n, uint64_t k);

/** C(m x n) = A(m x k) * B(k x n) on doubles. */
std::vector<double> referenceGemmDouble(std::span<const double> a,
                                        std::span<const double> b,
                                        uint64_t m, uint64_t n, uint64_t k);

} // namespace mixgemm

#endif // MIXGEMM_GEMM_REFERENCE_H
