#include "gemm/reference.h"

#include "common/logging.h"

namespace mixgemm
{

std::vector<int64_t>
referenceGemmInt(std::span<const int32_t> a, std::span<const int32_t> b,
                 uint64_t m, uint64_t n, uint64_t k)
{
    if (a.size() != m * k || b.size() != k * n)
        fatal("referenceGemmInt: operand sizes do not match dimensions");
    std::vector<int64_t> c(m * n, 0);
    for (uint64_t i = 0; i < m; ++i)
        for (uint64_t l = 0; l < k; ++l) {
            const int64_t av = a[i * k + l];
            for (uint64_t j = 0; j < n; ++j)
                c[i * n + j] += av * b[l * n + j];
        }
    return c;
}

std::vector<double>
referenceGemmDouble(std::span<const double> a, std::span<const double> b,
                    uint64_t m, uint64_t n, uint64_t k)
{
    if (a.size() != m * k || b.size() != k * n)
        fatal("referenceGemmDouble: operand sizes do not match dimensions");
    std::vector<double> c(m * n, 0.0);
    for (uint64_t i = 0; i < m; ++i)
        for (uint64_t l = 0; l < k; ++l) {
            const double av = a[i * k + l];
            for (uint64_t j = 0; j < n; ++j)
                c[i * n + j] += av * b[l * n + j];
        }
    return c;
}

} // namespace mixgemm
