/**
 * @file
 * BLIS-style blocking parameters (Section II-C, Fig. 2, Table I).
 *
 * A GEMM is tiled into panels sized so each block lives in the right
 * level of the memory hierarchy: a [mc x kc] A panel in L2, [nr x kc]
 * B μ-panels in L1, and the [mr x nr] C μ-panel in the register file —
 * or, in Mix-GEMM, in the μ-engine's AccMem. Table I's DSE settles on
 * mc = nc = kc = 256 and mr = nr = 4 for the target SoC.
 */

#ifndef MIXGEMM_GEMM_BLOCKING_H
#define MIXGEMM_GEMM_BLOCKING_H

#include <cstdint>
#include <string>

#include "common/cancel.h"
#include "common/status.h"
#include "fault/fault.h"
#include "gemm/kernels/kernel.h"

namespace mixgemm
{

class TraceSession;

/**
 * Which μ-kernel implementation mixGemm() executes.
 *
 *  - Modeled: every μ-vector pair goes through the functional μ-engine
 *    (BsEngine::ip): element-by-element unpack, per-chunk re-pack, the
 *    cycle-accurate reference.
 *  - Fast: the word-domain fast path — operands expand once (bw -> cw,
 *    bs/expand.h) into cached cluster-domain panels and each μ-kernel
 *    cell is a stream of multiply/extract cycles over them. Bitwise
 *    identical C and counter totals (the instruction and cycle counts
 *    are arithmetic identities of the loop structure), an order of
 *    magnitude faster in wall-clock.
 */
enum class KernelMode
{
    Modeled,
    Fast,
};

/** Cache-blocking and register-blocking dimensions. */
struct BlockingParams
{
    uint64_t mc = 256; ///< A-panel rows (L2 resident)
    uint64_t nc = 256; ///< B-panel columns (memory/L2 streamed)
    uint64_t kc = 256; ///< shared k extent of a panel pair (L1 resident)
    unsigned mr = 4;   ///< μ-panel rows (register / AccMem blocked)
    unsigned nr = 4;   ///< μ-panel columns (register / AccMem blocked)

    /**
     * Worker threads for the macro-kernel loops: each worker drives its
     * own functional μ-engine over a disjoint set of [mc x nc] macro
     * tiles (the BLIS jc/ic parallelization the paper uses across
     * Sargantana cores). 1 = serial (the default); 0 = one per hardware
     * thread. Results and counter totals are identical for every value.
     */
    unsigned threads = 1;

    /**
     * μ-kernel implementation; Fast (the default) computes on packed
     * words end to end and is bitwise identical to Modeled in output
     * and counters — keep Modeled for cycle-model cross-validation and
     * as the arbiter if the paths ever disagree.
     */
    KernelMode kernel_mode = KernelMode::Fast;

    /**
     * SIMD lane-width ceiling for fast-path μ-kernel selection
     * (gemm/kernels/kernel.h). Auto — the default — dispatches the
     * widest registered kernel this binary was compiled for; Off keeps
     * the legacy per-cell scalar loop. Every level is bitwise
     * identical in C and counters; only wall-clock changes.
     */
    SimdLevel simd = SimdLevel::Auto;

    /**
     * Force a specific registry μ-kernel by name (typically from a
     * tuning file, see gemm/kernels/autotune.h). Empty — the default —
     * selects automatically per @ref simd. A name that does not exist
     * or does not apply to the GEMM's geometry/shape falls back to
     * automatic selection with a warning.
     */
    std::string micro_kernel;

    /**
     * Observability sink (trace/session.h): when set, mixGemm() times
     * its macro tiles into per-worker histograms and appends one
     * RunReport (shape, config, counters, timer percentiles, packed
     * bytes) labeled @ref trace_label to the session. TRACE_SCOPE
     * spans are independent of this knob — they follow the globally
     * active tracer. Results never depend on either.
     */
    TraceSession *session = nullptr;

    /** RunReport label for this GEMM (layer name, bench id, ...). */
    std::string trace_label = "mixgemm";

    /**
     * Provenance of the B operand for RunReports: "packed" (compressed
     * by this call or its caller), "prepacked" (owned panels reused
     * from a weight cache), or "store-mmap" (zero-copy panels borrowed
     * from a mapped artifact). Set by MixGemmBackend when a
     * PrepackedWeights provider hits; pure metadata — results never
     * depend on it.
     */
    std::string weight_source = "packed";

    /** Mapped (borrowed) B bytes backing this GEMM, for RunReports. */
    uint64_t weight_bytes_mapped = 0;

    /**
     * Request-scoped trace identity (serving path): copied verbatim
     * into the RunReport so one served request's GEMMs are attributable
     * to a tenant/request/rung. Pure metadata; empty outside serving.
     */
    std::string trace_tenant;
    uint64_t trace_request_id = 0;
    unsigned trace_rung = 0;

    /**
     * ABFT behavior of mixGemm() (see fault/fault.h for the policy
     * semantics). Off — the default — performs no checksum work and is
     * bitwise-identical to the pre-ABFT driver.
     */
    FaultPolicy fault_policy = FaultPolicy::Off;

    /**
     * Optional fault-injection engine (fault/injector.h): when set,
     * mixGemm() plans and applies its faults — independently of
     * @ref fault_policy, so campaigns can measure silent corruption
     * under Off as well as detection/correction under the ABFT
     * policies. Not owned; must outlive the call.
     */
    FaultInjector *fault = nullptr;

    /**
     * Per-tile recompute budget under FaultPolicy::DetectRetry.
     * Attempt 0 re-runs the configured kernel; later attempts back off
     * to the Modeled kernel (the arbiter path).
     */
    unsigned abft_max_retries = 2;

    /**
     * Cooperative cancellation (common/cancel.h): when set, every
     * worker polls the token before each jc/ic macro tile and stops
     * issuing work once it trips (expired deadline, explicit cancel);
     * mixGemm() then returns with MixGemmResult::status carrying the
     * reason and the partial C discarded by the caller. An untriggered
     * token is bitwise-transparent — identical C and counters to no
     * token at all. Not owned; must outlive the call.
     */
    const CancelToken *cancel = nullptr;

    /** Table I defaults. */
    static BlockingParams paperDefaults() { return BlockingParams{}; }

    /** @throws FatalError when any dimension is zero or mr*nr == 0. */
    void validate() const;

    /**
     * Structured variant of validate() for external-input boundaries:
     * returns the violation instead of throwing.
     */
    Status validateStatus() const;
};

/**
 * Analytical blocking derivation in the spirit of Low et al. [45]:
 * choose kc so an [mr x kc] A μ-panel and [nr x kc] B μ-panel fill a
 * share of L1, and mc so the A panel fits L2. Both are rounded down to
 * powers of two, so the caps scale with the cache budgets (the target
 * SoC's 32 KB L1 / 512 KB L2 still lands on the Table I values).
 * Element sizes are in bytes (8 for μ-vector words and doubles).
 *
 * Degenerate cache budgets clamp instead of underflowing: kc and mc
 * never drop below one μ-panel (mr), and mc/nc round down to whole
 * multiples of mr/nr so the macro tiles always decompose into complete
 * register blocks plus a matrix edge — never a cache block smaller
 * than its own register block.
 * @throws FatalError on the errors tryDeriveBlocking() reports.
 */
BlockingParams deriveBlocking(uint64_t l1_bytes, uint64_t l2_bytes,
                              unsigned elem_bytes, unsigned mr,
                              unsigned nr);

/**
 * Checked variant of deriveBlocking() for external-input boundaries
 * (CLI flags, tuning files): zero sizes, zero register blocks, and
 * impossible geometries (mr * nr overflowing the AccMem bound) come
 * back as a structured error instead of a FatalError throw.
 */
Expected<BlockingParams> tryDeriveBlocking(uint64_t l1_bytes,
                                           uint64_t l2_bytes,
                                           unsigned elem_bytes,
                                           unsigned mr, unsigned nr);

} // namespace mixgemm

#endif // MIXGEMM_GEMM_BLOCKING_H
