#include "gemm/blocking.h"

#include <algorithm>

#include "common/logging.h"

namespace mixgemm
{

void
BlockingParams::validate() const
{
    if (Status s = validateStatus(); !s.ok())
        fatal(s.toString());
}

Status
BlockingParams::validateStatus() const
{
    if (mc == 0 || nc == 0 || kc == 0 || mr == 0 || nr == 0)
        return Status::invalidArgument(
            "BlockingParams: all dimensions must be positive");
    if (mr > mc || nr > nc)
        return Status::invalidArgument(
            "BlockingParams: register blocks exceed cache blocks");
    // mr * nr AccMem slots must exist; BsEngine sizes off this product,
    // so an overflowing product would silently wrap.
    if (uint64_t{mr} * nr > 1u << 20)
        return Status::invalidArgument(
            "BlockingParams: mr * nr unreasonably large");
    return Status();
}

namespace
{

/** Largest power of two <= @p value; @pre value >= 1. */
uint64_t
floorPow2(uint64_t value)
{
    uint64_t p = 1;
    while (p * 2 <= value)
        p *= 2;
    return p;
}

} // namespace

Expected<BlockingParams>
tryDeriveBlocking(uint64_t l1_bytes, uint64_t l2_bytes,
                  unsigned elem_bytes, unsigned mr, unsigned nr)
{
    if (l1_bytes == 0 || l2_bytes == 0 || elem_bytes == 0)
        return Status::invalidArgument(
            "deriveBlocking: cache and element sizes must be positive");
    if (mr == 0 || nr == 0)
        return Status::invalidArgument(
            "deriveBlocking: register blocks must be positive");
    if (uint64_t{mr} * nr > 1u << 20)
        return Status::invalidArgument(
            "deriveBlocking: mr * nr exceeds any plausible AccMem");
    BlockingParams p;
    p.mr = mr;
    p.nr = nr;
    // kc: an [mr x kc] + [nr x kc] μ-panel pair should occupy about
    // three quarters of L1 (the C μ-panel lives in registers or, for
    // Mix-GEMM, in the AccMem, so the μ-panels are the main residents).
    // Rounded down to a power of two so panel strides stay friendly to
    // set-indexed caches; the cap therefore scales with the actual L1
    // budget instead of a hard 256 that wastes large caches. A tiny L1
    // drives the quotient to zero — clamp at one μ-panel (mr) so the
    // k loop still advances in whole panels.
    const uint64_t kc =
        l1_bytes * 3 / 4 / (uint64_t{mr + nr} * elem_bytes);
    p.kc = std::max<uint64_t>(mr, floorPow2(std::max<uint64_t>(1, kc)));
    // mc: the packed [mc x kc] A panel should occupy about half of L2,
    // again capped only by the cache budget itself — clamped to at
    // least one register block and rounded down to a whole multiple of
    // mr, so a macro tile never holds a fractional μ-panel (floorPow2
    // alone guarantees that only for power-of-two mr).
    const uint64_t mc = l2_bytes / 2 / (p.kc * elem_bytes);
    p.mc = std::max<uint64_t>(mr, floorPow2(std::max<uint64_t>(1, mc)));
    p.mc = std::max<uint64_t>(mr, p.mc / mr * mr);
    p.nc = std::max<uint64_t>(256, nr);
    p.nc = std::max<uint64_t>(nr, p.nc / nr * nr);
    if (Status s = p.validateStatus(); !s.ok())
        return s;
    return p;
}

BlockingParams
deriveBlocking(uint64_t l1_bytes, uint64_t l2_bytes, unsigned elem_bytes,
               unsigned mr, unsigned nr)
{
    Expected<BlockingParams> p =
        tryDeriveBlocking(l1_bytes, l2_bytes, elem_bytes, mr, nr);
    if (!p)
        fatal(p.status().toString());
    return *p;
}

} // namespace mixgemm
