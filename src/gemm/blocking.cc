#include "gemm/blocking.h"

#include <algorithm>

#include "common/logging.h"

namespace mixgemm
{

void
BlockingParams::validate() const
{
    if (mc == 0 || nc == 0 || kc == 0 || mr == 0 || nr == 0)
        fatal("BlockingParams: all dimensions must be positive");
    if (mr > mc || nr > nc)
        fatal("BlockingParams: register blocks exceed cache blocks");
}

BlockingParams
deriveBlocking(uint64_t l1_bytes, uint64_t l2_bytes, unsigned elem_bytes,
               unsigned mr, unsigned nr)
{
    if (l1_bytes == 0 || l2_bytes == 0 || elem_bytes == 0)
        fatal("deriveBlocking: sizes must be positive");
    BlockingParams p;
    p.mr = mr;
    p.nr = nr;
    // kc: an [mr x kc] + [nr x kc] μ-panel pair should occupy about
    // three quarters of L1 (the C μ-panel lives in registers or, for
    // Mix-GEMM, in the AccMem, so the μ-panels are the main residents).
    const uint64_t kc =
        l1_bytes * 3 / 4 / (uint64_t{mr + nr} * elem_bytes);
    p.kc = std::clamp<uint64_t>(kc, mr, 256);
    // mc: the packed [mc x kc] A panel should occupy about half of L2.
    const uint64_t mc = l2_bytes / 2 / (p.kc * elem_bytes);
    p.mc = std::clamp<uint64_t>(mc, mr, 256);
    p.nc = 256;
    p.validate();
    return p;
}

} // namespace mixgemm
