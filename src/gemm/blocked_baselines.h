/**
 * @file
 * Baseline blocked GEMMs the paper compares against (Section IV-B):
 *
 *  - blockedDgemm: the BLIS-derived DGEMM on 64-bit doubles, the
 *    speed-up baseline of Fig. 6;
 *  - blockedInt8Gemm: the same BLIS structure on 8-bit integers stored
 *    one per byte (what "BLIS running with 8-bit data" can do on a
 *    stock RV64 scalar core: one MAC per element, eight elements per
 *    64-bit load), which the paper measures at ~2.5x over DGEMM.
 *
 * Both use the same 5-loop blocking as Mix-GEMM and report the dynamic
 * operation mix in a CounterSet, which the timing models in src/sim
 * turn into cycles.
 */

#ifndef MIXGEMM_GEMM_BLOCKED_BASELINES_H
#define MIXGEMM_GEMM_BLOCKED_BASELINES_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.h"
#include "gemm/blocking.h"

namespace mixgemm
{

/** Result of a baseline blocked GEMM. */
template <typename T>
struct BlockedGemmResult
{
    std::vector<T> c;
    CounterSet counters; ///< loads/stores/fmul/fadd/imul/iadd/ops
};

/** BLIS-style blocked DGEMM: C(m x n) = A(m x k) * B(k x n). */
BlockedGemmResult<double> blockedDgemm(
    std::span<const double> a, std::span<const double> b, uint64_t m,
    uint64_t n, uint64_t k,
    const BlockingParams &blocking = BlockingParams::paperDefaults());

/** BLIS-style blocked int8 GEMM with int32 accumulation. */
BlockedGemmResult<int32_t> blockedInt8Gemm(
    std::span<const int8_t> a, std::span<const int8_t> b, uint64_t m,
    uint64_t n, uint64_t k,
    const BlockingParams &blocking = BlockingParams::paperDefaults());

} // namespace mixgemm

#endif // MIXGEMM_GEMM_BLOCKED_BASELINES_H
