#include "gemm/blocked_baselines.h"

#include <algorithm>

#include "common/logging.h"

namespace mixgemm
{

namespace
{

/**
 * Shared 5-loop blocked GEMM skeleton. The register-blocked μ-kernel
 * keeps an mr x nr accumulator tile, loading mr + nr operand elements
 * per k step — the operation mix the in-order core timing model prices.
 *
 * @tparam TIn   operand element type
 * @tparam TAcc  accumulator/output element type
 */
template <typename TIn, typename TAcc>
BlockedGemmResult<TAcc>
blockedGemm(std::span<const TIn> a, std::span<const TIn> b, uint64_t m,
            uint64_t n, uint64_t k, const BlockingParams &blocking,
            const char *mul_counter, const char *add_counter)
{
    blocking.validate();
    if (a.size() != m * k || b.size() != k * n)
        fatal("blockedGemm: operand sizes do not match dimensions");

    BlockedGemmResult<TAcc> result;
    result.c.assign(m * n, TAcc{});
    CounterSet &ctr = result.counters;

    std::vector<TAcc> tile(uint64_t{blocking.mr} * blocking.nr);

    for (uint64_t jc = 0; jc < n; jc += blocking.nc) {
        const uint64_t nc = std::min<uint64_t>(blocking.nc, n - jc);
        for (uint64_t lc = 0; lc < k; lc += blocking.kc) {
            const uint64_t kc = std::min<uint64_t>(blocking.kc, k - lc);
            ctr.inc("b_panels");
            for (uint64_t ic = 0; ic < m; ic += blocking.mc) {
                const uint64_t mc = std::min<uint64_t>(blocking.mc,
                                                       m - ic);
                ctr.inc("a_panels");
                for (uint64_t jr = 0; jr < nc; jr += blocking.nr) {
                    const unsigned nr = static_cast<unsigned>(
                        std::min<uint64_t>(blocking.nr, nc - jr));
                    for (uint64_t ir = 0; ir < mc; ir += blocking.mr) {
                        const unsigned mr = static_cast<unsigned>(
                            std::min<uint64_t>(blocking.mr, mc - ir));
                        // μ-kernel over the [ir, jr] tile.
                        std::fill(tile.begin(), tile.end(), TAcc{});
                        const uint64_t row0 = ic + ir;
                        const uint64_t col0 = jc + jr;
                        for (uint64_t l = lc; l < lc + kc; ++l) {
                            for (unsigned j = 0; j < mr; ++j) {
                                const TAcc av = a[(row0 + j) * k + l];
                                for (unsigned i = 0; i < nr; ++i)
                                    tile[j * blocking.nr + i] +=
                                        av *
                                        static_cast<TAcc>(
                                            b[l * n + col0 + i]);
                            }
                            ctr.inc("operand_loads", mr + nr);
                            ctr.inc(mul_counter, uint64_t{mr} * nr);
                            ctr.inc(add_counter, uint64_t{mr} * nr);
                        }
                        for (unsigned j = 0; j < mr; ++j)
                            for (unsigned i = 0; i < nr; ++i)
                                result.c[(row0 + j) * n + col0 + i] +=
                                    tile[j * blocking.nr + i];
                        ctr.inc("c_updates", uint64_t{mr} * nr);
                        ctr.inc("micro_kernels");
                    }
                }
            }
        }
    }
    ctr.set("ops", 2 * m * n * k);
    return result;
}

} // namespace

BlockedGemmResult<double>
blockedDgemm(std::span<const double> a, std::span<const double> b,
             uint64_t m, uint64_t n, uint64_t k,
             const BlockingParams &blocking)
{
    return blockedGemm<double, double>(a, b, m, n, k, blocking, "fmul",
                                       "fadd");
}

BlockedGemmResult<int32_t>
blockedInt8Gemm(std::span<const int8_t> a, std::span<const int8_t> b,
                uint64_t m, uint64_t n, uint64_t k,
                const BlockingParams &blocking)
{
    return blockedGemm<int8_t, int32_t>(a, b, m, n, k, blocking, "imul",
                                        "iadd");
}

} // namespace mixgemm
