#include "gemm/mixgemm.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "bs/engine.h"
#include "bs/expand.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "fault/abft.h"
#include "fault/injector.h"
#include "gemm/kernels/kernel.h"
#include "trace/metrics.h"
#include "trace/session.h"
#include "trace/tracer.h"

namespace mixgemm
{

namespace
{

/**
 * Routes the modeled engine's accumulation-group results through the
 * fault injector. One instance per worker: beginKernel() loads the
 * μ-kernel's cell coordinates and the per-slot group counters, so each
 * group result maps back to its logical (row, col, group) coordinate —
 * results arrive per slot in ascending group order. Cells outside the
 * tile bounds never consume an arm: they are discarded at bs.get time
 * here and skipped entirely by the fast kernel, and the coordinate's
 * owning tile applies the fault instead.
 */
class IpFaultHook final : public BsGroupResultHook
{
  public:
    explicit IpFaultHook(FaultInjector &injector) : injector_(injector)
    {
    }

    void beginKernel(uint64_t ir, uint64_t jr, uint64_t row_end,
                     uint64_t col_end, unsigned g0, unsigned mr,
                     unsigned nr)
    {
        ir_ = ir;
        jr_ = jr;
        row_end_ = row_end;
        col_end_ = col_end;
        g0_ = g0;
        mr_ = mr;
        seen_.assign(uint64_t{mr} * nr, 0);
    }

    int64_t onGroupResult(unsigned slot, int64_t value) override
    {
        const unsigned g = g0_ + seen_[slot]++;
        const uint64_t row = ir_ + slot % mr_;
        const uint64_t col = jr_ + slot / mr_;
        if (row >= row_end_ || col >= col_end_)
            return value;
        return injector_.applyIp(row, col, g, value);
    }

  private:
    FaultInjector &injector_;
    uint64_t ir_ = 0, jr_ = 0, row_end_ = 0, col_end_ = 0;
    unsigned g0_ = 0, mr_ = 1;
    std::vector<unsigned> seen_;
};

/**
 * One modeled μ-kernel: mr x nr output cells over [g0, g1) accumulation
 * groups, every μ-vector pair issued through the functional μ-engine.
 * @p interior promises every row/col is in range, so the hot loop
 * fetches panel words by pointer with no per-word bounds branches; edge
 * μ-panels take the checked loop and issue zero μ-vectors out of range.
 * Bounds are the enclosing macro tile's (@p row_end, @p col_end), not
 * the matrix's: a tile edge that is not a matrix edge must not touch
 * the neighboring tile's C cells.
 */
void
microKernelModeled(const CompressedA &a, const CompressedB &b,
                   BsEngine &engine, IpFaultHook *hook, uint64_t ir,
                   uint64_t jr, uint64_t row_end, uint64_t col_end,
                   unsigned g0, unsigned g1, unsigned mr, unsigned nr,
                   bool interior, std::vector<int64_t> &c,
                   CounterSet &counters)
{
    const BsGeometry &geom = a.geometry();
    const uint64_t n = b.n();
    const unsigned kua = geom.kua;
    const unsigned kub = geom.kub;
    const unsigned pairs = geom.group_pairs;

    if (hook)
        hook->beginKernel(ir, jr, row_end, col_end, g0, mr, nr);

    if (interior) {
        const uint64_t *a_words = a.words().data();
        const uint64_t *b_words = b.words().data();
        for (unsigned g = g0; g < g1; ++g) {
            for (unsigned i = 0; i < nr; ++i) {
                const uint64_t *bw =
                    b_words + b.wordIndex(jr + i, g, 0);
                for (unsigned j = 0; j < mr; ++j) {
                    const uint64_t *aw =
                        a_words + a.wordIndex(ir + j, g, 0);
                    for (unsigned p = 0; p < pairs; ++p)
                        engine.ip(p < kua ? aw[p] : 0,
                                  p < kub ? bw[p] : 0);
                }
            }
            counters.inc(Counter::BsIp, uint64_t{nr} * mr * pairs);
        }
    } else {
        for (unsigned g = g0; g < g1; ++g) {
            for (unsigned i = 0; i < nr; ++i) {
                const uint64_t col = jr + i;
                for (unsigned j = 0; j < mr; ++j) {
                    const uint64_t row = ir + j;
                    for (unsigned p = 0; p < pairs; ++p) {
                        const uint64_t aw = (row < row_end && p < kua)
                            ? a.word(row, g, p)
                            : 0;
                        const uint64_t bw = (col < col_end && p < kub)
                            ? b.word(col, g, p)
                            : 0;
                        engine.ip(aw, bw);
                    }
                }
            }
            counters.inc(Counter::BsIp, uint64_t{nr} * mr * pairs);
        }
    }

    for (unsigned i = 0; i < nr; ++i) {
        for (unsigned j = 0; j < mr; ++j) {
            const int64_t value = engine.get(i * mr + j);
            const uint64_t row = ir + j;
            const uint64_t col = jr + i;
            if (row < row_end && col < col_end)
                c[row * n + col] += value;
        }
    }
    counters.inc(Counter::BsGet, uint64_t{mr} * nr);
}

/**
 * One fast-path μ-kernel: the identical arithmetic, computed directly
 * on the cached cluster-domain panels. A cell's [g0, g1) groups are
 * contiguous in the panel, so each cell is a single multiply/extract
 * stream over (g1 - g0) * chunks cluster-word pairs — no unpack, no
 * re-pack, no per-element state. Instruction counters and busy cycles
 * are arithmetic identities of the loop structure (group_pairs bs.ip
 * and group_cycles per cell-group, mr * nr bs.get), so every total
 * matches the modeled engine exactly; @p cell_groups accumulates the
 * cell-group count the caller converts to busy cycles.
 *
 * When @p injector is set (BsIpResult arms exist), each cell is
 * computed per accumulation group so every group result passes through
 * the injector at the same (row, col, group) coordinate the modeled
 * engine's hook uses — int64 addition is associative, so unfaulted
 * cells are bit-identical to the span path.
 *
 * When @p uk is set (a registry μ-kernel matching this mr x nr shape,
 * see gemm/kernels/kernel.h), interior μ-panels dispatch to it instead
 * of the per-cell loop: same chunk terms, lane-parallel summation —
 * bitwise identical by int64 associativity. Edge panels and the
 * injector path always take the scalar loops, and the counters below
 * are loop-structure identities independent of which body ran.
 */
void
microKernelFast(const CompressedA &a, const CompressedB &b,
                FaultInjector *injector, const MicroKernel *uk,
                uint64_t ir, uint64_t jr, uint64_t row_end,
                uint64_t col_end, unsigned g0, unsigned g1, unsigned mr,
                unsigned nr, bool interior, std::vector<int64_t> &c,
                CounterSet &counters, uint64_t &cell_groups)
{
    const BsGeometry &geom = a.geometry();
    const uint64_t n = b.n();
    const unsigned wpg = a.clusterWordsPerGroup();
    const unsigned span = (g1 - g0) * wpg;

    if (injector) {
        for (unsigned i = 0; i < nr; ++i) {
            const uint64_t col = jr + i;
            if (col >= col_end)
                continue;
            const uint64_t *cb = b.groupClusters(col, g0);
            for (unsigned j = 0; j < mr; ++j) {
                const uint64_t row = ir + j;
                if (row >= row_end)
                    continue;
                const uint64_t *ca = a.groupClusters(row, g0);
                int64_t sum = 0;
                for (unsigned g = g0; g < g1; ++g) {
                    const unsigned off = (g - g0) * wpg;
                    sum += injector->applyIp(
                        row, col, g,
                        clusterPanelDot(ca + off, cb + off, wpg, geom));
                }
                c[row * n + col] += sum;
            }
        }
    } else if (interior && uk) {
        MicroTileArgs args;
        args.a = a.groupClusters(ir, g0);
        args.b = b.groupClusters(jr, g0);
        args.a_stride = uint64_t{a.kGroups()} * wpg;
        args.b_stride = uint64_t{b.kGroups()} * wpg;
        args.span = span;
        args.c = c.data() + ir * n + jr;
        args.ldc = n;
        uk->fn(args, geom);
    } else if (interior) {
        for (unsigned i = 0; i < nr; ++i) {
            const uint64_t col = jr + i;
            const uint64_t *cb = b.groupClusters(col, g0);
            for (unsigned j = 0; j < mr; ++j) {
                const uint64_t row = ir + j;
                const uint64_t *ca = a.groupClusters(row, g0);
                c[row * n + col] +=
                    clusterPanelDot(ca, cb, span, geom);
            }
        }
    } else {
        for (unsigned i = 0; i < nr; ++i) {
            const uint64_t col = jr + i;
            if (col >= col_end)
                continue;
            const uint64_t *cb = b.groupClusters(col, g0);
            for (unsigned j = 0; j < mr; ++j) {
                const uint64_t row = ir + j;
                if (row >= row_end)
                    continue;
                const uint64_t *ca = a.groupClusters(row, g0);
                c[row * n + col] +=
                    clusterPanelDot(ca, cb, span, geom);
            }
        }
    }

    // Out-of-range cells issue zero μ-vectors and burn the same engine
    // cycles in the modeled path; count them all the same way here.
    counters.inc(Counter::BsIp,
                 uint64_t{g1 - g0} * nr * mr * geom.group_pairs);
    counters.inc(Counter::BsGet, uint64_t{mr} * nr);
    cell_groups += uint64_t{g1 - g0} * mr * nr;
}

/**
 * One [mc x nc] macro tile of the output: a disjoint C sub-block, so
 * tiles can execute on different workers with no synchronization.
 */
struct MacroTile
{
    uint64_t jc; ///< first output column
    uint64_t nc; ///< columns in this tile
    uint64_t ic; ///< first output row
    uint64_t mc; ///< rows in this tile
};

/**
 * One μ-kernel over [ir0, ir1) rows of a jr strip; @p interior promises
 * every panel in the range is fully inside the tile.
 */
void
runKernelRange(const CompressedA &a, const CompressedB &b,
               BsEngine &engine, IpFaultHook *hook,
               FaultInjector *fast_injector, const MicroKernel *uk,
               const MacroTile &tile, uint64_t jr, uint64_t ir0,
               uint64_t ir1, unsigned gc, unsigned g1, unsigned mr,
               unsigned nr, bool interior, bool fast,
               std::vector<int64_t> &c, CounterSet &counters,
               uint64_t &cell_groups)
{
    for (uint64_t ir = ir0; ir < ir1; ir += mr) {
        if (fast)
            microKernelFast(a, b, fast_injector, uk, tile.ic + ir,
                            tile.jc + jr, tile.ic + tile.mc,
                            tile.jc + tile.nc, gc, g1, mr, nr, interior,
                            c, counters, cell_groups);
        else
            microKernelModeled(a, b, engine, hook, tile.ic + ir,
                               tile.jc + jr, tile.ic + tile.mc,
                               tile.jc + tile.nc, gc, g1, mr, nr,
                               interior, c, counters);
        counters.inc(Counter::MicroKernels);
    }
}

/**
 * Run the k-panel and μ-panel loops of one macro tile (MACRO-KERNEL of
 * Algorithm 1, plus the gc panel loop hoisted per tile). Accumulation
 * into C is int64 and each tile owns its C sub-block, so the result is
 * bitwise identical regardless of tile execution order — and of the
 * kernel mode, since both μ-kernels compute the same chunk sums.
 */
void
runMacroTile(const CompressedA &a, const CompressedB &b, BsEngine &engine,
             IpFaultHook *hook, FaultInjector *fast_injector,
             const MicroKernel *uk, const MacroTile &tile,
             const BlockingParams &blocking, unsigned kc_groups,
             std::vector<int64_t> &c, CounterSet &counters,
             uint64_t &cell_groups)
{
    const unsigned k_groups = a.kGroups();
    const unsigned mr = blocking.mr;
    const unsigned nr = blocking.nr;
    const bool fast = blocking.kernel_mode == KernelMode::Fast;
    for (unsigned gc = 0; gc < k_groups; gc += kc_groups) {
        TRACE_SCOPE("gemm", "k_panel");
        const unsigned g1 = std::min<unsigned>(gc + kc_groups, k_groups);
        // The serial 5-loop nest counts one B panel per (jc, gc) and one
        // A panel per (jc, gc, ic); attribute the shared B panel to the
        // ic == 0 tile of each column panel so totals stay identical.
        if (tile.ic == 0)
            counters.inc(Counter::BPanels);
        counters.inc(Counter::APanels);
        for (uint64_t jr = 0; jr < tile.nc; jr += nr) {
            // Interior μ-panels have every row/col in range (tile
            // extents are already clamped to m/n), so the kernels drop
            // their per-word bounds branches. Splitting each jr strip
            // into its interior run and its edge tail preserves the
            // ascending-ir kernel order while giving the two kernel
            // flavors distinct trace spans.
            const uint64_t interior_rows =
                jr + nr <= tile.nc ? tile.mc / mr * mr : 0;
            if (interior_rows > 0) {
                TRACE_SCOPE("kernel", "ukernels_interior");
                runKernelRange(a, b, engine, hook, fast_injector, uk,
                               tile, jr, 0, interior_rows, gc, g1, mr,
                               nr, true, fast, c, counters,
                               cell_groups);
            }
            if (interior_rows < tile.mc) {
                TRACE_SCOPE("kernel", "ukernels_edge");
                runKernelRange(a, b, engine, hook, fast_injector, uk,
                               tile, jr, interior_rows, tile.mc, gc, g1,
                               mr, nr, false, fast, c, counters,
                               cell_groups);
            }
        }
    }
}

/** Zero one tile's C sub-block before a recompute attempt. */
void
clearTile(std::vector<int64_t> &c, uint64_t n, const MacroTile &tile)
{
    for (uint64_t row = tile.ic; row < tile.ic + tile.mc; ++row)
        std::fill_n(c.begin() +
                        static_cast<ptrdiff_t>(row * n + tile.jc),
                    tile.nc, int64_t{0});
}

/**
 * Serial recompute of one macro tile under @p params: fresh engine,
 * fault hooks re-armed (stuck-at faults reapply; consumed bit flips
 * stay consumed — they were transient), accumulator arms re-checked.
 * Returns the engine busy cycles of the recompute so the caller can
 * keep EngineBusyCycles honest about the extra work.
 */
uint64_t
recomputeTile(const CompressedA &a, const CompressedB &b,
              FaultInjector *injector, const MacroTile &tile,
              const BlockingParams &params, unsigned kc_groups,
              std::vector<int64_t> &c, CounterSet &counters)
{
    const BsGeometry &geom = a.geometry();
    const unsigned mr = params.mr;
    const unsigned nr = params.nr;
    const bool fast = params.kernel_mode == KernelMode::Fast;
    const uint64_t n = b.n();

    clearTile(c, n, tile);
    BsEngine engine(uint64_t{mr} * nr);
    engine.set(geom, mr * nr);
    std::optional<IpFaultHook> hook;
    FaultInjector *ip_injector =
        injector && injector->anyIp() ? injector : nullptr;
    if (!fast && ip_injector) {
        hook.emplace(*ip_injector);
        engine.setGroupResultHook(&*hook);
    }
    const MicroKernel *uk = fast
        ? selectMicroKernel(geom, mr, nr, params.simd,
                            params.micro_kernel)
        : nullptr;
    uint64_t cell_groups = 0;
    runMacroTile(a, b, engine, hook ? &*hook : nullptr,
                 fast ? ip_injector : nullptr, uk, tile, params,
                 kc_groups, c, counters, cell_groups);
    if (injector && injector->anyAcc())
        injector->applyAccumulator(c, n, tile.ic, tile.ic + tile.mc,
                                   tile.jc, tile.jc + tile.nc);
    return engine.busyCycles() + cell_groups * geom.group_cycles;
}

MixGemmResult
mixGemmChecked(const CompressedA &a0, const CompressedB &b0,
               const BlockingParams &blocking)
{
    TRACE_SCOPE("gemm", "mixGemm");
    using clock = std::chrono::steady_clock;
    TraceSession *session = blocking.session;
    const auto wall_start = session ? clock::now() : clock::time_point{};

    const BsGeometry &geom = a0.geometry();
    const uint64_t m = a0.m();
    const uint64_t n = b0.n();
    const unsigned mr = blocking.mr;
    const unsigned nr = blocking.nr;
    // kc in whole accumulation groups, at least one.
    const unsigned kc_groups = std::max<unsigned>(
        1, static_cast<unsigned>(blocking.kc / geom.group_extent));
    const bool fast = blocking.kernel_mode == KernelMode::Fast;
    // Registry μ-kernel for the interior fast path, resolved once per
    // GEMM (tuning-file forced name, then automatic by SIMD level).
    // nullptr keeps the legacy per-cell loop.
    const MicroKernel *uk = fast
        ? selectMicroKernel(geom, mr, nr, blocking.simd,
                            blocking.micro_kernel)
        : nullptr;
    const FaultPolicy policy = blocking.fault_policy;
    FaultInjector *injector = blocking.fault;

    // ABFT snapshot of the pristine operands. Must precede fault
    // injection: the checksums are the ground truth the input-integrity
    // check compares against, and the fault copies below share them.
    if (policy != FaultPolicy::Off) {
        TRACE_SCOPE("abft", "checksums");
        a0.ensureAbftChecksums();
        b0.ensureAbftChecksums();
    }

    // Fault planning and operand corruption (serial). Packed-word and
    // cluster-panel faults mutate *copies* so the caller's operands
    // stay pristine; the corruption persists for the whole GEMM —
    // SRAM bits stay wrong until rewritten — which is why the ABFT
    // input check reports them as uncorrectable instead of retrying.
    std::optional<CompressedA> fa;
    std::optional<CompressedB> fb;
    const CompressedA *pa = &a0;
    const CompressedB *pb = &b0;
    if (injector) {
        GemmPlanShape shape;
        shape.m = m;
        shape.n = n;
        shape.k_groups = a0.kGroups();
        shape.mc = blocking.mc;
        shape.nc = blocking.nc;
        shape.kua = geom.kua;
        shape.kub = geom.kub;
        if (fast) {
            const unsigned wpg = makeExpansionPlan(geom).chunkCount();
            shape.a_panel_wpg = wpg;
            shape.b_panel_wpg = wpg;
        }
        injector->beginGemm(shape);
        if (injector->hasSite(FaultSite::PackedA) ||
            (fast && injector->hasSite(FaultSite::ClusterPanelA))) {
            fa.emplace(a0);
            fa->resetClusterPanels();
            pa = &*fa;
            for (uint64_t coord :
                 injector->armedCoords(FaultSite::PackedA))
                fa->setWord(coord,
                            injector->applyWord(FaultSite::PackedA,
                                                coord,
                                                fa->words()[coord]));
        }
        if (injector->hasSite(FaultSite::PackedB) ||
            (fast && injector->hasSite(FaultSite::ClusterPanelB))) {
            fb.emplace(b0);
            fb->resetClusterPanels();
            pb = &*fb;
            for (uint64_t coord :
                 injector->armedCoords(FaultSite::PackedB))
                fb->setWord(coord,
                            injector->applyWord(FaultSite::PackedB,
                                                coord,
                                                fb->words()[coord]));
        }
    }
    const CompressedA &a = *pa;
    const CompressedB &b = *pb;

    // Fast path: build (or reuse) the cluster-domain panels before any
    // worker starts — one bw -> cw expansion per operand word, amortized
    // across every μ-kernel that reads it. Panel faults land after the
    // build, corrupting the cached expansion only (the packed words
    // stay clean, so a Modeled retry reads pristine data).
    if (fast) {
        a.ensureClusterPanels();
        b.ensureClusterPanels();
        if (injector) {
            for (uint64_t coord :
                 injector->armedCoords(FaultSite::ClusterPanelA))
                fa->setClusterPanelWord(
                    coord, injector->applyWord(
                               FaultSite::ClusterPanelA, coord,
                               fa->clusterPanelWord(coord)));
            for (uint64_t coord :
                 injector->armedCoords(FaultSite::ClusterPanelB))
                fb->setClusterPanelWord(
                    coord, injector->applyWord(
                               FaultSite::ClusterPanelB, coord,
                               fb->clusterPanelWord(coord)));
        }
    }

    // M-GEMM panel decomposition (Algorithm 1, lines 21-28): the jc/ic
    // loops become a flat macro-tile list. Tiles cover disjoint C
    // sub-blocks, which is what makes the BLIS jc/ic loops the natural
    // parallel dimension (one μ-engine per core in the paper).
    std::vector<MacroTile> tiles;
    for (uint64_t jc = 0; jc < n; jc += blocking.nc)
        for (uint64_t ic = 0; ic < m; ic += blocking.mc)
            tiles.push_back({jc, std::min<uint64_t>(blocking.nc, n - jc),
                             ic,
                             std::min<uint64_t>(blocking.mc, m - ic)});

    const unsigned threads = std::max<unsigned>(
        1, std::min<unsigned>(resolveThreadCount(blocking.threads),
                              static_cast<unsigned>(tiles.size())));

    MixGemmResult result;
    result.c.assign(m * n, 0);
    result.micro_kernel =
        fast ? (uk ? uk->name : std::string("legacy"))
             : std::string("modeled");
    result.tiles_total = tiles.size();
    // One logical bs.set configures the computation; every worker
    // programs its own μ-engine instance with the same configuration,
    // exactly as the per-core engines of the multi-core SoC would.
    result.counters.inc(Counter::BsSet);

    // Per-worker μ-engine and counters: engine state is never shared,
    // and worker w processes tiles w, w + threads, ... so the work
    // partition depends only on (tiles, threads), not on scheduling.
    // Fast-path workers track cell-groups instead of driving the
    // engine; group_cycles per cell-group is exactly what the modeled
    // engine accrues, so busy-cycle totals agree bitwise.
    FaultInjector *ip_injector =
        injector && injector->anyIp() ? injector : nullptr;
    const CancelToken *cancel = blocking.cancel;
    std::vector<CounterSet> worker_counters(threads);
    std::vector<uint64_t> worker_busy(threads, 0);
    std::vector<uint64_t> worker_tiles(threads, 0);
    // Per-worker timer sets (session only): each worker records into its
    // own MetricSet, merged after the join in worker order so percentile
    // summaries are deterministic for a given (tiles, threads) split.
    std::vector<MetricSet> worker_metrics(session ? threads : 0);
    auto worker = [&](unsigned w) {
        TRACE_SCOPE("gemm", "worker");
        BsEngine engine(uint64_t{mr} * nr);
        engine.set(geom, mr * nr);
        // Each worker owns a hook instance: the hook carries per-
        // μ-kernel coordinate state, which must never be shared.
        std::optional<IpFaultHook> hook;
        if (!fast && ip_injector) {
            hook.emplace(*ip_injector);
            engine.setGroupResultHook(&*hook);
        }
        uint64_t cell_groups = 0;
        for (size_t t = w; t < tiles.size(); t += threads) {
            // Cancellation checkpoint: a tripped token (deadline,
            // explicit cancel, watchdog) stops this worker before it
            // starts another tile, so C only ever holds whole tiles.
            if (cancel && cancel->poll())
                break;
            TRACE_SCOPE("gemm", "macro_tile");
            const auto tile_start =
                session ? clock::now() : clock::time_point{};
            runMacroTile(a, b, engine, hook ? &*hook : nullptr,
                         fast ? ip_injector : nullptr, uk, tiles[t],
                         blocking, kc_groups, result.c,
                         worker_counters[w], cell_groups);
            // Accumulator faults land at tile completion — the AccMem
            // to C writeback — applied by the tile's owning worker, so
            // coordinate ownership stays unique at any thread count.
            if (injector && injector->anyAcc())
                injector->applyAccumulator(
                    result.c, n, tiles[t].ic, tiles[t].ic + tiles[t].mc,
                    tiles[t].jc, tiles[t].jc + tiles[t].nc);
            if (session) {
                worker_metrics[w].addNs(
                    "macro_tile",
                    static_cast<uint64_t>(
                        std::chrono::duration_cast<std::chrono::
                            nanoseconds>(clock::now() - tile_start)
                            .count()));
            }
            ++worker_tiles[w];
        }
        worker_busy[w] = engine.busyCycles() +
                         cell_groups * geom.group_cycles;
    };
    if (threads == 1)
        worker(0);
    else
        ThreadPool::global().run(threads, worker);

    // Deterministic join: merge in worker order. Counter totals are sums
    // of per-tile counts, so they match the serial nest exactly.
    uint64_t busy_cycles = 0;
    for (unsigned w = 0; w < threads; ++w) {
        result.counters.merge(worker_counters[w]);
        busy_cycles += worker_busy[w];
        result.tiles_completed += worker_tiles[w];
    }

    // A tripped token surfaces as the request's terminal Status; the
    // partial C (whole completed tiles only) is the caller's to
    // discard. ABFT verification is skipped — unstarted tiles would
    // flag as corrupt, and the output is already condemned.
    const bool was_cancelled =
        cancel && result.tiles_completed < result.tiles_total &&
        cancel->cancelled();
    if (was_cancelled)
        result.status = cancel->status();

    // ABFT verification and recovery: serial, after the join, so the
    // verdicts and any recomputation are deterministic by construction.
    if (policy != FaultPolicy::Off && !was_cancelled) {
        TRACE_SCOPE("abft", "verify");
        const auto abft_start = clock::now();
        const AbftVerifier verifier(a, b);
        result.abft.input_k_mismatches = verifier.verifyInputs();
        if (result.abft.input_k_mismatches > 0)
            warn(strCat("mixGemm ABFT: operand checksums mismatch at ",
                        result.abft.input_k_mismatches,
                        " k position(s) — packed data corrupted; "
                        "recomputation cannot recover the inputs"));

        std::vector<size_t> flagged;
        for (size_t t = 0; t < tiles.size(); ++t) {
            const MacroTile &tile = tiles[t];
            if (!verifier
                     .verifyTile(result.c, tile.ic, tile.ic + tile.mc,
                                 tile.jc, tile.jc + tile.nc)
                     .ok)
                flagged.push_back(t);
        }
        result.abft.tiles_checked = tiles.size();
        result.abft.tiles_flagged = flagged.size();

        if (!flagged.empty() && policy == FaultPolicy::DetectRetry) {
            for (const size_t t : flagged) {
                const MacroTile &tile = tiles[t];
                bool fixed = false;
                for (unsigned attempt = 0;
                     attempt < blocking.abft_max_retries && !fixed;
                     ++attempt) {
                    ++result.abft.retries;
                    // Attempt 0 re-runs the configured kernel (enough
                    // for transient faults); later attempts back off
                    // to the Modeled arbiter, which also bypasses any
                    // corrupted cluster-panel cache.
                    BlockingParams retry_params = blocking;
                    if (attempt > 0)
                        retry_params.kernel_mode = KernelMode::Modeled;
                    busy_cycles += recomputeTile(
                        a, b, injector, tile, retry_params, kc_groups,
                        result.c, result.counters);
                    fixed = verifier
                                .verifyTile(result.c, tile.ic,
                                            tile.ic + tile.mc, tile.jc,
                                            tile.jc + tile.nc)
                                .ok;
                }
                if (fixed) {
                    ++result.abft.tiles_corrected;
                } else {
                    ++result.abft.tiles_uncorrected;
                    warn(strCat("mixGemm ABFT: tile at row ", tile.ic,
                                " col ", tile.jc, " still corrupt "
                                "after ", blocking.abft_max_retries,
                                " retries (persistent fault)"));
                }
            }
        } else if (!flagged.empty() &&
                   policy == FaultPolicy::DetectFallback) {
            // Graceful degradation: one corrupted tile distrusts the
            // whole configured path — recompute everything serially on
            // the Modeled arbiter kernel and report the downgrade.
            warn(strCat("mixGemm ABFT: ", flagged.size(), " of ",
                        tiles.size(), " tiles corrupt; degrading the "
                        "whole GEMM to the Modeled kernel"));
            result.abft.fell_back = true;
            std::fill(result.c.begin(), result.c.end(), int64_t{0});
            BlockingParams fb_params = blocking;
            fb_params.kernel_mode = KernelMode::Modeled;
            for (const MacroTile &tile : tiles)
                busy_cycles +=
                    recomputeTile(a, b, injector, tile, fb_params,
                                  kc_groups, result.c, result.counters);
            uint64_t still_bad = 0;
            for (const MacroTile &tile : tiles)
                if (!verifier
                         .verifyTile(result.c, tile.ic,
                                     tile.ic + tile.mc, tile.jc,
                                     tile.jc + tile.nc)
                         .ok)
                    ++still_bad;
            if (still_bad > 0) {
                result.abft.tiles_uncorrected = still_bad;
                result.abft.tiles_corrected =
                    flagged.size() > still_bad
                        ? flagged.size() - still_bad
                        : 0;
                warn(strCat("mixGemm ABFT: ", still_bad,
                            " tile(s) remain corrupt after the Modeled "
                            "fallback (persistent fault)"));
            } else {
                result.abft.tiles_corrected = flagged.size();
            }
        }
        result.abft.abft_secs =
            std::chrono::duration<double>(clock::now() - abft_start)
                .count();

        result.counters.inc(Counter::AbftTilesChecked,
                            result.abft.tiles_checked);
        result.counters.inc(Counter::AbftTilesFlagged,
                            result.abft.tiles_flagged);
        result.counters.inc(Counter::AbftRetries, result.abft.retries);
        result.counters.inc(Counter::AbftTilesCorrected,
                            result.abft.tiles_corrected);
        result.counters.inc(Counter::AbftTilesUncorrected,
                            result.abft.tiles_uncorrected);
        if (result.abft.input_k_mismatches > 0)
            result.counters.inc("abft_input_k_mismatches",
                                result.abft.input_k_mismatches);
    }
    if (injector)
        result.counters.inc(Counter::FaultsInjected,
                            injector->injectedCount());

    result.counters.set(Counter::EngineBusyCycles, busy_cycles);
    result.counters.set(Counter::Ops, 2 * m * n * a.k());

    if (session) {
        RunReport report;
        report.name = blocking.trace_label;
        report.backend = "mixgemm";
        report.m = m;
        report.n = n;
        report.k = a.k();
        report.config = geom.config.name();
        report.threads = threads;
        report.kernel_mode = blocking.kernel_mode == KernelMode::Fast
            ? "fast"
            : "modeled";
        report.kernel = result.micro_kernel;
        report.fault_policy = faultPolicyName(policy);
        report.abft_secs = result.abft.abft_secs;
        report.wall_secs =
            std::chrono::duration<double>(clock::now() - wall_start)
                .count();
        report.bytes_packed = a.bytes() + b.bytes();
        report.weight_source = blocking.weight_source;
        report.bytes_mapped = blocking.weight_bytes_mapped;
        report.tenant = blocking.trace_tenant;
        report.request_id = blocking.trace_request_id;
        report.rung = blocking.trace_rung;
        if (blocking.kernel_mode == KernelMode::Fast) {
            report.bytes_cluster_panels =
                (a.m() * a.kGroups() * a.clusterWordsPerGroup() +
                 b.n() * b.kGroups() * b.clusterWordsPerGroup()) *
                8;
        }
        report.counters = result.counters;
        for (unsigned w = 0; w < threads; ++w)
            report.timers.merge(worker_metrics[w]);
        session->addReport(std::move(report));
    }
    return result;
}

/** Shared boundary validation for mixGemm()/tryMixGemm(). */
Status
validateGemmInputs(const CompressedA &a, const CompressedB &b,
                   const BlockingParams &blocking)
{
    if (Status s = blocking.validateStatus(); !s.ok())
        return s;
    if (a.k() != b.k())
        return Status::invalidArgument(
            strCat("mixGemm: operand k dimensions differ (", a.k(),
                   " vs ", b.k(), ")"));
    if (!(a.geometry().config == b.geometry().config))
        return Status::invalidArgument(
            "mixGemm: operand data-size configurations differ");
    return Status();
}

} // namespace

MixGemmResult
mixGemm(const CompressedA &a, const CompressedB &b,
        const BlockingParams &blocking)
{
    if (Status s = validateGemmInputs(a, b, blocking); !s.ok())
        fatal(s.toString());
    return mixGemmChecked(a, b, blocking);
}

Expected<MixGemmResult>
tryMixGemm(const CompressedA &a, const CompressedB &b,
           const BlockingParams &blocking)
{
    if (Status s = validateGemmInputs(a, b, blocking); !s.ok())
        return s;
    // This is the boundary a serving process calls through: an
    // exception escaping a worker task (rethrown at the region join by
    // ThreadPool::run) fails this one GEMM with kInternal instead of
    // unwinding through the server, and a tripped cancellation token
    // comes back as its reason Status.
    try {
        MixGemmResult result = mixGemmChecked(a, b, blocking);
        if (!result.status.ok())
            return result.status;
        return result;
    } catch (const std::exception &e) {
        return Status::internal(
            strCat("mixGemm parallel region failed: ", e.what()));
    }
}

MixGemmResult
mixGemm(std::span<const int32_t> a, std::span<const int32_t> b, uint64_t m,
        uint64_t n, uint64_t k, const BsGeometry &geometry,
        const BlockingParams &blocking)
{
    const CompressedA ca(a, m, k, geometry);
    const CompressedB cb(b, k, n, geometry);
    return mixGemm(ca, cb, blocking);
}

} // namespace mixgemm
