#include "gemm/mixgemm.h"

#include <algorithm>

#include "bs/engine.h"
#include "common/logging.h"
#include "common/thread_pool.h"

namespace mixgemm
{

namespace
{

/** One μ-kernel: mr x nr output cells over [g0, g1) accumulation groups. */
void
microKernel(const CompressedA &a, const CompressedB &b, BsEngine &engine,
            uint64_t ir, uint64_t jr, unsigned g0, unsigned g1,
            unsigned mr, unsigned nr, std::vector<int64_t> &c,
            CounterSet &counters)
{
    const BsGeometry &geom = a.geometry();
    const uint64_t m = a.m();
    const uint64_t n = b.n();

    for (unsigned g = g0; g < g1; ++g) {
        for (unsigned i = 0; i < nr; ++i) {
            const uint64_t col = jr + i;
            for (unsigned j = 0; j < mr; ++j) {
                const uint64_t row = ir + j;
                for (unsigned p = 0; p < geom.group_pairs; ++p) {
                    const uint64_t aw =
                        (row < m && p < geom.kua) ? a.word(row, g, p) : 0;
                    const uint64_t bw =
                        (col < n && p < geom.kub) ? b.word(col, g, p) : 0;
                    engine.ip(aw, bw);
                }
            }
        }
        counters.inc("bs_ip",
                     uint64_t{nr} * mr * geom.group_pairs);
    }

    for (unsigned i = 0; i < nr; ++i) {
        for (unsigned j = 0; j < mr; ++j) {
            const int64_t value = engine.get(i * mr + j);
            counters.inc("bs_get");
            const uint64_t row = ir + j;
            const uint64_t col = jr + i;
            if (row < m && col < n)
                c[row * n + col] += value;
        }
    }
}

/**
 * One [mc x nc] macro tile of the output: a disjoint C sub-block, so
 * tiles can execute on different workers with no synchronization.
 */
struct MacroTile
{
    uint64_t jc; ///< first output column
    uint64_t nc; ///< columns in this tile
    uint64_t ic; ///< first output row
    uint64_t mc; ///< rows in this tile
};

/**
 * Run the k-panel and μ-panel loops of one macro tile (MACRO-KERNEL of
 * Algorithm 1, plus the gc panel loop hoisted per tile). Accumulation
 * into C is int64 and each tile owns its C sub-block, so the result is
 * bitwise identical regardless of tile execution order.
 */
void
runMacroTile(const CompressedA &a, const CompressedB &b, BsEngine &engine,
             const MacroTile &tile, const BlockingParams &blocking,
             unsigned kc_groups, std::vector<int64_t> &c,
             CounterSet &counters)
{
    const unsigned k_groups = a.kGroups();
    const unsigned mr = blocking.mr;
    const unsigned nr = blocking.nr;
    for (unsigned gc = 0; gc < k_groups; gc += kc_groups) {
        const unsigned g1 = std::min<unsigned>(gc + kc_groups, k_groups);
        // The serial 5-loop nest counts one B panel per (jc, gc) and one
        // A panel per (jc, gc, ic); attribute the shared B panel to the
        // ic == 0 tile of each column panel so totals stay identical.
        if (tile.ic == 0)
            counters.inc("b_panels");
        counters.inc("a_panels");
        for (uint64_t jr = 0; jr < tile.nc; jr += nr) {
            for (uint64_t ir = 0; ir < tile.mc; ir += mr) {
                microKernel(a, b, engine, tile.ic + ir, tile.jc + jr,
                            gc, g1, mr, nr, c, counters);
                counters.inc("micro_kernels");
            }
        }
    }
}

} // namespace

MixGemmResult
mixGemm(const CompressedA &a, const CompressedB &b,
        const BlockingParams &blocking)
{
    blocking.validate();
    if (a.k() != b.k())
        fatal("mixGemm: operand k dimensions differ");
    if (!(a.geometry().config == b.geometry().config))
        fatal("mixGemm: operand data-size configurations differ");

    const BsGeometry &geom = a.geometry();
    const uint64_t m = a.m();
    const uint64_t n = b.n();
    const unsigned mr = blocking.mr;
    const unsigned nr = blocking.nr;
    // kc in whole accumulation groups, at least one.
    const unsigned kc_groups = std::max<unsigned>(
        1, static_cast<unsigned>(blocking.kc / geom.group_extent));

    // M-GEMM panel decomposition (Algorithm 1, lines 21-28): the jc/ic
    // loops become a flat macro-tile list. Tiles cover disjoint C
    // sub-blocks, which is what makes the BLIS jc/ic loops the natural
    // parallel dimension (one μ-engine per core in the paper).
    std::vector<MacroTile> tiles;
    for (uint64_t jc = 0; jc < n; jc += blocking.nc)
        for (uint64_t ic = 0; ic < m; ic += blocking.mc)
            tiles.push_back({jc, std::min<uint64_t>(blocking.nc, n - jc),
                             ic,
                             std::min<uint64_t>(blocking.mc, m - ic)});

    const unsigned threads = std::max<unsigned>(
        1, std::min<unsigned>(resolveThreadCount(blocking.threads),
                              static_cast<unsigned>(tiles.size())));

    MixGemmResult result;
    result.c.assign(m * n, 0);
    // One logical bs.set configures the computation; every worker
    // programs its own μ-engine instance with the same configuration,
    // exactly as the per-core engines of the multi-core SoC would.
    result.counters.inc("bs_set");

    // Per-worker μ-engine and counters: engine state is never shared,
    // and worker w processes tiles w, w + threads, ... so the work
    // partition depends only on (tiles, threads), not on scheduling.
    std::vector<CounterSet> worker_counters(threads);
    std::vector<uint64_t> worker_busy(threads, 0);
    auto worker = [&](unsigned w) {
        BsEngine engine(uint64_t{mr} * nr);
        engine.set(geom, mr * nr);
        for (size_t t = w; t < tiles.size(); t += threads)
            runMacroTile(a, b, engine, tiles[t], blocking, kc_groups,
                         result.c, worker_counters[w]);
        worker_busy[w] = engine.busyCycles();
    };
    if (threads == 1)
        worker(0);
    else
        ThreadPool::global().run(threads, worker);

    // Deterministic join: merge in worker order. Counter totals are sums
    // of per-tile counts, so they match the serial nest exactly.
    uint64_t busy_cycles = 0;
    for (unsigned w = 0; w < threads; ++w) {
        result.counters.merge(worker_counters[w]);
        busy_cycles += worker_busy[w];
    }
    result.counters.set("engine_busy_cycles", busy_cycles);
    result.counters.set("ops", 2 * m * n * a.k());
    return result;
}

MixGemmResult
mixGemm(std::span<const int32_t> a, std::span<const int32_t> b, uint64_t m,
        uint64_t n, uint64_t k, const BsGeometry &geometry,
        const BlockingParams &blocking)
{
    const CompressedA ca(a, m, k, geometry);
    const CompressedB cb(b, k, n, geometry);
    return mixGemm(ca, cb, blocking);
}

} // namespace mixgemm
