#include "gemm/mixgemm.h"

#include <algorithm>
#include <chrono>

#include "bs/engine.h"
#include "bs/expand.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "trace/metrics.h"
#include "trace/session.h"
#include "trace/tracer.h"

namespace mixgemm
{

namespace
{

/**
 * One modeled μ-kernel: mr x nr output cells over [g0, g1) accumulation
 * groups, every μ-vector pair issued through the functional μ-engine.
 * @p interior promises every row/col is in range, so the hot loop
 * fetches panel words by pointer with no per-word bounds branches; edge
 * μ-panels take the checked loop and issue zero μ-vectors out of range.
 * Bounds are the enclosing macro tile's (@p row_end, @p col_end), not
 * the matrix's: a tile edge that is not a matrix edge must not touch
 * the neighboring tile's C cells.
 */
void
microKernelModeled(const CompressedA &a, const CompressedB &b,
                   BsEngine &engine, uint64_t ir, uint64_t jr,
                   uint64_t row_end, uint64_t col_end, unsigned g0,
                   unsigned g1, unsigned mr, unsigned nr, bool interior,
                   std::vector<int64_t> &c, CounterSet &counters)
{
    const BsGeometry &geom = a.geometry();
    const uint64_t n = b.n();
    const unsigned kua = geom.kua;
    const unsigned kub = geom.kub;
    const unsigned pairs = geom.group_pairs;

    if (interior) {
        const uint64_t *a_words = a.words().data();
        const uint64_t *b_words = b.words().data();
        for (unsigned g = g0; g < g1; ++g) {
            for (unsigned i = 0; i < nr; ++i) {
                const uint64_t *bw =
                    b_words + b.wordIndex(jr + i, g, 0);
                for (unsigned j = 0; j < mr; ++j) {
                    const uint64_t *aw =
                        a_words + a.wordIndex(ir + j, g, 0);
                    for (unsigned p = 0; p < pairs; ++p)
                        engine.ip(p < kua ? aw[p] : 0,
                                  p < kub ? bw[p] : 0);
                }
            }
            counters.inc(Counter::BsIp, uint64_t{nr} * mr * pairs);
        }
    } else {
        for (unsigned g = g0; g < g1; ++g) {
            for (unsigned i = 0; i < nr; ++i) {
                const uint64_t col = jr + i;
                for (unsigned j = 0; j < mr; ++j) {
                    const uint64_t row = ir + j;
                    for (unsigned p = 0; p < pairs; ++p) {
                        const uint64_t aw = (row < row_end && p < kua)
                            ? a.word(row, g, p)
                            : 0;
                        const uint64_t bw = (col < col_end && p < kub)
                            ? b.word(col, g, p)
                            : 0;
                        engine.ip(aw, bw);
                    }
                }
            }
            counters.inc(Counter::BsIp, uint64_t{nr} * mr * pairs);
        }
    }

    for (unsigned i = 0; i < nr; ++i) {
        for (unsigned j = 0; j < mr; ++j) {
            const int64_t value = engine.get(i * mr + j);
            const uint64_t row = ir + j;
            const uint64_t col = jr + i;
            if (row < row_end && col < col_end)
                c[row * n + col] += value;
        }
    }
    counters.inc(Counter::BsGet, uint64_t{mr} * nr);
}

/**
 * One fast-path μ-kernel: the identical arithmetic, computed directly
 * on the cached cluster-domain panels. A cell's [g0, g1) groups are
 * contiguous in the panel, so each cell is a single multiply/extract
 * stream over (g1 - g0) * chunks cluster-word pairs — no unpack, no
 * re-pack, no per-element state. Instruction counters and busy cycles
 * are arithmetic identities of the loop structure (group_pairs bs.ip
 * and group_cycles per cell-group, mr * nr bs.get), so every total
 * matches the modeled engine exactly; @p cell_groups accumulates the
 * cell-group count the caller converts to busy cycles.
 */
void
microKernelFast(const CompressedA &a, const CompressedB &b, uint64_t ir,
                uint64_t jr, uint64_t row_end, uint64_t col_end,
                unsigned g0, unsigned g1, unsigned mr, unsigned nr,
                bool interior, std::vector<int64_t> &c,
                CounterSet &counters, uint64_t &cell_groups)
{
    const BsGeometry &geom = a.geometry();
    const uint64_t n = b.n();
    const unsigned span = (g1 - g0) * a.clusterWordsPerGroup();

    if (interior) {
        for (unsigned i = 0; i < nr; ++i) {
            const uint64_t col = jr + i;
            const uint64_t *cb = b.groupClusters(col, g0);
            for (unsigned j = 0; j < mr; ++j) {
                const uint64_t row = ir + j;
                const uint64_t *ca = a.groupClusters(row, g0);
                c[row * n + col] +=
                    clusterPanelDot(ca, cb, span, geom);
            }
        }
    } else {
        for (unsigned i = 0; i < nr; ++i) {
            const uint64_t col = jr + i;
            if (col >= col_end)
                continue;
            const uint64_t *cb = b.groupClusters(col, g0);
            for (unsigned j = 0; j < mr; ++j) {
                const uint64_t row = ir + j;
                if (row >= row_end)
                    continue;
                const uint64_t *ca = a.groupClusters(row, g0);
                c[row * n + col] +=
                    clusterPanelDot(ca, cb, span, geom);
            }
        }
    }

    // Out-of-range cells issue zero μ-vectors and burn the same engine
    // cycles in the modeled path; count them all the same way here.
    counters.inc(Counter::BsIp,
                 uint64_t{g1 - g0} * nr * mr * geom.group_pairs);
    counters.inc(Counter::BsGet, uint64_t{mr} * nr);
    cell_groups += uint64_t{g1 - g0} * mr * nr;
}

/**
 * One [mc x nc] macro tile of the output: a disjoint C sub-block, so
 * tiles can execute on different workers with no synchronization.
 */
struct MacroTile
{
    uint64_t jc; ///< first output column
    uint64_t nc; ///< columns in this tile
    uint64_t ic; ///< first output row
    uint64_t mc; ///< rows in this tile
};

/**
 * Run the k-panel and μ-panel loops of one macro tile (MACRO-KERNEL of
 * Algorithm 1, plus the gc panel loop hoisted per tile). Accumulation
 * into C is int64 and each tile owns its C sub-block, so the result is
 * bitwise identical regardless of tile execution order — and of the
 * kernel mode, since both μ-kernels compute the same chunk sums.
 */
/**
 * One μ-kernel over [ir0, ir1) rows of a jr strip; @p interior promises
 * every panel in the range is fully inside the tile.
 */
void
runKernelRange(const CompressedA &a, const CompressedB &b,
               BsEngine &engine, const MacroTile &tile, uint64_t jr,
               uint64_t ir0, uint64_t ir1, unsigned gc, unsigned g1,
               unsigned mr, unsigned nr, bool interior, bool fast,
               std::vector<int64_t> &c, CounterSet &counters,
               uint64_t &cell_groups)
{
    for (uint64_t ir = ir0; ir < ir1; ir += mr) {
        if (fast)
            microKernelFast(a, b, tile.ic + ir, tile.jc + jr,
                            tile.ic + tile.mc, tile.jc + tile.nc, gc,
                            g1, mr, nr, interior, c, counters,
                            cell_groups);
        else
            microKernelModeled(a, b, engine, tile.ic + ir,
                               tile.jc + jr, tile.ic + tile.mc,
                               tile.jc + tile.nc, gc, g1, mr, nr,
                               interior, c, counters);
        counters.inc(Counter::MicroKernels);
    }
}

void
runMacroTile(const CompressedA &a, const CompressedB &b, BsEngine &engine,
             const MacroTile &tile, const BlockingParams &blocking,
             unsigned kc_groups, std::vector<int64_t> &c,
             CounterSet &counters, uint64_t &cell_groups)
{
    const unsigned k_groups = a.kGroups();
    const unsigned mr = blocking.mr;
    const unsigned nr = blocking.nr;
    const bool fast = blocking.kernel_mode == KernelMode::Fast;
    for (unsigned gc = 0; gc < k_groups; gc += kc_groups) {
        TRACE_SCOPE("gemm", "k_panel");
        const unsigned g1 = std::min<unsigned>(gc + kc_groups, k_groups);
        // The serial 5-loop nest counts one B panel per (jc, gc) and one
        // A panel per (jc, gc, ic); attribute the shared B panel to the
        // ic == 0 tile of each column panel so totals stay identical.
        if (tile.ic == 0)
            counters.inc(Counter::BPanels);
        counters.inc(Counter::APanels);
        for (uint64_t jr = 0; jr < tile.nc; jr += nr) {
            // Interior μ-panels have every row/col in range (tile
            // extents are already clamped to m/n), so the kernels drop
            // their per-word bounds branches. Splitting each jr strip
            // into its interior run and its edge tail preserves the
            // ascending-ir kernel order while giving the two kernel
            // flavors distinct trace spans.
            const uint64_t interior_rows =
                jr + nr <= tile.nc ? tile.mc / mr * mr : 0;
            if (interior_rows > 0) {
                TRACE_SCOPE("kernel", "ukernels_interior");
                runKernelRange(a, b, engine, tile, jr, 0, interior_rows,
                               gc, g1, mr, nr, true, fast, c, counters,
                               cell_groups);
            }
            if (interior_rows < tile.mc) {
                TRACE_SCOPE("kernel", "ukernels_edge");
                runKernelRange(a, b, engine, tile, jr, interior_rows,
                               tile.mc, gc, g1, mr, nr, false, fast, c,
                               counters, cell_groups);
            }
        }
    }
}

} // namespace

MixGemmResult
mixGemm(const CompressedA &a, const CompressedB &b,
        const BlockingParams &blocking)
{
    TRACE_SCOPE("gemm", "mixGemm");
    blocking.validate();
    if (a.k() != b.k())
        fatal("mixGemm: operand k dimensions differ");
    if (!(a.geometry().config == b.geometry().config))
        fatal("mixGemm: operand data-size configurations differ");

    using clock = std::chrono::steady_clock;
    TraceSession *session = blocking.session;
    const auto wall_start = session ? clock::now() : clock::time_point{};

    const BsGeometry &geom = a.geometry();
    const uint64_t m = a.m();
    const uint64_t n = b.n();
    const unsigned mr = blocking.mr;
    const unsigned nr = blocking.nr;
    // kc in whole accumulation groups, at least one.
    const unsigned kc_groups = std::max<unsigned>(
        1, static_cast<unsigned>(blocking.kc / geom.group_extent));

    // Fast path: build (or reuse) the cluster-domain panels before any
    // worker starts — one bw -> cw expansion per operand word, amortized
    // across every μ-kernel that reads it.
    if (blocking.kernel_mode == KernelMode::Fast) {
        a.ensureClusterPanels();
        b.ensureClusterPanels();
    }

    // M-GEMM panel decomposition (Algorithm 1, lines 21-28): the jc/ic
    // loops become a flat macro-tile list. Tiles cover disjoint C
    // sub-blocks, which is what makes the BLIS jc/ic loops the natural
    // parallel dimension (one μ-engine per core in the paper).
    std::vector<MacroTile> tiles;
    for (uint64_t jc = 0; jc < n; jc += blocking.nc)
        for (uint64_t ic = 0; ic < m; ic += blocking.mc)
            tiles.push_back({jc, std::min<uint64_t>(blocking.nc, n - jc),
                             ic,
                             std::min<uint64_t>(blocking.mc, m - ic)});

    const unsigned threads = std::max<unsigned>(
        1, std::min<unsigned>(resolveThreadCount(blocking.threads),
                              static_cast<unsigned>(tiles.size())));

    MixGemmResult result;
    result.c.assign(m * n, 0);
    // One logical bs.set configures the computation; every worker
    // programs its own μ-engine instance with the same configuration,
    // exactly as the per-core engines of the multi-core SoC would.
    result.counters.inc(Counter::BsSet);

    // Per-worker μ-engine and counters: engine state is never shared,
    // and worker w processes tiles w, w + threads, ... so the work
    // partition depends only on (tiles, threads), not on scheduling.
    // Fast-path workers track cell-groups instead of driving the
    // engine; group_cycles per cell-group is exactly what the modeled
    // engine accrues, so busy-cycle totals agree bitwise.
    std::vector<CounterSet> worker_counters(threads);
    std::vector<uint64_t> worker_busy(threads, 0);
    // Per-worker timer sets (session only): each worker records into its
    // own MetricSet, merged after the join in worker order so percentile
    // summaries are deterministic for a given (tiles, threads) split.
    std::vector<MetricSet> worker_metrics(session ? threads : 0);
    auto worker = [&](unsigned w) {
        TRACE_SCOPE("gemm", "worker");
        BsEngine engine(uint64_t{mr} * nr);
        engine.set(geom, mr * nr);
        uint64_t cell_groups = 0;
        for (size_t t = w; t < tiles.size(); t += threads) {
            TRACE_SCOPE("gemm", "macro_tile");
            const auto tile_start =
                session ? clock::now() : clock::time_point{};
            runMacroTile(a, b, engine, tiles[t], blocking, kc_groups,
                         result.c, worker_counters[w], cell_groups);
            if (session) {
                worker_metrics[w].addNs(
                    "macro_tile",
                    static_cast<uint64_t>(
                        std::chrono::duration_cast<std::chrono::
                            nanoseconds>(clock::now() - tile_start)
                            .count()));
            }
        }
        worker_busy[w] = engine.busyCycles() +
                         cell_groups * geom.group_cycles;
    };
    if (threads == 1)
        worker(0);
    else
        ThreadPool::global().run(threads, worker);

    // Deterministic join: merge in worker order. Counter totals are sums
    // of per-tile counts, so they match the serial nest exactly.
    uint64_t busy_cycles = 0;
    for (unsigned w = 0; w < threads; ++w) {
        result.counters.merge(worker_counters[w]);
        busy_cycles += worker_busy[w];
    }
    result.counters.set(Counter::EngineBusyCycles, busy_cycles);
    result.counters.set(Counter::Ops, 2 * m * n * a.k());

    if (session) {
        RunReport report;
        report.name = blocking.trace_label;
        report.backend = "mixgemm";
        report.m = m;
        report.n = n;
        report.k = a.k();
        report.config = geom.config.name();
        report.threads = threads;
        report.kernel_mode = blocking.kernel_mode == KernelMode::Fast
            ? "fast"
            : "modeled";
        report.wall_secs =
            std::chrono::duration<double>(clock::now() - wall_start)
                .count();
        report.bytes_packed = a.bytes() + b.bytes();
        if (blocking.kernel_mode == KernelMode::Fast) {
            report.bytes_cluster_panels =
                (a.m() * a.kGroups() * a.clusterWordsPerGroup() +
                 b.n() * b.kGroups() * b.clusterWordsPerGroup()) *
                8;
        }
        report.counters = result.counters;
        for (unsigned w = 0; w < threads; ++w)
            report.timers.merge(worker_metrics[w]);
        session->addReport(std::move(report));
    }
    return result;
}

MixGemmResult
mixGemm(std::span<const int32_t> a, std::span<const int32_t> b, uint64_t m,
        uint64_t n, uint64_t k, const BsGeometry &geometry,
        const BlockingParams &blocking)
{
    const CompressedA ca(a, m, k, geometry);
    const CompressedB cb(b, k, n, geometry);
    return mixGemm(ca, cb, blocking);
}

} // namespace mixgemm
