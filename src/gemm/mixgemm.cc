#include "gemm/mixgemm.h"

#include <algorithm>

#include "bs/engine.h"
#include "common/logging.h"

namespace mixgemm
{

namespace
{

/** One μ-kernel: mr x nr output cells over [g0, g1) accumulation groups. */
void
microKernel(const CompressedA &a, const CompressedB &b, BsEngine &engine,
            uint64_t ir, uint64_t jr, unsigned g0, unsigned g1,
            unsigned mr, unsigned nr, std::vector<int64_t> &c,
            CounterSet &counters)
{
    const BsGeometry &geom = a.geometry();
    const uint64_t m = a.m();
    const uint64_t n = b.n();

    for (unsigned g = g0; g < g1; ++g) {
        for (unsigned i = 0; i < nr; ++i) {
            const uint64_t col = jr + i;
            for (unsigned j = 0; j < mr; ++j) {
                const uint64_t row = ir + j;
                for (unsigned p = 0; p < geom.group_pairs; ++p) {
                    const uint64_t aw =
                        (row < m && p < geom.kua) ? a.word(row, g, p) : 0;
                    const uint64_t bw =
                        (col < n && p < geom.kub) ? b.word(col, g, p) : 0;
                    engine.ip(aw, bw);
                }
            }
        }
        counters.inc("bs_ip",
                     uint64_t{nr} * mr * geom.group_pairs);
    }

    for (unsigned i = 0; i < nr; ++i) {
        for (unsigned j = 0; j < mr; ++j) {
            const int64_t value = engine.get(i * mr + j);
            counters.inc("bs_get");
            const uint64_t row = ir + j;
            const uint64_t col = jr + i;
            if (row < m && col < n)
                c[row * n + col] += value;
        }
    }
}

} // namespace

MixGemmResult
mixGemm(const CompressedA &a, const CompressedB &b,
        const BlockingParams &blocking)
{
    blocking.validate();
    if (a.k() != b.k())
        fatal("mixGemm: operand k dimensions differ");
    if (!(a.geometry().config == b.geometry().config))
        fatal("mixGemm: operand data-size configurations differ");

    const BsGeometry &geom = a.geometry();
    const uint64_t m = a.m();
    const uint64_t n = b.n();
    const unsigned k_groups = a.kGroups();
    const unsigned mr = blocking.mr;
    const unsigned nr = blocking.nr;
    // kc in whole accumulation groups, at least one.
    const unsigned kc_groups = std::max<unsigned>(
        1, static_cast<unsigned>(blocking.kc / geom.group_extent));

    MixGemmResult result;
    result.c.assign(m * n, 0);

    BsEngine engine(uint64_t{mr} * nr);
    engine.set(geom, mr * nr);
    result.counters.inc("bs_set");

    // M-GEMM panel loops (Algorithm 1, lines 21-28).
    for (uint64_t jc = 0; jc < n; jc += blocking.nc) {
        const uint64_t nc = std::min<uint64_t>(blocking.nc, n - jc);
        for (unsigned gc = 0; gc < k_groups; gc += kc_groups) {
            const unsigned g1 =
                std::min<unsigned>(gc + kc_groups, k_groups);
            result.counters.inc("b_panels");
            for (uint64_t ic = 0; ic < m; ic += blocking.mc) {
                const uint64_t mc = std::min<uint64_t>(blocking.mc,
                                                       m - ic);
                result.counters.inc("a_panels");
                // MACRO-KERNEL μ-panel loops (lines 15-20).
                for (uint64_t jr = 0; jr < nc; jr += nr) {
                    for (uint64_t ir = 0; ir < mc; ir += mr) {
                        microKernel(a, b, engine, ic + ir, jc + jr, gc,
                                    g1, mr, nr, result.c,
                                    result.counters);
                        result.counters.inc("micro_kernels");
                    }
                }
            }
        }
    }

    result.counters.set("engine_busy_cycles", engine.busyCycles());
    result.counters.set("ops", 2 * m * n * a.k());
    return result;
}

MixGemmResult
mixGemm(std::span<const int32_t> a, std::span<const int32_t> b, uint64_t m,
        uint64_t n, uint64_t k, const BsGeometry &geometry,
        const BlockingParams &blocking)
{
    const CompressedA ca(a, m, k, geometry);
    const CompressedB cb(b, k, n, geometry);
    return mixGemm(ca, cb, blocking);
}

} // namespace mixgemm
