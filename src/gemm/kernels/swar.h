/**
 * @file
 * Templated SIMD SWAR μ-kernel bodies (included by registry.cc only).
 *
 * Each kernel computes the interior fast-path μ-tile of
 * gemm/kernels/kernel.h: MR x NR cells, each the clusterPanelDot()
 * multiply/extract stream of bs/expand.h, with the per-chunk work
 * carried across LANES 64-bit SIMD lanes. Template parameters:
 *
 *   MR, NR   register-blocking shape (cells computed per call)
 *   LANES    64-bit lanes per vector op; 1 is the scalar fallback,
 *            2/4/8 use GCC/Clang vector extensions (vector_size), so
 *            the same source serves SSE2/NEON, AVX2 and AVX-512 — and
 *            still compiles (synthesized) anywhere the extension
 *            exists, with the LANES == 1 instantiation guaranteed on
 *            every compiler.
 *   KIND     slice-extraction flavor (see SignKind)
 *   CW, LSB  compile-time (cw, slice_lsb); CW == 0 reads the geometry
 *            at runtime, CW != 0 constant-folds every shift and mask —
 *            the "generated kernel per hot configuration" path.
 *
 * Bitwise identity with the scalar path needs no per-term care: each
 * lane computes exactly the scalar per-chunk term (the low 64 multiply
 * bits and the slice extraction are lane-local), and int64/uint64
 * addition is associative and commutative modulo 2^64, so the
 * lane-split accumulation order produces identical bits even at the
 * wraparound edge.
 */

#ifndef MIXGEMM_GEMM_KERNELS_SWAR_H
#define MIXGEMM_GEMM_KERNELS_SWAR_H

#include <cstdint>
#include <cstring>

#include "bs/geometry.h"
#include "common/bitutils.h"
#include "gemm/kernels/kernel.h"

#if defined(__GNUC__) || defined(__clang__)
#define MIXGEMM_HAVE_VECTOR_EXT 1
#else
#define MIXGEMM_HAVE_VECTOR_EXT 0
#endif

namespace mixgemm
{
namespace kernels
{

/**
 * The three slice-extraction flavors of clusterPanelDot(): unsigned
 * mask-extract, signed shift-pair + borrow (slice_lsb > 0), and signed
 * whole-low-slice sign extension (slice_lsb == 0).
 */
enum class SignKind
{
    Unsigned,
    SignedShift,
    SignedExt,
};

#if MIXGEMM_HAVE_VECTOR_EXT
/** LANES x 64-bit vector types (GCC/Clang vector extensions). */
template <unsigned LANES> struct VecTraits;
template <> struct VecTraits<2>
{
    typedef uint64_t U __attribute__((vector_size(16)));
    typedef int64_t I __attribute__((vector_size(16)));
};
template <> struct VecTraits<4>
{
    typedef uint64_t U __attribute__((vector_size(32)));
    typedef int64_t I __attribute__((vector_size(32)));
};
template <> struct VecTraits<8>
{
    typedef uint64_t U __attribute__((vector_size(64)));
    typedef int64_t I __attribute__((vector_size(64)));
};
#endif

/**
 * Slice constants, compile-time when CW != 0. The extraction identities
 * and their validity are the ones documented at clusterPanelDot(): the
 * slice plus its borrow bit never carries into the sign bit, so the
 * shift-pair extension plus borrow-after reorder is exact.
 */
template <SignKind KIND, unsigned CW, unsigned LSB> struct SliceSpec
{
    unsigned rt_cw;
    unsigned rt_lsb;

    explicit SliceSpec(const BsGeometry &geometry)
        : rt_cw(geometry.cw), rt_lsb(geometry.slice_lsb)
    {
    }

    unsigned cw() const { return CW != 0 ? CW : rt_cw; }
    unsigned lsb() const { return CW != 0 ? LSB : rt_lsb; }

    int64_t extract(uint64_t p) const
    {
        if constexpr (KIND == SignKind::Unsigned) {
            return static_cast<int64_t>((p >> lsb()) & mask64(cw()));
        } else if constexpr (KIND == SignKind::SignedShift) {
            const unsigned up = 64 - lsb() - cw();
            const unsigned down = 64 - cw();
            return (static_cast<int64_t>(p << up) >> down) +
                   static_cast<int64_t>((p >> (lsb() - 1)) & 1);
        } else {
            return signExtend64(p, cw());
        }
    }

#if MIXGEMM_HAVE_VECTOR_EXT
    template <unsigned LANES>
    typename VecTraits<LANES>::I
    extractVec(typename VecTraits<LANES>::U p) const
    {
        using I = typename VecTraits<LANES>::I;
        if constexpr (KIND == SignKind::Unsigned) {
            return reinterpret_cast<I>((p >> lsb()) & mask64(cw()));
        } else if constexpr (KIND == SignKind::SignedShift) {
            const unsigned up = 64 - lsb() - cw();
            const unsigned down = 64 - cw();
            return (reinterpret_cast<I>(p << up) >> down) +
                   reinterpret_cast<I>((p >> (lsb() - 1)) & uint64_t{1});
        } else {
            const unsigned down = 64 - cw();
            return reinterpret_cast<I>(p << down) >> down;
        }
    }
#endif
};

/**
 * The μ-tile body. Accumulates MR x NR exact cell sums into C. The
 * vectorized main loop carries one LANES-wide accumulator per cell;
 * the chunk tail (span % LANES) and the LANES == 1 instantiation run
 * the scalar extraction.
 */
template <unsigned MR, unsigned NR, unsigned LANES, SignKind KIND,
          unsigned CW, unsigned LSB>
void
swarMicroTile(const MicroTileArgs &t, const BsGeometry &geometry)
{
    const SliceSpec<KIND, CW, LSB> slice(geometry);
    const uint64_t *a_rows[MR];
    const uint64_t *b_cols[NR];
    for (unsigned j = 0; j < MR; ++j)
        a_rows[j] = t.a + j * t.a_stride;
    for (unsigned i = 0; i < NR; ++i)
        b_cols[i] = t.b + i * t.b_stride;

    int64_t acc[MR][NR];

#if MIXGEMM_HAVE_VECTOR_EXT
    if constexpr (LANES > 1) {
        using VU = typename VecTraits<LANES>::U;
        using VI = typename VecTraits<LANES>::I;
        VI vacc[MR][NR] = {};
        const unsigned vspan = t.span / LANES * LANES;
        for (unsigned c = 0; c < vspan; c += LANES) {
            VU va[MR], vb[NR];
            for (unsigned j = 0; j < MR; ++j)
                std::memcpy(&va[j], a_rows[j] + c, sizeof(VU));
            for (unsigned i = 0; i < NR; ++i)
                std::memcpy(&vb[i], b_cols[i] + c, sizeof(VU));
            for (unsigned j = 0; j < MR; ++j)
                for (unsigned i = 0; i < NR; ++i)
                    vacc[j][i] += slice.template extractVec<LANES>(
                        va[j] * vb[i]);
        }
        for (unsigned j = 0; j < MR; ++j) {
            for (unsigned i = 0; i < NR; ++i) {
                int64_t sum = 0;
                for (unsigned l = 0; l < LANES; ++l)
                    sum += vacc[j][i][l];
                for (unsigned c = vspan; c < t.span; ++c)
                    sum += slice.extract(a_rows[j][c] * b_cols[i][c]);
                acc[j][i] = sum;
            }
        }
    } else
#endif
    {
        for (unsigned j = 0; j < MR; ++j) {
            for (unsigned i = 0; i < NR; ++i) {
                int64_t sum = 0;
                for (unsigned c = 0; c < t.span; ++c)
                    sum += slice.extract(a_rows[j][c] * b_cols[i][c]);
                acc[j][i] = sum;
            }
        }
    }

    for (unsigned j = 0; j < MR; ++j)
        for (unsigned i = 0; i < NR; ++i)
            t.c[j * t.ldc + i] += acc[j][i];
}

/**
 * Registry entry point: resolves the signedness flavor from the
 * geometry (one branch per μ-tile) so a single entry serves all four
 * (a_signed, b_signed) combinations. For specialized entries (CW != 0)
 * the unreachable flavors fold away.
 */
template <unsigned MR, unsigned NR, unsigned LANES, unsigned CW,
          unsigned LSB>
void
microTileEntry(const MicroTileArgs &t, const BsGeometry &geometry)
{
    const bool any_signed =
        geometry.config.a_signed || geometry.config.b_signed;
    const unsigned lsb = CW != 0 ? LSB : geometry.slice_lsb;
    if (!any_signed)
        swarMicroTile<MR, NR, LANES, SignKind::Unsigned, CW, LSB>(
            t, geometry);
    else if (lsb > 0)
        swarMicroTile<MR, NR, LANES, SignKind::SignedShift, CW, LSB>(
            t, geometry);
    else
        swarMicroTile<MR, NR, LANES, SignKind::SignedExt, CW, LSB>(
            t, geometry);
}

} // namespace kernels
} // namespace mixgemm

#endif // MIXGEMM_GEMM_KERNELS_SWAR_H
