/**
 * @file
 * Offline blocking/μ-kernel autotuner and its persisted tuning files.
 *
 * In the spirit of ISAAC/Triton-style `gemm_parameters` records
 * (SNIPPETS.md snippet 3), a TuningEntry is one validated operating
 * point — cache blocking (mc/nc/kc), register blocking (mr x nr) and
 * the registry μ-kernel — measured fastest for one data-size
 * configuration on one SoC preset. runAutotune() sweeps the candidate
 * space (register shapes x applicable kernels x mc/nc/kc around the
 * analytical deriveBlocking() point), times each candidate on a probe
 * GEMM, and keeps the winner per configuration.
 *
 * Winners persist to a JSON tuning file (TuningSet::save/load) that the
 * runtime consults at dispatch time: blockingForConfig() overlays the
 * tuned entry — when one exists — onto the analytical derivation, and
 * the forced kernel name flows into BlockingParams::micro_kernel, so a
 * reloaded file reproduces the exact tuned dispatch (round-trip pinned
 * by tests/test_kernels.cc). A file tuned on a wider-SIMD machine
 * degrades gracefully: an unknown kernel name falls back to automatic
 * selection with a warning (see selectMicroKernel()).
 *
 * Tuning-file format (all fields required unless noted):
 *
 *   {
 *     "tool": "mixgemm-autotune",
 *     "preset": "host",              // SoC preset label
 *     "simd_bits": 512,              // lane width at tuning time
 *     "entries": [
 *       { "config": "a8-w8", "a_signed": true, "b_signed": true,
 *         "mc": 128, "nc": 256, "kc": 256, "mr": 8, "nr": 4,
 *         "kernel": "swar512_8x4_cw19",      // "" = auto-select
 *         "gops": 14.2,                      // optional, informative
 *         "probe": {"m": 192, "n": 192, "k": 384} }  // optional
 *     ]
 *   }
 */

#ifndef MIXGEMM_GEMM_KERNELS_AUTOTUNE_H
#define MIXGEMM_GEMM_KERNELS_AUTOTUNE_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "bs/geometry.h"
#include "common/status.h"
#include "gemm/blocking.h"

namespace mixgemm
{

/** One tuned operating point for one data-size configuration. */
struct TuningEntry
{
    std::string config; ///< "aX-wY" (DataSizeConfig::name())
    bool a_signed = true;
    bool b_signed = true;
    uint64_t mc = 256, nc = 256, kc = 256;
    unsigned mr = 4, nr = 4;
    std::string kernel; ///< registry μ-kernel name; "" = auto-select
    double gops = 0.0;  ///< measured throughput at the probe shape
    uint64_t probe_m = 0, probe_n = 0, probe_k = 0;
};

/** A persisted set of tuned operating points for one SoC preset. */
struct TuningSet
{
    std::string preset = "host";
    unsigned simd_bits = 64; ///< 64 * simdMaxLanes() at tuning time
    std::vector<TuningEntry> entries;

    /** Entry matching @p config (name + signedness); nullptr if none. */
    const TuningEntry *find(const DataSizeConfig &config) const;

    /** Insert or replace the entry for @p entry 's configuration. */
    void upsert(TuningEntry entry);

    /** Serialize to the tuning-file JSON (trailing newline included). */
    std::string toJson() const;

    /** Parse + validate a tuning-file document. */
    static Expected<TuningSet> fromJson(const std::string &text);

    /** Read + parse a tuning file from disk. */
    static Expected<TuningSet> load(const std::string &path);

    /** Write toJson() to @p path. */
    Status save(const std::string &path) const;
};

/** Overlay one tuned entry onto @p params (blocking + forced kernel). */
void applyTuning(const TuningEntry &entry, BlockingParams &params);

/**
 * Runtime dispatch consult: the analytical deriveBlocking() point for
 * (@p l1_bytes, @p l2_bytes), overridden by the tuned entry when
 * @p tuning (nullable) has one for @p config.
 */
BlockingParams blockingForConfig(const TuningSet *tuning,
                                 const DataSizeConfig &config,
                                 uint64_t l1_bytes, uint64_t l2_bytes,
                                 unsigned elem_bytes = 8);

/** Candidate sweep bounds for one runAutotune() invocation. */
struct AutotuneOptions
{
    std::vector<DataSizeConfig> configs; ///< empty = the hot four
    /// Quick mode (CI): one analytical blocking point per register
    /// shape, auto-selected kernel only, smaller probe, one rep.
    bool quick = false;
    uint64_t m = 192, n = 192, k = 384; ///< probe GEMM shape
    unsigned reps = 3;                  ///< best-of wall-clock reps
    unsigned threads = 1;
    std::string preset = "host";
    uint64_t l1_bytes = 32 * 1024;  ///< SoC preset cache budget
    uint64_t l2_bytes = 512 * 1024;
    uint64_t seed = 20260807;       ///< probe-data RNG seed
};

/**
 * Sweep and measure; returns the per-configuration winners. Progress
 * lines go to @p log when non-null. Deterministic in everything but
 * the wall-clock measurements themselves.
 */
TuningSet runAutotune(const AutotuneOptions &options,
                      std::ostream *log = nullptr);

} // namespace mixgemm

#endif // MIXGEMM_GEMM_KERNELS_AUTOTUNE_H
