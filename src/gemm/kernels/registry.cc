/**
 * @file
 * μ-kernel registry: template instantiation and dispatch selection.
 *
 * This translation unit is the only place the SWAR templates
 * instantiate, and the build compiles it with the widest ISA the host
 * toolchain offers (-march=native when available, see
 * src/gemm/CMakeLists.txt) — keeping ISA-specific codegen out of every
 * other object file. Lane availability is a compile-time fact of this
 * file: AVX-512DQ (native 64-bit vector multiply) enables 8-lane
 * kernels, AVX2 4-lane, any other GNU-compatible target 2-lane, and a
 * compiler without vector extensions still gets the 1-lane scalar
 * instantiations.
 *
 * Slice-specialized entries (compile-time cw/slice_lsb) are generated
 * for the hot data-size configurations at the widest lane count only —
 * the width automatic selection picks anyway:
 *
 *   a8-w8           cluster 3, cw 19, slice_lsb 38
 *   a8-w4 / a4-w8   cluster 4, cw 16, slice_lsb 48
 *   a4-w4           cluster 5, cw 12, slice_lsb 48
 *   a2-w2           cluster 7, cw  8, slice_lsb 48
 */

#include "gemm/kernels/kernel.h"

#include <algorithm>

#include "common/logging.h"
#include "gemm/kernels/swar.h"

namespace mixgemm
{

namespace
{

using kernels::microTileEntry;

#if !MIXGEMM_HAVE_VECTOR_EXT
constexpr unsigned kMaxLanes = 1;
#elif defined(__AVX512F__) && defined(__AVX512DQ__)
constexpr unsigned kMaxLanes = 8;
#elif defined(__AVX2__)
constexpr unsigned kMaxLanes = 4;
#else
constexpr unsigned kMaxLanes = 2;
#endif

std::string
shapeName(unsigned mr, unsigned nr)
{
    return std::to_string(mr) + "x" + std::to_string(nr);
}

/** Generic (runtime-slice) entry for one (shape, lanes) pair. */
template <unsigned MR, unsigned NR, unsigned LANES>
void
addGeneric(std::vector<MicroKernel> &v)
{
    const std::string name =
        LANES == 1
            ? "scalar_" + shapeName(MR, NR)
            : "swar" + std::to_string(LANES * 64) + "_" +
                  shapeName(MR, NR);
    v.push_back({name, MR, NR, LANES, 0, 0,
                 &microTileEntry<MR, NR, LANES, 0, 0>});
}

/** Slice-specialized entry for one (shape, lanes, cw, lsb) tuple. */
template <unsigned MR, unsigned NR, unsigned LANES, unsigned CW,
          unsigned LSB>
void
addSpecialized(std::vector<MicroKernel> &v)
{
    const std::string name = "swar" + std::to_string(LANES * 64) + "_" +
                             shapeName(MR, NR) + "_cw" +
                             std::to_string(CW);
    v.push_back({name, MR, NR, LANES, CW, LSB,
                 &microTileEntry<MR, NR, LANES, CW, LSB>});
}

template <unsigned MR, unsigned NR>
void
addShape(std::vector<MicroKernel> &v)
{
    addGeneric<MR, NR, 1>(v);
    if constexpr (kMaxLanes >= 2)
        addGeneric<MR, NR, 2>(v);
    if constexpr (kMaxLanes >= 4)
        addGeneric<MR, NR, 4>(v);
    if constexpr (kMaxLanes >= 8)
        addGeneric<MR, NR, 8>(v);
    if constexpr (kMaxLanes > 1) {
        // Hot-config specializations at the widest lane count.
        addSpecialized<MR, NR, kMaxLanes, 19, 38>(v); // a8-w8
        addSpecialized<MR, NR, kMaxLanes, 16, 48>(v); // a8-w4, a4-w8
        addSpecialized<MR, NR, kMaxLanes, 12, 48>(v); // a4-w4
        addSpecialized<MR, NR, kMaxLanes, 8, 48>(v);  // a2-w2
    }
}

unsigned
lanesCap(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Off: return 0;
      case SimdLevel::Scalar: return 1;
      case SimdLevel::V128: return 2;
      case SimdLevel::V256: return 4;
      case SimdLevel::V512: return 8;
      case SimdLevel::Auto: return kMaxLanes;
    }
    return kMaxLanes;
}

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Off: return "off";
      case SimdLevel::Scalar: return "scalar";
      case SimdLevel::V128: return "v128";
      case SimdLevel::V256: return "v256";
      case SimdLevel::V512: return "v512";
      case SimdLevel::Auto: return "auto";
    }
    return "?";
}

Expected<SimdLevel>
parseSimdLevel(std::string_view name)
{
    for (SimdLevel level :
         {SimdLevel::Off, SimdLevel::Scalar, SimdLevel::V128,
          SimdLevel::V256, SimdLevel::V512, SimdLevel::Auto})
        if (name == simdLevelName(level))
            return level;
    return Status::invalidArgument(
        strCat("unknown SIMD level '", std::string(name),
               "' (off|scalar|v128|v256|v512|auto)"));
}

const std::vector<MicroKernel> &
microKernelRegistry()
{
    static const std::vector<MicroKernel> registry = [] {
        std::vector<MicroKernel> v;
        addShape<4, 4>(v);
        addShape<8, 4>(v);
        addShape<4, 8>(v);
        addShape<8, 8>(v);
        return v;
    }();
    return registry;
}

const MicroKernel *
findMicroKernel(std::string_view name)
{
    for (const MicroKernel &k : microKernelRegistry())
        if (k.name == name)
            return &k;
    return nullptr;
}

unsigned
simdMaxLanes()
{
    return kMaxLanes;
}

bool
microKernelApplicable(const MicroKernel &kernel,
                      const BsGeometry &geometry)
{
    return kernel.cw == 0 || (kernel.cw == geometry.cw &&
                              kernel.lsb == geometry.slice_lsb);
}

const MicroKernel *
selectMicroKernel(const BsGeometry &geometry, unsigned mr, unsigned nr,
                  SimdLevel level, std::string_view forced)
{
    if (!forced.empty()) {
        const MicroKernel *k = findMicroKernel(forced);
        if (k && k->mr == mr && k->nr == nr &&
            microKernelApplicable(*k, geometry))
            return k;
        warn(strCat("selectMicroKernel: forced kernel '",
                    std::string(forced), "' is ",
                    k ? "not applicable to this geometry/shape"
                      : "not registered in this binary",
                    "; falling back to automatic selection"));
    }
    if (level == SimdLevel::Off)
        return nullptr;
    const unsigned cap = lanesCap(level);
    const MicroKernel *best = nullptr;
    for (const MicroKernel &k : microKernelRegistry()) {
        if (k.mr != mr || k.nr != nr || k.lanes > cap ||
            !microKernelApplicable(k, geometry))
            continue;
        if (!best || k.lanes > best->lanes ||
            (k.lanes == best->lanes && k.cw != 0 && best->cw == 0))
            best = &k;
    }
    return best;
}

} // namespace mixgemm
