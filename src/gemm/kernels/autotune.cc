#include "gemm/kernels/autotune.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/jsonlite.h"
#include "common/logging.h"
#include "common/random.h"
#include "gemm/kernels/kernel.h"
#include "gemm/mixgemm.h"
#include "tensor/packing.h"
#include "trace/json.h"

namespace mixgemm
{

namespace
{

/** Parse "aX-wY" back into bitwidths; signedness comes separately. */
Expected<DataSizeConfig>
parseConfigName(const std::string &name, bool a_signed, bool b_signed)
{
    unsigned bwa = 0, bwb = 0;
    if (std::sscanf(name.c_str(), "a%u-w%u", &bwa, &bwb) != 2 ||
        bwa < 2 || bwa > 8 || bwb < 2 || bwb > 8)
        return Status::dataLoss(
            strCat("tuning entry has invalid config name '", name, "'"));
    DataSizeConfig config;
    config.bwa = bwa;
    config.bwb = bwb;
    config.a_signed = a_signed;
    config.b_signed = b_signed;
    return config;
}

/** Format a double with enough digits to survive the JSON round trip. */
std::string
formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    return buf;
}

std::vector<int32_t>
randomNarrowMatrix(Rng &rng, uint64_t elems, unsigned bw, bool is_signed)
{
    std::vector<int32_t> data(elems);
    for (auto &v : data) {
        if (is_signed)
            v = static_cast<int32_t>(
                rng.uniformInt(-(int64_t{1} << (bw - 1)),
                               (int64_t{1} << (bw - 1)) - 1));
        else
            v = static_cast<int32_t>(
                rng.uniformInt(0, (int64_t{1} << bw) - 1));
    }
    return data;
}

/** Candidate cache-block sizes around the analytical point. */
std::vector<uint64_t>
blockCandidates(uint64_t derived, uint64_t floor, bool quick)
{
    std::vector<uint64_t> out{derived};
    if (!quick) {
        if (derived / 2 >= floor)
            out.push_back(derived / 2);
        out.push_back(derived * 2);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace

const TuningEntry *
TuningSet::find(const DataSizeConfig &config) const
{
    for (const TuningEntry &entry : entries)
        if (entry.config == config.name() &&
            entry.a_signed == config.a_signed &&
            entry.b_signed == config.b_signed)
            return &entry;
    return nullptr;
}

void
TuningSet::upsert(TuningEntry entry)
{
    for (TuningEntry &existing : entries) {
        if (existing.config == entry.config &&
            existing.a_signed == entry.a_signed &&
            existing.b_signed == entry.b_signed) {
            existing = std::move(entry);
            return;
        }
    }
    entries.push_back(std::move(entry));
}

std::string
TuningSet::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"tool\": \"mixgemm-autotune\",\n";
    os << "  \"preset\": \"" << jsonEscape(preset) << "\",\n";
    os << "  \"simd_bits\": " << simd_bits << ",\n";
    os << "  \"entries\": [";
    for (size_t i = 0; i < entries.size(); ++i) {
        const TuningEntry &e = entries[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    { \"config\": \"" << jsonEscape(e.config)
           << "\", \"a_signed\": " << (e.a_signed ? "true" : "false")
           << ", \"b_signed\": " << (e.b_signed ? "true" : "false")
           << ",\n      \"mc\": " << e.mc << ", \"nc\": " << e.nc
           << ", \"kc\": " << e.kc << ", \"mr\": " << e.mr
           << ", \"nr\": " << e.nr << ",\n      \"kernel\": \""
           << jsonEscape(e.kernel) << "\", \"gops\": "
           << formatDouble(e.gops) << ",\n      \"probe\": {\"m\": "
           << e.probe_m << ", \"n\": " << e.probe_n << ", \"k\": "
           << e.probe_k << "} }";
    }
    os << (entries.empty() ? "]\n" : "\n  ]\n");
    os << "}\n";
    return os.str();
}

Expected<TuningSet>
TuningSet::fromJson(const std::string &text)
{
    Expected<JsonValue> doc = parseJson(text);
    if (!doc)
        return doc.status();
    if (!doc->isObject())
        return Status::dataLoss("tuning file: top level is not an object");
    TuningSet set;
    if (const JsonValue *tool = doc->find("tool");
        tool && tool->stringOr("") != "mixgemm-autotune")
        return Status::dataLoss(
            strCat("tuning file: unexpected tool '",
                   tool->stringOr(""), "'"));
    if (const JsonValue *preset = doc->find("preset"))
        set.preset = preset->stringOr(set.preset);
    if (const JsonValue *bits = doc->find("simd_bits"))
        set.simd_bits = static_cast<unsigned>(bits->uintOr(64));
    const JsonValue *entries = doc->find("entries");
    if (!entries || !entries->isArray())
        return Status::dataLoss(
            "tuning file: missing or non-array 'entries'");
    for (const JsonValue &item : entries->items) {
        if (!item.isObject())
            return Status::dataLoss(
                "tuning file: entry is not an object");
        TuningEntry e;
        const JsonValue *config = item.find("config");
        if (!config || !config->isString())
            return Status::dataLoss(
                "tuning file: entry missing 'config'");
        e.config = config->str;
        if (const JsonValue *v = item.find("a_signed"))
            e.a_signed = v->boolOr(true);
        if (const JsonValue *v = item.find("b_signed"))
            e.b_signed = v->boolOr(true);
        e.mc = item.find("mc") ? item.find("mc")->uintOr(0) : 0;
        e.nc = item.find("nc") ? item.find("nc")->uintOr(0) : 0;
        e.kc = item.find("kc") ? item.find("kc")->uintOr(0) : 0;
        e.mr = item.find("mr")
            ? static_cast<unsigned>(item.find("mr")->uintOr(0))
            : 0;
        e.nr = item.find("nr")
            ? static_cast<unsigned>(item.find("nr")->uintOr(0))
            : 0;
        if (const JsonValue *v = item.find("kernel"))
            e.kernel = v->stringOr("");
        if (const JsonValue *v = item.find("gops"))
            e.gops = v->numberOr(0.0);
        if (const JsonValue *probe = item.find("probe")) {
            if (const JsonValue *v = probe->find("m"))
                e.probe_m = v->uintOr(0);
            if (const JsonValue *v = probe->find("n"))
                e.probe_n = v->uintOr(0);
            if (const JsonValue *v = probe->find("k"))
                e.probe_k = v->uintOr(0);
        }
        // Validate the entry: the config must parse and the blocking
        // must be an executable geometry. A hand-edited file fails
        // here instead of deep inside the GEMM driver.
        Expected<DataSizeConfig> parsed =
            parseConfigName(e.config, e.a_signed, e.b_signed);
        if (!parsed)
            return parsed.status();
        BlockingParams check;
        check.mc = e.mc;
        check.nc = e.nc;
        check.kc = e.kc;
        check.mr = e.mr;
        check.nr = e.nr;
        if (Status s = check.validateStatus(); !s.ok())
            return Status::dataLoss(
                strCat("tuning file: entry '", e.config,
                       "' has invalid blocking — ", s.toString()));
        set.entries.push_back(std::move(e));
    }
    return set;
}

Expected<TuningSet>
TuningSet::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status::notFound(
            strCat("cannot open tuning file '", path, "'"));
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromJson(buffer.str());
}

Status
TuningSet::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return Status::internal(
            strCat("cannot write tuning file '", path, "'"));
    out << toJson();
    return Status();
}

void
applyTuning(const TuningEntry &entry, BlockingParams &params)
{
    params.mc = entry.mc;
    params.nc = entry.nc;
    params.kc = entry.kc;
    params.mr = entry.mr;
    params.nr = entry.nr;
    params.micro_kernel = entry.kernel;
}

BlockingParams
blockingForConfig(const TuningSet *tuning, const DataSizeConfig &config,
                  uint64_t l1_bytes, uint64_t l2_bytes,
                  unsigned elem_bytes)
{
    BlockingParams params =
        deriveBlocking(l1_bytes, l2_bytes, elem_bytes, 4, 4);
    if (tuning) {
        if (const TuningEntry *entry = tuning->find(config))
            applyTuning(*entry, params);
    }
    return params;
}

TuningSet
runAutotune(const AutotuneOptions &options, std::ostream *log)
{
    using clock = std::chrono::steady_clock;

    std::vector<DataSizeConfig> configs = options.configs;
    if (configs.empty()) {
        // The hot four: the configurations with slice-specialized
        // kernel instantiations (see kernels/registry.cc).
        constexpr std::pair<unsigned, unsigned> kHot[] = {
            {8, 8}, {8, 4}, {4, 4}, {2, 2}};
        for (const auto &[bwa, bwb] : kHot) {
            DataSizeConfig c;
            c.bwa = bwa;
            c.bwb = bwb;
            configs.push_back(c);
        }
    }

    const uint64_t m = options.m, n = options.n, k = options.k;
    const unsigned reps = std::max(1u, options.quick ? 1u : options.reps);
    constexpr std::pair<unsigned, unsigned> kShapes[] = {
        {4, 4}, {8, 4}, {4, 8}, {8, 8}};

    TuningSet best_set;
    best_set.preset = options.preset;
    best_set.simd_bits = 64 * simdMaxLanes();

    Rng rng(options.seed);
    for (const DataSizeConfig &config : configs) {
        const BsGeometry geometry =
            geometryForK(computeBsGeometry(config), k);
        const auto a_data =
            randomNarrowMatrix(rng, m * k, config.bwa, config.a_signed);
        const auto b_data =
            randomNarrowMatrix(rng, k * n, config.bwb, config.b_signed);
        const CompressedA a(a_data, m, k, geometry);
        const CompressedB b(b_data, k, n, geometry);
        // Panels build once and amortize across every candidate —
        // blocking and kernel choice never change the expansion.
        a.ensureClusterPanels();
        b.ensureClusterPanels();

        TuningEntry best;
        best.config = config.name();
        best.a_signed = config.a_signed;
        best.b_signed = config.b_signed;
        best.probe_m = m;
        best.probe_n = n;
        best.probe_k = k;

        for (const auto &[mr, nr] : kShapes) {
            const BlockingParams derived = deriveBlocking(
                options.l1_bytes, options.l2_bytes, 8, mr, nr);

            // Candidate kernels: quick mode trusts automatic
            // selection; the full sweep measures every applicable
            // registry entry of this shape (scalar fallback included,
            // so a machine where SWAR loses still tunes honestly).
            std::vector<std::string> kernel_names;
            if (options.quick) {
                if (const MicroKernel *k_auto = selectMicroKernel(
                        geometry, mr, nr, SimdLevel::Auto))
                    kernel_names.push_back(k_auto->name);
            } else {
                for (const MicroKernel &kernel : microKernelRegistry())
                    if (kernel.mr == mr && kernel.nr == nr &&
                        microKernelApplicable(kernel, geometry))
                        kernel_names.push_back(kernel.name);
            }
            if (kernel_names.empty())
                continue;

            for (const uint64_t kc :
                 blockCandidates(derived.kc, mr, options.quick)) {
                for (const uint64_t mc : blockCandidates(
                         std::max<uint64_t>(derived.mc, mr), mr,
                         options.quick)) {
                    for (const std::string &kernel_name : kernel_names) {
                        BlockingParams params = derived;
                        params.kc = kc;
                        params.mc = std::max<uint64_t>(mr, mc / mr * mr);
                        params.nc = std::max<uint64_t>(nr, derived.nc);
                        params.threads = options.threads;
                        params.micro_kernel = kernel_name;
                        if (!params.validateStatus().ok())
                            continue;

                        double best_secs = 0.0;
                        for (unsigned rep = 0; rep < reps; ++rep) {
                            const auto start = clock::now();
                            const MixGemmResult result =
                                mixGemm(a, b, params);
                            const double secs =
                                std::chrono::duration<double>(
                                    clock::now() - start)
                                    .count();
                            (void)result;
                            if (rep == 0 || secs < best_secs)
                                best_secs = secs;
                        }
                        const double gops = best_secs > 0.0
                            ? 2.0 * static_cast<double>(m) *
                                static_cast<double>(n) *
                                static_cast<double>(k) / best_secs /
                                1e9
                            : 0.0;
                        if (gops > best.gops) {
                            best.mc = params.mc;
                            best.nc = params.nc;
                            best.kc = params.kc;
                            best.mr = mr;
                            best.nr = nr;
                            best.kernel = kernel_name;
                            best.gops = gops;
                        }
                    }
                }
            }
        }

        if (log)
            *log << "autotune " << best.config << ": " << best.mr << "x"
                 << best.nr << " " << best.kernel << " mc=" << best.mc
                 << " nc=" << best.nc << " kc=" << best.kc << " "
                 << formatDouble(best.gops) << " GOPS\n";
        best_set.upsert(std::move(best));
    }
    return best_set;
}

} // namespace mixgemm
