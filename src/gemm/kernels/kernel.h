/**
 * @file
 * μ-kernel registry for the word-domain fast path.
 *
 * The fast GEMM driver (gemm/mixgemm.cc) computes every interior
 * [mr x nr] C μ-panel as mr * nr independent clusterPanelDot() streams.
 * That per-cell loop is the PR-2 scalar baseline; this registry holds
 * the generated SIMD SWAR replacements: templated kernels instantiated
 * per register-blocking shape (4x4, 8x4, 4x8, 8x8), per SIMD lane count
 * (1 = scalar fallback, 2/4/8 x 64-bit via GCC/Clang vector
 * extensions), and — for the hot data-size configurations — per
 * compile-time (cw, slice_lsb) pair so the shift/mask slice extraction
 * constant-folds.
 *
 * Dispatch key: (mr x nr shape, lane width, slice constants). The
 * signedness split — unsigned mask-extract, signed shift-pair with
 * borrow, signed lsb == 0 sign-extend — is resolved inside each entry
 * from the geometry, so one registry entry covers all four
 * (a_signed, b_signed) combinations of its configuration.
 *
 * Every kernel computes the exact chunk sums of bs/expand.h's
 * clusterPanelDot(): int64 addition is associative modulo 2^64, so any
 * lane-parallel reordering of the per-chunk terms produces the same
 * bits, and every registered kernel stays bitwise identical to the
 * modeled μ-engine in C and counter totals (pinned by
 * tests/test_kernels.cc across the full config x shape x thread
 * matrix).
 */

#ifndef MIXGEMM_GEMM_KERNELS_KERNEL_H
#define MIXGEMM_GEMM_KERNELS_KERNEL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bs/geometry.h"
#include "common/status.h"

namespace mixgemm
{

/**
 * SIMD lane-width ceiling for μ-kernel selection.
 *
 *  - Off: bypass the registry entirely — the driver keeps the PR-2
 *    per-cell scalar loop (the "legacy" kernel). The benchmark baseline.
 *  - Scalar: registry kernels restricted to the 1-lane scalar fallback.
 *  - V128/V256/V512: cap the lane width at 2/4/8 64-bit lanes.
 *  - Auto: widest lane width this binary was compiled for.
 */
enum class SimdLevel
{
    Off,
    Scalar,
    V128,
    V256,
    V512,
    Auto,
};

/** Canonical lowercase name ("off", "scalar", "v128", ..., "auto"). */
const char *simdLevelName(SimdLevel level);

/** Parse a simdLevelName() string (CLI/tuning-file boundary). */
Expected<SimdLevel> parseSimdLevel(std::string_view name);

/**
 * One interior μ-tile of fast-path work: mr rows of A cluster panels
 * against nr columns of B cluster panels, each pair a @ref span chunk
 * multiply/extract stream, accumulated (+=) into the C μ-panel at
 * @ref c. Strides are in 64-bit words; consecutive accumulation groups
 * of one row/column are contiguous (tensor/packing.h), which is what
 * lets the whole [g0, g1) group range flatten into one span.
 */
struct MicroTileArgs
{
    const uint64_t *a = nullptr; ///< row 0 cluster stream (at group g0)
    const uint64_t *b = nullptr; ///< col 0 cluster stream (at group g0)
    uint64_t a_stride = 0;       ///< words between adjacent A rows
    uint64_t b_stride = 0;       ///< words between adjacent B columns
    unsigned span = 0;           ///< cluster-word pairs per cell
    int64_t *c = nullptr;        ///< &C[ir * ldc + jr]
    uint64_t ldc = 0;            ///< C row stride in elements
};

/** A registered μ-kernel implementation. */
using MicroKernelFn = void (*)(const MicroTileArgs &, const BsGeometry &);

/** Registry entry: dispatch key + the kernel function. */
struct MicroKernel
{
    std::string name; ///< e.g. "swar512_8x4_cw19", "scalar_4x4"
    unsigned mr = 0;  ///< register-block rows the kernel computes
    unsigned nr = 0;  ///< register-block columns
    unsigned lanes = 1; ///< 64-bit SIMD lanes per vector op (1 = scalar)
    /// Compile-time slice constants; 0 = generic (reads the geometry at
    /// runtime). A specialized entry only applies to geometries whose
    /// (cw, slice_lsb) match exactly.
    unsigned cw = 0;
    unsigned lsb = 0;
    MicroKernelFn fn = nullptr;
};

/** All kernels compiled into this binary (stable order, built once). */
const std::vector<MicroKernel> &microKernelRegistry();

/** Look up a kernel by exact name; nullptr when absent. */
const MicroKernel *findMicroKernel(std::string_view name);

/** Widest lane count compiled into this binary (1, 2, 4 or 8). */
unsigned simdMaxLanes();

/** True iff @p kernel 's slice specialization matches @p geometry. */
bool microKernelApplicable(const MicroKernel &kernel,
                           const BsGeometry &geometry);

/**
 * Pick the μ-kernel the fast path dispatches for one GEMM: @p forced
 * (a registry name, typically from a tuning file) wins when it exists
 * and applies to this geometry/shape — otherwise selection falls back
 * to automatic with a warning. Automatic selection returns the widest
 * applicable kernel within @p level 's lane cap, preferring a
 * slice-specialized entry over the generic one at equal width.
 * Returns nullptr — keep the legacy per-cell loop — for
 * SimdLevel::Off or when no registered kernel matches (mr, nr).
 */
const MicroKernel *selectMicroKernel(const BsGeometry &geometry,
                                     unsigned mr, unsigned nr,
                                     SimdLevel level,
                                     std::string_view forced = {});

} // namespace mixgemm

#endif // MIXGEMM_GEMM_KERNELS_KERNEL_H
