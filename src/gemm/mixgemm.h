/**
 * @file
 * The Mix-GEMM software library (Section III-A, Algorithm 1).
 *
 * Computes C = A * B over compressed narrow-integer operands using the
 * BLIS 5-loop structure, issuing accumulation groups to the functional
 * μ-engine exactly as the M-GEMM / MACRO-KERNEL / μ-KERNEL procedures of
 * Algorithm 1 do:
 *
 *   M-GEMM         n/nc, k/kc(groups), m/mc panel loops + bs.set
 *   MACRO-KERNEL   nc/nr, mc/mr μ-panel loops
 *   μ-KERNEL       per group: nr x mr cells x group_pairs bs.ip,
 *                  then mr x nr bs.get collecting the C μ-panel
 *
 * Matrix edges (m or n not multiples of mr/nr) are handled the standard
 * BLIS way: μ-panels are zero-padded, and out-of-range C cells are
 * discarded at bs.get time; interior μ-panels take branch-free hot
 * loops. The returned counters expose the dynamic instruction mix;
 * cycle-accurate timing is the job of src/sim, which is cross-validated
 * against these counts.
 *
 * Kernel modes (BlockingParams::kernel_mode): Modeled drives every
 * μ-vector pair through the functional BsEngine; Fast (the default)
 * computes each cell as a clusterPanelDot over cached cluster-domain
 * panels (bw -> cw expansion, see bs/expand.h and tensor/packing.h)
 * with counters derived from the same loop structure — output and
 * counter totals are bitwise identical between the modes, pinned by
 * tests/test_fastpath.cc.
 *
 * Threading (BlockingParams::threads): the jc/ic panel loops flatten
 * into a list of [mc x nc] macro tiles covering disjoint C sub-blocks;
 * worker w executes tiles w, w + threads, ... with its own functional
 * μ-engine instance and its own CounterSet, merged in worker order at
 * join time. Because int64 accumulation is exact and the partition
 * depends only on the problem shape, the output C and every counter
 * total are bitwise identical for any thread count. The bs_set counter
 * stays 1 — one logical configuration broadcast — regardless of how
 * many per-core engine instances are programmed with it.
 */

#ifndef MIXGEMM_GEMM_MIXGEMM_H
#define MIXGEMM_GEMM_MIXGEMM_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "gemm/blocking.h"
#include "tensor/packing.h"

namespace mixgemm
{

/**
 * What ABFT verification saw and did during one mixGemm() call.
 * All-zero (the default) when BlockingParams::fault_policy is Off.
 */
struct AbftOutcome
{
    uint64_t tiles_checked = 0;
    uint64_t tiles_flagged = 0;     ///< failed the row/col checksum test
    uint64_t retries = 0;           ///< tile recompute attempts
    uint64_t tiles_corrected = 0;   ///< clean after retry/fallback
    uint64_t tiles_uncorrected = 0; ///< still corrupt after all attempts
    /// k positions whose operand checksum mismatched — packed-SRAM
    /// corruption; the inputs are wrong and recomputation cannot help.
    uint64_t input_k_mismatches = 0;
    bool fell_back = false; ///< DetectFallback degraded to Modeled
    double abft_secs = 0.0; ///< wall-clock spent in checksum work
};

/** Result of a Mix-GEMM execution. */
struct MixGemmResult
{
    std::vector<int64_t> c; ///< row-major m x n output
    CounterSet counters;    ///< bs_set/bs_ip/bs_get/engine_busy_cycles/...
    AbftOutcome abft;       ///< ABFT verdicts (fault_policy != Off)

    /**
     * The μ-kernel the interior fast path dispatched: a registry name
     * from gemm/kernels/kernel.h (e.g. "swar512_8x4_cw19"), "legacy"
     * when the registry was bypassed (SimdLevel::Off or an unmatched
     * mr x nr shape), or "modeled" under KernelMode::Modeled. Also
     * recorded in the RunReport when a session is attached.
     */
    std::string micro_kernel;

    /**
     * kCancelled / kDeadlineExceeded when a BlockingParams::cancel
     * token tripped before all macro tiles completed; ok otherwise
     * (always ok without a token). On cancellation @ref c holds only
     * the tiles that completed before the trip — every macro tile's C
     * sub-block is either fully computed or untouched (zero); callers
     * must treat the whole buffer as discarded partial work.
     */
    Status status;
    uint64_t tiles_total = 0;     ///< macro tiles in the decomposition
    uint64_t tiles_completed = 0; ///< tiles finished before cancellation
};

/**
 * Execute C = A * B through the functional μ-engine.
 *
 * @param a compressed A operand (m x k)
 * @param b compressed B operand (k x n); geometries must match
 * @param blocking cache/register blocking; kc is rounded down to a whole
 *        number of accumulation groups (at least one)
 */
MixGemmResult mixGemm(const CompressedA &a, const CompressedB &b,
                      const BlockingParams &blocking =
                          BlockingParams::paperDefaults());

/**
 * Convenience overload: quantized row-major int32 operands are
 * compressed on the fly.
 */
MixGemmResult mixGemm(std::span<const int32_t> a,
                      std::span<const int32_t> b, uint64_t m, uint64_t n,
                      uint64_t k, const BsGeometry &geometry,
                      const BlockingParams &blocking =
                          BlockingParams::paperDefaults());

/**
 * Checked variant of mixGemm() for external-input boundaries: operand
 * shape/configuration mismatches and invalid blocking parameters come
 * back as a structured error instead of a FatalError throw, a tripped
 * cancellation token comes back as its kCancelled/kDeadlineExceeded
 * Status (partial work discarded), and an exception escaping a worker
 * task fails the parallel region with kInternal instead of propagating
 * out of a serving process. Identical computation on the success path.
 */
Expected<MixGemmResult> tryMixGemm(const CompressedA &a,
                                   const CompressedB &b,
                                   const BlockingParams &blocking =
                                       BlockingParams::paperDefaults());

} // namespace mixgemm

#endif // MIXGEMM_GEMM_MIXGEMM_H
