#include "accuracy/pareto.h"

#include <algorithm>
#include <numeric>

namespace mixgemm
{

bool
dominates(const ParetoPoint &q, const ParetoPoint &p)
{
    const bool geq = q.performance >= p.performance &&
                     q.accuracy >= p.accuracy;
    const bool strictly = q.performance > p.performance ||
                          q.accuracy > p.accuracy;
    return geq && strictly;
}

std::vector<size_t>
paretoFrontier(std::span<const ParetoPoint> points)
{
    std::vector<size_t> frontier;
    for (size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (size_t j = 0; j < points.size() && !dominated; ++j)
            dominated = j != i && dominates(points[j], points[i]);
        if (!dominated)
            frontier.push_back(i);
    }
    std::sort(frontier.begin(), frontier.end(),
              [&](size_t a, size_t b) {
                  return points[a].performance < points[b].performance;
              });
    return frontier;
}

} // namespace mixgemm
