#include "accuracy/qat_database.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mixgemm
{

namespace
{

/** Activation-vs-weight interpolation weight for mixed configurations. */
constexpr double kActivationShare = 0.55;

/** Deterministic jitter in [-0.08, 0.08] points from a config hash. */
double
jitter(const std::string &model, const DataSizeConfig &config)
{
    uint64_t h = 1469598103934665603ull;
    for (const char c : model)
        h = (h ^ static_cast<uint64_t>(c)) * 1099511628211ull;
    h = (h ^ config.bwa) * 1099511628211ull;
    h = (h ^ config.bwb) * 1099511628211ull;
    return (static_cast<double>(h % 1000) / 1000.0 - 0.5) * 0.16;
}

} // namespace

const AccuracyDatabase &
AccuracyDatabase::paperQat()
{
    static const AccuracyDatabase db = [] {
        AccuracyDatabase d;
        // diag_loss[i] = TOP-1 loss (points) at a(8-i)-w(8-i).
        //                 8      7     6     5     4     3      2
        d.networks_ = {
            {"AlexNet",
             {56.52, {-0.05, 0.02, 0.08, 0.20, 0.05, 1.10, 5.10}}},
            {"VGG-16",
             {71.59, {-0.10, 0.05, 0.15, 0.30, 0.60, 2.60, 6.50}}},
            {"ResNet-18",
             {69.76, {0.00, 0.08, 0.20, 0.40, 1.00, 4.90, 8.60}}},
            {"MobileNet-V1",
             {70.90, {0.10, 0.30, 0.60, 1.20, 3.00, 16.90, 34.50}}},
            {"RegNet-X-400MF",
             {72.80, {0.05, 0.15, 0.30, 0.60, 1.50, 5.80, 13.00}}},
            {"EfficientNet-B0",
             {77.10, {0.10, 0.40, 0.80, 1.40, 4.20, 22.90, 32.80}}},
        };
        return d;
    }();
    return db;
}

const AccuracyDatabase::NetworkAnchors &
AccuracyDatabase::anchors(const std::string &model) const
{
    for (const auto &kv : networks_)
        if (kv.first == model)
            return kv.second;
    fatal(strCat("AccuracyDatabase: unknown model '", model, "'"));
}

double
AccuracyDatabase::fp32Top1(const std::string &model) const
{
    return anchors(model).fp32;
}

double
AccuracyDatabase::top1(const std::string &model,
                       const DataSizeConfig &config) const
{
    if (config.bwa < 2 || config.bwa > 8 || config.bwb < 2 ||
        config.bwb > 8)
        fatal("AccuracyDatabase: bitwidths must be in [2, 8]");
    const NetworkAnchors &a = anchors(model);
    const double loss_a = a.diag_loss[8 - config.bwa];
    const double loss_w = a.diag_loss[8 - config.bwb];
    const double loss = kActivationShare * loss_a +
                        (1.0 - kActivationShare) * loss_w +
                        jitter(model, config);
    return a.fp32 - std::max(loss, -0.3);
}

std::vector<AccuracyEntry>
AccuracyDatabase::grid(const std::string &model) const
{
    std::vector<AccuracyEntry> entries;
    for (const auto &cfg : allSupportedConfigs())
        entries.push_back({cfg, top1(model, cfg)});
    return entries;
}

double
AccuracyDatabase::diagonalLoss(const std::string &model,
                               unsigned bits) const
{
    if (bits < 2 || bits > 8)
        fatal("diagonalLoss: bits must be in [2, 8]");
    return anchors(model).diag_loss[8 - bits];
}

std::vector<std::string>
AccuracyDatabase::models() const
{
    std::vector<std::string> names;
    names.reserve(networks_.size());
    for (const auto &kv : networks_)
        names.push_back(kv.first);
    return names;
}

} // namespace mixgemm
