/**
 * @file
 * Quantization-aware-training accuracy database (Section IV-A/B,
 * Fig. 7).
 *
 * The paper retrains all six CNNs on ImageNet with Brevitas QAT for
 * every activation/weight data-size combination. Retraining ImageNet is
 * outside this reproduction's scope, so the database synthesizes the
 * full 49-configuration TOP-1 grid per network from per-network anchor
 * losses at the diagonal configurations (a8-w8 ... a2-w2), constrained
 * by every quantitative statement in the paper:
 *
 *  - above 4-bit, losses stay below 1.5 % (often ~0, sometimes slightly
 *    better than FP32);
 *  - at 4-bit minimum data size, losses range from 0.01 % (AlexNet) to
 *    4.2 % (EfficientNet-B0);
 *  - at 3-/2-bit, per-network loss ranges match the paper's
 *    (e.g. AlexNet 0.5-5.1 %, MobileNet-V1 7.6-34.5 %).
 *
 * Mixed configurations interpolate the diagonal anchors (activations
 * weighted slightly above weights, matching the common observation that
 * activation precision is the harder constraint), with a small
 * deterministic per-config jitter so grids look like measured data.
 * A genuinely *trained* (non-synthetic) QAT accuracy curve on a small
 * task is produced by src/nn and the qat_workflow example.
 */

#ifndef MIXGEMM_ACCURACY_QAT_DATABASE_H
#define MIXGEMM_ACCURACY_QAT_DATABASE_H

#include <string>
#include <vector>

#include "bs/geometry.h"

namespace mixgemm
{

/** One (configuration, TOP-1) point. */
struct AccuracyEntry
{
    DataSizeConfig config;
    double top1 = 0.0;
};

/** Synthesized per-network QAT accuracy grids. */
class AccuracyDatabase
{
  public:
    /** Database calibrated to the paper's reported ranges. */
    static const AccuracyDatabase &paperQat();

    /** FP32 baseline TOP-1 of @p model (torchvision/imgclsmob refs). */
    double fp32Top1(const std::string &model) const;

    /** TOP-1 of @p model quantized to @p config. */
    double top1(const std::string &model,
                const DataSizeConfig &config) const;

    /** Full 49-entry grid for @p model. */
    std::vector<AccuracyEntry> grid(const std::string &model) const;

    /** The six evaluation network names. */
    std::vector<std::string> models() const;

    /**
     * Diagonal anchor loss (percentage points vs FP32) of @p model at
     * aB-wB. Exposed for the per-layer mixed-precision optimizer,
     * which distributes the network loss over layers.
     */
    double diagonalLoss(const std::string &model, unsigned bits) const;

  private:
    struct NetworkAnchors
    {
        double fp32;
        /** Diagonal loss (percentage points) at bits 8..2 (index 0=8). */
        double diag_loss[7];
    };

    const NetworkAnchors &anchors(const std::string &model) const;

    std::vector<std::pair<std::string, NetworkAnchors>> networks_;
};

} // namespace mixgemm

#endif // MIXGEMM_ACCURACY_QAT_DATABASE_H
