/**
 * @file
 * Pareto-frontier extraction for the performance/accuracy trade-off
 * plots of Fig. 7: a configuration is Pareto optimal when no other
 * configuration is simultaneously faster and at least as accurate.
 */

#ifndef MIXGEMM_ACCURACY_PARETO_H
#define MIXGEMM_ACCURACY_PARETO_H

#include <cstddef>
#include <span>
#include <vector>

namespace mixgemm
{

/** One candidate design point: higher is better on both axes. */
struct ParetoPoint
{
    double performance = 0.0; ///< e.g. GOPS
    double accuracy = 0.0;    ///< e.g. TOP-1
};

/**
 * Indices of the Pareto-optimal points, sorted by ascending
 * performance. A point on the frontier is not dominated: no other point
 * has strictly higher performance and >= accuracy, or >= performance
 * and strictly higher accuracy.
 */
std::vector<size_t> paretoFrontier(std::span<const ParetoPoint> points);

/** True iff @p p is dominated by @p q. */
bool dominates(const ParetoPoint &q, const ParetoPoint &p);

} // namespace mixgemm

#endif // MIXGEMM_ACCURACY_PARETO_H
