#include "fault/abft.h"

#include "common/logging.h"

namespace mixgemm
{

AbftVerifier::AbftVerifier(const CompressedA &a, const CompressedB &b)
    : a_(a), b_(b), m_(a.m()), n_(b.n()), k_(a.k())
{
    da_.resize(m_ * k_);
    for (uint64_t i = 0; i < m_; ++i)
        for (uint64_t kk = 0; kk < k_; ++kk)
            da_[i * k_ + kk] = a.element(i, kk);
    db_.resize(k_ * n_);
    for (uint64_t j = 0; j < n_; ++j)
        for (uint64_t kk = 0; kk < k_; ++kk)
            db_[kk * n_ + j] = b.element(j, kk);
}

uint64_t
AbftVerifier::verifyInputs() const
{
    const std::vector<int64_t> &aks = a_.abftKSums();
    const std::vector<int64_t> &bks = b_.abftKSums();
    if (aks.empty() || bks.empty()) {
        warn("AbftVerifier::verifyInputs without a checksum snapshot "
             "(ensureAbftChecksums was never called); skipping");
        return 0;
    }
    uint64_t mismatches = 0;
    for (uint64_t kk = 0; kk < k_; ++kk) {
        int64_t sa = 0;
        for (uint64_t i = 0; i < m_; ++i)
            sa += da_[i * k_ + kk];
        int64_t sb = 0;
        for (uint64_t j = 0; j < n_; ++j)
            sb += db_[kk * n_ + j];
        if (sa != aks[kk] || sb != bks[kk])
            ++mismatches;
    }
    return mismatches;
}

AbftTileVerdict
AbftVerifier::verifyTile(const std::vector<int64_t> &c, uint64_t r0,
                         uint64_t r1, uint64_t c0, uint64_t c1) const
{
    AbftTileVerdict verdict;

    // Column equations: one per output column of the tile, against the
    // row-checksum vector of the tile's A rows.
    std::vector<int64_t> a_rowsum(k_, 0);
    for (uint64_t i = r0; i < r1; ++i)
        for (uint64_t kk = 0; kk < k_; ++kk)
            a_rowsum[kk] += da_[i * k_ + kk];
    for (uint64_t j = c0; j < c1; ++j) {
        int64_t expected = 0;
        for (uint64_t kk = 0; kk < k_; ++kk)
            expected += a_rowsum[kk] * db_[kk * n_ + j];
        int64_t actual = 0;
        for (uint64_t i = r0; i < r1; ++i)
            actual += c[i * n_ + j];
        if (actual != expected)
            ++verdict.bad_cols;
    }

    // Row equations: one per output row, against the column-checksum
    // vector of the tile's B columns.
    std::vector<int64_t> b_colsum(k_, 0);
    for (uint64_t kk = 0; kk < k_; ++kk)
        for (uint64_t j = c0; j < c1; ++j)
            b_colsum[kk] += db_[kk * n_ + j];
    for (uint64_t i = r0; i < r1; ++i) {
        int64_t expected = 0;
        for (uint64_t kk = 0; kk < k_; ++kk)
            expected += da_[i * k_ + kk] * b_colsum[kk];
        int64_t actual = 0;
        for (uint64_t j = c0; j < c1; ++j)
            actual += c[i * n_ + j];
        if (actual != expected)
            ++verdict.bad_rows;
    }

    verdict.ok = verdict.bad_rows == 0 && verdict.bad_cols == 0;
    return verdict;
}

} // namespace mixgemm
