/**
 * @file
 * Fault-tolerance vocabulary shared across the Mix-GEMM stack.
 *
 * Edge SoCs like the paper's GF 22FDX platform run always-on with no
 * ECC on most of the datapath: soft errors flip bits in packed operand
 * SRAM, in the μ-engine's partial products, and in the int32
 * accumulator file, and without countermeasures those flips silently
 * corrupt DNN outputs. This module names the injection sites and fault
 * models the src/fault engine can emulate, and the recovery policies
 * the GEMM driver implements on top of ABFT checksums (see abft.h and
 * docs/ARCHITECTURE.md §8).
 */

#ifndef MIXGEMM_FAULT_FAULT_H
#define MIXGEMM_FAULT_FAULT_H

#include <string>

#include "common/status.h"

namespace mixgemm
{

class FaultInjector;

/**
 * Hardware structure a fault lands in. Coordinates are logical, not
 * physical, so an injection plan is independent of thread count and
 * kernel mode:
 *
 *  - PackedA/PackedB: one 64-bit μ-vector word of the compressed
 *    operand (flat index into CompressedA/B::words()). Both kernel
 *    modes read the same packed words (the fast path expands them into
 *    cluster panels), so a packed-word flip corrupts Fast and Modeled
 *    runs identically.
 *  - ClusterPanelA/ClusterPanelB: one cached cluster-domain word of
 *    the fast path's expansion cache. Only the Fast kernel reads these;
 *    under the Modeled kernel the site is inert.
 *  - BsIpResult: the int64 inner product of one accumulation group for
 *    one output cell, coordinate (row, col, group). The modeled engine
 *    applies it at the AccMem accumulate (BsEngine group-result hook);
 *    the fast kernel applies it to the matching clusterPanelDot term.
 *  - Accumulator: one output accumulator cell, coordinate (row, col),
 *    corrupted when its macro tile completes — the AccMem/C writeback.
 */
enum class FaultSite : unsigned
{
    PackedA = 0,
    PackedB,
    ClusterPanelA,
    ClusterPanelB,
    BsIpResult,
    Accumulator,
    Count ///< number of sites (not a site)
};

constexpr unsigned kFaultSiteCount =
    static_cast<unsigned>(FaultSite::Count);

/** How a planted fault behaves at its site. */
enum class FaultModel
{
    BitFlip, ///< transient single-event upset: applied once, then gone
    StuckAt0, ///< persistent: the armed bits read 0 on every access
    StuckAt1, ///< persistent: the armed bits read 1 on every access
};

/**
 * What mixGemm() does about faults (BlockingParams::fault_policy).
 *
 *  - Off: no checksum work at all; byte-for-byte the pre-fault-
 *    tolerance driver.
 *  - Detect: ABFT-verify operand checksums and every macro tile's
 *    row/column sums after the compute pass; corruption is counted and
 *    logged but the output is returned as computed.
 *  - DetectRetry: flagged macro tiles are recomputed in place, first
 *    with the configured kernel, then backing off to the Modeled
 *    kernel, up to BlockingParams::abft_max_retries attempts per tile.
 *  - DetectFallback: any flagged tile degrades the whole GEMM to a
 *    serial Modeled-kernel recompute (the conservative arbiter path),
 *    logged as a warning.
 *
 * Clean (fault-free) runs produce bitwise-identical C under every
 * policy; the policies differ only in verification work and in how a
 * detected corruption is repaired.
 */
enum class FaultPolicy
{
    Off,
    Detect,
    DetectRetry,
    DetectFallback,
};

/** Canonical snake_case name ("packed_a", "bs_ip_result", ...). */
const char *faultSiteName(FaultSite site);
/** Inverse of faultSiteName. */
Expected<FaultSite> faultSiteFromName(const std::string &name);

/** Canonical snake_case name ("bit_flip", "stuck_at_0", ...). */
const char *faultModelName(FaultModel model);
Expected<FaultModel> faultModelFromName(const std::string &name);

/** Canonical snake_case name ("off", "detect", "detect_retry", ...). */
const char *faultPolicyName(FaultPolicy policy);
Expected<FaultPolicy> faultPolicyFromName(const std::string &name);

} // namespace mixgemm

#endif // MIXGEMM_FAULT_FAULT_H
