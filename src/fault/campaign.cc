#include "fault/campaign.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/logging.h"
#include "common/random.h"
#include "dnn/models.h"
#include "fault/injector.h"
#include "gemm/mixgemm.h"
#include "tensor/packing.h"
#include "trace/json.h"

namespace mixgemm
{

namespace
{

using clock = std::chrono::steady_clock;

/** One prepared GEMM instance: operands plus the fault-free truth. */
struct PreparedShape
{
    CampaignShape shape;
    CompressedA a;
    CompressedB b;
    std::vector<int64_t> golden;
};

std::vector<int32_t>
randomOperand(Rng &rng, uint64_t count, unsigned bw, bool is_signed)
{
    std::vector<int32_t> data(count);
    const int64_t lo = is_signed ? -(int64_t{1} << (bw - 1)) : 0;
    const int64_t hi = is_signed ? (int64_t{1} << (bw - 1)) - 1
                                 : (int64_t{1} << bw) - 1;
    for (auto &v : data)
        v = static_cast<int32_t>(rng.uniformInt(lo, hi));
    return data;
}

/**
 * The GEMM shapes a campaign sweeps: the configured m x n x k, or the
 * network's first layers with each dimension clamped so a CI campaign
 * stays small while still exercising layer-realistic aspect ratios.
 */
std::vector<CampaignShape>
campaignShapes(const CampaignConfig &config)
{
    if (config.network.empty())
        return {{"gemm", config.m, config.n, config.k}};
    for (const ModelSpec &model : allModels()) {
        if (model.name != config.network)
            continue;
        std::vector<CampaignShape> shapes;
        const unsigned count = std::min<unsigned>(
            config.max_layers,
            static_cast<unsigned>(model.layers.size()));
        const uint64_t cap = std::max<uint64_t>(1, config.max_layer_dim);
        for (unsigned i = 0; i < count; ++i) {
            const LayerSpec &layer = model.layers[i];
            shapes.push_back({layer.name,
                              std::min(layer.conv.gemmM(), cap),
                              std::min(layer.conv.gemmN(), cap),
                              std::min(layer.conv.gemmK(), cap)});
        }
        return shapes;
    }
    fatal(strCat("runFaultCampaign: unknown network \"", config.network,
                 "\""));
}

/**
 * Campaign blocking: tiles far smaller than the Table I defaults so
 * even the CI-sized shapes decompose into several macro tiles — tile
 * localization, per-tile retries, and the fallback path all get
 * exercised instead of collapsing into one whole-matrix tile.
 */
BlockingParams
campaignBlocking(const CampaignConfig &config)
{
    BlockingParams blocking;
    blocking.mc = 16;
    blocking.nc = 16;
    blocking.kc = 64;
    blocking.mr = 4;
    blocking.nr = 4;
    blocking.threads = config.threads;
    blocking.kernel_mode = config.kernel_mode;
    return blocking;
}

double
secondsSince(clock::time_point start)
{
    return std::chrono::duration<double>(clock::now() - start).count();
}

} // namespace

CampaignResult
runFaultCampaign(const CampaignConfig &config)
{
    const BsGeometry geometry = computeBsGeometry(config.config);
    const BlockingParams base_blocking = campaignBlocking(config);
    const unsigned runs_per_cell = std::max(1u, config.runs_per_cell);

    CampaignResult result;
    result.config = config;
    result.shapes = campaignShapes(config);

    // Prepare every shape once: deterministic operands from the base
    // seed and the shape index, plus the fault-free golden output every
    // faulted run is scored against.
    std::vector<PreparedShape> prepared;
    prepared.reserve(result.shapes.size());
    for (size_t s = 0; s < result.shapes.size(); ++s) {
        const CampaignShape &shape = result.shapes[s];
        Rng rng(config.base_seed + 0x9E3779B97F4A7C15ull * (s + 1));
        const auto a_data =
            randomOperand(rng, shape.m * shape.k, config.config.bwa,
                          config.config.a_signed);
        const auto b_data =
            randomOperand(rng, shape.k * shape.n, config.config.bwb,
                          config.config.b_signed);
        CompressedA a(a_data, shape.m, shape.k, geometry);
        CompressedB b(b_data, shape.k, shape.n, geometry);
        auto golden = mixGemm(a, b, base_blocking).c;
        prepared.push_back({shape, std::move(a), std::move(b),
                            std::move(golden)});
    }

    // Clean-run overhead and transparency: ABFT under a clean GEMM must
    // cost only checksum time and change nothing. The Detect timing
    // deliberately includes the one-time checksum build — that is the
    // real first-GEMM cost on freshly packed operands.
    {
        const PreparedShape &p = prepared.front();
        const auto off_start = clock::now();
        auto off = mixGemm(p.a, p.b, base_blocking);
        result.clean_off_secs = secondsSince(off_start);

        BlockingParams detect = base_blocking;
        detect.fault_policy = FaultPolicy::Detect;
        const auto detect_start = clock::now();
        auto det = mixGemm(p.a, p.b, detect);
        result.clean_detect_secs = secondsSince(detect_start);
        result.abft_overhead =
            result.clean_off_secs > 0.0
                ? result.clean_detect_secs / result.clean_off_secs - 1.0
                : 0.0;
        result.clean_runs_identical = off.c == p.golden && det.c == p.golden;
    }

    std::vector<FaultSite> sites = config.sites;
    if (sites.empty()) {
        sites = {FaultSite::PackedA, FaultSite::PackedB,
                 FaultSite::BsIpResult, FaultSite::Accumulator};
        if (config.kernel_mode == KernelMode::Fast) {
            sites.push_back(FaultSite::ClusterPanelA);
            sites.push_back(FaultSite::ClusterPanelB);
        }
    }
    std::vector<FaultModel> models = config.models;
    if (models.empty())
        models = {FaultModel::BitFlip};
    std::vector<FaultPolicy> policies = config.policies;
    if (policies.empty())
        policies = {FaultPolicy::Off, FaultPolicy::Detect,
                    FaultPolicy::DetectRetry, FaultPolicy::DetectFallback};

    // Transparency across every swept policy: clean runs must be
    // bitwise what Off produces.
    for (const FaultPolicy policy : policies) {
        BlockingParams clean = base_blocking;
        clean.fault_policy = policy;
        if (mixGemm(prepared.front().a, prepared.front().b, clean).c !=
            prepared.front().golden)
            result.clean_runs_identical = false;
    }

    unsigned cell_index = 0;
    for (const FaultSite site : sites) {
        for (const FaultModel model : models) {
            for (const FaultPolicy policy : policies) {
                CampaignCell cell;
                cell.site = site;
                cell.model = model;
                cell.policy = policy;
                cell.runs = runs_per_cell;
                double accuracy_sum = 0.0;
                for (unsigned r = 0; r < runs_per_cell; ++r) {
                    const PreparedShape &p =
                        prepared[r % prepared.size()];
                    FaultSpec spec;
                    spec.seed = config.base_seed ^
                                (0x9E3779B97F4A7C15ull *
                                 (uint64_t{cell_index} * runs_per_cell +
                                  r + 1));
                    spec.site = site;
                    spec.model = model;
                    spec.max_faults = config.max_faults;
                    spec.bits_per_fault = config.bits_per_fault;
                    FaultInjector injector({spec});

                    BlockingParams blocking = base_blocking;
                    blocking.fault = &injector;
                    blocking.fault_policy = policy;
                    const MixGemmResult run =
                        mixGemm(p.a, p.b, blocking);

                    cell.faults_planned += injector.planned().size();
                    cell.faults_injected += injector.injectedCount();
                    const bool corrupted = run.c != p.golden;
                    const bool detected =
                        run.abft.tiles_flagged > 0 ||
                        run.abft.input_k_mismatches > 0;
                    if (corrupted)
                        ++cell.corrupted_runs;
                    if (detected)
                        ++cell.detected_runs;
                    if (detected && !corrupted)
                        ++cell.corrected_runs;
                    if (corrupted && !detected)
                        ++cell.escaped_runs;

                    uint64_t matching = 0;
                    for (size_t i = 0; i < run.c.size(); ++i)
                        if (run.c[i] == p.golden[i])
                            ++matching;
                    const double accuracy =
                        run.c.empty()
                            ? 1.0
                            : static_cast<double>(matching) /
                                  static_cast<double>(run.c.size());
                    accuracy_sum += accuracy;
                    cell.min_accuracy =
                        std::min(cell.min_accuracy, accuracy);
                }
                cell.mean_accuracy = accuracy_sum / runs_per_cell;
                result.cells.push_back(cell);
                ++cell_index;
            }
        }
    }
    return result;
}

std::string
CampaignResult::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"campaign\": {\n";
    os << "    \"config\": \"" << jsonEscape(config.config.name())
       << "\",\n";
    os << "    \"kernel_mode\": \""
       << (config.kernel_mode == KernelMode::Fast ? "fast" : "modeled")
       << "\",\n";
    os << "    \"threads\": " << config.threads << ",\n";
    os << "    \"base_seed\": " << config.base_seed << ",\n";
    os << "    \"runs_per_cell\": " << config.runs_per_cell << ",\n";
    os << "    \"max_faults\": " << config.max_faults << ",\n";
    os << "    \"bits_per_fault\": " << config.bits_per_fault << ",\n";
    os << "    \"network\": \"" << jsonEscape(config.network) << "\",\n";
    os << "    \"shapes\": [";
    for (size_t i = 0; i < shapes.size(); ++i) {
        if (i > 0)
            os << ",";
        os << "\n      {\"label\": \"" << jsonEscape(shapes[i].label)
           << "\", \"m\": " << shapes[i].m << ", \"n\": " << shapes[i].n
           << ", \"k\": " << shapes[i].k << "}";
    }
    os << "\n    ]\n  },\n";
    os << "  \"clean\": {\n";
    os << "    \"off_secs\": " << clean_off_secs << ",\n";
    os << "    \"detect_secs\": " << clean_detect_secs << ",\n";
    os << "    \"abft_overhead\": " << abft_overhead << ",\n";
    os << "    \"runs_identical\": "
       << (clean_runs_identical ? "true" : "false") << "\n  },\n";
    os << "  \"cells\": [";
    for (size_t i = 0; i < cells.size(); ++i) {
        const CampaignCell &cell = cells[i];
        // Coverage over runs whose fault actually perturbed the
        // computation: detected / (detected + escaped). DetectRetry
        // repairs C before scoring, so corrupted_runs alone would
        // undercount the perturbed population.
        const uint64_t perturbed =
            uint64_t{cell.detected_runs} + cell.escaped_runs;
        const double coverage =
            perturbed > 0 ? static_cast<double>(cell.detected_runs) /
                                static_cast<double>(perturbed)
                          : 1.0;
        const double correction =
            cell.detected_runs > 0
                ? static_cast<double>(cell.corrected_runs) /
                      static_cast<double>(cell.detected_runs)
                : 1.0;
        if (i > 0)
            os << ",";
        os << "\n    {\"site\": \"" << faultSiteName(cell.site)
           << "\", \"model\": \"" << faultModelName(cell.model)
           << "\", \"policy\": \"" << faultPolicyName(cell.policy)
           << "\",\n     \"runs\": " << cell.runs
           << ", \"faults_planned\": " << cell.faults_planned
           << ", \"faults_injected\": " << cell.faults_injected
           << ",\n     \"corrupted_runs\": " << cell.corrupted_runs
           << ", \"detected_runs\": " << cell.detected_runs
           << ", \"corrected_runs\": " << cell.corrected_runs
           << ", \"escaped_runs\": " << cell.escaped_runs
           << ",\n     \"detection_coverage\": " << coverage
           << ", \"correction_rate\": " << correction
           << ",\n     \"mean_accuracy\": " << cell.mean_accuracy
           << ", \"min_accuracy\": " << cell.min_accuracy << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

} // namespace mixgemm
