/**
 * @file
 * Deterministic fault-injection engine for Mix-GEMM campaigns.
 *
 * The injector pre-plans every fault of a GEMM from nothing but the
 * campaign seed and the GEMM's *logical* shape — never from execution
 * order — so the set of corrupted coordinates, the corrupted output,
 * and the fault counters are bitwise-reproducible at any thread count
 * and under either kernel mode (the per-worker determinism discipline
 * the threaded driver already follows). Coordinates are logical:
 * a packed-word index, an (output row, output col, accumulation group)
 * triple, an output cell. Each coordinate is owned by exactly one macro
 * tile and touched exactly once per compute pass, which is what lets
 * the armed state stay lock-free under the worker pool.
 *
 * Fault timeline within one mixGemm() call:
 *   1. beginGemm(shape) draws the plan (spec order, then fault order).
 *   2. The driver copies the operands and applies PackedA/B arms to the
 *      copies, then builds cluster panels and applies ClusterPanelA/B
 *      arms — SRAM corruption persists across retries by construction.
 *   3. Workers consult applyIp() at each accumulation-group result and
 *      applyAccumulator() as each macro tile completes. BitFlip arms
 *      are transient (consumed by their first application; a retried
 *      tile recomputes clean); stuck-at arms reapply on every pass.
 */

#ifndef MIXGEMM_FAULT_INJECTOR_H
#define MIXGEMM_FAULT_INJECTOR_H

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "fault/fault.h"

namespace mixgemm
{

/**
 * One fault population to plant: up to @ref max_faults faults of one
 * model at one site, each flipping/forcing @ref bits_per_fault distinct
 * bits, optionally confined to one macro tile and/or one accumulation
 * group (k-step). An injector takes a list of these, so a campaign run
 * can mix sites and models in a single GEMM.
 */
struct FaultSpec
{
    uint64_t seed = 1;        ///< plan RNG seed (campaign axis)
    FaultSite site = FaultSite::Accumulator;
    FaultModel model = FaultModel::BitFlip;
    unsigned max_faults = 1;     ///< injection-count budget per GEMM
    unsigned bits_per_fault = 1; ///< distinct bits per fault (MBU > 1)
    /**
     * Restrict faults to one macro tile of the driver's jc-outer /
     * ic-inner tile enumeration (wrapped modulo the tile count);
     * -1 = anywhere. For A-side sites this constrains the row range,
     * for B-side sites the column range.
     */
    int64_t target_tile = -1;
    int64_t target_group = -1; ///< restrict to one k-step; -1 = any
    unsigned acc_bits = 32;    ///< accumulator width (paper: int32)
};

/** Structured validation of one spec (site/model strings already parsed). */
Status validateFaultSpec(const FaultSpec &spec);

/**
 * Logical shape of one GEMM, as the fault plan sees it. Everything here
 * is derivable before any compute starts and is identical at every
 * thread count.
 */
struct GemmPlanShape
{
    uint64_t m = 0;
    uint64_t n = 0;
    unsigned k_groups = 0; ///< accumulation groups covering k
    uint64_t mc = 0;       ///< macro-tile rows (blocking)
    uint64_t nc = 0;       ///< macro-tile cols (blocking)
    unsigned kua = 0;      ///< A μ-vectors per group
    unsigned kub = 0;      ///< B μ-vectors per group
    /// Cluster words per group in the fast path's panels; 0 under the
    /// Modeled kernel (panels absent — panel specs are skipped).
    unsigned a_panel_wpg = 0;
    unsigned b_panel_wpg = 0;
};

/** One planned fault, for reports and campaign JSON. */
struct PlannedFault
{
    FaultSite site;
    uint64_t coord; ///< site-specific flat coordinate
    uint64_t mask;  ///< bits to flip / force
    FaultModel model;
};

/**
 * Plans and applies the faults of one or more FaultSpecs. Not
 * thread-safe to *configure*, but apply*() calls are safe from the
 * GEMM worker pool (see file comment). One injector can serve a
 * sequence of GEMMs: each beginGemm() re-plans with a gemm-index-
 * tweaked seed, so a network's layers see distinct but reproducible
 * fault populations.
 */
class FaultInjector
{
  public:
    FaultInjector() = default;
    explicit FaultInjector(std::vector<FaultSpec> specs);

    /** Arm the plan for the next GEMM; clears all prior armed state. */
    void beginGemm(const GemmPlanShape &shape);

    /** All arms of the current plan, in deterministic plan order. */
    const std::vector<PlannedFault> &planned() const { return planned_; }

    /** Arm applications since beginGemm() (retries re-count stuck-ats). */
    uint64_t injectedCount() const
    {
        return injected_.load(std::memory_order_relaxed);
    }

    /** True when the current plan arms @p site. */
    bool hasSite(FaultSite site) const
    {
        return !arms(site).empty();
    }

    /**
     * Distinct armed coordinates of @p site, ascending — what the
     * driver iterates to corrupt packed/panel words exactly once each
     * (planned() can repeat a coordinate when budgets collide).
     */
    std::vector<uint64_t> armedCoords(FaultSite site) const;

    /**
     * Corrupt one packed/panel word per the arm at (site, coord);
     * returns @p word untouched when the coordinate is unarmed.
     * Counts an injection when it fires. Serial phase only.
     */
    uint64_t applyWord(FaultSite site, uint64_t coord, uint64_t word);

    /** Cheap worker-side gate: any BsIpResult arm in this plan? */
    bool anyIp() const { return !ip_arms_.empty(); }

    /** True when accumulation group @p g of cell (row, col) is armed. */
    bool ipArmed(uint64_t row, uint64_t col, unsigned g) const;

    /**
     * Pass one accumulation-group inner product through the fault
     * plan. Called by both μ-kernels for every in-tile cell-group when
     * anyIp(); unarmed coordinates return @p value unchanged.
     */
    int64_t applyIp(uint64_t row, uint64_t col, unsigned g,
                    int64_t value);

    /** Any Accumulator arm in this plan? */
    bool anyAcc() const { return !acc_arms_.empty(); }

    /**
     * Corrupt the armed accumulator cells inside the C sub-block
     * rows [r0, r1) x cols [c0, c1) — called by the owning worker as
     * its macro tile completes. The cell is treated as an
     * acc_bits-wide two's-complement register (the paper's int32
     * AccMem/writeback): the arm acts on the low acc_bits and the
     * result is sign-extended.
     */
    void applyAccumulator(std::vector<int64_t> &c, uint64_t n,
                          uint64_t r0, uint64_t r1, uint64_t c0,
                          uint64_t c1);

    /** Bit surgery shared by every site. */
    static uint64_t corruptBits(uint64_t word, uint64_t mask,
                                FaultModel model)
    {
        switch (model) {
          case FaultModel::BitFlip: return word ^ mask;
          case FaultModel::StuckAt0: return word & ~mask;
          case FaultModel::StuckAt1: return word | mask;
        }
        return word;
    }

  private:
    struct Arm
    {
        uint64_t mask = 0;
        FaultModel model = FaultModel::BitFlip;
        unsigned acc_bits = 32; ///< Accumulator site only
        /// BitFlip transience: set by the first application this GEMM.
        /// Plain bool is race-free because each coordinate is applied
        /// by exactly one worker exactly once per compute pass.
        bool consumed = false;
    };

    using ArmMap = std::map<uint64_t, Arm>;

    const ArmMap &arms(FaultSite site) const
    {
        return arm_maps_[static_cast<unsigned>(site)];
    }
    ArmMap &arms(FaultSite site)
    {
        return arm_maps_[static_cast<unsigned>(site)];
    }

    void planSpec(const FaultSpec &spec, const GemmPlanShape &shape);

    std::vector<FaultSpec> specs_;
    uint64_t gemm_index_ = 0;
    GemmPlanShape shape_;
    ArmMap arm_maps_[kFaultSiteCount];
    // Aliases of the two worker-hot maps, to keep the gate checks and
    // lookups free of the site-indexed indirection.
    ArmMap &ip_arms_ = arm_maps_[static_cast<unsigned>(
        FaultSite::BsIpResult)];
    ArmMap &acc_arms_ = arm_maps_[static_cast<unsigned>(
        FaultSite::Accumulator)];
    std::vector<PlannedFault> planned_;
    std::atomic<uint64_t> injected_{0};
};

} // namespace mixgemm

#endif // MIXGEMM_FAULT_INJECTOR_H
