#include "fault/injector.h"

#include <algorithm>

#include "common/bitutils.h"
#include "common/logging.h"
#include "common/random.h"

namespace mixgemm
{

namespace
{

/** Coordinate ranges a spec's tile / k-step constraints allow. */
struct DrawRanges
{
    uint64_t r0, r1; ///< output rows [r0, r1)
    uint64_t c0, c1; ///< output cols [c0, c1)
    unsigned g0, g1; ///< accumulation groups [g0, g1)
};

DrawRanges
rangesFor(const FaultSpec &spec, const GemmPlanShape &shape)
{
    DrawRanges r{0, shape.m, 0, shape.n, 0, shape.k_groups};
    if (spec.target_tile >= 0) {
        // The driver enumerates tiles jc-outer / ic-inner.
        const uint64_t num_ic = divCeil(shape.m, shape.mc);
        const uint64_t num_jc = divCeil(shape.n, shape.nc);
        const uint64_t t =
            static_cast<uint64_t>(spec.target_tile) % (num_ic * num_jc);
        const uint64_t ic_idx = t % num_ic;
        const uint64_t jc_idx = t / num_ic;
        r.r0 = ic_idx * shape.mc;
        r.r1 = std::min(shape.m, r.r0 + shape.mc);
        r.c0 = jc_idx * shape.nc;
        r.c1 = std::min(shape.n, r.c0 + shape.nc);
    }
    if (spec.target_group >= 0) {
        r.g0 = static_cast<unsigned>(
            static_cast<uint64_t>(spec.target_group) % shape.k_groups);
        r.g1 = r.g0 + 1;
    }
    return r;
}

uint64_t
drawIn(Rng &rng, uint64_t lo, uint64_t hi)
{
    return lo + static_cast<uint64_t>(rng.uniformInt(
                    0, static_cast<int64_t>(hi - lo) - 1));
}

/** Bit width of the value an arm at @p site corrupts. */
unsigned
siteBits(FaultSite site, const FaultSpec &spec)
{
    return site == FaultSite::Accumulator ? spec.acc_bits : 64;
}

} // namespace

Status
validateFaultSpec(const FaultSpec &spec)
{
    if (static_cast<unsigned>(spec.site) >= kFaultSiteCount)
        return Status::invalidArgument("fault spec: invalid site");
    if (spec.bits_per_fault == 0 || spec.bits_per_fault > 64)
        return Status::invalidArgument(
            strCat("fault spec: bits_per_fault ", spec.bits_per_fault,
                   " outside [1, 64]"));
    if (spec.acc_bits == 0 || spec.acc_bits > 64)
        return Status::invalidArgument(
            strCat("fault spec: acc_bits ", spec.acc_bits,
                   " outside [1, 64]"));
    return Status();
}

FaultInjector::FaultInjector(std::vector<FaultSpec> specs)
    : specs_(std::move(specs))
{
    for (const FaultSpec &spec : specs_)
        if (Status s = validateFaultSpec(spec); !s.ok())
            fatal("FaultInjector: " + s.toString());
}

void
FaultInjector::beginGemm(const GemmPlanShape &shape)
{
    shape_ = shape;
    for (ArmMap &m : arm_maps_)
        m.clear();
    planned_.clear();
    injected_.store(0, std::memory_order_relaxed);
    for (const FaultSpec &spec : specs_)
        planSpec(spec, shape);
    ++gemm_index_;
}

void
FaultInjector::planSpec(const FaultSpec &spec, const GemmPlanShape &shape)
{
    if (shape.m == 0 || shape.n == 0 || shape.k_groups == 0)
        return;
    const unsigned wpg = spec.site == FaultSite::ClusterPanelA
        ? shape.a_panel_wpg
        : shape.b_panel_wpg;
    if ((spec.site == FaultSite::ClusterPanelA ||
         spec.site == FaultSite::ClusterPanelB) &&
        wpg == 0) {
        debug(strCat("fault plan: skipping ", faultSiteName(spec.site),
                     " spec (cluster panels absent under the Modeled "
                     "kernel)"));
        return;
    }

    // The plan depends only on (seed, gemm index, logical shape): the
    // per-GEMM tweak gives a network's layers distinct fault
    // populations from one campaign seed.
    Rng rng(spec.seed ^ (gemm_index_ * 0x9E3779B97F4A7C15ull));
    const DrawRanges ranges = rangesFor(spec, shape);
    const unsigned width = siteBits(spec.site, spec);
    const unsigned bits = std::min(spec.bits_per_fault, width);
    ArmMap &map = arms(spec.site);

    for (unsigned f = 0; f < spec.max_faults; ++f) {
        uint64_t coord = 0;
        bool found = false;
        // Coordinate collisions with a *different* model are redrawn
        // (a bit cannot be both stuck and flipped); same-model
        // collisions just merge masks below.
        for (unsigned attempt = 0; attempt < 64 && !found; ++attempt) {
            switch (spec.site) {
              case FaultSite::PackedA:
              case FaultSite::ClusterPanelA: {
                const uint64_t row = drawIn(rng, ranges.r0, ranges.r1);
                const unsigned g = static_cast<unsigned>(
                    drawIn(rng, ranges.g0, ranges.g1));
                const unsigned per = spec.site == FaultSite::PackedA
                    ? shape.kua
                    : wpg;
                const unsigned w =
                    static_cast<unsigned>(drawIn(rng, 0, per));
                coord = (row * shape.k_groups + g) * per + w;
                break;
              }
              case FaultSite::PackedB:
              case FaultSite::ClusterPanelB: {
                const uint64_t col = drawIn(rng, ranges.c0, ranges.c1);
                const unsigned g = static_cast<unsigned>(
                    drawIn(rng, ranges.g0, ranges.g1));
                const unsigned per = spec.site == FaultSite::PackedB
                    ? shape.kub
                    : wpg;
                const unsigned w =
                    static_cast<unsigned>(drawIn(rng, 0, per));
                coord = (col * shape.k_groups + g) * per + w;
                break;
              }
              case FaultSite::BsIpResult: {
                const uint64_t row = drawIn(rng, ranges.r0, ranges.r1);
                const uint64_t col = drawIn(rng, ranges.c0, ranges.c1);
                const unsigned g = static_cast<unsigned>(
                    drawIn(rng, ranges.g0, ranges.g1));
                coord = (row * shape.n + col) * shape.k_groups + g;
                break;
              }
              case FaultSite::Accumulator: {
                const uint64_t row = drawIn(rng, ranges.r0, ranges.r1);
                const uint64_t col = drawIn(rng, ranges.c0, ranges.c1);
                coord = row * shape.n + col;
                break;
              }
              case FaultSite::Count:
                return;
            }
            const auto it = map.find(coord);
            found = it == map.end() || it->second.model == spec.model;
        }
        if (!found) {
            debug("fault plan: dropping a fault after 64 coordinate "
                  "collisions with a different model");
            continue;
        }

        uint64_t mask = 0;
        for (unsigned b = 0; b < bits; ++b) {
            uint64_t bit;
            do {
                bit = 1ull << drawIn(rng, 0, width);
            } while (mask & bit);
            mask |= bit;
        }

        Arm &arm = map[coord];
        arm.model = spec.model;
        arm.mask |= mask;
        arm.acc_bits = spec.acc_bits;
        planned_.push_back({spec.site, coord, mask, spec.model});
    }
}

std::vector<uint64_t>
FaultInjector::armedCoords(FaultSite site) const
{
    std::vector<uint64_t> coords;
    coords.reserve(arms(site).size());
    for (const auto &[coord, arm] : arms(site))
        coords.push_back(coord);
    return coords;
}

uint64_t
FaultInjector::applyWord(FaultSite site, uint64_t coord, uint64_t word)
{
    ArmMap &map = arms(site);
    const auto it = map.find(coord);
    if (it == map.end())
        return word;
    Arm &arm = it->second;
    if (arm.model == FaultModel::BitFlip) {
        if (arm.consumed)
            return word;
        arm.consumed = true;
    }
    injected_.fetch_add(1, std::memory_order_relaxed);
    return corruptBits(word, arm.mask, arm.model);
}

bool
FaultInjector::ipArmed(uint64_t row, uint64_t col, unsigned g) const
{
    return ip_arms_.count((row * shape_.n + col) * shape_.k_groups + g) >
           0;
}

int64_t
FaultInjector::applyIp(uint64_t row, uint64_t col, unsigned g,
                       int64_t value)
{
    const auto it =
        ip_arms_.find((row * shape_.n + col) * shape_.k_groups + g);
    if (it == ip_arms_.end())
        return value;
    Arm &arm = it->second;
    if (arm.model == FaultModel::BitFlip) {
        if (arm.consumed)
            return value;
        arm.consumed = true;
    }
    injected_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<int64_t>(
        corruptBits(static_cast<uint64_t>(value), arm.mask, arm.model));
}

void
FaultInjector::applyAccumulator(std::vector<int64_t> &c, uint64_t n,
                                uint64_t r0, uint64_t r1, uint64_t c0,
                                uint64_t c1)
{
    for (auto &[coord, arm] : acc_arms_) {
        const uint64_t row = coord / n;
        const uint64_t col = coord % n;
        if (row < r0 || row >= r1 || col < c0 || col >= c1)
            continue;
        if (arm.model == FaultModel::BitFlip) {
            if (arm.consumed)
                continue;
            arm.consumed = true;
        }
        injected_.fetch_add(1, std::memory_order_relaxed);
        // The physical accumulator is acc_bits wide: corrupt its
        // register image and sign-extend what it would read back.
        const unsigned bits = arm.acc_bits;
        const uint64_t u = static_cast<uint64_t>(c[coord]);
        if (bits >= 64) {
            c[coord] = static_cast<int64_t>(
                corruptBits(u, arm.mask, arm.model));
        } else {
            const uint64_t field = mask64(bits);
            const uint64_t low =
                corruptBits(u & field, arm.mask & field, arm.model) &
                field;
            c[coord] = signExtend64(low, bits);
        }
    }
}

} // namespace mixgemm
