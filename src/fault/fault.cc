#include "fault/fault.h"

namespace mixgemm
{

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::PackedA: return "packed_a";
      case FaultSite::PackedB: return "packed_b";
      case FaultSite::ClusterPanelA: return "cluster_panel_a";
      case FaultSite::ClusterPanelB: return "cluster_panel_b";
      case FaultSite::BsIpResult: return "bs_ip_result";
      case FaultSite::Accumulator: return "accumulator";
      case FaultSite::Count: break;
    }
    return "?";
}

Expected<FaultSite>
faultSiteFromName(const std::string &name)
{
    for (unsigned s = 0; s < kFaultSiteCount; ++s) {
        const auto site = static_cast<FaultSite>(s);
        if (name == faultSiteName(site))
            return site;
    }
    return Status::invalidArgument("unknown fault site \"" + name + "\"");
}

const char *
faultModelName(FaultModel model)
{
    switch (model) {
      case FaultModel::BitFlip: return "bit_flip";
      case FaultModel::StuckAt0: return "stuck_at_0";
      case FaultModel::StuckAt1: return "stuck_at_1";
    }
    return "?";
}

Expected<FaultModel>
faultModelFromName(const std::string &name)
{
    if (name == "bit_flip")
        return FaultModel::BitFlip;
    if (name == "stuck_at_0")
        return FaultModel::StuckAt0;
    if (name == "stuck_at_1")
        return FaultModel::StuckAt1;
    return Status::invalidArgument("unknown fault model \"" + name +
                                   "\"");
}

const char *
faultPolicyName(FaultPolicy policy)
{
    switch (policy) {
      case FaultPolicy::Off: return "off";
      case FaultPolicy::Detect: return "detect";
      case FaultPolicy::DetectRetry: return "detect_retry";
      case FaultPolicy::DetectFallback: return "detect_fallback";
    }
    return "?";
}

Expected<FaultPolicy>
faultPolicyFromName(const std::string &name)
{
    if (name == "off")
        return FaultPolicy::Off;
    if (name == "detect")
        return FaultPolicy::Detect;
    if (name == "detect_retry")
        return FaultPolicy::DetectRetry;
    if (name == "detect_fallback")
        return FaultPolicy::DetectFallback;
    return Status::invalidArgument("unknown fault policy \"" + name +
                                   "\"");
}

} // namespace mixgemm
