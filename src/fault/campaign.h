/**
 * @file
 * Seeded fault-injection campaigns over the Mix-GEMM stack.
 *
 * A campaign sweeps the cross product of fault sites x fault models x
 * ABFT policies, running `runs_per_cell` seeded GEMMs per cell against
 * a golden fault-free reference, and scores each cell:
 *
 *   corrupted   final C differs from the golden output
 *   detected    ABFT flagged a tile or an operand checksum mismatch
 *   corrected   ABFT detected *and* the final C matches golden
 *   escaped     corrupted but never detected (silent data corruption)
 *
 * plus element-level accuracy-under-faults and the ABFT overhead of a
 * clean run (Detect vs Off wall time). Every run is deterministic in
 * (base_seed, cell, run index), so a campaign is reproducible bit for
 * bit at any thread count — the same property the injection engine
 * guarantees per GEMM.
 */

#ifndef MIXGEMM_FAULT_CAMPAIGN_H
#define MIXGEMM_FAULT_CAMPAIGN_H

#include <cstdint>
#include <string>
#include <vector>

#include "bs/geometry.h"
#include "fault/fault.h"
#include "gemm/blocking.h"

namespace mixgemm
{

/** What to sweep. Defaults give the small CI campaign. */
struct CampaignConfig
{
    uint64_t m = 48;
    uint64_t n = 40;
    uint64_t k = 96;
    /**
     * Optional: sweep the GEMM-lowered shapes of this evaluation
     * network's first @ref max_layers layers (each dimension clamped to
     * @ref max_layer_dim so the campaign stays CI-sized) instead of the
     * single m x n x k shape above. Run r of a cell executes shape
     * r mod shape-count, so every cell sees every layer shape.
     */
    std::string network;
    unsigned max_layers = 3;
    uint64_t max_layer_dim = 64;
    DataSizeConfig config;            ///< operand bitwidths (a8-w8)
    KernelMode kernel_mode = KernelMode::Fast;
    unsigned threads = 1;
    uint64_t base_seed = 1;           ///< root of every derived seed
    unsigned runs_per_cell = 5;       ///< seeded GEMMs per (site, model,
                                      ///< policy) cell
    unsigned max_faults = 1;          ///< faults per run
    unsigned bits_per_fault = 1;      ///< bits corrupted per fault
    /// Sites to sweep; empty = all applicable to the kernel mode
    /// (cluster-panel sites only exist on the Fast path).
    std::vector<FaultSite> sites;
    /// Models to sweep; empty = bit flips only.
    std::vector<FaultModel> models;
    /// Policies to sweep; empty = all four.
    std::vector<FaultPolicy> policies;
};

/** Score of one (site, model, policy) campaign cell. */
struct CampaignCell
{
    FaultSite site = FaultSite::Accumulator;
    FaultModel model = FaultModel::BitFlip;
    FaultPolicy policy = FaultPolicy::Off;
    unsigned runs = 0;
    uint64_t faults_planned = 0;
    uint64_t faults_injected = 0;
    unsigned corrupted_runs = 0;
    unsigned detected_runs = 0;
    unsigned corrected_runs = 0;
    unsigned escaped_runs = 0;
    double mean_accuracy = 1.0; ///< mean fraction of correct C elements
    double min_accuracy = 1.0;  ///< worst run's fraction
};

/** One GEMM shape the campaign actually ran (layer-derived or plain). */
struct CampaignShape
{
    std::string label;
    uint64_t m = 0;
    uint64_t n = 0;
    uint64_t k = 0;
};

/** Full campaign outcome; toJson() is the CLI/CI artifact. */
struct CampaignResult
{
    CampaignConfig config;
    std::vector<CampaignShape> shapes;
    std::vector<CampaignCell> cells;
    /// Clean-run (no faults) wall times under Off and Detect, and the
    /// relative ABFT overhead detect/off - 1.
    double clean_off_secs = 0.0;
    double clean_detect_secs = 0.0;
    double abft_overhead = 0.0;
    /// Clean runs under every swept policy produced bitwise the same C
    /// as FaultPolicy::Off (the no-faults transparency guarantee).
    bool clean_runs_identical = true;

    std::string toJson() const;
};

/** Execute the sweep. Deterministic in @p config. */
CampaignResult runFaultCampaign(const CampaignConfig &config);

} // namespace mixgemm

#endif // MIXGEMM_FAULT_CAMPAIGN_H
