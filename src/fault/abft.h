/**
 * @file
 * Algorithm-based fault tolerance (ABFT) for Mix-GEMM.
 *
 * Classic Huang-Abraham checksum GEMM adapted to the quantized int32
 * domain. Two independent checks:
 *
 *  1. Operand integrity: per-k checksum vectors captured from the
 *     packed operands *before* any corruption (ensureAbftChecksums(),
 *     tensor/packing.h) are recomputed from the operands the GEMM
 *     actually read. A mismatch means packed-SRAM corruption — the
 *     inputs themselves are wrong, recomputation cannot help, and the
 *     driver reports it instead of retrying.
 *
 *  2. Compute integrity, per macro tile: for the C sub-block
 *     rows [r0, r1) x cols [c0, c1),
 *
 *       sum_i C[i][j]  ==  sum_k (sum_i A[i][k]) * B[k][j]   (per col j)
 *       sum_j C[i][j]  ==  sum_k A[i][k] * (sum_j B[k][j])   (per row i)
 *
 *     Both sides are exact int64 arithmetic over int32-decoded
 *     elements, so any single corrupted C cell (an accumulator or
 *     inner-product fault) breaks one row equation and one column
 *     equation — detection is exact, not probabilistic. Multi-fault
 *     corruptions can only escape if they cancel in *both* the row and
 *     column sums simultaneously.
 *
 * Overflow headroom: |A[i][k] * B[k][j]| < 2^(bwa + bwb - 2) <= 2^14,
 * so a row/column check sum is bounded by k * max(mc, nc) * 2^14 —
 * for k, mc, nc up to 2^20 that is < 2^55, far inside int64. The
 * checks can neither wrap nor false-positive.
 */

#ifndef MIXGEMM_FAULT_ABFT_H
#define MIXGEMM_FAULT_ABFT_H

#include <cstdint>
#include <vector>

#include "tensor/packing.h"

namespace mixgemm
{

/** Outcome of one macro tile's compute-integrity check. */
struct AbftTileVerdict
{
    bool ok = true;
    unsigned bad_rows = 0; ///< row equations violated in the tile
    unsigned bad_cols = 0; ///< column equations violated in the tile
};

/**
 * Verifies a GEMM's operands and output tiles. Construction decodes
 * both operands once (int64 dense mirrors), so per-tile verification
 * is pure arithmetic — built once per mixGemm() call when the fault
 * policy wants verification, on the operand instances the kernels
 * actually read (fault copies included).
 */
class AbftVerifier
{
  public:
    AbftVerifier(const CompressedA &a, const CompressedB &b);

    /**
     * Operand-integrity check: number of logical k positions whose
     * recomputed A or B checksum disagrees with the snapshot taken by
     * ensureAbftChecksums(). 0 = inputs intact. Returns 0 (with a
     * warning) when no snapshot was ever taken.
     */
    uint64_t verifyInputs() const;

    /**
     * Compute-integrity check of the C sub-block rows [r0, r1) x
     * cols [c0, c1) of the row-major m x n output @p c.
     */
    AbftTileVerdict verifyTile(const std::vector<int64_t> &c,
                               uint64_t r0, uint64_t r1, uint64_t c0,
                               uint64_t c1) const;

  private:
    const CompressedA &a_;
    const CompressedB &b_;
    uint64_t m_, n_, k_;
    std::vector<int64_t> da_; ///< decoded A, m x k row-major
    std::vector<int64_t> db_; ///< decoded B, k x n row-major
};

} // namespace mixgemm

#endif // MIXGEMM_FAULT_ABFT_H
