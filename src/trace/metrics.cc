#include "trace/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace mixgemm
{

namespace
{

/** Inclusive [lo, hi] value range of bucket @p index. */
std::pair<uint64_t, uint64_t>
bucketRange(unsigned index)
{
    if (index < 8)
        return {index, index};
    const unsigned e = 3 + (index - 8) / 4;
    const unsigned sub = (index - 8) % 4;
    // Values with leading bit at position e whose next two bits == sub.
    const uint64_t lo = (uint64_t{4} + sub) << (e - 2);
    const uint64_t width = uint64_t{1} << (e - 2);
    return {lo, lo + width - 1};
}

} // namespace

unsigned
LogHistogram::bucketIndex(uint64_t value)
{
    if (value < 8)
        return static_cast<unsigned>(value);
    const unsigned e = 63 - static_cast<unsigned>(std::countl_zero(value));
    const unsigned sub =
        static_cast<unsigned>((value >> (e - 2)) & 0x3);
    return 8 + (e - 3) * 4 + sub;
}

void
LogHistogram::add(uint64_t value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    ++buckets_[bucketIndex(value)];
}

double
LogHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    const double clamped = std::clamp(p, 0.0, 100.0);
    // Nearest-rank: rank = ceil(p/100 * count). The product is not
    // exact in binary floating point — 0.95 * 20 evaluates to
    // 19.000000000000004 — and a raw ceil() would round such boundary
    // counts one rank (and possibly one bucket) too high. Nudge down
    // by a relative epsilon far above the multiply's rounding error
    // but far below one rank, then clamp into [1, count].
    const double exact =
        clamped / 100.0 * static_cast<double>(count_);
    const uint64_t rank = std::min<uint64_t>(
        count_,
        std::max<uint64_t>(
            1, static_cast<uint64_t>(
                   std::ceil(exact - exact * 1e-12))));
    uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        seen += buckets_[i];
        if (seen >= rank) {
            const auto [lo, hi] = bucketRange(i);
            const double mid =
                (static_cast<double>(lo) + static_cast<double>(hi)) /
                2.0;
            return std::clamp(mid, static_cast<double>(min_),
                              static_cast<double>(max_));
        }
    }
    return static_cast<double>(max_);
}

void
LogHistogram::merge(const LogHistogram &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    for (unsigned i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
}

void
MetricSet::merge(const MetricSet &other)
{
    for (const auto &[name, histogram] : other.metrics_)
        metrics_[name].merge(histogram);
}

} // namespace mixgemm
