/**
 * @file
 * Metrics registry: named timers backed by log-scale histograms.
 *
 * Complements CounterSet (exact event counts) with *duration*
 * summaries: each timer sample lands in a log₂ histogram with four
 * sub-buckets per octave (≤ 12.5 % relative bucket width), from which
 * p50/p95/p99 are read without storing samples. Histograms merge by
 * bucket addition, so per-worker MetricSets combine deterministically
 * in worker order exactly like the GEMM driver's CounterSet merge —
 * the merged summary is independent of thread interleaving.
 */

#ifndef MIXGEMM_TRACE_METRICS_H
#define MIXGEMM_TRACE_METRICS_H

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace mixgemm
{

/**
 * Log-scale histogram of non-negative integer samples (nanoseconds, by
 * convention). Values 0..7 get exact buckets; larger values share four
 * sub-buckets per power of two.
 */
class LogHistogram
{
  public:
    /** 8 exact + 4 per octave for exponents 3..63. */
    static constexpr unsigned kBuckets = 8 + 4 * 61;

    void add(uint64_t value);

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return count_ ? max_ : 0; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Approximate percentile @p p in [0, 100]: the representative
     * (bucket midpoint) of the bucket holding the rank-⌈p·count/100⌉
     * sample, clamped to the exact [min, max]. 0 when empty.
     */
    double percentile(double p) const;

    /** Bucket-wise addition; summaries stay order-independent. */
    void merge(const LogHistogram &other);

    /** Bucket index a value lands in (exposed for tests). */
    static unsigned bucketIndex(uint64_t value);

  private:
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = 0;
    uint64_t max_ = 0;
    std::array<uint64_t, kBuckets> buckets_{};
};

/** Named histograms, ordered by name (deterministic iteration). */
class MetricSet
{
  public:
    /** The histogram named @p name, created empty if absent. */
    LogHistogram &histogram(const std::string &name)
    {
        return metrics_[name];
    }

    /** Record one timer sample (nanoseconds) under @p name. */
    void addNs(const std::string &name, uint64_t ns)
    {
        metrics_[name].add(ns);
    }

    /** Merge every histogram of @p other into this set, by name. */
    void merge(const MetricSet &other);

    bool empty() const { return metrics_.empty(); }
    const std::map<std::string, LogHistogram> &all() const
    {
        return metrics_;
    }

  private:
    std::map<std::string, LogHistogram> metrics_;
};

/**
 * RAII timer: on destruction adds the elapsed nanoseconds to
 * @p set's histogram @p name. A null @p set makes it a no-op (no clock
 * read), so call sites can stay branch-free.
 */
class ScopedTimer
{
  public:
    ScopedTimer(MetricSet *set, std::string name)
        : set_(set), name_(std::move(name))
    {
        if (set_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedTimer()
    {
        if (set_)
            set_->addNs(
                name_,
                static_cast<uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count()));
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    MetricSet *set_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace mixgemm

#endif // MIXGEMM_TRACE_METRICS_H
