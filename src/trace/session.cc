#include "trace/session.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "trace/json.h"

namespace mixgemm
{

namespace
{

void
writeHistogramJson(std::ostream &os, const LogHistogram &h)
{
    os << "{\"count\":" << h.count() << ",\"sum_ns\":" << h.sum()
       << ",\"min_ns\":" << h.min() << ",\"max_ns\":" << h.max()
       << ",\"mean_ns\":" << h.mean() << ",\"p50_ns\":"
       << h.percentile(50) << ",\"p95_ns\":" << h.percentile(95)
       << ",\"p99_ns\":" << h.percentile(99) << "}";
}

void
writeMetricSetJson(std::ostream &os, const MetricSet &metrics,
                   const std::string &indent)
{
    os << "{";
    bool first = true;
    for (const auto &[name, histogram] : metrics.all()) {
        if (!first)
            os << ",";
        first = false;
        os << "\n" << indent << "  \"" << jsonEscape(name) << "\": ";
        writeHistogramJson(os, histogram);
    }
    if (!first)
        os << "\n" << indent;
    os << "}";
}

void
writeCountersJson(std::ostream &os, const CounterSet &counters,
                  const std::string &indent)
{
    os << "{";
    bool first = true;
    for (const auto &[name, value] : counters.all()) {
        if (!first)
            os << ",";
        first = false;
        os << "\n" << indent << "  \"" << jsonEscape(name)
           << "\": " << value;
    }
    if (!first)
        os << "\n" << indent;
    os << "}";
}

} // namespace

std::string
runReportToJson(const RunReport &report, const std::string &indent)
{
    std::ostringstream os;
    os << "{\n";
    os << indent << "  \"name\": \"" << jsonEscape(report.name)
       << "\",\n";
    os << indent << "  \"backend\": \"" << jsonEscape(report.backend)
       << "\",\n";
    os << indent << "  \"m\": " << report.m << ", \"n\": " << report.n
       << ", \"k\": " << report.k << ",\n";
    os << indent << "  \"config\": \"" << jsonEscape(report.config)
       << "\",\n";
    os << indent << "  \"threads\": " << report.threads << ",\n";
    os << indent << "  \"kernel_mode\": \""
       << jsonEscape(report.kernel_mode) << "\",\n";
    os << indent << "  \"kernel\": \"" << jsonEscape(report.kernel)
       << "\",\n";
    os << indent << "  \"fault_policy\": \""
       << jsonEscape(report.fault_policy) << "\",\n";
    os << indent << "  \"wall_secs\": " << report.wall_secs << ",\n";
    os << indent << "  \"abft_secs\": " << report.abft_secs << ",\n";
    os << indent << "  \"bytes_packed\": " << report.bytes_packed
       << ",\n";
    os << indent
       << "  \"bytes_cluster_panels\": " << report.bytes_cluster_panels
       << ",\n";
    os << indent << "  \"weight_source\": \""
       << jsonEscape(report.weight_source) << "\",\n";
    os << indent << "  \"bytes_mapped\": " << report.bytes_mapped
       << ",\n";
    os << indent << "  \"tenant\": \"" << jsonEscape(report.tenant)
       << "\",\n";
    os << indent << "  \"request_id\": " << report.request_id << ",\n";
    os << indent << "  \"rung\": " << report.rung << ",\n";
    os << indent << "  \"counters\": ";
    writeCountersJson(os, report.counters, indent + "  ");
    os << ",\n";
    os << indent << "  \"timers\": ";
    writeMetricSetJson(os, report.timers, indent + "  ");
    os << "\n" << indent << "}";
    return os.str();
}

TraceSession::TraceSession(size_t ring_capacity) : tracer_(ring_capacity)
{
    tracer_.activate();
}

TraceSession::~TraceSession()
{
    tracer_.deactivate();
}

void
TraceSession::recordTimerNs(const std::string &name, uint64_t ns)
{
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_.addNs(name, ns);
}

void
TraceSession::addReport(RunReport report)
{
    std::function<void(const RunReport &)> sink;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sink = report_sink_;
        if (keep_reports_) {
            reports_.push_back(report);
        }
    }
    // The sink runs outside the session mutex: it may take its own
    // locks (metrics registry, flight recorder) and must not deadlock
    // against concurrent reports()/addReport callers.
    if (sink)
        sink(report);
}

void
TraceSession::setReportSink(std::function<void(const RunReport &)> sink,
                            bool keep_reports)
{
    std::lock_guard<std::mutex> lock(mutex_);
    report_sink_ = std::move(sink);
    keep_reports_ = keep_reports;
}

std::vector<RunReport>
TraceSession::reports() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reports_;
}

MetricSet
TraceSession::metrics() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return metrics_;
}

bool
TraceSession::writeTrace(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        warn("TraceSession: cannot open trace file '" + path + "'");
        return false;
    }
    tracer_.writeJson(os);
    return static_cast<bool>(os);
}

void
TraceSession::writeReportJson(
    std::ostream &os,
    const std::vector<std::pair<std::string, std::string>> &header) const
{
    std::vector<RunReport> reports_copy;
    MetricSet metrics_copy;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        reports_copy = reports_;
        metrics_copy = metrics_;
    }

    os << "{\n";
    os << "  \"tool\": \"mixgemm\",\n";
    for (const auto &[key, value] : header)
        os << "  \"" << jsonEscape(key) << "\": \"" << jsonEscape(value)
           << "\",\n";
    os << "  \"trace_events_recorded\": " << tracer_.eventsRecorded()
       << ",\n";
    os << "  \"trace_events_dropped\": " << tracer_.eventsDropped()
       << ",\n";
    os << "  \"trace_threads\": " << tracer_.threadCount() << ",\n";
    os << "  \"metrics\": ";
    writeMetricSetJson(os, metrics_copy, "  ");
    os << ",\n";
    os << "  \"reports\": [";
    for (size_t i = 0; i < reports_copy.size(); ++i) {
        os << (i ? ",\n    " : "\n    ")
           << runReportToJson(reports_copy[i], "    ");
    }
    os << (reports_copy.empty() ? "]" : "\n  ]") << "\n}\n";
}

bool
TraceSession::writeReport(
    const std::string &path,
    const std::vector<std::pair<std::string, std::string>> &header) const
{
    std::ofstream os(path);
    if (!os) {
        warn("TraceSession: cannot open report file '" + path + "'");
        return false;
    }
    writeReportJson(os, header);
    return static_cast<bool>(os);
}

} // namespace mixgemm
