/**
 * @file
 * TraceSession: one observability run — spans + metrics + run reports.
 *
 * A TraceSession owns a Tracer (activated for the session's lifetime,
 * so every TRACE_SCOPE in the process records into it), a process-level
 * MetricSet for named timers (per-layer wall times and the like), and a
 * list of structured RunReports: one per GEMM executed through an
 * instrumented driver, carrying the shape, configuration, thread count,
 * kernel mode, exact counters, per-worker timer histograms, and packed
 * byte counts. The session writes two artifacts:
 *
 *   writeTrace(path)   Chrome/Perfetto trace_event JSON (load it in
 *                      ui.perfetto.dev or chrome://tracing)
 *   writeReport(path)  structured JSON run report (benches append the
 *                      same records to their BENCH_*.json files)
 *
 * Attach a session to the GEMM stack via BlockingParams::session or
 * MixGemmBackend::attachTraceSession(); detached code still runs with
 * zero observability overhead.
 */

#ifndef MIXGEMM_TRACE_SESSION_H
#define MIXGEMM_TRACE_SESSION_H

#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "trace/metrics.h"
#include "trace/tracer.h"

namespace mixgemm
{

/**
 * Request-scoped trace identity. The serving layer stamps one of these
 * onto each executed request; it flows InferenceServer → backend →
 * BlockingParams → RunReport and into decision-log lines, so one
 * request's admission, queue wait, GEMM spans and verdicts stitch into
 * a single story across artifacts. Purely observational.
 */
struct RequestContext
{
    uint64_t request_id = 0; ///< server-assigned sequence number
    std::string tenant;      ///< submitting tenant ("" when unscoped)
    unsigned rung = 0;       ///< precision-ladder rung executed
};

/** Structured record of one GEMM execution. */
struct RunReport
{
    std::string name;        ///< caller's label (layer name, bench id)
    std::string backend;     ///< "mixgemm", ...
    uint64_t m = 0, n = 0, k = 0;
    std::string config;      ///< data-size configuration, e.g. "a8-w8"
    unsigned threads = 1;
    std::string kernel_mode; ///< "fast" or "modeled"
    /// Dispatched μ-kernel: a registry name (gemm/kernels/kernel.h),
    /// "legacy" (registry bypassed) or "modeled".
    std::string kernel;
    std::string fault_policy = "off"; ///< ABFT policy the GEMM ran under
    double wall_secs = 0.0;
    double abft_secs = 0.0; ///< wall-clock spent in ABFT checksum work
    uint64_t bytes_packed = 0;         ///< compressed operand bytes
    uint64_t bytes_cluster_panels = 0; ///< fast-path expansion cache
    /// B-operand provenance: "packed" (fresh), "prepacked" (cache hit,
    /// owned) or "store-mmap" (zero-copy mapped artifact).
    std::string weight_source = "packed";
    uint64_t bytes_mapped = 0; ///< borrowed mmap-backed operand bytes
    /// Request-scoped identity (serving path; zero/"" when standalone).
    std::string tenant;
    uint64_t request_id = 0;
    unsigned rung = 0;
    CounterSet counters;
    MetricSet timers; ///< merged per-worker timer histograms (ns)
};

/** Serialize one report as a JSON object (no trailing newline). */
std::string runReportToJson(const RunReport &report,
                            const std::string &indent = "");

/** An active observability run. See file comment. */
class TraceSession
{
  public:
    explicit TraceSession(
        size_t ring_capacity = Tracer::kDefaultRingCapacity);
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    /** Record one timer sample into the session metrics (thread-safe). */
    void recordTimerNs(const std::string &name, uint64_t ns);

    /** Append one run report (thread-safe). */
    void addReport(RunReport report);

    /**
     * Register a sink invoked (outside the session mutex) with every
     * report passed to addReport — the telemetry plane's live feed.
     * With @p keep_reports false the session stops accumulating reports
     * so long soaks don't grow unbounded. Not thread-safe against
     * concurrent addReport; install before instrumented work starts.
     */
    void setReportSink(std::function<void(const RunReport &)> sink,
                       bool keep_reports = true);

    /** Copies of the collected reports / session metrics. */
    std::vector<RunReport> reports() const;
    MetricSet metrics() const;

    /**
     * Write the Perfetto trace / the structured report to @p path.
     * @p header key/value pairs prefix the report's top level.
     * @return false (with a warning) when the file cannot be opened.
     * Call after instrumented work has joined.
     */
    bool writeTrace(const std::string &path) const;
    bool writeReport(
        const std::string &path,
        const std::vector<std::pair<std::string, std::string>> &header =
            {}) const;
    void writeReportJson(
        std::ostream &os,
        const std::vector<std::pair<std::string, std::string>> &header =
            {}) const;

  private:
    Tracer tracer_;
    mutable std::mutex mutex_;
    MetricSet metrics_;
    std::vector<RunReport> reports_;
    std::function<void(const RunReport &)> report_sink_;
    bool keep_reports_ = true;
};

} // namespace mixgemm

#endif // MIXGEMM_TRACE_SESSION_H
