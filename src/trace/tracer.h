/**
 * @file
 * Low-overhead span tracing for the Mix-GEMM stack.
 *
 * The model is Chrome/Perfetto's trace_event: a span is a named,
 * categorized interval on one thread; nested spans (RAII scopes) render
 * as a flame graph per thread, so one trace of a whole-network run
 * shows pack-vs-kernel split, host-thread utilization, and per-layer
 * breakdown at once.
 *
 * Design constraints, in priority order:
 *
 *  1. *Disabled costs ~0.* TRACE_SCOPE compiles to one relaxed atomic
 *     load and a branch when no Tracer is active — no allocation, no
 *     locking, no clock read. Instrumentation can therefore live inside
 *     the GEMM driver's per-tile loops permanently.
 *  2. *Recording never blocks workers.* Each thread writes fixed-size
 *     TraceEvent records into its own ring buffer; the only lock is
 *     taken once per (thread, session) at ring registration. On
 *     overflow the ring wraps and keeps the newest events, counting the
 *     drops.
 *  3. *Tracing never changes results.* Spans observe; they carry no
 *     data back into the computation. tests/test_trace.cc pins traced
 *     runs bitwise identical to untraced ones.
 *
 * Export is Chrome trace_event JSON ("traceEvents" array of ph:"X"
 * complete events, timestamps in microseconds), loadable in Perfetto
 * (ui.perfetto.dev) or chrome://tracing. Export requires quiescence:
 * call writeJson() only after the instrumented work has joined.
 */

#ifndef MIXGEMM_TRACE_TRACER_H
#define MIXGEMM_TRACE_TRACER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mixgemm
{

/**
 * One completed span. Fixed 64-byte POD so ring writes are a copy; the
 * category must be a string literal (stored by pointer), the name is
 * copied (truncated) so dynamic labels like "conv4_2#11" work.
 */
struct TraceEvent
{
    static constexpr size_t kNameCapacity = 38; ///< incl. terminator

    const char *category = nullptr;
    uint64_t start_ns = 0; ///< steady-clock ns since session start
    uint64_t dur_ns = 0;
    char name[kNameCapacity] = {};

    void setName(const char *text)
    {
        std::strncpy(name, text, kNameCapacity - 1);
        name[kNameCapacity - 1] = '\0';
    }
};

/**
 * Per-thread event ring: single writer (the owning thread), overwrites
 * the oldest event when full. Readers (export/snapshot) must run while
 * the writer is quiescent.
 */
class TraceRing
{
  public:
    /** @param capacity rounded up to a power of two, at least 4. */
    TraceRing(unsigned tid, size_t capacity);

    void push(const TraceEvent &event)
    {
        buffer_[head_ & mask_] = event;
        ++head_;
    }

    /** Owner's thread name ("worker3", "watchdog", ...; may be ""). */
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    unsigned tid() const { return tid_; }
    /** Events ever pushed (monotone; may exceed capacity). */
    uint64_t recorded() const { return head_; }
    /** Events lost to wraparound. */
    uint64_t dropped() const
    {
        return head_ > buffer_.size() ? head_ - buffer_.size() : 0;
    }
    size_t capacity() const { return buffer_.size(); }

    /** Retained events, oldest first. */
    std::vector<TraceEvent> events() const;

  private:
    unsigned tid_;
    std::string name_;
    size_t mask_;
    uint64_t head_ = 0;
    std::vector<TraceEvent> buffer_;
};

/**
 * A tracing session's event store: one ring per participating thread,
 * registered lazily on first span. At most one Tracer is *active*
 * (globally visible to TRACE_SCOPE) at a time; constructing one does
 * not activate it (see TraceSession, which does).
 */
class Tracer
{
  public:
    static constexpr size_t kDefaultRingCapacity = size_t{1} << 16;

    explicit Tracer(size_t ring_capacity = kDefaultRingCapacity);
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** The active tracer, or nullptr (one relaxed atomic load). */
    static Tracer *active()
    {
        return active_tracer_.load(std::memory_order_relaxed);
    }

    /** Install this tracer as the process-wide active one. */
    void activate();
    /** Uninstall (no-op if another tracer took over). */
    void deactivate();

    /** Nanoseconds since this tracer's epoch (steady clock). */
    uint64_t nowNs() const
    {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
    }

    /** Record one completed span on the calling thread's ring. */
    void record(const char *category, const char *name,
                uint64_t start_ns, uint64_t dur_ns);

    /**
     * Name the calling thread for trace exports: records the name in
     * the process-wide slot (common/threadname.h, picked up when a ring
     * registers) and renames an already-registered ring of the active
     * tracer in place. Call from the thread being named.
     */
    static void nameCurrentThread(const std::string &name);

    /** Total events recorded / dropped across all rings. */
    uint64_t eventsRecorded() const;
    uint64_t eventsDropped() const;
    /** Threads that recorded at least one span. */
    unsigned threadCount() const;

    /** Per-ring accounting, exported as trace metadata so a truncated
     * ring is visible in the UI instead of silently short. */
    struct RingStats
    {
        unsigned tid = 0;
        std::string name;
        uint64_t recorded = 0;
        uint64_t dropped = 0;
        size_t capacity = 0;
    };

    /** One RingStats per registered ring. Requires quiescence. */
    std::vector<RingStats> ringStats() const;

    /**
     * Retained events per thread id, oldest first. Requires writer
     * quiescence (instrumented work joined).
     */
    std::vector<std::pair<unsigned, std::vector<TraceEvent>>>
    snapshot() const;

    /** Write Chrome/Perfetto trace_event JSON. Requires quiescence. */
    void writeJson(std::ostream &os) const;

  private:
    TraceRing *threadRing();

    std::chrono::steady_clock::time_point epoch_;
    size_t ring_capacity_;
    uint64_t generation_ = 0; ///< TLS cache key; set at activation
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<TraceRing>> rings_;

    static std::atomic<Tracer *> active_tracer_;
};

/**
 * RAII span. When no tracer is active, construction is a relaxed load
 * plus a branch and destruction a branch — nothing else.
 */
class TraceSpan
{
  public:
    /** Literal-name span (the common, hot-path form). */
    TraceSpan(const char *category, const char *name)
        : tracer_(Tracer::active())
    {
        if (tracer_)
            begin(category, name);
    }

    /**
     * Dynamic-name span: @p name_fn (returning std::string) is invoked
     * only when a tracer is active, so idle cost stays branch-only.
     */
    template <typename NameFn,
              typename = decltype(std::declval<NameFn>()())>
    TraceSpan(const char *category, NameFn &&name_fn)
        : tracer_(Tracer::active())
    {
        if (tracer_) {
            const std::string text = name_fn();
            begin(category, text.c_str());
        }
    }

    ~TraceSpan()
    {
        if (tracer_)
            tracer_->record(category_, name_, start_ns_,
                            tracer_->nowNs() - start_ns_);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    void begin(const char *category, const char *name)
    {
        category_ = category;
        std::strncpy(name_, name, TraceEvent::kNameCapacity - 1);
        name_[TraceEvent::kNameCapacity - 1] = '\0';
        start_ns_ = tracer_->nowNs();
    }

    Tracer *tracer_;
    const char *category_ = nullptr;
    uint64_t start_ns_ = 0;
    char name_[TraceEvent::kNameCapacity] = {};
};

#define MIXGEMM_TRACE_CONCAT2(a, b) a##b
#define MIXGEMM_TRACE_CONCAT(a, b) MIXGEMM_TRACE_CONCAT2(a, b)

/**
 * Trace the enclosing scope as one span. @p category must be a string
 * literal; @p name may be a literal or a callable returning std::string
 * (invoked only while tracing is active).
 */
#define TRACE_SCOPE(category, name)                                    \
    const ::mixgemm::TraceSpan MIXGEMM_TRACE_CONCAT(                   \
        mixgemm_trace_scope_, __LINE__)(category, name)

} // namespace mixgemm

#endif // MIXGEMM_TRACE_TRACER_H
