#include "trace/tracer.h"

#include <algorithm>

#include "common/threadname.h"
#include "trace/json.h"

namespace mixgemm
{

namespace
{

/**
 * Thread-local ring cache, keyed by session generation so pool threads
 * that outlive a session re-register with the next one instead of
 * writing through a stale pointer. Generation 0 never matches.
 */
struct ThreadSlot
{
    uint64_t generation = 0;
    TraceRing *ring = nullptr;
};

thread_local ThreadSlot t_slot;

std::atomic<uint64_t> g_generation{0};

constexpr size_t
ringCapacityPow2(size_t requested)
{
    size_t cap = 4;
    while (cap < requested)
        cap <<= 1;
    return cap;
}

} // namespace

std::atomic<Tracer *> Tracer::active_tracer_{nullptr};

TraceRing::TraceRing(unsigned tid, size_t capacity)
    : tid_(tid), mask_(ringCapacityPow2(capacity) - 1),
      buffer_(ringCapacityPow2(capacity))
{
}

std::vector<TraceEvent>
TraceRing::events() const
{
    std::vector<TraceEvent> out;
    const uint64_t retained =
        std::min<uint64_t>(head_, buffer_.size());
    out.reserve(retained);
    for (uint64_t i = head_ - retained; i < head_; ++i)
        out.push_back(buffer_[i & mask_]);
    return out;
}

Tracer::Tracer(size_t ring_capacity)
    : epoch_(std::chrono::steady_clock::now()),
      ring_capacity_(ring_capacity)
{
}

Tracer::~Tracer()
{
    deactivate();
}

void
Tracer::activate()
{
    // A fresh generation invalidates every thread's cached ring slot,
    // including slots pointing into a previous (possibly destroyed)
    // tracer that happened to share this address.
    generation_ = 1 + g_generation.fetch_add(1);
    active_tracer_.store(this, std::memory_order_release);
}

void
Tracer::deactivate()
{
    Tracer *expected = this;
    active_tracer_.compare_exchange_strong(expected, nullptr,
                                           std::memory_order_acq_rel);
}

TraceRing *
Tracer::threadRing()
{
    if (t_slot.generation == generation_)
        return t_slot.ring;
    std::lock_guard<std::mutex> lock(mutex_);
    rings_.push_back(std::make_unique<TraceRing>(
        static_cast<unsigned>(rings_.size()), ring_capacity_));
    rings_.back()->setName(currentThreadName());
    t_slot = {generation_, rings_.back().get()};
    return t_slot.ring;
}

void
Tracer::nameCurrentThread(const std::string &name)
{
    setCurrentThreadName(name);
    // If this thread already registered a ring with the active tracer,
    // rename it in place; the ring is single-writer (this thread), and
    // readers require quiescence anyway.
    Tracer *tracer = active();
    if (tracer && t_slot.generation == tracer->generation_ &&
        t_slot.ring)
        t_slot.ring->setName(name);
}

void
Tracer::record(const char *category, const char *name, uint64_t start_ns,
               uint64_t dur_ns)
{
    TraceEvent event;
    event.category = category;
    event.start_ns = start_ns;
    event.dur_ns = dur_ns;
    event.setName(name);
    threadRing()->push(event);
}

uint64_t
Tracer::eventsRecorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    for (const auto &ring : rings_)
        total += ring->recorded();
    return total;
}

uint64_t
Tracer::eventsDropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    for (const auto &ring : rings_)
        total += ring->dropped();
    return total;
}

unsigned
Tracer::threadCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<unsigned>(rings_.size());
}

std::vector<std::pair<unsigned, std::vector<TraceEvent>>>
Tracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<unsigned, std::vector<TraceEvent>>> out;
    out.reserve(rings_.size());
    for (const auto &ring : rings_)
        out.emplace_back(ring->tid(), ring->events());
    return out;
}

std::vector<Tracer::RingStats>
Tracer::ringStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<RingStats> out;
    out.reserve(rings_.size());
    for (const auto &ring : rings_)
        out.push_back({ring->tid(), ring->name(), ring->recorded(),
                       ring->dropped(), ring->capacity()});
    return out;
}

void
Tracer::writeJson(std::ostream &os) const
{
    const auto threads = snapshot();
    const auto stats = ringStats();
    os << "{\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };

    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"mixgemm\"}}";
    for (const Tracer::RingStats &ring : stats) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << ring.tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
        if (ring.name.empty())
            os << "thread-" << ring.tid;
        else
            os << jsonEscape(ring.name);
        os << "\"}}";
        // Ring accounting as metadata: a wrapped ring announces how
        // many events it lost instead of exporting a silently short
        // track.
        sep();
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << ring.tid
           << ",\"name\":\"mixgemm_ring\",\"args\":{\"recorded\":"
           << ring.recorded << ",\"dropped\":" << ring.dropped
           << ",\"capacity\":" << ring.capacity << "}}";
    }

    // Complete ("X") events; timestamps in microseconds with ns
    // precision, as the trace_event format expects.
    const auto old_flags = os.flags();
    const auto old_precision = os.precision();
    os.setf(std::ios::fixed);
    os.precision(3);
    for (const auto &[tid, events] : threads) {
        for (const TraceEvent &e : events) {
            sep();
            os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
               << ",\"cat\":\""
               << jsonEscape(e.category ? e.category : "") << "\","
               << "\"name\":\"" << jsonEscape(e.name) << "\","
               << "\"ts\":" << static_cast<double>(e.start_ns) / 1000.0
               << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0
               << "}";
        }
    }
    os.flags(old_flags);
    os.precision(old_precision);
    os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

} // namespace mixgemm
