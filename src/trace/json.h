/**
 * @file
 * Minimal JSON string escaping shared by the trace and report writers.
 * Writers in this module emit JSON by hand (no external dependency);
 * every string they embed must pass through jsonEscape().
 */

#ifndef MIXGEMM_TRACE_JSON_H
#define MIXGEMM_TRACE_JSON_H

#include <cstdio>
#include <string>

namespace mixgemm
{

/** Escape @p text for embedding inside a JSON string literal. */
inline std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace mixgemm

#endif // MIXGEMM_TRACE_JSON_H
