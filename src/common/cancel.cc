#include "common/cancel.h"

namespace mixgemm
{

namespace detail
{

void
cancelState(CancelState &state, Status reason)
{
    std::lock_guard<std::mutex> lock(state.reason_mutex);
    if (state.cancelled.load(std::memory_order_relaxed))
        return; // first cancellation wins
    state.reason = std::move(reason);
    state.cancelled.store(true, std::memory_order_release);
}

} // namespace detail

bool
CancelToken::poll() const
{
    if (!state_)
        return false;
    detail::CancelState &s = *state_;
    const uint64_t index =
        s.polls.fetch_add(1, std::memory_order_relaxed);
    if (s.progress)
        s.progress->fetch_add(1, std::memory_order_relaxed);
    if (s.poll_hook)
        s.poll_hook(index);
    if (s.cancelled.load(std::memory_order_acquire))
        return true;
    if (s.deadline_ns && s.clock &&
        s.clock->nowNs() >= s.deadline_ns) {
        detail::cancelState(
            s, Status::deadlineExceeded("deadline expired mid-compute"));
        return true;
    }
    return false;
}

Status
CancelToken::status() const
{
    if (!cancelled())
        return Status();
    std::lock_guard<std::mutex> lock(state_->reason_mutex);
    return state_->reason;
}

} // namespace mixgemm
