/**
 * @file
 * Deterministic pseudo-random number generation for tests, benchmarks, and
 * the synthetic dataset generator. A fixed algorithm (xoshiro256**) keeps
 * every run reproducible across platforms and standard libraries, unlike
 * std::default_random_engine whose behaviour is implementation-defined.
 */

#ifndef MIXGEMM_COMMON_RANDOM_H
#define MIXGEMM_COMMON_RANDOM_H

#include <cstdint>

namespace mixgemm
{

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (any value, including 0, is valid). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Uniform real in [0, 1). */
    double uniformReal();

    /** Uniform real in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Standard normal variate (Box-Muller, one value per call). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

  private:
    uint64_t s_[4];
    bool have_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

} // namespace mixgemm

#endif // MIXGEMM_COMMON_RANDOM_H
