/**
 * @file
 * Status/error reporting, following the gem5 fatal/panic split:
 * fatal() for user errors (bad configuration, invalid arguments) and
 * panic() for internal invariant violations.
 *
 * Non-fatal messages are leveled (debug < info < warn) and routed
 * through one thread-safe sink, so messages from pool workers never
 * interleave mid-line. The minimum level printed defaults to Info and
 * is settable via the MIXGEMM_LOG_LEVEL environment variable
 * ("debug", "info", "warn", or "silent") or setLogLevel(). fatal() and
 * panic() always throw regardless of level.
 */

#ifndef MIXGEMM_COMMON_LOGGING_H
#define MIXGEMM_COMMON_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace mixgemm
{

/** Thrown by fatal(): the caller supplied an unusable configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Thrown by panic(): an internal invariant was violated (a library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

/** Severity of a non-fatal log message. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Silent = 3, ///< threshold only: suppress everything
};

/**
 * Minimum level currently printed. First use reads MIXGEMM_LOG_LEVEL
 * ("debug" | "info" | "warn" | "silent", case-insensitive); absent or
 * unrecognized values fall back to Info.
 */
LogLevel logLevel();

/** Override the minimum printed level for this process. */
void setLogLevel(LogLevel level);

/** Report an unrecoverable user error. Always throws FatalError. */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal library bug. Always throws PanicError. */
[[noreturn]] void panic(const std::string &msg);

/** Print a non-fatal warning to stderr (level Warn). */
void warn(const std::string &msg);

/** Print an informational message to stderr (level Info). */
void inform(const std::string &msg);

/** Print a diagnostic message to stderr (level Debug; off by default). */
void debug(const std::string &msg);

/**
 * Format helper: streams all arguments into a string.
 * Example: fatal(strCat("bad width ", w, " for config ", cfg)).
 */
template <typename... Args>
std::string
strCat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace mixgemm

#endif // MIXGEMM_COMMON_LOGGING_H
