/**
 * @file
 * Minimal status/error reporting, following the gem5 fatal/panic split:
 * fatal() for user errors (bad configuration, invalid arguments) and
 * panic() for internal invariant violations.
 */

#ifndef MIXGEMM_COMMON_LOGGING_H
#define MIXGEMM_COMMON_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace mixgemm
{

/** Thrown by fatal(): the caller supplied an unusable configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Thrown by panic(): an internal invariant was violated (a library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

/** Report an unrecoverable user error. Always throws FatalError. */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal library bug. Always throws PanicError. */
[[noreturn]] void panic(const std::string &msg);

/** Print a non-fatal warning to stderr. */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/**
 * Format helper: streams all arguments into a string.
 * Example: fatal(strCat("bad width ", w, " for config ", cfg)).
 */
template <typename... Args>
std::string
strCat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace mixgemm

#endif // MIXGEMM_COMMON_LOGGING_H
