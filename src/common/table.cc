#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace mixgemm
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    rows_.push_back({kSeparatorTag});
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == kSeparatorTag)
            continue;
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_rule = [&] {
        os << '+';
        for (const size_t w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto print_row = [&](const std::vector<std::string> &row) {
        os << '|';
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            os << ' ' << cell << std::string(widths[c] - cell.size(), ' ')
               << " |";
        }
        os << '\n';
    };

    print_rule();
    print_row(headers_);
    print_rule();
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == kSeparatorTag)
            print_rule();
        else
            print_row(row);
    }
    print_rule();
}

std::string
Table::fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
Table::fmtInt(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    const size_t n = digits.size();
    for (size_t i = 0; i < n; ++i) {
        if (i > 0 && (n - i) % 3 == 0)
            out += ',';
        out += digits[i];
    }
    return out;
}

} // namespace mixgemm
