/**
 * @file
 * Process-local thread naming for observability.
 *
 * Subsystems that own threads (the GEMM thread pool, the serving
 * workers, the watchdog, the virtual-time pump) name them here; the
 * tracer captures the name when it registers a thread's event ring, so
 * Perfetto exports label tracks "worker3" / "watchdog" / "pump" instead
 * of anonymous thread ids. Purely observational: nothing reads the name
 * back into any computation.
 *
 * Lives in common (not trace) so the thread pool can name its workers
 * without a dependency cycle — trace already depends on common.
 */

#ifndef MIXGEMM_COMMON_THREADNAME_H
#define MIXGEMM_COMMON_THREADNAME_H

#include <string>

namespace mixgemm
{

namespace detail
{
inline thread_local std::string t_thread_name;
} // namespace detail

/** Name the calling thread for trace/telemetry exports. */
inline void
setCurrentThreadName(std::string name)
{
    detail::t_thread_name = std::move(name);
}

/** The calling thread's name; empty if never set. */
inline const std::string &
currentThreadName()
{
    return detail::t_thread_name;
}

} // namespace mixgemm

#endif // MIXGEMM_COMMON_THREADNAME_H
