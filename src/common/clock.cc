#include "common/clock.h"

#include <chrono>

namespace mixgemm
{

uint64_t
MonotonicClock::nowNs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

MonotonicClock &
MonotonicClock::instance()
{
    static MonotonicClock clock;
    return clock;
}

} // namespace mixgemm
