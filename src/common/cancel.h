/**
 * @file
 * Cooperative cancellation for long-running compute.
 *
 * A CancelSource owns the cancellation state of one request; the
 * CancelTokens it hands out are cheap shared views that compute loops
 * poll at natural checkpoints (the Mix-GEMM driver polls at every
 * jc/ic macro-tile boundary). Cancellation is *cooperative*: nothing is
 * interrupted mid-tile — the loop observes the flag at its next
 * checkpoint, stops issuing work, and the caller reports the reason
 * Status (kCancelled, kDeadlineExceeded, ...) with partial work
 * discarded.
 *
 * A token may also carry an absolute deadline against a Clock: the
 * first poll at or after the deadline trips the token with
 * kDeadlineExceeded, so deadline enforcement needs no timer thread.
 * Every poll additionally bumps an optional external progress counter —
 * the serving watchdog's heartbeat — and an optional poll hook (tests
 * only) runs with the poll index, which is how deterministic
 * cancel-after-N-polls and worker-exception tests are built.
 *
 * An untriggered token is bitwise-transparent to the computation it is
 * attached to: polling reads two atomics and (with a deadline) the
 * clock, and never influences results — pinned by tests.
 */

#ifndef MIXGEMM_COMMON_CANCEL_H
#define MIXGEMM_COMMON_CANCEL_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "common/clock.h"
#include "common/status.h"

namespace mixgemm
{

namespace detail
{

/** Shared cancellation state; see file comment for the contract. */
struct CancelState
{
    std::atomic<bool> cancelled{false};
    std::atomic<uint64_t> polls{0};
    /// External heartbeat: every poll bumps it (watchdog liveness).
    std::atomic<uint64_t> *progress = nullptr;
    uint64_t deadline_ns = 0; ///< absolute; 0 = none
    const Clock *clock = nullptr;
    /// Reason for the cancellation. Written exactly once, under the
    /// mutex, *before* `cancelled` is set (release); readers that saw
    /// `cancelled` (acquire) then take the mutex to copy it.
    Status reason;
    std::mutex reason_mutex;
    /// Test-only: runs on every poll with the 0-based poll index.
    /// Must be thread-safe; may throw (exercises worker-exception
    /// handling) or cancel the source (deterministic cancellation).
    std::function<void(uint64_t)> poll_hook;
};

void cancelState(CancelState &state, Status reason);

} // namespace detail

/**
 * Shared view of a CancelSource's state. Copyable; a default-constructed
 * token never cancels and polls for free.
 */
class CancelToken
{
  public:
    CancelToken() = default;

    /** Fast flag check: no side effects beyond the atomic load. */
    bool cancelled() const
    {
        return state_ && state_->cancelled.load(std::memory_order_acquire);
    }

    /**
     * Checkpoint poll: bumps the progress heartbeat, runs the test
     * hook, trips the deadline if it has passed, and returns whether
     * the computation should stop. Safe to call concurrently.
     */
    bool poll() const;

    /**
     * Reason the token tripped: kCancelled/kDeadlineExceeded/... —
     * Status() while untriggered.
     */
    Status status() const;

    /** Number of poll() calls observed so far (all threads). */
    uint64_t pollCount() const
    {
        return state_ ? state_->polls.load(std::memory_order_relaxed) : 0;
    }

  private:
    friend class CancelSource;
    explicit CancelToken(std::shared_ptr<detail::CancelState> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<detail::CancelState> state_;
};

/** Owner of one request's cancellation state. */
class CancelSource
{
  public:
    CancelSource() : state_(std::make_shared<detail::CancelState>()) {}

    /**
     * Arm an absolute deadline: the first poll at or after
     * @p deadline_ns (per @p clock) cancels with kDeadlineExceeded.
     * Set before handing out tokens to polling threads.
     */
    void setDeadline(uint64_t deadline_ns, const Clock &clock)
    {
        state_->deadline_ns = deadline_ns;
        state_->clock = &clock;
    }

    /** Heartbeat counter bumped by every poll (watchdog liveness). */
    void setProgressCounter(std::atomic<uint64_t> *counter)
    {
        state_->progress = counter;
    }

    /** Test-only poll hook; see detail::CancelState::poll_hook. */
    void setPollHook(std::function<void(uint64_t)> hook)
    {
        state_->poll_hook = std::move(hook);
    }

    /**
     * Trip the token with @p reason (first cancellation wins; later
     * calls are no-ops). Thread-safe.
     */
    void cancel(Status reason = Status::cancelled("cancelled"))
    {
        detail::cancelState(*state_, std::move(reason));
    }

    bool cancelled() const
    {
        return state_->cancelled.load(std::memory_order_acquire);
    }

    CancelToken token() const { return CancelToken(state_); }

  private:
    std::shared_ptr<detail::CancelState> state_;
};

} // namespace mixgemm

#endif // MIXGEMM_COMMON_CANCEL_H
