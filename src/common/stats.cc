#include "common/stats.h"

#include <cmath>

namespace mixgemm
{

void
RunningStat::add(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }
    ++count_;
    sum_ += value;
    log_sum_ += value > 0.0 ? std::log(value) : 0.0;
}

double
RunningStat::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
RunningStat::geomean() const
{
    return count_ ? std::exp(log_sum_ / static_cast<double>(count_)) : 0.0;
}

void
CounterSet::inc(const std::string &name, uint64_t delta)
{
    counters_[name] += delta;
}

void
CounterSet::set(const std::string &name, uint64_t value)
{
    counters_[name] = value;
}

uint64_t
CounterSet::get(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
CounterSet::clear()
{
    for (auto &kv : counters_)
        kv.second = 0;
}

void
CounterSet::merge(const CounterSet &other)
{
    for (const auto &kv : other.counters_)
        counters_[kv.first] += kv.second;
}

void
CounterSet::mergeScaled(const CounterSet &other, uint64_t factor)
{
    for (const auto &kv : other.counters_)
        counters_[kv.first] += kv.second * factor;
}

} // namespace mixgemm
