#include "common/stats.h"

#include <cmath>
#include <mutex>

#include "common/logging.h"

namespace mixgemm
{

void
RunningStat::add(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        if (value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
    }
    ++count_;
    sum_ += value;
    if (value > 0.0)
        log_sum_ += std::log(value);
    else
        ++nonpositive_;
}

double
RunningStat::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
RunningStat::geomean() const
{
    if (count_ == 0)
        return 0.0;
    if (nonpositive_ > 0) {
        static std::once_flag warned;
        std::call_once(warned, [] {
            warn("RunningStat::geomean over non-positive samples is "
                 "undefined; returning 0");
        });
        return 0.0;
    }
    return std::exp(log_sum_ / static_cast<double>(count_));
}

namespace
{

constexpr unsigned kInternedCount =
    static_cast<unsigned>(Counter::Count);

constexpr const char *kCounterNames[kInternedCount] = {
    "bs_set",       "bs_ip",
    "bs_get",       "a_panels",
    "b_panels",     "micro_kernels",
    "engine_busy_cycles", "ops",
    "faults_injected",
    "abft_tiles_checked",
    "abft_tiles_flagged",
    "abft_retries",
    "abft_tiles_corrected",
    "abft_tiles_uncorrected",
};

/** Map a string to its interned counter, if it names one. */
bool
findInterned(const std::string &name, Counter &out)
{
    for (unsigned i = 0; i < kInternedCount; ++i) {
        if (name == kCounterNames[i]) {
            out = static_cast<Counter>(i);
            return true;
        }
    }
    return false;
}

} // namespace

const char *
counterName(Counter counter)
{
    return kCounterNames[static_cast<unsigned>(counter)];
}

void
CounterSet::inc(const std::string &name, uint64_t delta)
{
    Counter c;
    if (findInterned(name, c))
        inc(c, delta);
    else
        counters_[name] += delta;
}

void
CounterSet::set(const std::string &name, uint64_t value)
{
    Counter c;
    if (findInterned(name, c))
        set(c, value);
    else
        counters_[name] = value;
}

uint64_t
CounterSet::get(const std::string &name) const
{
    Counter c;
    if (findInterned(name, c))
        return get(c);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
CounterSet::clear()
{
    interned_.fill(0);
    for (auto &kv : counters_)
        kv.second = 0;
}

void
CounterSet::merge(const CounterSet &other)
{
    for (unsigned i = 0; i < kInternedCount; ++i)
        interned_[i] += other.interned_[i];
    touched_ |= other.touched_;
    for (const auto &kv : other.counters_)
        counters_[kv.first] += kv.second;
}

void
CounterSet::mergeScaled(const CounterSet &other, uint64_t factor)
{
    for (unsigned i = 0; i < kInternedCount; ++i)
        interned_[i] += other.interned_[i] * factor;
    touched_ |= other.touched_;
    for (const auto &kv : other.counters_)
        counters_[kv.first] += kv.second * factor;
}

std::map<std::string, uint64_t>
CounterSet::all() const
{
    std::map<std::string, uint64_t> merged = counters_;
    for (unsigned i = 0; i < kInternedCount; ++i)
        if (touched_ & (1u << i))
            merged[kCounterNames[i]] = interned_[i];
    return merged;
}

} // namespace mixgemm
