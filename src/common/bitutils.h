/**
 * @file
 * Bit-manipulation helpers shared across the Mix-GEMM code base.
 *
 * All routines are constexpr and operate on explicit-width integer types.
 * They implement the small amount of two's-complement machinery that the
 * binary-segmentation datapath (src/bs) and the packing code (src/tensor)
 * are built on: field masks, sign extension, and ceil-log2.
 */

#ifndef MIXGEMM_COMMON_BITUTILS_H
#define MIXGEMM_COMMON_BITUTILS_H

#include <cstdint>

namespace mixgemm
{

/** Unsigned 128-bit product type used to model the 64x64 multiplier. */
using uint128 = unsigned __int128;
/** Signed 128-bit product type used to model the 64x64 multiplier. */
using int128 = __int128;

/**
 * Build a mask with the low @p bits bits set.
 * @param bits number of low-order bits to set; must be in [0, 64].
 */
constexpr uint64_t
mask64(unsigned bits)
{
    return bits >= 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
}

/** Build a 128-bit mask with the low @p bits bits set (bits in [0, 128]). */
constexpr uint128
mask128(unsigned bits)
{
    return bits >= 128 ? ~uint128{0} : ((uint128{1} << bits) - 1);
}

/**
 * Sign-extend the low @p bits bits of @p value to a signed 64-bit integer.
 * @pre 1 <= bits <= 64.
 */
constexpr int64_t
signExtend64(uint64_t value, unsigned bits)
{
    const uint64_t m = mask64(bits);
    const uint64_t v = value & m;
    const uint64_t sign_bit = uint64_t{1} << (bits - 1);
    return static_cast<int64_t>((v ^ sign_bit) - sign_bit);
}

/** Sign-extend the low @p bits bits of a 128-bit value (1 <= bits <= 128). */
constexpr int128
signExtend128(uint128 value, unsigned bits)
{
    const uint128 m = mask128(bits);
    const uint128 v = value & m;
    const uint128 sign_bit = uint128{1} << (bits - 1);
    return static_cast<int128>((v ^ sign_bit) - sign_bit);
}

/** Ceiling of log2(@p value); returns 0 for value <= 1. */
constexpr unsigned
ceilLog2(uint64_t value)
{
    unsigned bits = 0;
    uint64_t v = 1;
    while (v < value) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

/** Integer division rounded up; @pre den > 0. */
constexpr uint64_t
divCeil(uint64_t num, uint64_t den)
{
    return (num + den - 1) / den;
}

/** Round @p value up to the next multiple of @p align; @pre align > 0. */
constexpr uint64_t
roundUp(uint64_t value, uint64_t align)
{
    return divCeil(value, align) * align;
}

/** True iff @p value fits in a signed two's-complement field of @p bits. */
constexpr bool
fitsSigned(int64_t value, unsigned bits)
{
    const int64_t lo = -(int64_t{1} << (bits - 1));
    const int64_t hi = (int64_t{1} << (bits - 1)) - 1;
    return value >= lo && value <= hi;
}

/** True iff @p value fits in an unsigned field of @p bits. */
constexpr bool
fitsUnsigned(uint64_t value, unsigned bits)
{
    return bits >= 64 || value <= mask64(bits);
}

/**
 * Extract the bit field [msb:lsb] (inclusive, LSB-0 numbering) from a
 * 128-bit value, mirroring the hardware slice notation of Eq. (5).
 */
constexpr uint64_t
bitSlice128(uint128 value, unsigned msb, unsigned lsb)
{
    return static_cast<uint64_t>((value >> lsb) &
                                 mask128(msb - lsb + 1));
}

} // namespace mixgemm

#endif // MIXGEMM_COMMON_BITUTILS_H
