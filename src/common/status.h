/**
 * @file
 * Lightweight structured error reporting for public API boundaries.
 *
 * The library's internal layers keep the gem5-style fatal()/panic()
 * discipline (logging.h): a caller bug deep inside a kernel is a
 * programming error and should stop the process loudly. Public entry
 * points that face *untrusted or external* input — GEMM shapes from a
 * model file, serialized graphs from disk, quantizer parameters from a
 * config — must not crash on bad data. Those boundaries validate first
 * and return a Status (or an Expected<T> carrying either the value or
 * the Status), so a serving process can reject one bad request and keep
 * running.
 *
 * Status is deliberately tiny: a code for programmatic dispatch plus a
 * human-readable message. Expected<T> is the usual value-or-error sum
 * type; reading value() on an error is a caller bug and panics.
 */

#ifndef MIXGEMM_COMMON_STATUS_H
#define MIXGEMM_COMMON_STATUS_H

#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"

namespace mixgemm
{

/** Broad error class of a Status, for programmatic handling. */
enum class StatusCode
{
    kOk = 0,
    kInvalidArgument,    ///< caller-supplied value is unusable
    kOutOfRange,         ///< index/size outside the valid domain
    kFailedPrecondition, ///< object state does not allow the call
    kDataLoss,           ///< serialized input is malformed or truncated
    kNotFound,           ///< named entity (file, graph id) does not exist
    kResourceExhausted,  ///< a bounded resource (queue, budget) is full
    kDeadlineExceeded,   ///< the request's deadline passed before completion
    kCancelled,          ///< the operation was cancelled cooperatively
    kUnavailable,        ///< transient failure; retrying may succeed
    kInternal,           ///< invariant violation surfaced at a boundary
};

/**
 * Whether a failed request may succeed if simply re-executed — the
 * serving runtime's retry-with-backoff gate. Only kUnavailable
 * qualifies: transient faults (e.g. ABFT retry exhaustion on a
 * transient flip) are reported under it, while kDeadlineExceeded,
 * kCancelled, kResourceExhausted, and the validation codes are
 * deterministic re-failures.
 */
inline bool
statusCodeIsRetriable(StatusCode code)
{
    return code == StatusCode::kUnavailable;
}

/** Canonical lowercase name of a status code ("ok", "invalid_argument"). */
const char *statusCodeName(StatusCode code);

/** Success-or-error result of a fallible operation. */
class Status
{
  public:
    /** Default-constructed Status is success. */
    Status() = default;

    static Status invalidArgument(std::string msg)
    {
        return Status(StatusCode::kInvalidArgument, std::move(msg));
    }
    static Status outOfRange(std::string msg)
    {
        return Status(StatusCode::kOutOfRange, std::move(msg));
    }
    static Status failedPrecondition(std::string msg)
    {
        return Status(StatusCode::kFailedPrecondition, std::move(msg));
    }
    static Status dataLoss(std::string msg)
    {
        return Status(StatusCode::kDataLoss, std::move(msg));
    }
    static Status notFound(std::string msg)
    {
        return Status(StatusCode::kNotFound, std::move(msg));
    }
    static Status resourceExhausted(std::string msg)
    {
        return Status(StatusCode::kResourceExhausted, std::move(msg));
    }
    static Status deadlineExceeded(std::string msg)
    {
        return Status(StatusCode::kDeadlineExceeded, std::move(msg));
    }
    static Status cancelled(std::string msg)
    {
        return Status(StatusCode::kCancelled, std::move(msg));
    }
    static Status unavailable(std::string msg)
    {
        return Status(StatusCode::kUnavailable, std::move(msg));
    }
    static Status internal(std::string msg)
    {
        return Status(StatusCode::kInternal, std::move(msg));
    }

    bool ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "ok" or "<code>: <message>". */
    std::string toString() const
    {
        if (ok())
            return "ok";
        return std::string(statusCodeName(code_)) + ": " + message_;
    }

  private:
    Status(StatusCode code, std::string msg)
        : code_(code), message_(std::move(msg))
    {
    }

    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/**
 * Value-or-Status result. Construct from a T (success) or a non-ok
 * Status (failure); accessing the wrong alternative panics, because at
 * that point the *caller* has a bug, not the data.
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}
    Expected(Status status) : status_(std::move(status))
    {
        if (status_.ok())
            panic("Expected constructed from an ok Status without a "
                  "value");
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    const Status &status() const { return status_; }

    T &value()
    {
        if (!ok())
            panic("Expected::value() on error: " + status_.toString());
        return *value_;
    }
    const T &value() const
    {
        if (!ok())
            panic("Expected::value() on error: " + status_.toString());
        return *value_;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    std::optional<T> value_;
    Status status_;
};

inline const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "ok";
      case StatusCode::kInvalidArgument: return "invalid_argument";
      case StatusCode::kOutOfRange: return "out_of_range";
      case StatusCode::kFailedPrecondition: return "failed_precondition";
      case StatusCode::kDataLoss: return "data_loss";
      case StatusCode::kNotFound: return "not_found";
      case StatusCode::kResourceExhausted: return "resource_exhausted";
      case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
      case StatusCode::kCancelled: return "cancelled";
      case StatusCode::kUnavailable: return "unavailable";
      case StatusCode::kInternal: return "internal";
    }
    return "?";
}

} // namespace mixgemm

#endif // MIXGEMM_COMMON_STATUS_H
