#include "common/jsonlite.h"

#include <cctype>
#include <charconv>

#include "common/logging.h"

namespace mixgemm
{

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (!isObject())
        return nullptr;
    const JsonValue *found = nullptr;
    for (const auto &[name, value] : members)
        if (name == key)
            found = &value; // last duplicate wins, like most parsers
    return found;
}

namespace
{

constexpr unsigned kMaxDepth = 64;

/** Cursor over the input with position-carrying error helpers. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Expected<JsonValue> parseDocument()
    {
        skipWs();
        JsonValue value;
        if (Status s = parseValue(value, 0); !s.ok())
            return s;
        skipWs();
        if (pos_ != text_.size())
            return error("trailing characters after the document");
        return value;
    }

  private:
    Status error(const std::string &what) const
    {
        return Status::dataLoss(
            strCat("JSON parse error at byte ", pos_, ": ", what));
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool consumeWord(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) == word) {
            pos_ += word.size();
            return true;
        }
        return false;
    }

    Status parseValue(JsonValue &out, unsigned depth)
    {
        if (depth > kMaxDepth)
            return error("nesting too deep");
        if (pos_ >= text_.size())
            return error("unexpected end of input");
        const char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
          case 't':
            if (!consumeWord("true"))
                return error("invalid literal");
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return Status();
          case 'f':
            if (!consumeWord("false"))
                return error("invalid literal");
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return Status();
          case 'n':
            if (!consumeWord("null"))
                return error("invalid literal");
            out.kind = JsonValue::Kind::Null;
            return Status();
          default:
            return parseNumber(out);
        }
    }

    Status parseObject(JsonValue &out, unsigned depth)
    {
        ++pos_; // '{'
        out.kind = JsonValue::Kind::Object;
        skipWs();
        if (consume('}'))
            return Status();
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return error("expected object key string");
            std::string key;
            if (Status s = parseString(key); !s.ok())
                return s;
            skipWs();
            if (!consume(':'))
                return error("expected ':' after object key");
            skipWs();
            JsonValue value;
            if (Status s = parseValue(value, depth + 1); !s.ok())
                return s;
            out.members.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return Status();
            return error("expected ',' or '}' in object");
        }
    }

    Status parseArray(JsonValue &out, unsigned depth)
    {
        ++pos_; // '['
        out.kind = JsonValue::Kind::Array;
        skipWs();
        if (consume(']'))
            return Status();
        while (true) {
            skipWs();
            JsonValue value;
            if (Status s = parseValue(value, depth + 1); !s.ok())
                return s;
            out.items.push_back(std::move(value));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return Status();
            return error("expected ',' or ']' in array");
        }
    }

    Status parseString(std::string &out)
    {
        ++pos_; // opening '"'
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return error("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return Status();
            if (static_cast<unsigned char>(c) < 0x20)
                return error("unescaped control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return error("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return error("truncated \\u escape");
                unsigned code = 0;
                for (unsigned i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return error("invalid \\u escape digit");
                }
                // ASCII decodes exactly; anything wider degrades to
                // '?' (our artifacts are ASCII, see file comment).
                out.push_back(code < 0x80 ? static_cast<char>(code)
                                          : '?');
                break;
              }
              default: return error("unknown escape character");
            }
        }
    }

    Status parseNumber(JsonValue &out)
    {
        const size_t start = pos_;
        consume('-');
        if (pos_ >= text_.size() || !std::isdigit(
                static_cast<unsigned char>(text_[pos_])))
            return error("invalid number");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (consume('.')) {
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                return error("invalid number fraction");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || !std::isdigit(
                    static_cast<unsigned char>(text_[pos_])))
                return error("invalid number exponent");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        double value = 0.0;
        const auto [ptr, ec] = std::from_chars(
            text_.data() + start, text_.data() + pos_, value);
        if (ec != std::errc() || ptr != text_.data() + pos_)
            return error("number out of range");
        out.kind = JsonValue::Kind::Number;
        out.number = value;
        return Status();
    }

    std::string_view text_;
    size_t pos_ = 0;
};

} // namespace

Expected<JsonValue>
parseJson(std::string_view text)
{
    return Parser(text).parseDocument();
}

} // namespace mixgemm
