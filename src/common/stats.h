/**
 * @file
 * Lightweight statistics helpers: named counters (used by the simulator
 * PMU) and running scalar summaries (used by benches to report averages,
 * geomeans, and min/max over sweeps).
 */

#ifndef MIXGEMM_COMMON_STATS_H
#define MIXGEMM_COMMON_STATS_H

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace mixgemm
{

/** Running summary of a stream of doubles. */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double value);

    /** Number of samples added. */
    uint64_t count() const { return count_; }
    /** Sum of all samples. */
    double sum() const { return sum_; }
    /** Arithmetic mean; 0 when empty. */
    double mean() const;
    /**
     * Geometric mean; 0 when empty. A geomean is only defined over
     * positive samples: if any sample was <= 0 this returns 0 (and
     * warns once per process) instead of the silent garbage a partial
     * log-sum would produce.
     */
    double geomean() const;
    /** Smallest sample; 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }
    /** Largest sample; 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }

  private:
    uint64_t count_ = 0;
    uint64_t nonpositive_ = 0; ///< samples <= 0 (poison the geomean)
    double sum_ = 0.0;
    double log_sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Interned handles for the counters the GEMM driver bumps in its inner
 * loops. A `Counter` indexes a flat array inside CounterSet, so the hot
 * path is one add instead of a std::map<std::string> lookup; the string
 * API below transparently routes these names to the same slots, so
 * tools and benches keep reading e.g. counters.get("bs_ip").
 */
enum class Counter : unsigned
{
    BsSet,            ///< "bs_set"
    BsIp,             ///< "bs_ip"
    BsGet,            ///< "bs_get"
    APanels,          ///< "a_panels"
    BPanels,          ///< "b_panels"
    MicroKernels,     ///< "micro_kernels"
    EngineBusyCycles, ///< "engine_busy_cycles"
    Ops,              ///< "ops"
    FaultsInjected,   ///< "faults_injected" (fault-arm applications)
    AbftTilesChecked, ///< "abft_tiles_checked"
    AbftTilesFlagged, ///< "abft_tiles_flagged"
    AbftRetries,      ///< "abft_retries" (tile recompute attempts)
    AbftTilesCorrected,   ///< "abft_tiles_corrected"
    AbftTilesUncorrected, ///< "abft_tiles_uncorrected"
    Count             ///< number of interned counters (not a counter)
};

/** Canonical string name of an interned counter. */
const char *counterName(Counter counter);

/**
 * A named bag of 64-bit counters. The simulator PMU and the GEMM timing
 * model both expose their event counts through one of these, so tests and
 * benches can read e.g. counters.get("srcbuf_full_stall_cycles").
 *
 * The handful of GEMM-driver counters (`Counter`) live in a flat array
 * addressed by enum — the inner-loop path — while arbitrary names live
 * in a map. The string overloads recognize the interned names and route
 * them to the flat slots, so both APIs always agree on those counters.
 */
class CounterSet
{
  public:
    /** Add @p delta to interned counter @p counter (inner-loop path). */
    void inc(Counter counter, uint64_t delta = 1)
    {
        interned_[static_cast<unsigned>(counter)] += delta;
        touched_ |= 1u << static_cast<unsigned>(counter);
    }

    /** Set interned counter @p counter to @p value. */
    void set(Counter counter, uint64_t value)
    {
        interned_[static_cast<unsigned>(counter)] = value;
        touched_ |= 1u << static_cast<unsigned>(counter);
    }

    /** Read interned counter @p counter. */
    uint64_t get(Counter counter) const
    {
        return interned_[static_cast<unsigned>(counter)];
    }

    /** Add @p delta to counter @p name (creating it at 0 if absent). */
    void inc(const std::string &name, uint64_t delta = 1);

    /** Set counter @p name to @p value. */
    void set(const std::string &name, uint64_t value);

    /** Read counter @p name; absent counters read as 0. */
    uint64_t get(const std::string &name) const;

    /** Reset every counter to zero (the set of string names is kept). */
    void clear();

    /** Merge: add every counter of @p other into this set. */
    void merge(const CounterSet &other);

    /** Merge with every count of @p other scaled by @p factor. */
    void mergeScaled(const CounterSet &other, uint64_t factor);

    /**
     * Merged view (sorted by name) for printing and comparisons:
     * string-keyed counters plus every *touched* interned counter
     * under its canonical name. "Touched" means inc() or set() was
     * ever called on the slot (directly or merged in) — mirroring how
     * string counters keep their entry once created, even at zero, so
     * the two kinds of counter report consistently.
     */
    std::map<std::string, uint64_t> all() const;

  private:
    static_assert(static_cast<unsigned>(Counter::Count) <= 32,
                  "touched_ bitmask holds one bit per interned slot");

    std::array<uint64_t, static_cast<unsigned>(Counter::Count)>
        interned_{};
    uint32_t touched_ = 0; ///< interned slots ever inc()/set()
    std::map<std::string, uint64_t> counters_;
};

} // namespace mixgemm

#endif // MIXGEMM_COMMON_STATS_H
