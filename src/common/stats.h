/**
 * @file
 * Lightweight statistics helpers: named counters (used by the simulator
 * PMU) and running scalar summaries (used by benches to report averages,
 * geomeans, and min/max over sweeps).
 */

#ifndef MIXGEMM_COMMON_STATS_H
#define MIXGEMM_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>

namespace mixgemm
{

/** Running summary of a stream of doubles. */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double value);

    /** Number of samples added. */
    uint64_t count() const { return count_; }
    /** Sum of all samples. */
    double sum() const { return sum_; }
    /** Arithmetic mean; 0 when empty. */
    double mean() const;
    /** Geometric mean; requires all samples > 0; 0 when empty. */
    double geomean() const;
    /** Smallest sample; 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }
    /** Largest sample; 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double log_sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named bag of 64-bit counters. The simulator PMU and the GEMM timing
 * model both expose their event counts through one of these, so tests and
 * benches can read e.g. counters.get("srcbuf_full_stall_cycles").
 */
class CounterSet
{
  public:
    /** Add @p delta to counter @p name (creating it at 0 if absent). */
    void inc(const std::string &name, uint64_t delta = 1);

    /** Set counter @p name to @p value. */
    void set(const std::string &name, uint64_t value);

    /** Read counter @p name; absent counters read as 0. */
    uint64_t get(const std::string &name) const;

    /** Reset every counter to zero (the set of names is preserved). */
    void clear();

    /** Merge: add every counter of @p other into this set. */
    void merge(const CounterSet &other);

    /** Merge with every count of @p other scaled by @p factor. */
    void mergeScaled(const CounterSet &other, uint64_t factor);

    /** Access the underlying map (sorted by name) for printing. */
    const std::map<std::string, uint64_t> &all() const { return counters_; }

  private:
    std::map<std::string, uint64_t> counters_;
};

} // namespace mixgemm

#endif // MIXGEMM_COMMON_STATS_H
