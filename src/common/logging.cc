#include "common/logging.h"

#include <iostream>

namespace mixgemm
{

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
warn(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
inform(const std::string &msg)
{
    std::cerr << "info: " << msg << "\n";
}

} // namespace mixgemm
