#include "common/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace mixgemm
{

namespace
{

LogLevel
parseLevel(const char *text, LogLevel fallback)
{
    if (!text)
        return fallback;
    std::string value(text);
    std::transform(value.begin(), value.end(), value.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (value == "debug")
        return LogLevel::Debug;
    if (value == "info")
        return LogLevel::Info;
    if (value == "warn" || value == "warning")
        return LogLevel::Warn;
    if (value == "silent" || value == "off" || value == "none")
        return LogLevel::Silent;
    return fallback;
}

std::atomic<int> &
levelStore()
{
    static std::atomic<int> level{static_cast<int>(
        parseLevel(std::getenv("MIXGEMM_LOG_LEVEL"), LogLevel::Info))};
    return level;
}

/** Serialize writes so messages from pool workers never interleave. */
void
emit(LogLevel level, const char *prefix, const std::string &msg)
{
    if (static_cast<int>(level) <
        levelStore().load(std::memory_order_relaxed))
        return;
    static std::mutex sink_mutex;
    std::lock_guard<std::mutex> lock(sink_mutex);
    std::cerr << prefix << msg << "\n";
}

} // namespace

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        levelStore().load(std::memory_order_relaxed));
}

void
setLogLevel(LogLevel level)
{
    levelStore().store(static_cast<int>(level),
                       std::memory_order_relaxed);
}

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
warn(const std::string &msg)
{
    emit(LogLevel::Warn, "warn: ", msg);
}

void
inform(const std::string &msg)
{
    emit(LogLevel::Info, "info: ", msg);
}

void
debug(const std::string &msg)
{
    emit(LogLevel::Debug, "debug: ", msg);
}

} // namespace mixgemm
