/**
 * @file
 * Fixed-width console table printer. Every bench binary uses this to print
 * the rows of the paper table/figure it regenerates, so running every
 * binary under build/bench reads like the paper's evaluation section.
 */

#ifndef MIXGEMM_COMMON_TABLE_H
#define MIXGEMM_COMMON_TABLE_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace mixgemm
{

/** A console table with a header row and uniform column alignment. */
class Table
{
  public:
    /** Construct with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; missing trailing cells render empty. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

    /** Format a double with @p precision fractional digits. */
    static std::string fmt(double value, int precision = 2);

    /** Format an integer with thousands separators ("12,345,678"). */
    static std::string fmtInt(uint64_t value);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    static constexpr const char *kSeparatorTag = "\x01--";
};

} // namespace mixgemm

#endif // MIXGEMM_COMMON_TABLE_H
