/**
 * @file
 * Minimal JSON value model + parser for the toolchain's read-back paths.
 *
 * The library *writes* JSON in several places (trace/session.cc, the
 * benches) with hand-rolled emitters, but until the autotuner nothing
 * ever needed to *read* it back. This module closes that loop for the
 * small structured artifacts we own end to end: μ-kernel tuning files
 * and bench history sections. It is a strict recursive-descent parser
 * over the full JSON grammar with two deliberate limits, both fine for
 * self-produced ASCII artifacts: numbers parse into double (53-bit
 * integer precision), and \uXXXX escapes outside ASCII decode to '?'.
 *
 * Parse errors come back as a Status (kDataLoss) with a byte offset —
 * these are external-input boundaries (a user-edited tuning file, a
 * stale CI artifact), so they must not crash the process.
 */

#ifndef MIXGEMM_COMMON_JSONLITE_H
#define MIXGEMM_COMMON_JSONLITE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace mixgemm
{

/** One parsed JSON value; a tagged union over the seven JSON kinds. */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items; ///< Array elements
    /// Object members in source order (duplicate keys keep the last).
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Typed accessors with a fallback for wrong-kind/absent values. */
    double numberOr(double fallback) const
    {
        return isNumber() ? number : fallback;
    }
    uint64_t uintOr(uint64_t fallback) const
    {
        return isNumber() && number >= 0
            ? static_cast<uint64_t>(number)
            : fallback;
    }
    bool boolOr(bool fallback) const
    {
        return isBool() ? boolean : fallback;
    }
    std::string stringOr(std::string fallback) const
    {
        return isString() ? str : std::move(fallback);
    }
};

/**
 * Parse one JSON document (exactly one top-level value, whitespace
 * allowed around it). Nesting depth is capped at 64 levels.
 */
Expected<JsonValue> parseJson(std::string_view text);

} // namespace mixgemm

#endif // MIXGEMM_COMMON_JSONLITE_H
