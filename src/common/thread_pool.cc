#include "common/thread_pool.h"

#include <algorithm>

#include "common/bitutils.h"
#include "common/logging.h"
#include "common/threadname.h"

namespace mixgemm
{

ThreadPool::ThreadPool(unsigned workers)
{
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] {
            setCurrentThreadName(strCat("worker", i));
            workerLoop();
        });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::drainTasks(std::unique_lock<std::mutex> &lock)
{
    while (fn_ && next_task_ < tasks_) {
        const unsigned task = next_task_++;
        const auto *fn = fn_;
        lock.unlock();
        std::exception_ptr error;
        try {
            (*fn)(task);
        } catch (...) {
            error = std::current_exception();
        }
        lock.lock();
        if (error && !error_)
            error_ = error;
        if (--unfinished_ == 0)
            done_cv_.notify_all();
    }
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        work_cv_.wait(lock, [this] {
            return stop_ || (fn_ && next_task_ < tasks_);
        });
        if (stop_)
            return;
        drainTasks(lock);
    }
}

void
ThreadPool::run(unsigned tasks, const std::function<void(unsigned)> &fn)
{
    if (tasks == 0)
        return;
    if (tasks == 1 || threads_.empty()) {
        for (unsigned t = 0; t < tasks; ++t)
            fn(t);
        return;
    }
    for (const auto &t : threads_)
        if (t.get_id() == std::this_thread::get_id())
            panic("ThreadPool::run is not reentrant");
    std::unique_lock<std::mutex> lock(mutex_);
    // Serialize concurrent top-level callers: wait for the pool to idle.
    done_cv_.wait(lock, [this] { return fn_ == nullptr; });
    fn_ = &fn;
    tasks_ = tasks;
    next_task_ = 0;
    unfinished_ = tasks;
    error_ = nullptr;
    work_cv_.notify_all();
    drainTasks(lock);
    done_cv_.wait(lock, [this] { return unfinished_ == 0; });
    fn_ = nullptr;
    done_cv_.notify_all(); // wake any caller queued behind this run
    if (error_) {
        auto error = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

unsigned
ThreadPool::hardwareConcurrency()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(hardwareConcurrency() - 1);
    return pool;
}

unsigned
resolveThreadCount(unsigned requested)
{
    return requested ? requested : ThreadPool::hardwareConcurrency();
}

void
parallelFor(uint64_t count, unsigned threads,
            const std::function<void(uint64_t, uint64_t)> &fn)
{
    if (count == 0)
        return;
    const uint64_t chunks =
        std::min<uint64_t>(resolveThreadCount(threads), count);
    if (chunks <= 1) {
        fn(0, count);
        return;
    }
    const uint64_t chunk = divCeil(count, chunks);
    ThreadPool::global().run(
        static_cast<unsigned>(chunks), [&](unsigned t) {
            const uint64_t begin = uint64_t{t} * chunk;
            const uint64_t end = std::min(begin + chunk, count);
            if (begin < end)
                fn(begin, end);
        });
}

} // namespace mixgemm
