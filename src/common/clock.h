/**
 * @file
 * Monotonic time source abstraction for the serving runtime.
 *
 * Everything that makes a *decision* from time — deadline checks,
 * degradation hysteresis, watchdog timeouts — reads a Clock instead of
 * std::chrono directly, so the same decision logic runs against real
 * wall time in production and against a VirtualClock in tests and the
 * virtual-time soak harness, where two runs with the same seed must
 * produce identical decision logs even though wall-clock timings vary.
 * Timestamps are nanoseconds from an arbitrary epoch; only differences
 * are meaningful.
 */

#ifndef MIXGEMM_COMMON_CLOCK_H
#define MIXGEMM_COMMON_CLOCK_H

#include <atomic>
#include <cstdint>

namespace mixgemm
{

/** Monotonic nanosecond time source. Implementations are thread-safe. */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Current time in nanoseconds; never decreases. */
    virtual uint64_t nowNs() const = 0;
};

/** std::chrono::steady_clock adapter. */
class MonotonicClock final : public Clock
{
  public:
    uint64_t nowNs() const override;

    /** Process-wide shared instance. */
    static MonotonicClock &instance();
};

/**
 * Manually advanced clock for deterministic tests and the virtual-time
 * soak driver. Time only moves when advanceNs()/advanceToNs() is
 * called, so every duration a decision sees is exactly what the driver
 * scripted.
 */
class VirtualClock final : public Clock
{
  public:
    explicit VirtualClock(uint64_t start_ns = 0) : now_ns_(start_ns) {}

    uint64_t nowNs() const override
    {
        return now_ns_.load(std::memory_order_acquire);
    }

    /** Move time forward by @p delta_ns; returns the new time. */
    uint64_t advanceNs(uint64_t delta_ns)
    {
        return now_ns_.fetch_add(delta_ns, std::memory_order_acq_rel) +
               delta_ns;
    }

    /** Move time forward to @p target_ns (no-op if already past it). */
    void advanceToNs(uint64_t target_ns)
    {
        uint64_t now = now_ns_.load(std::memory_order_relaxed);
        while (now < target_ns &&
               !now_ns_.compare_exchange_weak(now, target_ns,
                                              std::memory_order_acq_rel))
            ;
    }

  private:
    std::atomic<uint64_t> now_ns_;
};

} // namespace mixgemm

#endif // MIXGEMM_COMMON_CLOCK_H
