/**
 * @file
 * Bounded MPMC queue for the inference serving runtime.
 *
 * The admission queue of a server under overload must *reject* work,
 * not grow: an unbounded queue converts a traffic spike into unbounded
 * memory growth and unbounded latency for everything behind the spike.
 * This queue has a hard capacity; producers that find it full either
 * fail fast (tryPush) or displace the least-valuable queued entry
 * (pushEvicting — the serving layer's shed-lowest-priority-first
 * admission control), and consumers block until work or close().
 *
 * All operations take one mutex; at serving request granularity
 * (milliseconds of GEMM per entry) the lock is never contended enough
 * to matter, and a single critical section is what makes the
 * evict-or-reject decision atomic under concurrent producers.
 */

#ifndef MIXGEMM_COMMON_BOUNDED_QUEUE_H
#define MIXGEMM_COMMON_BOUNDED_QUEUE_H

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/logging.h"

namespace mixgemm
{

/** Outcome of a pushEvicting() admission attempt. */
enum class QueuePush
{
    kPushed,        ///< there was room
    kPushedEvicted, ///< full: a lower-value entry was displaced
    kRejected,      ///< full: nothing queued was worth displacing
    kClosed,        ///< queue is closed to producers
};

/** Bounded MPMC queue. T must be movable. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity) : capacity_(capacity)
    {
        if (capacity == 0)
            fatal("BoundedQueue: capacity must be at least 1");
    }

    /** Enqueue; false when full or closed. */
    bool tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        cv_.notify_one();
        return true;
    }

    /**
     * Enqueue, displacing the least-valuable entry when full.
     * @p retain_less orders entries by retention value (`a < b` means a
     * is less worth keeping). When full, the minimum entry is evicted
     * into @p evicted and replaced by @p item — but only if that
     * minimum is also less worth keeping than @p item itself;
     * otherwise the push is rejected and the queue is untouched.
     * @p item is consumed only on kPushed/kPushedEvicted; on
     * kRejected/kClosed the caller's object is left intact (so a
     * rejected request can still be answered through it).
     */
    template <typename Less>
    QueuePush pushEvicting(T &&item, Less retain_less,
                           std::optional<T> &evicted)
    {
        evicted.reset();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_)
                return QueuePush::kClosed;
            if (items_.size() < capacity_) {
                items_.push_back(std::move(item));
            } else {
                auto victim = std::min_element(items_.begin(),
                                               items_.end(), retain_less);
                if (!retain_less(*victim, item))
                    return QueuePush::kRejected;
                evicted = std::move(*victim);
                *victim = std::move(item);
                return QueuePush::kPushedEvicted;
            }
        }
        cv_.notify_one();
        return QueuePush::kPushed;
    }

    /**
     * Group-scoped variant of pushEvicting for multi-tenant admission:
     * the victim search only considers entries for which @p eligible
     * returns true (the pusher's own tenant sub-queue), so one tenant's
     * arrival can never displace another tenant's queued work — the
     * isolation invariant the fairness layer depends on. Eviction is
     * attempted when the queue is globally full *or* when the caller
     * reports the pusher's group at its own bound (@p at_group_bound);
     * in either case the least-valuable *eligible* entry is displaced
     * iff it is worth less than @p item, otherwise the push is
     * rejected. Consumption semantics match pushEvicting.
     */
    template <typename Less, typename Eligible>
    QueuePush pushEvictingWithin(T &&item, Less retain_less,
                                 Eligible eligible, bool at_group_bound,
                                 std::optional<T> &evicted)
    {
        evicted.reset();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_)
                return QueuePush::kClosed;
            if (!at_group_bound && items_.size() < capacity_) {
                items_.push_back(std::move(item));
            } else {
                auto victim = items_.end();
                for (auto it = items_.begin(); it != items_.end();
                     ++it) {
                    if (!eligible(*it))
                        continue;
                    if (victim == items_.end() ||
                        retain_less(*it, *victim))
                        victim = it;
                }
                if (victim == items_.end() ||
                    !retain_less(*victim, item))
                    return QueuePush::kRejected;
                evicted = std::move(*victim);
                *victim = std::move(item);
                return QueuePush::kPushedEvicted;
            }
        }
        cv_.notify_one();
        return QueuePush::kPushed;
    }

    /** Dequeue without blocking; nullopt when empty. */
    std::optional<T> tryPop()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return popLocked();
    }

    /**
     * Dequeue the *oldest* entry satisfying @p pred without blocking;
     * nullopt when no entry matches. FIFO order within the matching
     * subset is preserved — this is how a fair-share scheduler pops
     * the chosen tenant's head-of-line request out of the shared
     * storage.
     */
    template <typename Pred>
    std::optional<T> tryPopWhere(Pred pred)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = items_.begin(); it != items_.end(); ++it) {
            if (pred(*it)) {
                std::optional<T> item(std::move(*it));
                items_.erase(it);
                return item;
            }
        }
        return std::nullopt;
    }

    /**
     * Dequeue, blocking until an item arrives or the queue is closed
     * *and* drained; nullopt only on that closed-and-empty exit.
     */
    std::optional<T> popWait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
        return popLocked();
    }

    /**
     * Close the queue: subsequent pushes fail, blocked consumers wake,
     * and already-queued items remain poppable (drain-then-exit).
     */
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    bool closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    size_t capacity() const { return capacity_; }

  private:
    std::optional<T> popLocked()
    {
        if (items_.empty())
            return std::nullopt;
        std::optional<T> item(std::move(items_.front()));
        items_.pop_front();
        return item;
    }

    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace mixgemm

#endif // MIXGEMM_COMMON_BOUNDED_QUEUE_H
