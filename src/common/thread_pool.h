/**
 * @file
 * A small reusable worker pool for the parallel Mix-GEMM driver and the
 * runtime's elementwise passes.
 *
 * The pool mirrors how the paper scales across the Sargantana SoC's
 * cores (Section V): one persistent software thread per core, each
 * driving its own functional μ-engine instance. Work is handed out as a
 * dense task index space [0, tasks); the calling thread participates,
 * so a pool with W background workers executes up to W + 1 tasks
 * concurrently and a pool with zero workers degenerates to a serial
 * loop. Task-to-thread assignment is dynamic, which is safe because
 * every caller in this code base keys its state off the *task* index,
 * never off the executing thread.
 */

#ifndef MIXGEMM_COMMON_THREAD_POOL_H
#define MIXGEMM_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mixgemm
{

/** Persistent worker pool executing dense task index spaces. */
class ThreadPool
{
  public:
    /** Spawn @p workers background threads (0 is valid: serial pool). */
    explicit ThreadPool(unsigned workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Execute fn(t) for every t in [0, tasks) and block until all
     * complete. The calling thread claims tasks alongside the pool
     * threads. The first exception thrown by any task is rethrown here
     * after the remaining tasks finish. Not reentrant: @p fn must not
     * call run() on the same pool.
     */
    void run(unsigned tasks, const std::function<void(unsigned)> &fn);

    /** Number of background worker threads. */
    unsigned workerCount() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** std::thread::hardware_concurrency(), but never 0. */
    static unsigned hardwareConcurrency();

    /**
     * Process-wide pool sized so caller + workers equals the hardware
     * concurrency. Lazily constructed on first use.
     */
    static ThreadPool &global();

  private:
    void workerLoop();
    /** Claim and execute tasks; @p lock is held on entry and exit. */
    void drainTasks(std::unique_lock<std::mutex> &lock);

    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    const std::function<void(unsigned)> *fn_ = nullptr;
    unsigned tasks_ = 0;
    unsigned next_task_ = 0;
    unsigned unfinished_ = 0;
    std::exception_ptr error_;
    bool stop_ = false;
    std::vector<std::thread> threads_;
};

/**
 * Resolve a user-facing thread-count knob: 0 means "one per hardware
 * thread", anything else is taken literally.
 */
unsigned resolveThreadCount(unsigned requested);

/**
 * Split [0, count) into at most @p threads contiguous chunks and run
 * fn(begin, end) for each through the global pool. threads <= 1 (or
 * count <= 1) runs fn(0, count) inline. Chunk boundaries depend only on
 * (count, threads), so any per-chunk computation is deterministic.
 */
void parallelFor(uint64_t count, unsigned threads,
                 const std::function<void(uint64_t, uint64_t)> &fn);

} // namespace mixgemm

#endif // MIXGEMM_COMMON_THREAD_POOL_H
