#include "common/random.h"

#include <cmath>

namespace mixgemm
{

namespace
{

/** splitmix64 step, used only to expand the seed into generator state. */
uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    // Modulo bias is negligible for the narrow ranges used here.
    return lo + static_cast<int64_t>(next() % span);
}

double
Rng::uniformReal()
{
    // 53 random mantissa bits -> uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniformReal();
}

double
Rng::normal()
{
    if (have_cached_normal_) {
        have_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = uniformReal();
    double u2 = uniformReal();
    if (u1 < 1e-300)
        u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    cached_normal_ = r * std::sin(2.0 * M_PI * u2);
    have_cached_normal_ = true;
    return r * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

} // namespace mixgemm
