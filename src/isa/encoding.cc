#include "isa/encoding.h"

#include "common/bitutils.h"
#include "common/logging.h"

namespace mixgemm
{

namespace
{

const char *
mnemonic(BsFunct3 f3)
{
    switch (f3) {
      case BsFunct3::kSet: return "bs.set";
      case BsFunct3::kIp: return "bs.ip";
      case BsFunct3::kGet: return "bs.get";
    }
    return "bs.?";
}

} // namespace

uint32_t
encodeBsInstruction(const BsInstruction &insn)
{
    if (insn.rd > 31 || insn.rs1 > 31 || insn.rs2 > 31)
        fatal("register id out of range in bs.* encoding");
    uint32_t word = kCustom0Opcode;
    word |= static_cast<uint32_t>(insn.rd) << 7;
    word |= static_cast<uint32_t>(insn.funct3) << 12;
    word |= static_cast<uint32_t>(insn.rs1) << 15;
    word |= static_cast<uint32_t>(insn.rs2) << 20;
    // funct7 = 0 for all three instructions.
    return word;
}

std::optional<BsInstruction>
decodeBsInstruction(uint32_t word)
{
    if ((word & 0x7f) != kCustom0Opcode)
        return std::nullopt;
    const uint32_t funct3 = (word >> 12) & 0x7;
    const uint32_t funct7 = (word >> 25) & 0x7f;
    if (funct3 > 2 || funct7 != 0)
        return std::nullopt;
    BsInstruction insn;
    insn.funct3 = static_cast<BsFunct3>(funct3);
    insn.rd = (word >> 7) & 0x1f;
    insn.rs1 = (word >> 15) & 0x1f;
    insn.rs2 = (word >> 20) & 0x1f;
    return insn;
}

std::string
disassembleBs(const BsInstruction &insn)
{
    return strCat(mnemonic(insn.funct3), " x", unsigned(insn.rd), ", x",
                  unsigned(insn.rs1), ", x", unsigned(insn.rs2));
}

uint64_t
packBsSetConfig(const BsSetConfig &config)
{
    if (config.bwa < 1 || config.bwa > 8 || config.bwb < 1 || config.bwb > 8)
        fatal("bs.set bitwidths must be in [1, 8]");
    if (config.cluster_size < 1 || config.cluster_size > 15)
        fatal("bs.set cluster size must be in [1, 15]");
    if (config.cw < 1 || config.cw > 63)
        fatal("bs.set clustering width must be in [1, 63]");
    uint64_t w = 0;
    w |= uint64_t{static_cast<uint8_t>(config.bwa - 1)} & 0x7;
    w |= (uint64_t{static_cast<uint8_t>(config.bwb - 1)} & 0x7) << 3;
    w |= uint64_t{config.a_signed} << 6;
    w |= uint64_t{config.b_signed} << 7;
    w |= (uint64_t{config.cluster_size} & 0xf) << 8;
    w |= (uint64_t{config.cw} & 0x3f) << 12;
    w |= (uint64_t{config.ip_length} & 0xff) << 18;
    w |= (uint64_t{config.slice_lsb} & 0x7f) << 26;
    w |= (uint64_t{config.slice_msb} & 0x7f) << 33;
    return w;
}

BsSetConfig
unpackBsSetConfig(uint64_t word)
{
    BsSetConfig c;
    c.bwa = static_cast<uint8_t>((word & 0x7) + 1);
    c.bwb = static_cast<uint8_t>(((word >> 3) & 0x7) + 1);
    c.a_signed = (word >> 6) & 1;
    c.b_signed = (word >> 7) & 1;
    c.cluster_size = static_cast<uint8_t>((word >> 8) & 0xf);
    c.cw = static_cast<uint8_t>((word >> 12) & 0x3f);
    c.ip_length = static_cast<uint16_t>((word >> 18) & 0xff);
    c.slice_lsb = static_cast<uint8_t>((word >> 26) & 0x7f);
    c.slice_msb = static_cast<uint8_t>((word >> 33) & 0x7f);
    return c;
}

} // namespace mixgemm
