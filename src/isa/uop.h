/**
 * @file
 * Micro-operation (μ-op) intermediate representation.
 *
 * The SoC simulator (src/sim) is trace-driven: the GEMM library's timing
 * backend emits a stream of μ-ops describing the dynamic instruction
 * sequence a compiled μ-kernel would execute on the RV64 core, and the
 * core model replays it cycle by cycle. Each μ-op carries its register
 * dependencies so the in-order scoreboard can model load-use and
 * multi-cycle-FU stalls, and loads/stores carry the effective address so
 * the cache hierarchy sees the real blocked access pattern.
 */

#ifndef MIXGEMM_ISA_UOP_H
#define MIXGEMM_ISA_UOP_H

#include <cstdint>
#include <string>
#include <vector>

namespace mixgemm
{

/** Dynamic instruction classes recognized by the core model. */
enum class UopKind : uint8_t
{
    kAlu,      ///< 1-cycle integer op (add/addi/bookkeeping)
    kMul,      ///< 64-bit integer multiply on the shared multiplier
    kFadd,     ///< floating-point add (DGEMM baseline)
    kFmul,     ///< floating-point multiply (DGEMM baseline)
    kLoad,     ///< memory load (address + size attached)
    kStore,    ///< memory store (address + size attached)
    kBranch,   ///< conditional branch / loop back-edge
    kBsSet,    ///< custom bs.set: configure the μ-engine Control Unit
    kBsIp,     ///< custom bs.ip: push a μ-vector pair into Source Buffers
    kBsGet,    ///< custom bs.get: read one AccMem slot
    kNop,      ///< filler (e.g., alignment)
};

/** Register id; integer regs 0..31, FP regs 32..63. */
using RegId = uint8_t;

/** Sentinel meaning "no register operand". */
constexpr RegId kNoReg = 0xff;

/** First floating-point register id. */
constexpr RegId kFpRegBase = 32;

/** One dynamic micro-operation. */
struct Uop
{
    UopKind kind = UopKind::kNop;
    RegId dst = kNoReg;
    RegId src1 = kNoReg;
    RegId src2 = kNoReg;
    /** Effective byte address (loads/stores only). */
    uint64_t addr = 0;
    /** Access size in bytes (loads/stores only). */
    uint8_t size = 0;
    /** For kBsGet: AccMem slot index being read. */
    uint16_t acc_slot = 0;

    /** Convenience constructors. */
    static Uop alu(RegId dst, RegId s1 = kNoReg, RegId s2 = kNoReg);
    static Uop mul(RegId dst, RegId s1, RegId s2);
    static Uop fmul(RegId dst, RegId s1, RegId s2);
    static Uop fadd(RegId dst, RegId s1, RegId s2);
    static Uop load(RegId dst, uint64_t addr, uint8_t size);
    static Uop store(RegId src, uint64_t addr, uint8_t size);
    static Uop branch();
    static Uop bsSet();
    static Uop bsIp(RegId a, RegId b);
    static Uop bsGet(RegId dst, uint16_t slot);

    /** Human-readable rendering for traces and test failures. */
    std::string toString() const;
};

/** A dynamic μ-op trace (one basic block or one whole kernel). */
using UopTrace = std::vector<Uop>;

/** Name of a μ-op kind ("alu", "bs.ip", ...). */
const char *uopKindName(UopKind kind);

} // namespace mixgemm

#endif // MIXGEMM_ISA_UOP_H
