/**
 * @file
 * RISC-V encodings for the three Mix-GEMM custom instructions.
 *
 * The paper extends RV64G with three single-cycle R-type instructions
 * hosted on the custom-0 major opcode:
 *
 *   bs.set rd, rs1, rs2   -- configure the μ-engine Control Unit
 *   bs.ip  rd, rs1, rs2   -- issue a μ-vector pair (rs1 = A, rs2 = B)
 *   bs.get rd, rs1, rs2   -- read AccMem slot (rs1 holds the slot index)
 *
 * This module provides bit-exact encode/decode/disassemble plus the layout
 * of the 64-bit configuration word carried by bs.set, mirroring the
 * Control Unit state listed in Section III-B: operand data sizes,
 * signedness, input-cluster size, clustering width, inner-product length,
 * and the multiplier-output slice bounds.
 */

#ifndef MIXGEMM_ISA_ENCODING_H
#define MIXGEMM_ISA_ENCODING_H

#include <cstdint>
#include <optional>
#include <string>

namespace mixgemm
{

/** Major opcode used by the extension (RISC-V custom-0). */
constexpr uint32_t kCustom0Opcode = 0x0b;

/** funct3 selectors for the three instructions. */
enum class BsFunct3 : uint8_t
{
    kSet = 0,
    kIp = 1,
    kGet = 2,
};

/** A decoded R-type custom instruction. */
struct BsInstruction
{
    BsFunct3 funct3 = BsFunct3::kSet;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
};

/** Encode a custom instruction into its 32-bit RISC-V word. */
uint32_t encodeBsInstruction(const BsInstruction &insn);

/**
 * Decode a 32-bit word; returns nullopt if the word is not one of the
 * three bs.* instructions (wrong opcode, funct3, or funct7).
 */
std::optional<BsInstruction> decodeBsInstruction(uint32_t word);

/** Render "bs.ip x10, x11, x12" style assembly for a decoded word. */
std::string disassembleBs(const BsInstruction &insn);

/**
 * Layout of the bs.set configuration word (passed in rs1).
 *
 * bits [2:0]   bwa - 1      A-operand element bitwidth minus one (1..7)
 * bits [5:3]   bwb - 1      B-operand element bitwidth minus one
 * bit  [6]     a signed
 * bit  [7]     b signed
 * bits [11:8]  input-cluster size (1..15 elements)
 * bits [17:12] clustering width cw (1..63 bits)
 * bits [25:18] inner-product length (elements per accumulation group)
 * bits [32:26] slice lsb (Eq. 6)
 * bits [39:33] slice msb (Eq. 7)
 */
struct BsSetConfig
{
    uint8_t bwa = 8;
    uint8_t bwb = 8;
    bool a_signed = true;
    bool b_signed = true;
    uint8_t cluster_size = 3;
    uint8_t cw = 20;
    uint16_t ip_length = 0;
    uint8_t slice_lsb = 0;
    uint8_t slice_msb = 0;
};

/** Pack a configuration into the 64-bit bs.set operand word. */
uint64_t packBsSetConfig(const BsSetConfig &config);

/** Unpack a bs.set operand word. Inverse of packBsSetConfig. */
BsSetConfig unpackBsSetConfig(uint64_t word);

} // namespace mixgemm

#endif // MIXGEMM_ISA_ENCODING_H
