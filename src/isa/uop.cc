#include "isa/uop.h"

#include <sstream>

namespace mixgemm
{

Uop
Uop::alu(RegId dst, RegId s1, RegId s2)
{
    Uop u;
    u.kind = UopKind::kAlu;
    u.dst = dst;
    u.src1 = s1;
    u.src2 = s2;
    return u;
}

Uop
Uop::mul(RegId dst, RegId s1, RegId s2)
{
    Uop u;
    u.kind = UopKind::kMul;
    u.dst = dst;
    u.src1 = s1;
    u.src2 = s2;
    return u;
}

Uop
Uop::fmul(RegId dst, RegId s1, RegId s2)
{
    Uop u;
    u.kind = UopKind::kFmul;
    u.dst = dst;
    u.src1 = s1;
    u.src2 = s2;
    return u;
}

Uop
Uop::fadd(RegId dst, RegId s1, RegId s2)
{
    Uop u;
    u.kind = UopKind::kFadd;
    u.dst = dst;
    u.src1 = s1;
    u.src2 = s2;
    return u;
}

Uop
Uop::load(RegId dst, uint64_t addr, uint8_t size)
{
    Uop u;
    u.kind = UopKind::kLoad;
    u.dst = dst;
    u.addr = addr;
    u.size = size;
    return u;
}

Uop
Uop::store(RegId src, uint64_t addr, uint8_t size)
{
    Uop u;
    u.kind = UopKind::kStore;
    u.src1 = src;
    u.addr = addr;
    u.size = size;
    return u;
}

Uop
Uop::branch()
{
    Uop u;
    u.kind = UopKind::kBranch;
    return u;
}

Uop
Uop::bsSet()
{
    Uop u;
    u.kind = UopKind::kBsSet;
    return u;
}

Uop
Uop::bsIp(RegId a, RegId b)
{
    Uop u;
    u.kind = UopKind::kBsIp;
    u.src1 = a;
    u.src2 = b;
    return u;
}

Uop
Uop::bsGet(RegId dst, uint16_t slot)
{
    Uop u;
    u.kind = UopKind::kBsGet;
    u.dst = dst;
    u.acc_slot = slot;
    return u;
}

const char *
uopKindName(UopKind kind)
{
    switch (kind) {
      case UopKind::kAlu: return "alu";
      case UopKind::kMul: return "mul";
      case UopKind::kFadd: return "fadd";
      case UopKind::kFmul: return "fmul";
      case UopKind::kLoad: return "load";
      case UopKind::kStore: return "store";
      case UopKind::kBranch: return "branch";
      case UopKind::kBsSet: return "bs.set";
      case UopKind::kBsIp: return "bs.ip";
      case UopKind::kBsGet: return "bs.get";
      case UopKind::kNop: return "nop";
    }
    return "?";
}

std::string
Uop::toString() const
{
    std::ostringstream os;
    os << uopKindName(kind);
    auto reg = [](RegId r) {
        if (r == kNoReg)
            return std::string("-");
        if (r >= kFpRegBase)
            return "f" + std::to_string(r - kFpRegBase);
        return "x" + std::to_string(r);
    };
    os << " dst=" << reg(dst) << " src=" << reg(src1) << "," << reg(src2);
    if (kind == UopKind::kLoad || kind == UopKind::kStore)
        os << " addr=0x" << std::hex << addr << std::dec
           << " size=" << unsigned(size);
    if (kind == UopKind::kBsGet)
        os << " slot=" << acc_slot;
    return os.str();
}

} // namespace mixgemm
