#include "dnn/mixed_precision.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/logging.h"
#include "dnn/network_timing.h"

namespace mixgemm
{

namespace
{

/** Interpolated per-config loss contribution factor (points). */
double
configLoss(const AccuracyDatabase &db, const std::string &model,
           const DataSizeConfig &cfg)
{
    return 0.55 * db.diagonalLoss(model, cfg.bwa) +
           0.45 * db.diagonalLoss(model, cfg.bwb);
}

/** Sensitivity weight of each layer (MAC share over tunable layers). */
std::vector<double>
sensitivityWeights(const ModelSpec &model, bool first_last_8bit)
{
    std::vector<double> weights(model.layers.size(), 0.0);
    double total = 0.0;
    for (size_t i = 0; i < model.layers.size(); ++i) {
        const auto &l = model.layers[i];
        if (first_last_8bit && (l.is_first || l.is_last))
            continue;
        weights[i] = static_cast<double>(l.macs());
        total += weights[i];
    }
    if (total > 0.0)
        for (auto &w : weights)
            w /= total;
    return weights;
}

} // namespace

double
estimatePlanLoss(const ModelSpec &model,
                 const std::vector<DataSizeConfig> &configs,
                 const AccuracyDatabase &db)
{
    if (configs.size() != model.layers.size())
        fatal("estimatePlanLoss: one config per layer required");
    const auto weights = sensitivityWeights(model, false);
    double loss = 0.0;
    for (size_t i = 0; i < configs.size(); ++i)
        loss += weights[i] * configLoss(db, model.name, configs[i]);
    return std::max(loss, 0.0);
}

uint64_t
planCycles(const ModelSpec &model, const GemmTimingModel &timing,
           const std::vector<DataSizeConfig> &configs)
{
    if (configs.size() != model.layers.size())
        fatal("planCycles: one config per layer required");
    uint64_t cycles = 0;
    for (size_t i = 0; i < configs.size(); ++i)
        cycles += layerCycles(model.layers[i], timing, &configs[i]);
    return cycles;
}

MixedPrecisionPlan
optimizeMixedPrecision(const ModelSpec &model,
                       const GemmTimingModel &timing,
                       const AccuracyDatabase &db,
                       const MixedPrecisionOptions &options)
{
    if (options.min_bits < 2 || options.min_bits > 8)
        fatal("optimizeMixedPrecision: min_bits must be in [2, 8]");

    const size_t n_layers = model.layers.size();
    std::vector<DataSizeConfig> configs(n_layers,
                                        DataSizeConfig{8, 8, true, true});
    // Weights match estimatePlanLoss (normalized over all layers);
    // pinned layers simply never move.
    const auto weights = sensitivityWeights(model, false);

    auto tunable = [&](size_t i) {
        return !(options.first_last_8bit && (model.layers[i].is_first ||
                                             model.layers[i].is_last));
    };

    // Cache per-layer cycles per candidate config (the greedy probes
    // the same (layer, config) pairs across iterations).
    std::map<std::pair<size_t, std::pair<unsigned, unsigned>>, uint64_t>
        cycle_cache;
    auto cycles_of = [&](size_t i, const DataSizeConfig &cfg) {
        const auto key = std::make_pair(
            i, std::make_pair(cfg.bwa, cfg.bwb));
        const auto it = cycle_cache.find(key);
        if (it != cycle_cache.end())
            return it->second;
        const uint64_t c = layerCycles(model.layers[i], timing, &cfg);
        cycle_cache.emplace(key, c);
        return c;
    };

    std::vector<uint64_t> cur_cycles(n_layers);
    for (size_t i = 0; i < n_layers; ++i)
        cur_cycles[i] = cycles_of(i, configs[i]);

    // Track the raw (unclamped) weighted loss; budget checks use the
    // clamped value so a slightly-negative a8-w8 baseline cannot
    // inflate the budget.
    double loss = 0.0;
    for (size_t i = 0; i < n_layers; ++i)
        loss += weights[i] * configLoss(db, model.name, configs[i]);

    while (true) {
        // Candidate moves: lower a or w of one tunable layer by 1 bit.
        double best_score = 0.0;
        size_t best_layer = n_layers;
        DataSizeConfig best_cfg;
        uint64_t best_cycles = 0;
        double best_dloss = 0.0;
        for (size_t i = 0; i < n_layers; ++i) {
            if (!tunable(i))
                continue;
            // Candidate moves: any configuration dominated by the
            // current one (single-bit steps often sit on throughput
            // plateaus — e.g. a8 -> a7 keeps the 3 MAC/cycle cluster —
            // so the greedy must be able to jump across them).
            for (unsigned a = options.min_bits; a <= configs[i].bwa;
                 ++a) {
                for (unsigned w = options.min_bits;
                     w <= configs[i].bwb; ++w) {
                    if (a == configs[i].bwa && w == configs[i].bwb)
                        continue;
                    DataSizeConfig cand = configs[i];
                    cand.bwa = a;
                    cand.bwb = w;
                    const double dloss =
                        weights[i] *
                        (configLoss(db, model.name, cand) -
                         configLoss(db, model.name, configs[i]));
                    if (std::max(loss + dloss, 0.0) > options.max_loss)
                        continue;
                    const uint64_t new_cycles = cycles_of(i, cand);
                    if (new_cycles >= cur_cycles[i])
                        continue; // no speed gain; never take it
                    const double gain =
                        static_cast<double>(cur_cycles[i] -
                                            new_cycles);
                    const double score = gain / std::max(dloss, 1e-9);
                    if (score > best_score) {
                        best_score = score;
                        best_layer = i;
                        best_cfg = cand;
                        best_cycles = new_cycles;
                        best_dloss = dloss;
                    }
                }
            }
        }
        if (best_layer == n_layers)
            break;
        configs[best_layer] = best_cfg;
        cur_cycles[best_layer] = best_cycles;
        loss += best_dloss;
    }

    MixedPrecisionPlan plan;
    plan.model = model.name;
    plan.layer_configs = configs;
    plan.total_cycles = 0;
    for (const uint64_t c : cur_cycles)
        plan.total_cycles += c;
    plan.gops = 2.0 * static_cast<double>(model.totalMacs()) *
                timing.soc().freq_ghz /
                static_cast<double>(plan.total_cycles);
    plan.estimated_loss = estimatePlanLoss(model, configs, db);
    plan.estimated_top1 = db.fp32Top1(model.name) - plan.estimated_loss;
    return plan;
}

} // namespace mixgemm
