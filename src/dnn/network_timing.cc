#include "dnn/network_timing.h"

#include <algorithm>

#include "common/logging.h"

namespace mixgemm
{

uint64_t
layerCycles(const LayerSpec &layer, const GemmTimingModel &timing,
            const DataSizeConfig *config, unsigned batch)
{
    // Grouped (depthwise) convolutions are priced as one channel-wide
    // GEMM rather than `groups` degenerate n=1 GEMMs: production
    // kernels vectorize depthwise layers across channels, so their
    // throughput tracks the dense-GEMM rate at the same k extent (the
    // μ-vector padding cost still applies).
    const uint64_t m = layer.conv.gemmM() * std::max(1u, batch);
    const uint64_t k = layer.conv.gemmK();
    const uint64_t n =
        layer.conv.groups > 1 ? layer.conv.out_c : layer.conv.gemmN();
    if (config) {
        const auto geom = geometryForK(computeBsGeometry(*config), k);
        return timing.mixGemm(m, n, k, geom).cycles;
    }
    return timing.dgemm(m, n, k).cycles;
}

namespace
{

NetworkTiming
timeNetwork(const ModelSpec &model, const GemmTimingModel &timing,
            const DataSizeConfig *config, bool first_last_8bit,
            unsigned batch)
{
    if (batch == 0)
        fatal("timeNetwork: batch must be positive");
    NetworkTiming result;
    result.model = model.name;
    result.config = config ? config->name() : "fp64";

    for (const auto &layer : model.layers) {
        uint64_t cycles = 0;
        if (config) {
            DataSizeConfig layer_cfg = *config;
            if (first_last_8bit && (layer.is_first || layer.is_last)) {
                layer_cfg.bwa = 8;
                layer_cfg.bwb = 8;
            }
            cycles = layerCycles(layer, timing, &layer_cfg, batch);
        } else {
            cycles = layerCycles(layer, timing, nullptr, batch);
        }
        const uint64_t macs = layer.macs() * batch;
        const double gops =
            2.0 * macs * timing.soc().freq_ghz / cycles;
        result.layers.push_back({layer.name, macs, cycles, gops});
        result.total_cycles += cycles;
    }

    result.gops = 2.0 * model.totalMacs() * batch *
                  timing.soc().freq_ghz /
                  static_cast<double>(result.total_cycles);
    result.latency_ms = static_cast<double>(result.total_cycles) /
                        (timing.soc().freq_ghz * 1e6);
    return result;
}

} // namespace

NetworkTiming
timeNetworkMixGemm(const ModelSpec &model, const GemmTimingModel &timing,
                   const DataSizeConfig &config, bool first_last_8bit,
                   unsigned batch)
{
    return timeNetwork(model, timing, &config, first_last_8bit, batch);
}

NetworkTiming
timeNetworkDgemm(const ModelSpec &model, const GemmTimingModel &timing)
{
    return timeNetwork(model, timing, nullptr, true, 1);
}

} // namespace mixgemm
