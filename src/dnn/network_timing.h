/**
 * @file
 * End-to-end CNN inference timing (Fig. 7, Table III rows).
 *
 * Each layer is lowered to its im2row GEMM shape (grouped convolutions
 * run one GEMM per group) and priced by the hybrid GEMM timing model.
 * Following Section IV-A, the first and last layers stay at 8-bit while
 * the inner layers use the selected data-size configuration; GOPS is
 * reported over the network's total operations at the SoC frequency, as
 * the paper does ("accounting for the execution time spent on each
 * convolutional layer").
 */

#ifndef MIXGEMM_DNN_NETWORK_TIMING_H
#define MIXGEMM_DNN_NETWORK_TIMING_H

#include <string>
#include <vector>

#include "dnn/models.h"
#include "sim/gemm_timing.h"

namespace mixgemm
{

/** Timing of one layer. */
struct LayerTiming
{
    std::string name;
    uint64_t macs = 0;
    uint64_t cycles = 0;
    double gops = 0.0;
};

/** Timing of a full network at one data-size configuration. */
struct NetworkTiming
{
    std::string model;
    std::string config;
    uint64_t total_cycles = 0;
    double gops = 0.0;         ///< total ops / execution time
    double latency_ms = 0.0;   ///< single-image latency
    std::vector<LayerTiming> layers;
};

/**
 * Price a network on Mix-GEMM.
 *
 * @param model      layer table
 * @param timing     GEMM timing model (carries the SoC)
 * @param config     inner-layer data sizes
 * @param first_last_8bit keep first/last layers at a8-w8 (paper policy)
 * @param batch      images per inference; im2row stacks the batch into
 *                   the GEMM m dimension (Section II-A), which mainly
 *                   amortizes the m = 1 fully-connected layers
 */
NetworkTiming timeNetworkMixGemm(const ModelSpec &model,
                                 const GemmTimingModel &timing,
                                 const DataSizeConfig &config,
                                 bool first_last_8bit = true,
                                 unsigned batch = 1);

/** Price a network on the BLIS DGEMM baseline (same SoC). */
NetworkTiming timeNetworkDgemm(const ModelSpec &model,
                               const GemmTimingModel &timing);

/**
 * Cycles of one layer at one configuration (grouped convolutions are
 * priced channel-wide; pass nullptr for the DGEMM baseline).
 */
uint64_t layerCycles(const LayerSpec &layer, const GemmTimingModel &timing,
                     const DataSizeConfig *config, unsigned batch = 1);

} // namespace mixgemm

#endif // MIXGEMM_DNN_NETWORK_TIMING_H
