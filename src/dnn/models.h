/**
 * @file
 * Layer tables of the six CNNs the paper evaluates (Section IV):
 * AlexNet, VGG-16, ResNet-18, MobileNet-V1, RegNet-X-400MF, and
 * EfficientNet-B0, all at 224x224 input. Every convolutional and
 * fully-connected layer is described by a ConvSpec (FC layers are 1x1
 * convolutions on a 1x1 spatial extent), which the GEMM lowering of
 * tensor/conv.h turns into matrix shapes. Total MAC counts are tested
 * against the published figures for each network.
 */

#ifndef MIXGEMM_DNN_MODELS_H
#define MIXGEMM_DNN_MODELS_H

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/conv.h"

namespace mixgemm
{

/** One GEMM-lowered layer of a CNN. */
struct LayerSpec
{
    std::string name;
    ConvSpec conv;
    bool is_first = false; ///< kept at 8-bit during quantization
    bool is_last = false;  ///< kept at 8-bit during quantization

    uint64_t macs() const { return conv.macs(); }
};

/** A whole network. */
struct ModelSpec
{
    std::string name;
    std::vector<LayerSpec> layers;

    /** Total multiply-accumulates for one 224x224 image. */
    uint64_t totalMacs() const;
    /** Total operations (2 * MACs). */
    uint64_t totalOps() const { return 2 * totalMacs(); }
};

ModelSpec alexNet();
ModelSpec vgg16();
ModelSpec resNet18();
ModelSpec mobileNetV1();
ModelSpec regNetX400MF();
ModelSpec efficientNetB0();

/** All six evaluation networks, in the paper's order. */
std::vector<ModelSpec> allModels();

} // namespace mixgemm

#endif // MIXGEMM_DNN_MODELS_H
