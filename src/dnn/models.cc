#include "dnn/models.h"

#include "common/logging.h"

namespace mixgemm
{

namespace
{

/** Incremental network builder tracking the spatial extent. */
class Builder
{
  public:
    Builder(std::string name, unsigned input_size)
        : size_(input_size)
    {
        model_.name = std::move(name);
    }

    /** Append a convolution; updates the running spatial size. */
    Builder &
    conv(const std::string &name, unsigned in_c, unsigned out_c,
         unsigned k, unsigned stride = 1, unsigned pad = 0,
         unsigned groups = 1)
    {
        ConvSpec s;
        s.in_c = in_c;
        s.in_h = s.in_w = size_;
        s.out_c = out_c;
        s.kh = s.kw = k;
        s.stride = stride;
        s.pad = pad;
        s.groups = groups;
        s.validate();
        model_.layers.push_back({name, s, false, false});
        size_ = s.outH();
        return *this;
    }

    /** Append a fully-connected layer (1x1 conv on 1x1 spatial). */
    Builder &
    fc(const std::string &name, unsigned in, unsigned out)
    {
        ConvSpec s;
        s.in_c = in;
        s.in_h = s.in_w = 1;
        s.out_c = out;
        s.kh = s.kw = 1;
        model_.layers.push_back({name, s, false, false});
        return *this;
    }

    /** Non-GEMM spatial reduction (pooling); updates the extent only. */
    Builder &
    pool(unsigned out_size)
    {
        size_ = out_size;
        return *this;
    }

    unsigned size() const { return size_; }

    ModelSpec
    finish()
    {
        if (model_.layers.empty())
            fatal("Builder: model has no layers");
        model_.layers.front().is_first = true;
        model_.layers.back().is_last = true;
        return std::move(model_);
    }

  private:
    ModelSpec model_;
    unsigned size_;
};

} // namespace

uint64_t
ModelSpec::totalMacs() const
{
    uint64_t total = 0;
    for (const auto &l : layers)
        total += l.macs();
    return total;
}

ModelSpec
alexNet()
{
    Builder b("AlexNet", 224);
    b.conv("conv1", 3, 64, 11, 4, 2);
    b.pool(27);
    b.conv("conv2", 64, 192, 5, 1, 2);
    b.pool(13);
    b.conv("conv3", 192, 384, 3, 1, 1);
    b.conv("conv4", 384, 256, 3, 1, 1);
    b.conv("conv5", 256, 256, 3, 1, 1);
    b.fc("fc6", 256 * 6 * 6, 4096);
    b.fc("fc7", 4096, 4096);
    b.fc("fc8", 4096, 1000);
    return b.finish();
}

ModelSpec
vgg16()
{
    Builder b("VGG-16", 224);
    b.conv("conv1_1", 3, 64, 3, 1, 1).conv("conv1_2", 64, 64, 3, 1, 1);
    b.pool(112);
    b.conv("conv2_1", 64, 128, 3, 1, 1)
        .conv("conv2_2", 128, 128, 3, 1, 1);
    b.pool(56);
    b.conv("conv3_1", 128, 256, 3, 1, 1)
        .conv("conv3_2", 256, 256, 3, 1, 1)
        .conv("conv3_3", 256, 256, 3, 1, 1);
    b.pool(28);
    b.conv("conv4_1", 256, 512, 3, 1, 1)
        .conv("conv4_2", 512, 512, 3, 1, 1)
        .conv("conv4_3", 512, 512, 3, 1, 1);
    b.pool(14);
    b.conv("conv5_1", 512, 512, 3, 1, 1)
        .conv("conv5_2", 512, 512, 3, 1, 1)
        .conv("conv5_3", 512, 512, 3, 1, 1);
    b.pool(7);
    b.fc("fc6", 512 * 7 * 7, 4096);
    b.fc("fc7", 4096, 4096);
    b.fc("fc8", 4096, 1000);
    return b.finish();
}

ModelSpec
resNet18()
{
    Builder b("ResNet-18", 224);
    b.conv("conv1", 3, 64, 7, 2, 3);
    b.pool(56);
    // layer1: two basic blocks at 56x56, 64 channels.
    for (int blk = 1; blk <= 2; ++blk) {
        b.conv(strCat("layer1.", blk, ".conv1"), 64, 64, 3, 1, 1);
        b.conv(strCat("layer1.", blk, ".conv2"), 64, 64, 3, 1, 1);
    }
    // layer2-4: first block downsamples with a strided conv plus a 1x1
    // projection shortcut.
    const unsigned widths[3] = {128, 256, 512};
    for (int stage = 0; stage < 3; ++stage) {
        const unsigned w = widths[stage];
        const unsigned w_in = w / 2;
        b.conv(strCat("layer", stage + 2, ".1.conv1"), w_in, w, 3, 2, 1);
        b.conv(strCat("layer", stage + 2, ".1.conv2"), w, w, 3, 1, 1);
        // Projection shortcut, evaluated at the stage input resolution
        // (the builder's spatial state is rewound for its emission).
        b.pool(b.size() * 2);
        b.conv(strCat("layer", stage + 2, ".1.downsample"), w_in, w, 1,
               2, 0);
        b.conv(strCat("layer", stage + 2, ".2.conv1"), w, w, 3, 1, 1);
        b.conv(strCat("layer", stage + 2, ".2.conv2"), w, w, 3, 1, 1);
    }
    b.pool(1);
    b.fc("fc", 512, 1000);
    return b.finish();
}

ModelSpec
mobileNetV1()
{
    Builder b("MobileNet-V1", 224);
    b.conv("conv1", 3, 32, 3, 2, 1);
    unsigned in_c = 32;
    // (out_c, stride) per depthwise-separable block.
    const std::pair<unsigned, unsigned> blocks[] = {
        {64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},
        {512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
        {512, 1}, {1024, 2}, {1024, 1},
    };
    int idx = 2;
    for (const auto &[out_c, stride] : blocks) {
        b.conv(strCat("conv", idx, ".dw"), in_c, in_c, 3, stride, 1,
               in_c);
        b.conv(strCat("conv", idx, ".pw"), in_c, out_c, 1, 1, 0);
        in_c = out_c;
        ++idx;
    }
    b.pool(1);
    b.fc("fc", 1024, 1000);
    return b.finish();
}

ModelSpec
regNetX400MF()
{
    Builder b("RegNet-X-400MF", 224);
    b.conv("stem", 3, 32, 3, 2, 1);
    // Stages: depth, width, group width 16, bottleneck ratio 1.
    const struct
    {
        unsigned depth;
        unsigned width;
    } stages[] = {{1, 32}, {2, 64}, {7, 160}, {12, 400}};
    unsigned in_c = 32;
    for (int s = 0; s < 4; ++s) {
        const unsigned w = stages[s].width;
        for (unsigned d = 0; d < stages[s].depth; ++d) {
            const bool first = d == 0;
            const unsigned stride = first ? 2 : 1;
            const std::string p = strCat("stage", s + 1, ".b", d + 1);
            b.conv(p + ".conv1", first ? in_c : w, w, 1, 1, 0);
            b.conv(p + ".conv2", w, w, 3, stride, 1, w / 16);
            b.conv(p + ".conv3", w, w, 1, 1, 0);
            if (first) {
                // Projection shortcut at the stage input resolution.
                b.pool(b.size() * 2);
                b.conv(p + ".proj", in_c, w, 1, 2, 0);
            }
        }
        in_c = w;
    }
    b.pool(1);
    b.fc("fc", 400, 1000);
    return b.finish();
}

ModelSpec
efficientNetB0()
{
    Builder b("EfficientNet-B0", 224);
    b.conv("stem", 3, 32, 3, 2, 1);
    unsigned in_c = 32;
    // MBConv stages: expansion, kernel, out channels, stride, repeats.
    const struct
    {
        unsigned expand;
        unsigned k;
        unsigned out_c;
        unsigned stride;
        unsigned repeats;
    } stages[] = {
        {1, 3, 16, 1, 1},  {6, 3, 24, 2, 2},  {6, 5, 40, 2, 2},
        {6, 3, 80, 2, 3},  {6, 5, 112, 1, 3}, {6, 5, 192, 2, 4},
        {6, 3, 320, 1, 1},
    };
    int blk = 1;
    for (const auto &st : stages) {
        for (unsigned r = 0; r < st.repeats; ++r, ++blk) {
            const unsigned stride = r == 0 ? st.stride : 1;
            const unsigned mid = in_c * st.expand;
            const std::string p = strCat("mb", blk);
            if (st.expand != 1)
                b.conv(p + ".expand", in_c, mid, 1, 1, 0);
            b.conv(p + ".dw", mid, mid, st.k, stride, st.k / 2, mid);
            // Squeeze-and-excitation: two 1x1 convs on pooled (1x1)
            // activations; squeeze ratio 0.25 of the block input.
            const unsigned se = std::max(1u, in_c / 4);
            const unsigned spatial = b.size();
            b.pool(1);
            b.conv(p + ".se_reduce", mid, se, 1, 1, 0);
            b.conv(p + ".se_expand", se, mid, 1, 1, 0);
            b.pool(spatial);
            b.conv(p + ".project", mid, st.out_c, 1, 1, 0);
            in_c = st.out_c;
        }
    }
    b.conv("head", 320, 1280, 1, 1, 0);
    b.pool(1);
    b.fc("fc", 1280, 1000);
    return b.finish();
}

std::vector<ModelSpec>
allModels()
{
    return {alexNet(),      vgg16(),         resNet18(),
            mobileNetV1(),  regNetX400MF(),  efficientNetB0()};
}

} // namespace mixgemm
