/**
 * @file
 * Per-layer mixed-precision assignment.
 *
 * The μ-engine reconfigures in a single cycle (bs.set), so every layer
 * can run at its own activation/weight data sizes — the degree of
 * freedom the paper highlights in Section III-B. This module implements
 * a greedy optimizer over that space: starting from a8-w8 everywhere,
 * it repeatedly downgrades the layer step with the best
 * cycles-saved-per-accuracy-lost ratio until an accuracy budget is
 * exhausted.
 *
 * The per-layer accuracy model distributes the network-level QAT
 * anchor losses over layers in proportion to a sensitivity weight
 * (parameter share, with first/last layers pinned to 8-bit as in the
 * paper) — a first-order model in the spirit of per-layer sensitivity
 * analyses; DESIGN.md lists it among the substitutions.
 */

#ifndef MIXGEMM_DNN_MIXED_PRECISION_H
#define MIXGEMM_DNN_MIXED_PRECISION_H

#include <string>
#include <vector>

#include "accuracy/qat_database.h"
#include "dnn/models.h"
#include "sim/gemm_timing.h"

namespace mixgemm
{

/** A per-layer data-size assignment. */
struct MixedPrecisionPlan
{
    std::string model;
    std::vector<DataSizeConfig> layer_configs; ///< one per layer
    uint64_t total_cycles = 0;
    double gops = 0.0;
    double estimated_loss = 0.0; ///< TOP-1 points vs FP32
    double estimated_top1 = 0.0;
};

/** Tuning knobs of the greedy optimizer. */
struct MixedPrecisionOptions
{
    double max_loss = 1.0;     ///< accuracy budget in TOP-1 points
    unsigned min_bits = 2;     ///< lowest data size considered
    bool first_last_8bit = true;
};

/**
 * Estimated network TOP-1 loss of a per-layer assignment under the
 * sensitivity model described above.
 */
double estimatePlanLoss(const ModelSpec &model,
                        const std::vector<DataSizeConfig> &configs,
                        const AccuracyDatabase &db);

/** Greedy per-layer optimization under an accuracy budget. */
MixedPrecisionPlan optimizeMixedPrecision(
    const ModelSpec &model, const GemmTimingModel &timing,
    const AccuracyDatabase &db,
    const MixedPrecisionOptions &options = MixedPrecisionOptions{});

/** Cycles of a network under a per-layer assignment. */
uint64_t planCycles(const ModelSpec &model, const GemmTimingModel &timing,
                    const std::vector<DataSizeConfig> &configs);

} // namespace mixgemm

#endif // MIXGEMM_DNN_MIXED_PRECISION_H
