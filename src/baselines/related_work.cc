#include "baselines/related_work.h"

#include <sstream>

#include "common/logging.h"

namespace mixgemm
{

std::string
PubRange::toString(int precision) const
{
    if (!present())
        return "-";
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << lo;
    if (hi != lo)
        os << "-" << hi;
    return os.str();
}

const PubResult *
RelatedWork::result(const std::string &benchmark) const
{
    for (const auto &r : results)
        if (r.benchmark == benchmark)
            return &r;
    return nullptr;
}

std::vector<std::string>
tableIIIBenchmarks()
{
    return {"Convolution", "AlexNet",       "VGG-16",
            "ResNet-18",   "MobileNet-V1",  "RegNet-X-400MF",
            "EfficientNet-B0"};
}

std::vector<RelatedWork>
relatedWorkTable()
{
    // Published numbers exactly as gathered in Table III.
    std::vector<RelatedWork> rows;

    rows.push_back({"Baseline", "OpenBLAS FP32", "FP32", false, "RV64",
                    1.2, -1, -1.0,
                    {{"AlexNet", {0.9, 0.9}, {}},
                     {"VGG-16", {0.9, 0.9}, {}},
                     {"ResNet-18", {0.9, 0.9}, {}},
                     {"MobileNet-V1", {0.9, 0.9}, {}},
                     {"RegNet-X-400MF", {0.9, 0.9}, {}},
                     {"EfficientNet-B0", {0.9, 0.9}, {}}}});

    rows.push_back({"[33]", "GEMMLowp (Neon)", "8b", false, "ARMv8", 1.2,
                    -1, -1.0,
                    {{"AlexNet", {5.6, 5.6}, {}},
                     {"VGG-16", {5.1, 5.1}, {}},
                     {"ResNet-18", {4.7, 4.7}, {}},
                     {"MobileNet-V1", {5.5, 5.5}, {}},
                     {"RegNet-X-400MF", {4.8, 4.8}, {}},
                     {"EfficientNet-B0", {5.8, 5.8}, {}}}});

    rows.push_back({"[12]", "Dory (GAP-8)", "8b", false, "8xRV32", 0.26,
                    -1, -1.0,
                    {{"MobileNet-V1", {4.2, 4.2}, {0.02, 0.02}}}});

    rows.push_back({"[13]", "CMix-NN", "8b/4b/2b", true, "ARMv7", 0.48,
                    -1, -1.0,
                    {{"MobileNet-V1", {0.3, 0.5}, {0.001, 0.002}}}});

    rows.push_back({"[26]", "PULP-NN", "8b/4b/2b", false, "RV32", 0.17,
                    -1, -1.0,
                    {{"Convolution", {0.2, 0.6}, {}}}});

    rows.push_back({"[11]", "Bruschi et al.", "8b/4b/2b", true, "8xRV32",
                    0.17, -1, -1.0,
                    {{"Convolution", {2.4, 6.1}, {}}}});

    rows.push_back({"[52]", "Ottavi et al.", "8b/4b/2b", true, "RV32",
                    0.25, 22, 0.002,
                    {{"Convolution", {1.1, 3.3}, {0.2, 0.6}}}});

    rows.push_back({"[27]", "XpulpNN", "8b/4b/2b", false, "8xRV32", 0.6,
                    22, 0.04,
                    {{"Convolution", {19.8, 47.9}, {0.7, 1.1}}}});

    rows.push_back({"[58]", "Bison-e", "8b/4b/2b", false, "RV64", 0.6,
                    22, 0.000419,
                    {{"AlexNet", {0.4, 1.3}, {0.01, 0.5}},
                     {"VGG-16", {0.6, 2.5}, {0.01, 0.03}}}});

    rows.push_back({"[17]", "Eyeriss", "16b", false, "Decoupled", 0.25,
                    65, 12.25,
                    {{"AlexNet", {74.7, 74.7}, {0.3, 0.3}},
                     {"VGG-16", {21.4, 21.4}, {0.09, 0.09}}}});

    rows.push_back({"[41]", "UNPU", "a16, w1-w16", false, "Decoupled",
                    0.2, 65, 16.0,
                    {{"AlexNet", {461.1, 461.1}, {1.6, 1.6}},
                     {"VGG-16", {567.3, 567.3}, {1.9, 1.9}}}});

    return rows;
}

ConvSpec
tableIIIConvolution()
{
    ConvSpec s;
    s.in_c = 32;
    s.in_h = s.in_w = 16;
    s.out_c = 64;
    s.kh = s.kw = 3;
    s.stride = 1;
    s.pad = 1;
    s.validate();
    return s;
}

} // namespace mixgemm
