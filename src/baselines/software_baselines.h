/**
 * @file
 * Models of the two measured software baselines of Fig. 7 / Table III:
 *
 *  - OpenBLAS FP32 single-threaded on a SiFive U740 (dual-issue
 *    in-order RV64 at 1.2 GHz) — the paper measures ~0.9 GOPS across
 *    the six CNNs;
 *  - GEMMLowp 8-bit on an Arm Cortex-A53 with Neon (dual-issue in-order
 *    at 1.2 GHz) — the paper measures 4.7-5.8 GOPS.
 *
 * Neither processor is available here, so both are throughput models:
 * a peak MAC/cycle rate derated by a GEMM-shape utilization factor
 * (small k or n leave the SIMD pipeline underfed — why depthwise
 * convolutions drag MobileNet down). The constants are calibrated so
 * the six networks land on the paper's measured values.
 */

#ifndef MIXGEMM_BASELINES_SOFTWARE_BASELINES_H
#define MIXGEMM_BASELINES_SOFTWARE_BASELINES_H

#include "dnn/models.h"

namespace mixgemm
{

/** Per-GEMM utilization-derated throughput model. */
class SoftwareBaselineModel
{
  public:
    /**
     * @param peak_macs_per_cycle sustained MAC/cycle on large GEMMs
     * @param k_half  k extent at which utilization halves
     * @param n_half  n extent at which utilization halves
     * @param freq_ghz processor frequency
     */
    SoftwareBaselineModel(double peak_macs_per_cycle, double k_half,
                          double n_half, double freq_ghz);

    /** Effective MAC/cycle for one GEMM shape. */
    double macsPerCycle(uint64_t m, uint64_t n, uint64_t k) const;

    /** Cycles for one GEMM. */
    double gemmCycles(uint64_t m, uint64_t n, uint64_t k) const;

    /** End-to-end GOPS for a network (all layers, grouped convs). */
    double networkGops(const ModelSpec &model) const;

    double freqGhz() const { return freq_ghz_; }

  private:
    double peak_;
    double k_half_;
    double n_half_;
    double freq_ghz_;
};

/** OpenBLAS FP32 on SiFive U740 (Fig. 7 baseline). */
const SoftwareBaselineModel &openblasFp32U740();

/** GEMMLowp 8-bit with Neon on Cortex-A53 (Table III row [33]). */
const SoftwareBaselineModel &gemmlowpA53();

} // namespace mixgemm

#endif // MIXGEMM_BASELINES_SOFTWARE_BASELINES_H
