/**
 * @file
 * Related-work comparison data (Table III).
 *
 * The paper's Table III gathers published results for eleven systems;
 * those rows are reproduced here verbatim as structured data (they are
 * *inputs* to the comparison, not measurements of this codebase), while
 * the Mix-GEMM row is computed by our simulator in bench/table3_soa.
 * The Convolution* micro-benchmark shape (input 16x16x32, filter
 * 64x3x3x32) is also defined here.
 */

#ifndef MIXGEMM_BASELINES_RELATED_WORK_H
#define MIXGEMM_BASELINES_RELATED_WORK_H

#include <string>
#include <vector>

#include "tensor/conv.h"

namespace mixgemm
{

/** A published lo-hi range; lo == hi for single values, <0 if absent. */
struct PubRange
{
    double lo = -1.0;
    double hi = -1.0;

    bool present() const { return lo >= 0.0; }
    std::string toString(int precision = 1) const;
};

/** Per-benchmark published performance and efficiency. */
struct PubResult
{
    std::string benchmark; ///< "Convolution", "AlexNet", ...
    PubRange perf_gops;
    PubRange eff_tops_w;
};

/** One Table III row. */
struct RelatedWork
{
    std::string citation;   ///< "[33]", "Baseline", ...
    std::string name;       ///< human-readable system name
    std::string data_sizes; ///< "8b", "8b/4b/2b", "All 8b-2b", ...
    bool mixed_precision = false;
    std::string soc;        ///< "ARMv8", "8xRV32", "RV64", "Decoupled"
    double freq_ghz = 0.0;
    int tech_nm = -1;       ///< -1 when not published
    double area_mm2 = -1.0; ///< -1 when not published
    std::vector<PubResult> results;

    /** Result row for @p benchmark, or nullptr. */
    const PubResult *result(const std::string &benchmark) const;
};

/** All related-work rows of Table III (published numbers). */
std::vector<RelatedWork> relatedWorkTable();

/** Benchmark column names, in Table III order. */
std::vector<std::string> tableIIIBenchmarks();

/**
 * The Convolution* kernel of Table III: input tensor 16x16x32 (HxWxC),
 * filter 64x3x3x32, stride 1, pad 1.
 */
ConvSpec tableIIIConvolution();

} // namespace mixgemm

#endif // MIXGEMM_BASELINES_RELATED_WORK_H
