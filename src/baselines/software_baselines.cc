#include "baselines/software_baselines.h"

#include "common/logging.h"

namespace mixgemm
{

SoftwareBaselineModel::SoftwareBaselineModel(double peak_macs_per_cycle,
                                             double k_half, double n_half,
                                             double freq_ghz)
    : peak_(peak_macs_per_cycle), k_half_(k_half), n_half_(n_half),
      freq_ghz_(freq_ghz)
{
    if (peak_ <= 0.0 || freq_ghz <= 0.0)
        fatal("SoftwareBaselineModel: positive peak and frequency "
              "required");
}

double
SoftwareBaselineModel::macsPerCycle(uint64_t m, uint64_t n,
                                    uint64_t k) const
{
    (void)m;
    const double k_util = static_cast<double>(k) / (k + k_half_);
    const double n_util = static_cast<double>(n) / (n + n_half_);
    return peak_ * k_util * n_util;
}

double
SoftwareBaselineModel::gemmCycles(uint64_t m, uint64_t n, uint64_t k) const
{
    const double macs = static_cast<double>(m) * n * k;
    return macs / macsPerCycle(m, n, k);
}

double
SoftwareBaselineModel::networkGops(const ModelSpec &model) const
{
    double cycles = 0.0;
    for (const auto &layer : model.layers) {
        // Depthwise layers run channel-vectorized kernels: price them
        // as one GEMM whose n extent is the channel count.
        const uint64_t n = layer.conv.groups > 1 ? layer.conv.out_c
                                                 : layer.conv.gemmN();
        const double macs = static_cast<double>(layer.macs());
        cycles += macs / macsPerCycle(layer.conv.gemmM(), n,
                                      layer.conv.gemmK());
    }
    return 2.0 * model.totalMacs() * freq_ghz_ / cycles;
}

const SoftwareBaselineModel &
openblasFp32U740()
{
    // Calibration: scalar FP32 kernels on the dual-issue in-order U740
    // sustain ~0.39 MAC/cycle on large GEMMs -> ~0.9 GOPS at 1.2 GHz
    // across the six CNNs (Fig. 7 baseline).
    static const SoftwareBaselineModel model(0.39, 6.0, 1.5, 1.2);
    return model;
}

const SoftwareBaselineModel &
gemmlowpA53()
{
    // Calibration: Neon 8-bit kernels sustain ~2.6 MAC/cycle on large
    // GEMMs; small-k/small-n layers underfeed the SIMD pipeline ->
    // 4.7-5.8 GOPS on the six CNNs (Table III row [33]).
    static const SoftwareBaselineModel model(2.6, 26.0, 9.0, 1.2);
    return model;
}

} // namespace mixgemm
