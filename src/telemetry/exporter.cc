#include "telemetry/exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/logging.h"
#include "common/threadname.h"
#include "trace/tracer.h"

namespace mixgemm
{

namespace
{

/**
 * Write all of @p data, retrying short writes; false on error. Uses
 * send(MSG_NOSIGNAL) so a peer that closed early yields EPIPE instead
 * of a process-killing SIGPIPE (no handler is installed anywhere).
 */
bool
writeAll(int fd, const std::string &data)
{
#ifdef MSG_NOSIGNAL
    constexpr int kSendFlags = MSG_NOSIGNAL;
#else
    constexpr int kSendFlags = 0;
#endif
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, kSendFlags);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

std::string
httpResponse(int code, const char *reason, const std::string &type,
             const std::string &body)
{
    return strCat("HTTP/1.1 ", code, " ", reason, "\r\n",
                  "Content-Type: ", type, "\r\n",
                  "Content-Length: ", body.size(), "\r\n",
                  "Connection: close\r\n\r\n", body);
}

} // namespace

Expected<std::unique_ptr<MetricsHttpServer>>
MetricsHttpServer::start(MetricsRegistry *registry,
                         HttpExporterOptions options)
{
    if (!registry)
        return Status::invalidArgument(
            "MetricsHttpServer: null registry");

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Status::unavailable(
            strCat("socket(): ", std::strerror(errno)));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.port);
    if (::inet_pton(AF_INET, options.bind_address.c_str(),
                    &addr.sin_addr) != 1) {
        ::close(fd);
        return Status::invalidArgument(
            strCat("bad bind address '", options.bind_address, "'"));
    }
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const Status status = Status::unavailable(
            strCat("bind(", options.bind_address, ":", options.port,
                   "): ", std::strerror(errno)));
        ::close(fd);
        return status;
    }
    if (::listen(fd, 16) != 0) {
        const Status status = Status::unavailable(
            strCat("listen(): ", std::strerror(errno)));
        ::close(fd);
        return status;
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    uint16_t port = options.port;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) == 0)
        port = ntohs(bound.sin_port);

    return std::unique_ptr<MetricsHttpServer>(new MetricsHttpServer(
        registry, fd, port, std::move(options.health)));
}

MetricsHttpServer::MetricsHttpServer(MetricsRegistry *registry,
                                     int listen_fd, uint16_t port,
                                     std::function<HealthReport()> health)
    : registry_(registry), health_(std::move(health)),
      listen_fd_(listen_fd), port_(port)
{
    thread_ = std::thread([this] {
        Tracer::nameCurrentThread("metrics-http");
        serveLoop();
    });
}

MetricsHttpServer::~MetricsHttpServer()
{
    stop();
}

void
MetricsHttpServer::stop()
{
    if (stopping_.exchange(true))
        return;
    if (thread_.joinable())
        thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void
MetricsHttpServer::serveLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
        if (ready <= 0)
            continue;
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0)
            continue;
        handleConnection(client);
        ::close(client);
    }
}

void
MetricsHttpServer::handleConnection(int fd)
{
    // Bound the whole exchange: a client that connects and then stalls
    // must not wedge the single accept/serve thread (and with it
    // stop()/~MetricsHttpServer, which join it).
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                 sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout,
                 sizeof(timeout));
#ifdef SO_NOSIGPIPE
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif

    // Read until the end of the request headers (or 8 KiB, whichever
    // comes first); only the request line matters here.
    std::string request;
    char buf[1024];
    while (request.size() < 8192 &&
           request.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        request.append(buf, static_cast<size_t>(n));
    }
    const size_t line_end = request.find("\r\n");
    const std::string line = request.substr(
        0, line_end == std::string::npos ? request.size() : line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    const std::string method =
        sp1 == std::string::npos ? "" : line.substr(0, sp1);
    std::string target = sp2 == std::string::npos
                             ? ""
                             : line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (const size_t query = target.find('?');
        query != std::string::npos)
        target.resize(query);

    std::string response;
    if (method != "GET") {
        response = httpResponse(405, "Method Not Allowed", "text/plain",
                                "method not allowed\n");
    } else if (target == "/metrics") {
        response = httpResponse(
            200, "OK", "text/plain; version=0.0.4; charset=utf-8",
            registry_->renderPrometheus());
    } else if (target == "/healthz") {
        HealthReport report;
        if (health_)
            report = health_();
        if (report.healthy) {
            response = httpResponse(200, "OK", "text/plain", "ok\n");
        } else {
            // 503 takes the instance out of an orchestrator's rotation;
            // the JSON body names why, for a human following up.
            std::string reason;
            reason.reserve(report.reason.size());
            for (const char c : report.reason) {
                if (c == '"' || c == '\\')
                    reason.push_back('\\');
                if (static_cast<unsigned char>(c) >= 0x20)
                    reason.push_back(c);
            }
            response = httpResponse(
                503, "Service Unavailable", "application/json",
                strCat("{\"healthy\":false,\"reason\":\"", reason,
                       "\"}\n"));
        }
    } else if (target == "/varz") {
        response = httpResponse(200, "OK", "application/json",
                                registry_->renderVarz());
    } else {
        response =
            httpResponse(404, "Not Found", "text/plain", "not found\n");
    }
    writeAll(fd, response);
}

MetricsFileExporter::MetricsFileExporter(MetricsRegistry *registry,
                                         std::string path,
                                         std::chrono::milliseconds
                                             interval)
    : registry_(registry), path_(std::move(path)), interval_(interval)
{
    if (interval_.count() <= 0)
        return;
    thread_ = std::thread([this] {
        Tracer::nameCurrentThread("metrics-file");
        std::unique_lock<std::mutex> lock(wake_mutex_);
        while (!stopping_.load(std::memory_order_acquire)) {
            wake_cv_.wait_for(lock, interval_, [this] {
                return stopping_.load(std::memory_order_acquire);
            });
            lock.unlock();
            const Status status = writeOnce();
            if (!status.ok())
                warn(strCat("MetricsFileExporter: ",
                            status.toString()));
            lock.lock();
        }
        lock.unlock();
        // Final write on stop, so the file reflects the run's end
        // state rather than the last interval boundary.
        const Status status = writeOnce();
        if (!status.ok())
            warn(strCat("MetricsFileExporter: ", status.toString()));
    });
}

MetricsFileExporter::~MetricsFileExporter()
{
    stop();
}

void
MetricsFileExporter::stop()
{
    {
        // The flag must flip under wake_mutex_: otherwise the exporter
        // thread can check its wait predicate (false), lose the race to
        // this notify, and then block for a full extra interval.
        std::lock_guard<std::mutex> lock(wake_mutex_);
        if (stopping_.exchange(true))
            return;
        wake_cv_.notify_all();
    }
    if (thread_.joinable())
        thread_.join();
}

Status
MetricsFileExporter::writeOnce()
{
    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return Status::unavailable(
                strCat("cannot open '", tmp, "'"));
        os << registry_->renderPrometheus();
        if (!os)
            return Status::unavailable(strCat("write to '", tmp,
                                              "' failed"));
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        return Status::unavailable(strCat("rename to '", path_,
                                          "': ", std::strerror(errno)));
    return Status();
}

} // namespace mixgemm
