/**
 * @file
 * Always-on flight recorder: bounded rings of recent serving evidence
 * (decision-log entries, GEMM RunReport summaries, request terminals)
 * plus per-tenant SLO windows, dumped as a postmortem JSON bundle when
 * something goes wrong.
 *
 * Triggers:
 *   - the watchdog cancels a stuck worker       (triggerWatchdog)
 *   - a GEMM ends with ABFT-uncorrectable tiles (triggerAbftUncorrectable)
 *   - a tenant's deadline-miss burn rate over the sliding SLO window
 *     exceeds max_miss_fraction, or its mean delivered rung exceeds
 *     max_mean_rung                              (recordTerminal)
 *   - an explicit dumpNow()
 *
 * A dump renders everything the rings hold, the per-tenant SLO status,
 * and a current metrics snapshot into one JSON document, stored
 * in-memory (bundles()) and — when dump_dir is set — written to
 * dump_dir/postmortem-<N>.json, where N is the dump index (not a
 * timestamp, so filenames are deterministic). Dumps are rate-limited
 * by dump_cooldown_ns and capped at max_dumps per recorder.
 *
 * Determinism: bundles exclude wall-derived RunReport fields
 * (wall_secs/abft_secs); every timestamp they do contain comes from
 * the server's Clock, so under VirtualClock pump mode two same-seed
 * soaks produce byte-identical bundles.
 */

#ifndef MIXGEMM_TELEMETRY_FLIGHT_RECORDER_H
#define MIXGEMM_TELEMETRY_FLIGHT_RECORDER_H

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/server.h"
#include "telemetry/registry.h"
#include "trace/session.h"

namespace mixgemm
{

/** Flight-recorder knobs; defaults suit tests and small deployments. */
struct FlightRecorderOptions
{
    size_t decision_ring = 512; ///< retained decision-log entries
    size_t report_ring = 128;   ///< retained RunReport summaries
    size_t terminal_ring = 256; ///< retained request terminals

    /** Bundle output directory; "" keeps bundles in memory only. */
    std::string dump_dir;

    uint64_t slo_window_ns = 1'000'000'000; ///< per-tenant sliding window
    /**
     * A terminal counts as an SLO miss when its status is
     * kDeadlineExceeded, or when @p slo_latency_ns is nonzero and the
     * total latency exceeds it.
     */
    uint64_t slo_latency_ns = 0;
    /** Miss fraction over the window that triggers a dump; a value
     * above 1.0 disables the burn-rate trigger. */
    double max_miss_fraction = 1.1;
    /** Mean delivered rung over the window that triggers a dump
     * (delivered-precision SLO); negative disables. */
    double max_mean_rung = -1.0;
    size_t min_window_samples = 16; ///< don't judge a cold window

    uint64_t dump_cooldown_ns = 1'000'000'000;
    size_t max_dumps = 16;

    /** Snapshot source embedded in every bundle. Not owned; may be
     * null (bundles then carry an empty metrics section). */
    MetricsRegistry *registry = nullptr;
};

/** Per-tenant SLO window status (returned by tenantStatus()). */
struct TenantSloStatus
{
    uint64_t samples = 0;
    uint64_t misses = 0;
    double miss_fraction = 0.0;
    double mean_rung = 0.0;
};

/** See the file comment. Thread-safe. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(FlightRecorderOptions options = {});

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Feed one decision-log line (ServeObserver::onDecision). Never
     * dumps — it is called under the server's mutex. */
    void recordDecision(uint64_t decision_seq, const std::string &line);

    /** Feed one request terminal; evaluates the SLO triggers. */
    void recordTerminal(const RequestReport &report, StatusCode code);

    /** Feed one GEMM RunReport (TraceSession report sink). */
    void recordReport(const RunReport &report);

    void triggerWatchdog(unsigned worker, uint64_t seq,
                         uint64_t now_ns);
    void triggerAbftUncorrectable(uint64_t seq, uint64_t tiles,
                                  uint64_t now_ns);

    /** Force a dump (ignores cooldown, honors max_dumps). */
    void dumpNow(const std::string &reason, const std::string &detail,
                 uint64_t now_ns);

    /** All bundles produced so far, oldest first. */
    std::vector<std::string> bundles() const;
    size_t dumpCount() const;

    /** Current SLO window status per tenant. */
    std::map<std::string, TenantSloStatus> tenantStatus() const;

  private:
    struct TerminalRecord
    {
        uint64_t seq = 0;
        std::string tenant;
        std::string code;
        int priority = 0;
        unsigned tier = 0;
        int worker = -1;
        unsigned attempts = 0;
        uint64_t submit_ns = 0;
        uint64_t queue_ns = 0;
        uint64_t exec_ns = 0;
    };

    struct ReportSummary
    {
        std::string label;
        std::string config;
        uint64_t m = 0, n = 0, k = 0;
        std::string tenant;
        uint64_t request_id = 0;
        unsigned rung = 0;
        std::string kernel;
        std::string kernel_mode;
        std::string weight_source;
        uint64_t bytes_packed = 0;
        /// Span summaries: timer name -> sample count. Durations are
        /// wall-derived and deliberately excluded.
        std::map<std::string, uint64_t> span_counts;
    };

    struct WindowSample
    {
        uint64_t done_ns = 0;
        bool miss = false;
        unsigned rung = 0;
    };

    struct TenantWindow
    {
        std::deque<WindowSample> samples;
        uint64_t misses = 0;
        uint64_t rung_sum = 0;
    };

    void pruneWindowLocked(TenantWindow &window, uint64_t now_ns);
    /** Gate + phase-1 snapshot under mutex_; returns the bundle body
     * prefix or "" when the dump is suppressed. Reserves the dump slot
     * by incrementing dump_index_ (returned via @p index_out) so the
     * max_dumps/cooldown gates and the index allocation are atomic. */
    std::string prepareDumpLocked(const std::string &reason,
                                  const std::string &detail,
                                  uint64_t now_ns, bool ignore_cooldown,
                                  size_t &index_out);
    /** Phase 2/3: render metrics (no locks held), store + write. */
    void finalizeDump(std::string prefix, size_t index);
    void maybeDump(const std::string &reason, const std::string &detail,
                   uint64_t now_ns, bool ignore_cooldown);

    FlightRecorderOptions options_;
    mutable std::mutex mutex_;
    std::deque<std::pair<uint64_t, std::string>> decisions_;
    std::deque<TerminalRecord> terminals_;
    std::deque<ReportSummary> reports_;
    std::map<std::string, TenantWindow> windows_;
    uint64_t last_dump_ns_ = 0;
    bool dumped_once_ = false;
    size_t dump_index_ = 0;
    std::vector<std::string> bundles_;
};

} // namespace mixgemm

#endif // MIXGEMM_TELEMETRY_FLIGHT_RECORDER_H
