#include "telemetry/serve_telemetry.h"

#include "common/logging.h"

namespace mixgemm
{

ServeTelemetry::ServeTelemetry(ServeTelemetryOptions options)
    : options_(std::move(options)), pack_baseline_(packCounters())
{
    if (!options_.registry)
        fatal("ServeTelemetry: a MetricsRegistry is required");
    abft_uncorrectable_events_ = options_.registry->counter(
        "mixgemm_abft_uncorrectable_events_total",
        "GEMMs that finished with ABFT-uncorrectable tiles",
        {{"model", options_.model}});
}

CounterMetric *
ServeTelemetry::serveCounter(const std::string &name,
                             const std::string &help)
{
    return options_.registry->counter(name, help,
                                      {{"model", options_.model}});
}

void
ServeTelemetry::attachServer(InferenceServer *server)
{
    server_ = server;
    server->setObserver(this);
    options_.registry->addCollector([this] { sync(); });
}

void
ServeTelemetry::attachSession(TraceSession *session, bool keep_reports)
{
    session->setReportSink(
        [this](const RunReport &report) { onRunReport(report); },
        keep_reports);
}

void
ServeTelemetry::onDecision(uint64_t decision_seq,
                           const std::string &line)
{
    if (options_.recorder)
        options_.recorder->recordDecision(decision_seq, line);
}

void
ServeTelemetry::onTerminal(const RequestReport &report, StatusCode code)
{
    options_.registry
        ->counter("mixgemm_tenant_requests_total",
                  "Request terminals per tenant and status code",
                  {{"tenant", report.tenant},
                   {"code", statusCodeName(code)}})
        ->add(1);
    // Latency is clock-derived (virtual time under VirtualClock), so
    // the summary stays deterministic in pump mode.
    if (report.start_ns != 0 && report.done_ns != 0)
        options_.registry
            ->histogram("mixgemm_tenant_latency_ns",
                        "Total request latency per tenant",
                        {{"tenant", report.tenant}})
            ->observe(report.done_ns - report.submit_ns);
    if (options_.recorder)
        options_.recorder->recordTerminal(report, code);
}

void
ServeTelemetry::onWatchdogCancel(unsigned worker, uint64_t seq,
                                 uint64_t now_ns)
{
    if (options_.recorder)
        options_.recorder->triggerWatchdog(worker, seq, now_ns);
}

void
ServeTelemetry::onAbftUncorrectable(uint64_t seq, uint64_t tiles,
                                    uint64_t now_ns)
{
    abft_uncorrectable_events_->add(1);
    if (options_.recorder)
        options_.recorder->triggerAbftUncorrectable(seq, tiles, now_ns);
}

void
ServeTelemetry::onRunReport(const RunReport &report)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = config_series_.try_emplace(report.config);
    ConfigSeries &series = it->second;
    if (inserted) {
        const MetricLabels labels{{"config", report.config}};
        series.gemms = options_.registry->counter(
            "mixgemm_gemm_total", "GEMMs executed per configuration",
            labels);
        series.ops = options_.registry->counter(
            "mixgemm_gemm_ops_total",
            "Multiply-accumulate operations (2*m*n*k) per configuration",
            labels);
        if (options_.include_wall_metrics) {
            series.gops = options_.registry->gauge(
                "mixgemm_gemm_gops",
                "Most recent achieved GOPS per configuration", labels);
            series.peak_gops = options_.registry->gauge(
                "mixgemm_gemm_peak_gops",
                "Reference peak GOPS (autotuner measurement, or the "
                "running maximum achieved)",
                labels);
            series.efficiency = options_.registry->gauge(
                "mixgemm_roofline_efficiency",
                "Achieved / peak GOPS per configuration", labels);
            if (options_.tuning)
                for (const TuningEntry &entry :
                     options_.tuning->entries)
                    if (entry.config == report.config &&
                        entry.gops > 0.0)
                        series.peak_seen = entry.gops;
        }
    }
    series.gemms->add(1);
    series.ops->add(2 * report.m * report.n * report.k);
    // Exact per-GEMM counters (μ-vector instruction mix, ABFT verdicts,
    // panel counts) aggregate additively per configuration.
    for (const auto &[name, value] : report.counters.all()) {
        auto [cit, cinserted] = series.counters.try_emplace(name);
        if (cinserted)
            cit->second = options_.registry->counter(
                "mixgemm_gemm_counter_total",
                "Per-GEMM driver counters, summed per configuration",
                {{"config", report.config}, {"name", name}});
        cit->second->add(value);
    }

    if (options_.include_wall_metrics && report.wall_secs > 0.0) {
        const double ops =
            2.0 * static_cast<double>(report.m) *
            static_cast<double>(report.n) *
            static_cast<double>(report.k);
        const double achieved = ops / report.wall_secs / 1e9;
        if (achieved > series.peak_seen)
            series.peak_seen = achieved;
        series.gops->set(achieved);
        series.peak_gops->set(series.peak_seen);
        series.efficiency->set(
            series.peak_seen > 0.0 ? achieved / series.peak_seen : 0.0);
    }

    if (options_.recorder)
        options_.recorder->recordReport(report);
}

HealthReport
ServeTelemetry::healthReport() const
{
    HealthReport report;
    if (!server_)
        return report;
    const ServerStats stats = server_->stats();
    if (stats.breakers_open == 0 && stats.backends_quarantined == 0)
        return report;
    report.healthy = false;
    std::string reason;
    if (stats.breakers_open > 0)
        reason = strCat(stats.breakers_open, " circuit breaker(s) open");
    if (stats.backends_quarantined > 0) {
        if (!reason.empty())
            reason += "; ";
        reason += strCat(stats.backends_quarantined,
                         " backend(s) quarantined");
    }
    report.reason = std::move(reason);
    return report;
}

void
ServeTelemetry::sync()
{
    if (!server_)
        return;
    const ServerStats stats = server_->stats();
    const std::string &model = options_.model;

    serveCounter("mixgemm_serve_submitted_total", "Requests submitted")
        ->setMax(stats.submitted);
    serveCounter("mixgemm_serve_admitted_total",
                 "Requests that reached the queue")
        ->setMax(stats.admitted);
    serveCounter("mixgemm_serve_completed_ok_total",
                 "Requests completed successfully")
        ->setMax(stats.completed_ok);
    serveCounter("mixgemm_serve_shed_total",
                 "Requests displaced by higher-priority work")
        ->setMax(stats.shed);
    serveCounter("mixgemm_serve_deadline_miss_total",
                 "Requests whose deadline passed during execution")
        ->setMax(stats.deadline_exceeded);
    serveCounter("mixgemm_serve_cancelled_total", "Requests cancelled")
        ->setMax(stats.cancelled);
    serveCounter("mixgemm_serve_failed_total",
                 "Requests with other terminal failures")
        ->setMax(stats.failed);
    serveCounter("mixgemm_serve_retries_total",
                 "Extra execution attempts taken")
        ->setMax(stats.retries);
    serveCounter("mixgemm_serve_degrade_steps_total",
                 "Degradation level increases")
        ->setMax(stats.degrade_steps);
    serveCounter("mixgemm_serve_recover_steps_total",
                 "Degradation level decreases")
        ->setMax(stats.recover_steps);
    serveCounter("mixgemm_serve_watchdog_cancels_total",
                 "Stuck-worker cancellations")
        ->setMax(stats.watchdog_cancels);
    serveCounter("mixgemm_serve_rung_materializations_total",
                 "Lazy ladder rungs built on demand")
        ->setMax(stats.rung_materializations);
    serveCounter("mixgemm_serve_rung_evictions_total",
                 "Lazy ladder rungs evicted by the byte budget")
        ->setMax(stats.rung_evictions);
    serveCounter("mixgemm_serve_decisions_dropped_total",
                 "Decision-log entries dropped past the retention cap")
        ->setMax(stats.decisions_dropped);
    serveCounter("mixgemm_serve_breaker_open_total",
                 "Circuit-breaker closed->open transitions")
        ->setMax(stats.breaker_open_events);
    serveCounter("mixgemm_serve_breaker_reopen_total",
                 "Circuit breakers re-opened by a failed probe")
        ->setMax(stats.breaker_reopen_events);
    serveCounter("mixgemm_serve_breaker_close_total",
                 "Circuit breakers closed after successful probes")
        ->setMax(stats.breaker_close_events);
    serveCounter("mixgemm_serve_breaker_probes_total",
                 "Requests admitted as half-open breaker probes")
        ->setMax(stats.breaker_probes);
    serveCounter("mixgemm_serve_breaker_fast_fail_total",
                 "Requests fast-failed by an open circuit breaker")
        ->setMax(stats.breaker_fast_fails);
    serveCounter("mixgemm_serve_retry_budget_denied_total",
                 "Retries suppressed by the global retry budget")
        ->setMax(stats.retry_budget_denied);
    serveCounter("mixgemm_serve_hedges_total",
                 "Hedged duplicate attempts launched")
        ->setMax(stats.hedges_launched);
    serveCounter("mixgemm_serve_hedge_wins_total",
                 "Requests whose hedge finished first")
        ->setMax(stats.hedge_wins);
    serveCounter("mixgemm_serve_quarantine_total",
                 "Worker backends quarantined by health scoring")
        ->setMax(stats.backend_quarantines);
    serveCounter("mixgemm_serve_quarantine_recoveries_total",
                 "Worker backends returned from quarantine")
        ->setMax(stats.backend_recoveries);
    serveCounter("mixgemm_serve_chaos_events_total",
                 "Chaos-plane events injected")
        ->setMax(stats.chaos_events);
    serveCounter("mixgemm_serve_graph_reloads_total",
                 "Hot ladder reloads applied")
        ->setMax(stats.graph_reloads);
    options_.registry
        ->counter("mixgemm_serve_rejected_total",
                  "Requests rejected at admission, by reason",
                  {{"model", model}, {"reason", "full"}})
        ->setMax(stats.rejected_full);
    options_.registry
        ->counter("mixgemm_serve_rejected_total", "",
                  {{"model", model}, {"reason", "invalid"}})
        ->setMax(stats.rejected_invalid);
    options_.registry
        ->counter("mixgemm_serve_rejected_total", "",
                  {{"model", model}, {"reason", "closed"}})
        ->setMax(stats.rejected_closed);
    options_.registry
        ->counter("mixgemm_serve_expired_total",
                  "Requests whose deadline passed before execution",
                  {{"model", model}, {"stage", "submit"}})
        ->setMax(stats.expired_submit);
    options_.registry
        ->counter("mixgemm_serve_expired_total", "",
                  {{"model", model}, {"stage", "queue"}})
        ->setMax(stats.expired_queue);

    options_.registry
        ->gauge("mixgemm_serve_queue_depth", "Admission queue depth",
                {{"model", model}})
        ->set(static_cast<double>(stats.queue_depth));
    options_.registry
        ->gauge("mixgemm_serve_degradation_level",
                "Current precision degradation level",
                {{"model", model}})
        ->set(static_cast<double>(stats.degradation_level));
    options_.registry
        ->gauge("mixgemm_serve_lazy_resident_bytes",
                "Pooled footprint of materialized lazy rungs",
                {{"model", model}})
        ->set(static_cast<double>(stats.lazy_resident_bytes));
    options_.registry
        ->gauge("mixgemm_serve_lazy_rungs_resident",
                "Materialized lazy rungs", {{"model", model}})
        ->set(static_cast<double>(stats.lazy_rungs_resident));
    options_.registry
        ->gauge("mixgemm_serve_breakers_open",
                "Circuit breakers currently not closed",
                {{"model", model}})
        ->set(static_cast<double>(stats.breakers_open));
    options_.registry
        ->gauge("mixgemm_serve_backends_quarantined",
                "Worker backends currently quarantined",
                {{"model", model}})
        ->set(static_cast<double>(stats.backends_quarantined));
    options_.registry
        ->gauge("mixgemm_serve_retry_budget_level",
                "Retry-budget tokens remaining", {{"model", model}})
        ->set(stats.retry_budget_level);

    for (size_t rung = 0; rung < stats.completed_by_tier.size(); ++rung)
        options_.registry
            ->counter("mixgemm_serve_completed_total",
                      "Successful completions per delivered rung",
                      {{"model", model},
                       {"rung", std::to_string(rung)}})
            ->setMax(stats.completed_by_tier[rung]);

    for (const auto &[priority, cls] : stats.by_priority) {
        const std::string cls_label = strCat("p", priority);
        const auto class_counter = [&](const char *event,
                                       uint64_t value) {
            options_.registry
                ->counter("mixgemm_serve_class_total",
                          "Per-priority-class terminal accounting",
                          {{"class", cls_label}, {"event", event}})
                ->setMax(value);
        };
        class_counter("submitted", cls.submitted);
        class_counter("completed_ok", cls.completed_ok);
        class_counter("shed", cls.shed);
        class_counter("rejected_full", cls.rejected_full);
        class_counter("rejected_invalid", cls.rejected_invalid);
        class_counter("rejected_closed", cls.rejected_closed);
        class_counter("expired_submit", cls.expired_submit);
        class_counter("expired_queue", cls.expired_queue);
        class_counter("deadline_exceeded", cls.deadline_exceeded);
        class_counter("cancelled", cls.cancelled);
        class_counter("failed", cls.failed);
        class_counter("degraded", cls.degraded);
        class_counter("rejected_quota", cls.rejected_quota);
        class_counter("rejected_draining", cls.rejected_draining);
    }

    // Multi-tenant isolation plane. The global quota counters carry a
    // machine-readable reason label matching the rejection status
    // prefixes; the per-tenant families come from the same snapshot the
    // per-class identity is checked against, so the two always agree.
    const auto quota_counter = [&](const char *reason, uint64_t value) {
        options_.registry
            ->counter("mixgemm_tenant_quota_rejections_total",
                      "Requests rejected by tenant quotas, by reason",
                      {{"model", model}, {"reason", reason}})
            ->setMax(value);
    };
    quota_counter("rate", stats.rejected_rate);
    quota_counter("bulkhead", stats.rejected_bulkhead);
    quota_counter("limit", stats.rejected_tenant_limit);
    quota_counter("draining", stats.rejected_draining);
    serveCounter("mixgemm_serve_brownout_steps_total",
                 "Per-tenant brownout level increases")
        ->setMax(stats.brownout_steps);
    serveCounter("mixgemm_serve_brownout_clears_total",
                 "Per-tenant brownout level decreases")
        ->setMax(stats.brownout_clears);
    serveCounter("mixgemm_serve_priority_clamps_total",
                 "Priorities clamped to a tenant's ceiling")
        ->setMax(stats.priority_clamps);
    serveCounter("mixgemm_serve_drain_cancelled_total",
                 "Queued requests cancelled by graceful drain")
        ->setMax(stats.drain_cancelled);
    options_.registry
        ->gauge("mixgemm_serve_tenants", "Registered tenants",
                {{"model", model}})
        ->set(static_cast<double>(stats.tenant_count));
    options_.registry
        ->gauge("mixgemm_serve_draining",
                "1 while graceful drain is in progress",
                {{"model", model}})
        ->set(stats.draining ? 1.0 : 0.0);
    for (const auto &[tenant, ts] : stats.by_tenant) {
        const auto tenant_counter = [&](const char *event,
                                        uint64_t value) {
            options_.registry
                ->counter("mixgemm_tenant_events_total",
                          "Per-tenant scheduling and terminal "
                          "accounting",
                          {{"tenant", tenant}, {"event", event}})
                ->setMax(value);
        };
        tenant_counter("submitted", ts.submitted);
        tenant_counter("admitted", ts.admitted);
        tenant_counter("completed_ok", ts.completed_ok);
        tenant_counter("shed", ts.shed);
        tenant_counter("rejected_rate", ts.rejected_rate);
        tenant_counter("rejected_bulkhead", ts.rejected_bulkhead);
        tenant_counter("rejected_limit", ts.rejected_limit);
        tenant_counter("rejected_draining", ts.rejected_draining);
        tenant_counter("brownout_steps", ts.brownout_steps);
        tenant_counter("priority_clamps", ts.priority_clamps);
        tenant_counter("drain_cancelled", ts.drain_cancelled);
        const auto tenant_gauge = [&](const char *name,
                                      const char *help, double value) {
            options_.registry
                ->gauge(name, help, {{"tenant", tenant}})
                ->set(value);
        };
        tenant_gauge("mixgemm_tenant_brownout_level",
                     "Per-tenant brownout level on top of the global "
                     "degradation level",
                     static_cast<double>(ts.brownout_level));
        tenant_gauge("mixgemm_tenant_queue_depth",
                     "Queued requests in the tenant's DWRR lane",
                     static_cast<double>(ts.queue_depth));
        tenant_gauge("mixgemm_tenant_in_flight",
                     "Outstanding (queued + executing) requests",
                     static_cast<double>(ts.in_flight));
        tenant_gauge("mixgemm_tenant_weight",
                     "DWRR queue-share weight",
                     static_cast<double>(ts.weight));
        tenant_gauge("mixgemm_tenant_deficit",
                     "DWRR deficit at snapshot time",
                     static_cast<double>(ts.deficit));
        tenant_gauge("mixgemm_tenant_tokens",
                     "Admission token-bucket level", ts.tokens);
    }

    // Latency summaries from the server's merged histograms; virtual
    // time in pump mode, so deterministic there.
    const MetricSet latency = server_->latencyMetrics();
    for (const auto &[name, histogram] : latency.all()) {
        std::string path = name; // "serve/queue_ns" -> "queue"
        if (const size_t slash = path.find('/');
            slash != std::string::npos)
            path = path.substr(slash + 1);
        if (const size_t suffix = path.rfind("_ns");
            suffix != std::string::npos && suffix + 3 == path.size())
            path = path.substr(0, suffix);
        options_.registry
            ->histogram("mixgemm_serve_latency_ns",
                        "Request latency by pipeline stage",
                        {{"model", model}, {"path", path}})
            ->set(histogram);
    }

    // Packing work since this telemetry instance attached: deltas from
    // the construction-time baseline, so process-global history from
    // earlier runs in the same process never leaks into this render.
    const PackCounters packs = packCounters();
    options_.registry
        ->counter("mixgemm_pack_runs_total",
                  "Operand packing runs since telemetry attach",
                  {{"operand", "a"}})
        ->setMax(packs.a_packs - pack_baseline_.a_packs);
    options_.registry
        ->counter("mixgemm_pack_runs_total", "", {{"operand", "b"}})
        ->setMax(packs.b_packs - pack_baseline_.b_packs);
    options_.registry
        ->counter("mixgemm_cluster_builds_total",
                  "Cluster-panel expansions since telemetry attach")
        ->setMax(packs.cluster_builds - pack_baseline_.cluster_builds);
    options_.registry
        ->counter("mixgemm_pack_adoptions_total",
                  "Zero-copy borrowed-storage adoptions since attach")
        ->setMax(packs.adoptions - pack_baseline_.adoptions);

    if (options_.recorder) {
        options_.registry
            ->counter("mixgemm_postmortem_dumps_total",
                      "Flight-recorder postmortem bundles produced",
                      {{"model", model}})
            ->setMax(options_.recorder->dumpCount());
        for (const auto &[tenant, status] :
             options_.recorder->tenantStatus()) {
            options_.registry
                ->gauge("mixgemm_tenant_slo_miss_fraction",
                        "Deadline/latency miss fraction over the SLO "
                        "window",
                        {{"tenant", tenant}})
                ->set(status.miss_fraction);
            options_.registry
                ->gauge("mixgemm_tenant_slo_mean_rung",
                        "Mean delivered precision rung over the SLO "
                        "window",
                        {{"tenant", tenant}})
                ->set(status.mean_rung);
        }
    }
}

} // namespace mixgemm
