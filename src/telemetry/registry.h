/**
 * @file
 * Lock-light metrics registry with Prometheus text exposition.
 *
 * The registry holds labeled *families* of three instrument kinds:
 *
 *   CounterMetric    monotone uint64 (one relaxed atomic add to bump)
 *   GaugeMetric      instantaneous double (one atomic store to set)
 *   HistogramMetric  log-scale LogHistogram (trace/metrics.h buckets),
 *                    rendered as a Prometheus summary with
 *                    quantile 0.5/0.95/0.99 plus _sum/_count
 *
 * Registration (counter()/gauge()/histogram()) takes the registry
 * mutex once and returns a stable pointer; the hot path then updates
 * through that pointer without touching the registry again, so a GEMM
 * worker bumping a counter costs one atomic RMW. Rendering walks
 * std::maps keyed by metric and serialized label set, so two renders
 * over identical values are byte-identical — the property the
 * VirtualClock determinism tests pin.
 *
 * Collectors registered with addCollector() run at the start of every
 * render; pull-style sources (server stats snapshots, pack counters)
 * use them to refresh their metrics lazily instead of hooking every
 * update site.
 */

#ifndef MIXGEMM_TELEMETRY_REGISTRY_H
#define MIXGEMM_TELEMETRY_REGISTRY_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/metrics.h"

namespace mixgemm
{

/** Label set attached to one series; ordered so rendering is stable. */
using MetricLabels = std::map<std::string, std::string>;

/** Monotone counter. Thread-safe; updates are relaxed atomics. */
class CounterMetric
{
  public:
    void add(uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    /**
     * Raise to @p value if it is larger (CAS loop). Pull-style sources
     * that sync from an external monotone snapshot use this so a
     * concurrent direct add() can never be lost or double-counted
     * backwards.
     */
    void setMax(uint64_t value)
    {
        uint64_t cur = value_.load(std::memory_order_relaxed);
        while (cur < value &&
               !value_.compare_exchange_weak(cur, value,
                                             std::memory_order_relaxed))
            ;
    }

    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Instantaneous value. Thread-safe; set/read are atomic. */
class GaugeMetric
{
  public:
    void set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Log-scale histogram series (LogHistogram buckets). observe() is for
 * push-style samples; set() replaces the whole histogram from a merged
 * snapshot (the server's latency MetricSet). Guarded by a per-metric
 * mutex — histogram updates are off the per-tile hot path.
 */
class HistogramMetric
{
  public:
    void observe(uint64_t value)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        histogram_.add(value);
    }

    void set(const LogHistogram &histogram)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        histogram_ = histogram;
    }

    LogHistogram snapshot() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return histogram_;
    }

  private:
    mutable std::mutex mutex_;
    LogHistogram histogram_;
};

/** See the file comment. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * The series of family @p name with @p labels, created on first
     * use. @p help is recorded on family creation (later calls may pass
     * ""). Returned pointers stay valid for the registry's lifetime.
     * Invalid metric-name characters are rewritten to '_'; registering
     * the same name as two different kinds panics.
     */
    CounterMetric *counter(const std::string &name,
                           const std::string &help = "",
                           const MetricLabels &labels = {});
    GaugeMetric *gauge(const std::string &name,
                       const std::string &help = "",
                       const MetricLabels &labels = {});
    HistogramMetric *histogram(const std::string &name,
                               const std::string &help = "",
                               const MetricLabels &labels = {});

    /**
     * Run @p fn at the start of every render (exposition or varz), in
     * registration order. Collectors may register/update metrics; they
     * must not render (re-entrant render deadlocks).
     */
    void addCollector(std::function<void()> fn);

    /** Prometheus text exposition (format 0.0.4). Runs collectors. */
    std::string renderPrometheus() const;

    /** JSON rendering of the same series ("/varz"). Runs collectors. */
    std::string renderVarz() const;

    /** Serialize {a:"x",b:"y"} as `a="x",b="y"` (exposed for tests). */
    static std::string renderLabels(const MetricLabels &labels);

    /** Rewrite @p name to [a-zA-Z_:][a-zA-Z0-9_:]* (exposed for tests). */
    static std::string sanitizeName(const std::string &name);

  private:
    enum class Kind
    {
        kCounter,
        kGauge,
        kHistogram
    };

    struct Series
    {
        MetricLabels labels;
        std::unique_ptr<CounterMetric> counter;
        std::unique_ptr<GaugeMetric> gauge;
        std::unique_ptr<HistogramMetric> histogram;
    };

    struct Family
    {
        Kind kind = Kind::kCounter;
        std::string help;
        /// Keyed by rendered label string, so iteration (and therefore
        /// exposition) is deterministic.
        std::map<std::string, Series> series;
    };

    Family &familyLocked(const std::string &name, Kind kind,
                         const std::string &help);
    Series &seriesLocked(Family &family, const MetricLabels &labels);
    void runCollectors() const;

    mutable std::mutex mutex_;
    std::map<std::string, Family> families_;
    std::vector<std::function<void()>> collectors_;
};

} // namespace mixgemm

#endif // MIXGEMM_TELEMETRY_REGISTRY_H
