#include "telemetry/registry.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace mixgemm
{

namespace
{

/**
 * Deterministic shortest-ish double rendering: integral values print
 * without a fractional part (so counters mirrored through gauges stay
 * readable) and everything else uses %.10g, which round-trips the
 * values this plane produces and renders identically for identical
 * bits — the property the byte-identity tests rely on.
 */
std::string
formatDouble(double value)
{
    // Prometheus exposition spells non-finite values NaN/+Inf/-Inf;
    // the %.10g renderings ("nan"/"inf") break scrapers' float parse.
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    char buf[64];
    if (value == static_cast<double>(static_cast<int64_t>(value)) &&
        value >= -1e15 && value <= 1e15) {
        std::snprintf(buf, sizeof(buf), "%" PRId64,
                      static_cast<int64_t>(value));
    } else {
        std::snprintf(buf, sizeof(buf), "%.10g", value);
    }
    return buf;
}

std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

void
appendSample(std::string &out, const std::string &name,
             const std::string &labels, const std::string &value)
{
    out += name;
    if (!labels.empty()) {
        out += '{';
        out += labels;
        out += '}';
    }
    out += ' ';
    out += value;
    out += '\n';
}

/** @p labels with `extra` appended (labels may be empty). */
std::string
withLabel(const std::string &labels, const std::string &extra)
{
    if (labels.empty())
        return extra;
    return labels + "," + extra;
}

} // namespace

std::string
MetricsRegistry::sanitizeName(const std::string &name)
{
    std::string out = name.empty() ? std::string("_") : name;
    for (size_t i = 0; i < out.size(); ++i) {
        const char c = out[i];
        const bool ok_head = std::isalpha(static_cast<unsigned char>(c))
                             || c == '_' || c == ':';
        const bool ok_tail =
            ok_head || std::isdigit(static_cast<unsigned char>(c));
        if (i == 0 ? !ok_head : !ok_tail)
            out[i] = '_';
    }
    return out;
}

std::string
MetricsRegistry::renderLabels(const MetricLabels &labels)
{
    std::string out;
    for (const auto &[key, value] : labels) {
        if (!out.empty())
            out += ',';
        out += sanitizeName(key);
        out += "=\"";
        out += escapeLabelValue(value);
        out += '"';
    }
    return out;
}

MetricsRegistry::Family &
MetricsRegistry::familyLocked(const std::string &name, Kind kind,
                              const std::string &help)
{
    const std::string clean = sanitizeName(name);
    auto [it, inserted] = families_.try_emplace(clean);
    Family &family = it->second;
    if (inserted) {
        family.kind = kind;
        family.help = help;
    } else if (family.kind != kind) {
        panic(strCat("MetricsRegistry: family '", clean,
                     "' registered as two different kinds"));
    } else if (family.help.empty() && !help.empty()) {
        family.help = help;
    }
    return family;
}

MetricsRegistry::Series &
MetricsRegistry::seriesLocked(Family &family, const MetricLabels &labels)
{
    const std::string key = renderLabels(labels);
    auto [it, inserted] = family.series.try_emplace(key);
    if (inserted)
        it->second.labels = labels;
    return it->second;
}

CounterMetric *
MetricsRegistry::counter(const std::string &name, const std::string &help,
                         const MetricLabels &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Series &series =
        seriesLocked(familyLocked(name, Kind::kCounter, help), labels);
    if (!series.counter)
        series.counter = std::make_unique<CounterMetric>();
    return series.counter.get();
}

GaugeMetric *
MetricsRegistry::gauge(const std::string &name, const std::string &help,
                       const MetricLabels &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Series &series =
        seriesLocked(familyLocked(name, Kind::kGauge, help), labels);
    if (!series.gauge)
        series.gauge = std::make_unique<GaugeMetric>();
    return series.gauge.get();
}

HistogramMetric *
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help,
                           const MetricLabels &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Series &series =
        seriesLocked(familyLocked(name, Kind::kHistogram, help), labels);
    if (!series.histogram)
        series.histogram = std::make_unique<HistogramMetric>();
    return series.histogram.get();
}

void
MetricsRegistry::addCollector(std::function<void()> fn)
{
    std::lock_guard<std::mutex> lock(mutex_);
    collectors_.push_back(std::move(fn));
}

void
MetricsRegistry::runCollectors() const
{
    // Copy first: collectors may register metrics (which locks), so
    // they must run without the registry mutex held.
    std::vector<std::function<void()>> collectors;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        collectors = collectors_;
    }
    for (const auto &fn : collectors)
        fn();
}

std::string
MetricsRegistry::renderPrometheus() const
{
    runCollectors();
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const auto &[name, family] : families_) {
        if (!family.help.empty()) {
            out += "# HELP ";
            out += name;
            out += ' ';
            out += family.help;
            out += '\n';
        }
        out += "# TYPE ";
        out += name;
        out += ' ';
        switch (family.kind) {
          case Kind::kCounter: out += "counter"; break;
          case Kind::kGauge: out += "gauge"; break;
          case Kind::kHistogram: out += "summary"; break;
        }
        out += '\n';
        for (const auto &[label_key, series] : family.series) {
            switch (family.kind) {
              case Kind::kCounter:
                appendSample(out, name, label_key,
                             std::to_string(series.counter->value()));
                break;
              case Kind::kGauge:
                appendSample(out, name, label_key,
                             formatDouble(series.gauge->value()));
                break;
              case Kind::kHistogram: {
                const LogHistogram h = series.histogram->snapshot();
                for (const double q : {0.5, 0.95, 0.99}) {
                    appendSample(
                        out, name,
                        withLabel(label_key,
                                  strCat("quantile=\"", formatDouble(q),
                                         "\"")),
                        formatDouble(h.percentile(q * 100.0)));
                }
                appendSample(out, name + "_sum", label_key,
                             std::to_string(h.sum()));
                appendSample(out, name + "_count", label_key,
                             std::to_string(h.count()));
                break;
              }
            }
        }
    }
    return out;
}

std::string
MetricsRegistry::renderVarz() const
{
    runCollectors();
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << "{";
    bool first_family = true;
    for (const auto &[name, family] : families_) {
        os << (first_family ? "\n" : ",\n");
        first_family = false;
        os << "  \"" << name << "\": {\"type\": \"";
        switch (family.kind) {
          case Kind::kCounter: os << "counter"; break;
          case Kind::kGauge: os << "gauge"; break;
          case Kind::kHistogram: os << "summary"; break;
        }
        os << "\", \"series\": [";
        bool first_series = true;
        for (const auto &[label_key, series] : family.series) {
            os << (first_series ? "\n" : ",\n");
            first_series = false;
            os << "    {\"labels\": {";
            bool first_label = true;
            for (const auto &[k, v] : series.labels) {
                os << (first_label ? "" : ", ");
                first_label = false;
                os << "\"" << sanitizeName(k) << "\": \""
                   << escapeLabelValue(v) << "\"";
            }
            os << "}, ";
            switch (family.kind) {
              case Kind::kCounter:
                os << "\"value\": " << series.counter->value();
                break;
              case Kind::kGauge:
                os << "\"value\": "
                   << formatDouble(series.gauge->value());
                break;
              case Kind::kHistogram: {
                const LogHistogram h = series.histogram->snapshot();
                os << "\"count\": " << h.count() << ", \"sum\": "
                   << h.sum() << ", \"p50\": "
                   << formatDouble(h.percentile(50)) << ", \"p95\": "
                   << formatDouble(h.percentile(95)) << ", \"p99\": "
                   << formatDouble(h.percentile(99));
                break;
              }
            }
            os << "}";
        }
        os << (first_series ? "]" : "\n  ]") << "}";
    }
    os << (first_family ? "}" : "\n}") << "\n";
    return os.str();
}

} // namespace mixgemm
