#include "telemetry/flight_recorder.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "trace/json.h"

namespace mixgemm
{

namespace
{

std::string
formatFraction(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    return buf;
}

} // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(std::move(options))
{
    if (options_.decision_ring == 0)
        options_.decision_ring = 1;
    if (options_.report_ring == 0)
        options_.report_ring = 1;
    if (options_.terminal_ring == 0)
        options_.terminal_ring = 1;
}

void
FlightRecorder::recordDecision(uint64_t decision_seq,
                               const std::string &line)
{
    std::lock_guard<std::mutex> lock(mutex_);
    decisions_.emplace_back(decision_seq, line);
    while (decisions_.size() > options_.decision_ring)
        decisions_.pop_front();
}

void
FlightRecorder::recordReport(const RunReport &report)
{
    ReportSummary summary;
    summary.label = report.name;
    summary.config = report.config;
    summary.m = report.m;
    summary.n = report.n;
    summary.k = report.k;
    summary.tenant = report.tenant;
    summary.request_id = report.request_id;
    summary.rung = report.rung;
    summary.kernel = report.kernel;
    summary.kernel_mode = report.kernel_mode;
    summary.weight_source = report.weight_source;
    summary.bytes_packed = report.bytes_packed;
    for (const auto &[name, histogram] : report.timers.all())
        summary.span_counts[name] = histogram.count();

    std::lock_guard<std::mutex> lock(mutex_);
    reports_.push_back(std::move(summary));
    while (reports_.size() > options_.report_ring)
        reports_.pop_front();
}

void
FlightRecorder::pruneWindowLocked(TenantWindow &window, uint64_t now_ns)
{
    const uint64_t horizon =
        now_ns > options_.slo_window_ns ? now_ns - options_.slo_window_ns
                                        : 0;
    while (!window.samples.empty() &&
           window.samples.front().done_ns < horizon) {
        const WindowSample &old = window.samples.front();
        if (old.miss)
            --window.misses;
        window.rung_sum -= old.rung;
        window.samples.pop_front();
    }
}

void
FlightRecorder::recordTerminal(const RequestReport &report,
                               StatusCode code)
{
    TerminalRecord record;
    record.seq = report.seq;
    record.tenant = report.tenant;
    record.code = statusCodeName(code);
    record.priority = report.priority;
    record.tier = report.tier;
    record.worker = report.worker;
    record.attempts = report.attempts;
    record.submit_ns = report.submit_ns;
    if (report.start_ns != 0) {
        record.queue_ns = report.start_ns - report.submit_ns;
        if (report.done_ns >= report.start_ns)
            record.exec_ns = report.done_ns - report.start_ns;
    }

    std::string trigger_reason, trigger_detail;
    uint64_t trigger_now = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        terminals_.push_back(record);
        while (terminals_.size() > options_.terminal_ring)
            terminals_.pop_front();

        // SLO windows track *executed* requests (dispatched to a
        // worker); admission rejections say nothing about delivered
        // latency or precision.
        if (report.start_ns == 0 || report.done_ns == 0)
            return;
        const uint64_t now = report.done_ns;
        const uint64_t latency = now - report.submit_ns;
        const bool miss =
            code == StatusCode::kDeadlineExceeded ||
            (options_.slo_latency_ns != 0 &&
             latency > options_.slo_latency_ns);

        TenantWindow &window = windows_[report.tenant];
        pruneWindowLocked(window, now);
        window.samples.push_back({now, miss, report.tier});
        if (miss)
            ++window.misses;
        window.rung_sum += report.tier;

        if (window.samples.size() < options_.min_window_samples)
            return;
        const double fraction =
            static_cast<double>(window.misses) /
            static_cast<double>(window.samples.size());
        const double mean_rung =
            static_cast<double>(window.rung_sum) /
            static_cast<double>(window.samples.size());
        if (fraction > options_.max_miss_fraction) {
            trigger_reason = "deadline_burn_rate";
            trigger_detail = strCat(
                "tenant=", report.tenant, " miss_fraction=",
                formatFraction(fraction), " window=",
                window.samples.size());
            trigger_now = now;
        } else if (options_.max_mean_rung >= 0.0 &&
                   mean_rung > options_.max_mean_rung) {
            trigger_reason = "precision_slo";
            trigger_detail = strCat(
                "tenant=", report.tenant, " mean_rung=",
                formatFraction(mean_rung), " window=",
                window.samples.size());
            trigger_now = now;
        }
    }
    if (!trigger_reason.empty())
        maybeDump(trigger_reason, trigger_detail, trigger_now,
                  /*ignore_cooldown=*/false);
}

void
FlightRecorder::triggerWatchdog(unsigned worker, uint64_t seq,
                                uint64_t now_ns)
{
    maybeDump("watchdog",
              strCat("worker=", worker, " seq=", seq), now_ns,
              /*ignore_cooldown=*/false);
}

void
FlightRecorder::triggerAbftUncorrectable(uint64_t seq, uint64_t tiles,
                                         uint64_t now_ns)
{
    maybeDump("abft_uncorrectable",
              strCat("seq=", seq, " tiles=", tiles), now_ns,
              /*ignore_cooldown=*/false);
}

void
FlightRecorder::dumpNow(const std::string &reason,
                        const std::string &detail, uint64_t now_ns)
{
    maybeDump(reason, detail, now_ns, /*ignore_cooldown=*/true);
}

void
FlightRecorder::maybeDump(const std::string &reason,
                          const std::string &detail, uint64_t now_ns,
                          bool ignore_cooldown)
{
    std::string prefix;
    size_t index = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        prefix = prepareDumpLocked(reason, detail, now_ns,
                                   ignore_cooldown, index);
    }
    if (!prefix.empty())
        finalizeDump(std::move(prefix), index);
}

std::string
FlightRecorder::prepareDumpLocked(const std::string &reason,
                                  const std::string &detail,
                                  uint64_t now_ns, bool ignore_cooldown,
                                  size_t &index_out)
{
    if (dump_index_ >= options_.max_dumps)
        return "";
    if (!ignore_cooldown && dumped_once_ &&
        now_ns - last_dump_ns_ < options_.dump_cooldown_ns)
        return "";
    last_dump_ns_ = now_ns;
    dumped_once_ = true;
    // Reserve the slot while the gate above is still protected by
    // mutex_; a concurrent trigger at the same instant must see the
    // incremented index, not race to a duplicate one.
    index_out = dump_index_++;

    std::ostringstream os;
    os << "{\n";
    os << "  \"postmortem\": " << index_out << ",\n";
    os << "  \"reason\": \"" << jsonEscape(reason) << "\",\n";
    os << "  \"detail\": \"" << jsonEscape(detail) << "\",\n";
    os << "  \"t_ns\": " << now_ns << ",\n";

    os << "  \"tenants\": {";
    bool first = true;
    for (auto &[tenant, window] : windows_) {
        pruneWindowLocked(window, now_ns);
        os << (first ? "\n" : ",\n");
        first = false;
        const uint64_t count = window.samples.size();
        os << "    \"" << jsonEscape(tenant) << "\": {\"samples\": "
           << count << ", \"misses\": " << window.misses
           << ", \"miss_fraction\": "
           << formatFraction(count ? static_cast<double>(window.misses) /
                                         static_cast<double>(count)
                                   : 0.0)
           << ", \"mean_rung\": "
           << formatFraction(count
                                 ? static_cast<double>(window.rung_sum) /
                                       static_cast<double>(count)
                                 : 0.0)
           << "}";
    }
    os << (first ? "}" : "\n  }") << ",\n";

    os << "  \"decisions\": [";
    first = true;
    for (const auto &[seq, line] : decisions_) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    \"" << jsonEscape(line) << "\"";
    }
    os << (first ? "]" : "\n  ]") << ",\n";

    os << "  \"terminals\": [";
    first = true;
    for (const TerminalRecord &t : terminals_) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"seq\": " << t.seq << ", \"tenant\": \""
           << jsonEscape(t.tenant) << "\", \"code\": \"" << t.code
           << "\", \"prio\": " << t.priority << ", \"tier\": " << t.tier
           << ", \"worker\": " << t.worker << ", \"attempts\": "
           << t.attempts << ", \"submit_ns\": " << t.submit_ns
           << ", \"queue_ns\": " << t.queue_ns << ", \"exec_ns\": "
           << t.exec_ns << "}";
    }
    os << (first ? "]" : "\n  ]") << ",\n";

    os << "  \"reports\": [";
    first = true;
    for (const ReportSummary &r : reports_) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"label\": \"" << jsonEscape(r.label)
           << "\", \"config\": \"" << jsonEscape(r.config)
           << "\", \"m\": " << r.m << ", \"n\": " << r.n << ", \"k\": "
           << r.k << ", \"tenant\": \"" << jsonEscape(r.tenant)
           << "\", \"request_id\": " << r.request_id << ", \"rung\": "
           << r.rung << ", \"kernel\": \"" << jsonEscape(r.kernel)
           << "\", \"kernel_mode\": \"" << jsonEscape(r.kernel_mode)
           << "\", \"weight_source\": \""
           << jsonEscape(r.weight_source) << "\", \"bytes_packed\": "
           << r.bytes_packed << ", \"span_counts\": {";
        bool first_span = true;
        for (const auto &[name, count] : r.span_counts) {
            os << (first_span ? "" : ", ");
            first_span = false;
            os << "\"" << jsonEscape(name) << "\": " << count;
        }
        os << "}}";
    }
    os << (first ? "]" : "\n  ]") << ",\n";
    os << "  \"metrics\": \"";
    return os.str();
}

void
FlightRecorder::finalizeDump(std::string prefix, size_t index)
{
    // Phase 2 runs without mutex_ held: rendering the registry runs
    // its collectors, which may snapshot the server (taking the
    // server's lock) — holding our lock across that would order the
    // two mutexes against the serving hot path.
    std::string metrics;
    if (options_.registry)
        metrics = options_.registry->renderPrometheus();
    std::string bundle = std::move(prefix);
    bundle += jsonEscape(metrics);
    bundle += "\"\n}\n";

    {
        std::lock_guard<std::mutex> lock(mutex_);
        bundles_.push_back(bundle);
    }
    if (!options_.dump_dir.empty()) {
        const std::string path =
            strCat(options_.dump_dir, "/postmortem-", index, ".json");
        std::ofstream os(path, std::ios::trunc);
        if (os)
            os << bundle;
        else
            warn(strCat("FlightRecorder: cannot write '", path, "'"));
    }
}

std::vector<std::string>
FlightRecorder::bundles() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bundles_;
}

size_t
FlightRecorder::dumpCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dump_index_;
}

std::map<std::string, TenantSloStatus>
FlightRecorder::tenantStatus() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, TenantSloStatus> out;
    for (const auto &[tenant, window] : windows_) {
        TenantSloStatus status;
        status.samples = window.samples.size();
        status.misses = window.misses;
        status.miss_fraction =
            status.samples ? static_cast<double>(status.misses) /
                                 static_cast<double>(status.samples)
                           : 0.0;
        status.mean_rung =
            status.samples ? static_cast<double>(window.rung_sum) /
                                 static_cast<double>(status.samples)
                           : 0.0;
        out.emplace(tenant, status);
    }
    return out;
}

} // namespace mixgemm
