/**
 * @file
 * ServeTelemetry: wires the serving stack into the telemetry plane.
 *
 * One instance implements ServeObserver (decision log, terminals,
 * watchdog, ABFT), consumes TraceSession RunReports through the report
 * sink, and registers a pull collector that snapshots
 * InferenceServer::stats() into labeled metric families on every
 * render. It owns no subsystem — registry, recorder, server and
 * session all outlive it by contract.
 *
 * Exported families (all prefixed mixgemm_):
 *   serve_* counters/gauges     admission, terminals, degradation,
 *                               watchdog, lazy-rung pool (model label)
 *   serve_class_total           per-priority-class terminal accounting
 *   serve_completed_total       ok completions per delivered rung
 *   serve_latency_ns            queue/exec/total latency summaries
 *   tenant_requests_total       terminals per tenant and status code
 *   tenant_latency_ns           per-tenant total-latency summary
 *   tenant_slo_*                per-tenant SLO window (via recorder)
 *   pack_*_total                packing/adoption work since attach
 *   gemm_*                      per-config GEMM counts, ops, counters
 *                               (ABFT verdicts included)
 *   gemm_gops / roofline        achieved GMACs/s vs the autotuned
 *                               kernel's measured peak (wall mode only)
 *   postmortem_dumps_total      flight-recorder dumps
 *
 * Determinism: with include_wall_metrics = false (VirtualClock pump
 * mode) every wall-derived family (roofline, achieved gops) is
 * suppressed, so two same-seed soaks render byte-identical
 * expositions. Pack counters are exported as deltas from a baseline
 * captured at construction, so process-global packing history cannot
 * leak between runs.
 */

#ifndef MIXGEMM_TELEMETRY_SERVE_TELEMETRY_H
#define MIXGEMM_TELEMETRY_SERVE_TELEMETRY_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "gemm/kernels/autotune.h"
#include "serve/server.h"
#include "telemetry/exporter.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/registry.h"
#include "tensor/packing.h"
#include "trace/session.h"

namespace mixgemm
{

/** Construction knobs; registry is required, the rest optional. */
struct ServeTelemetryOptions
{
    MetricsRegistry *registry = nullptr; ///< required, not owned
    FlightRecorder *recorder = nullptr;  ///< optional, not owned
    /** Autotuner measurements: per-config measured peak GOPS for the
     * roofline gauge. Optional; without it the peak is the running max
     * of achieved throughput per config. Not owned. */
    const TuningSet *tuning = nullptr;
    /** False under VirtualClock pump mode: suppress every wall-derived
     * family so renders are deterministic. */
    bool include_wall_metrics = true;
    std::string model = "default"; ///< model label on serve_* families
};

/** See the file comment. */
class ServeTelemetry : public ServeObserver
{
  public:
    explicit ServeTelemetry(ServeTelemetryOptions options);

    ServeTelemetry(const ServeTelemetry &) = delete;
    ServeTelemetry &operator=(const ServeTelemetry &) = delete;

    /**
     * Install this instance as @p server's observer and register the
     * stats collector. Call before traffic; the server must outlive
     * this object's attachment (detach with server.setObserver(nullptr)
     * before destroying either).
     */
    void attachServer(InferenceServer *server);

    /**
     * Route @p session's RunReports into onRunReport (and the flight
     * recorder). @p keep_reports false stops the session accumulating
     * reports — the right setting for long soaks.
     */
    void attachSession(TraceSession *session, bool keep_reports = true);

    // ServeObserver
    void onDecision(uint64_t decision_seq,
                    const std::string &line) override;
    void onTerminal(const RequestReport &report,
                    StatusCode code) override;
    void onWatchdogCancel(unsigned worker, uint64_t seq,
                          uint64_t now_ns) override;
    void onAbftUncorrectable(uint64_t seq, uint64_t tiles,
                             uint64_t now_ns) override;

    /** One GEMM RunReport (fed by the session sink). */
    void onRunReport(const RunReport &report);

    /** Pull snapshot: server stats, latency summaries, pack counters,
     * SLO gauges. Runs automatically on every render once
     * attachServer() registered the collector. */
    void sync();

    /**
     * Liveness verdict for the /healthz endpoint
     * (HttpExporterOptions::health): degraded while any circuit
     * breaker is open or any worker backend is quarantined, with a
     * reason naming the counts. Thread-safe.
     */
    HealthReport healthReport() const;

  private:
    CounterMetric *serveCounter(const std::string &name,
                                const std::string &help);

    ServeTelemetryOptions options_;
    InferenceServer *server_ = nullptr;
    PackCounters pack_baseline_;

    // Hot-path cache: per-config series pointers so onRunReport does
    // one map lookup instead of re-rendering label strings per metric.
    struct ConfigSeries
    {
        CounterMetric *gemms = nullptr;
        CounterMetric *ops = nullptr;
        std::map<std::string, CounterMetric *> counters;
        GaugeMetric *gops = nullptr;
        GaugeMetric *peak_gops = nullptr;
        GaugeMetric *efficiency = nullptr;
        double peak_seen = 0.0; ///< running max fallback
    };

    std::mutex mutex_; ///< guards config_series_ and abft counters
    std::map<std::string, ConfigSeries> config_series_;
    CounterMetric *abft_uncorrectable_events_ = nullptr;
};

} // namespace mixgemm

#endif // MIXGEMM_TELEMETRY_SERVE_TELEMETRY_H
