/**
 * @file
 * Metrics exposition transports: an embedded HTTP listener and an
 * interval file writer, both over a MetricsRegistry.
 *
 * The HTTP server is deliberately minimal — blocking sockets, one
 * connection at a time, GET only — because its job is to let a
 * Prometheus scraper or a curl invocation read three endpoints:
 *
 *   /metrics   Prometheus text exposition (format 0.0.4)
 *   /healthz   "ok" liveness probe
 *   /varz      the same series as JSON
 *
 * It binds 127.0.0.1 by default (telemetry is not an ingress surface)
 * and supports port 0 for an ephemeral port, reported by port().
 *
 * The file exporter renders the exposition to <path> every interval
 * via write-to-temp + rename, so a reader never observes a torn file.
 * Deployments without a scraper tail the file instead.
 */

#ifndef MIXGEMM_TELEMETRY_EXPORTER_H
#define MIXGEMM_TELEMETRY_EXPORTER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "telemetry/registry.h"

namespace mixgemm
{

/** What /healthz should report. */
struct HealthReport
{
    bool healthy = true;
    std::string reason; ///< why degraded (empty when healthy)
};

/** HTTP listener knobs. */
struct HttpExporterOptions
{
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0; ///< 0 = ephemeral (read back via port())
    /**
     * Health callback consulted on every /healthz hit. A degraded
     * report turns the endpoint into HTTP 503 with a JSON body naming
     * the reason, so an orchestrator's probe takes the instance out of
     * rotation while (say) a circuit breaker is open or a backend is
     * quarantined. Null — the default — always reports healthy. Must
     * be thread-safe; runs on the serve thread.
     */
    std::function<HealthReport()> health;
};

/** See the file comment. */
class MetricsHttpServer
{
  public:
    /** Bind + listen + start the accept thread. */
    static Expected<std::unique_ptr<MetricsHttpServer>>
    start(MetricsRegistry *registry, HttpExporterOptions options = {});

    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    /** The bound TCP port (resolved when options.port was 0). */
    uint16_t port() const { return port_; }

    /** Stop accepting and join the serving thread. Idempotent. */
    void stop();

  private:
    MetricsHttpServer(MetricsRegistry *registry, int listen_fd,
                      uint16_t port,
                      std::function<HealthReport()> health);

    void serveLoop();
    void handleConnection(int fd);

    MetricsRegistry *registry_;
    std::function<HealthReport()> health_;
    int listen_fd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread thread_;
};

/** See the file comment. */
class MetricsFileExporter
{
  public:
    /**
     * Write @p registry's exposition to @p path every @p interval.
     * An interval of zero disables the thread — call writeOnce()
     * manually (the mode deterministic tests use).
     */
    MetricsFileExporter(MetricsRegistry *registry, std::string path,
                        std::chrono::milliseconds interval =
                            std::chrono::milliseconds(0));
    ~MetricsFileExporter();

    MetricsFileExporter(const MetricsFileExporter &) = delete;
    MetricsFileExporter &operator=(const MetricsFileExporter &) = delete;

    /** Render and atomically replace the file now. */
    Status writeOnce();

    /** Stop the interval thread (final write included). Idempotent. */
    void stop();

    const std::string &path() const { return path_; }

  private:
    MetricsRegistry *registry_;
    std::string path_;
    std::chrono::milliseconds interval_;
    std::atomic<bool> stopping_{false};
    std::mutex wake_mutex_;
    std::condition_variable wake_cv_;
    std::thread thread_;
};

} // namespace mixgemm

#endif // MIXGEMM_TELEMETRY_EXPORTER_H
