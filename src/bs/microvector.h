/**
 * @file
 * μ-vector memory format.
 *
 * The Mix-GEMM software library keeps matrices compressed: a μ-vector is a
 * single 64-bit word packing floor(64 / bw) narrow elements along the GEMM
 * k dimension (8-bit -> 8 elements, ..., 2-bit -> 32 elements). Elements
 * are stored as bw-bit two's-complement (or unsigned) fields, element i at
 * bit position bw * i. Unused high bits are zero.
 */

#ifndef MIXGEMM_BS_MICROVECTOR_H
#define MIXGEMM_BS_MICROVECTOR_H

#include <cstdint>
#include <span>
#include <vector>

namespace mixgemm
{

/** Number of elements a 64-bit μ-vector packs for a given bitwidth. */
constexpr unsigned
elemsPerMicroVector(unsigned bw)
{
    return 64 / bw;
}

/**
 * Pack up to elemsPerMicroVector(bw) values into one μ-vector word.
 * Values must fit the (bw, is_signed) range; out-of-range input is a
 * caller bug and triggers panic(). Missing trailing elements pack as 0.
 */
uint64_t packMicroVector(std::span<const int32_t> elems, unsigned bw,
                         bool is_signed);

/**
 * Unpack @p count elements (default: all) from a μ-vector word.
 * @param count number of leading elements to extract.
 */
std::vector<int32_t> unpackMicroVector(uint64_t word, unsigned bw,
                                       bool is_signed, unsigned count);

/** Unpack element @p index from a μ-vector word. */
int32_t microVectorElement(uint64_t word, unsigned bw, bool is_signed,
                           unsigned index);

/**
 * Unpack @p count elements into a caller-owned buffer of at least
 * @p count entries — the zero-allocation path the modeled μ-engine
 * fills its preallocated group buffers with.
 */
void unpackMicroVectorTo(uint64_t word, unsigned bw, bool is_signed,
                         unsigned count, int32_t *out);

/**
 * Append @p count unpacked elements to @p out with one resize and
 * indexed writes (no per-element push_back growth checks).
 */
void unpackMicroVectorInto(uint64_t word, unsigned bw, bool is_signed,
                           unsigned count, std::vector<int32_t> &out);

/**
 * Pack a full stream of values into consecutive μ-vectors; the last word
 * is zero-padded. Returns ceil(elems.size() / elemsPerMicroVector(bw))
 * words.
 */
std::vector<uint64_t> packMicroVectorStream(std::span<const int32_t> elems,
                                            unsigned bw, bool is_signed);

} // namespace mixgemm

#endif // MIXGEMM_BS_MICROVECTOR_H
