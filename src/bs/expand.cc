#include "bs/expand.h"

#include "common/logging.h"

namespace mixgemm
{

GroupExpansionPlan
makeExpansionPlan(const BsGeometry &geometry)
{
    GroupExpansionPlan plan;
    const auto schedule = dsuChunkSchedule(geometry);
    plan.chunks.reserve(schedule.size());
    const unsigned na = geometry.elems_per_avec;
    const unsigned nb = geometry.elems_per_bvec;
    unsigned pos = 0;
    for (const unsigned len : schedule) {
        ExpansionChunk c;
        c.len = len;
        c.a_word = pos / na;
        c.a_shift = geometry.config.bwa * (pos % na);
        c.b_word = pos / nb;
        c.b_shift = geometry.config.bwb * (pos % nb);
        // The schedule guarantees chunks stay within one μ-vector of
        // each operand; a violation would silently mix elements.
        if (pos % na + len > na || pos % nb + len > nb)
            panic("expansion plan: chunk crosses a μ-vector boundary");
        plan.chunks.push_back(c);
        pos += len;
    }
    if (pos != geometry.group_extent)
        panic("expansion plan: schedule does not cover the group");
    return plan;
}

void
expandGroupA(const uint64_t *words, const BsGeometry &geometry,
             const GroupExpansionPlan &plan, uint64_t *out)
{
    for (size_t c = 0; c < plan.chunks.size(); ++c) {
        const ExpansionChunk &chunk = plan.chunks[c];
        out[c] = expandClusterA(words[chunk.a_word] >> chunk.a_shift,
                                chunk.len, geometry);
    }
}

void
expandGroupB(const uint64_t *words, const BsGeometry &geometry,
             const GroupExpansionPlan &plan, uint64_t *out)
{
    for (size_t c = 0; c < plan.chunks.size(); ++c) {
        const ExpansionChunk &chunk = plan.chunks[c];
        out[c] = expandClusterB(words[chunk.b_word] >> chunk.b_shift,
                                chunk.len, geometry);
    }
}

} // namespace mixgemm
