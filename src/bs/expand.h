/**
 * @file
 * Word-domain fast path: bw -> cw lane-widening expansion.
 *
 * The modeled μ-engine unpacks every packed μ-vector element-by-element
 * and re-packs the elements into cw-spaced input-clusters one shift-add
 * at a time. That round trip is pure software overhead — the data never
 * needs to leave the word domain. This module converts a packed
 * μ-vector word *directly* into the cw-spaced cluster word(s) the
 * multiplier consumes, with shifts and masks only:
 *
 *   cluster = spread(raw fields, bw -> cw)              (unsigned)
 *   cluster = spread(raw) - (spread(sign bits) << bw)   (signed)
 *
 * The signed identity holds because each raw bw-bit field u_i encodes
 * the value v_i = u_i - 2^bw * s_i (s_i the sign bit), so
 *
 *   sum v_i * 2^(cw*i) = sum u_i * 2^(cw*i) - 2^bw * sum s_i * 2^(cw*i)
 *
 * — exactly the signed integer sum packClusterA()/packClusterB() compute
 * per element (and what the hardware's sign-extending DCU produces), so
 * the downstream borrow-correcting slice extraction is unchanged and the
 * fast path is bit-identical to the modeled one by construction.
 *
 * A GroupExpansionPlan precomputes, per DSU chunk of an accumulation
 * group, which μ-vector supplies the chunk and at which bit offset
 * (chunks never cross μ-vector boundaries), so a whole group expands
 * with no per-element state.
 */

#ifndef MIXGEMM_BS_EXPAND_H
#define MIXGEMM_BS_EXPAND_H

#include <cstdint>
#include <span>
#include <vector>

#include "bs/cluster.h"
#include "bs/geometry.h"
#include "common/bitutils.h"

namespace mixgemm
{

/**
 * Expand the low @p len bw-spaced fields of a (pre-shifted) A μ-vector
 * word into one cw-spaced cluster word, element i at position i
 * (ascending, the packClusterA() layout). Produces the exact signed sum
 * mod 2^64 for signed geometries.
 */
inline uint64_t
expandClusterA(uint64_t word, unsigned len, const BsGeometry &geometry)
{
    const unsigned bw = geometry.config.bwa;
    const unsigned cw = geometry.cw;
    const uint64_t field = mask64(bw);
    uint64_t spread = 0;
    for (unsigned i = 0; i < len; ++i)
        spread |= ((word >> (bw * i)) & field) << (cw * i);
    if (geometry.config.a_signed) {
        uint64_t signs = 0;
        for (unsigned i = 0; i < len; ++i)
            signs |= ((word >> (bw * i + bw - 1)) & 1) << (cw * i);
        spread -= signs << bw;
    }
    return spread;
}

/**
 * Expand the low @p len bw-spaced fields of a (pre-shifted) B μ-vector
 * word into one cw-spaced cluster word, element j at position
 * cluster_size - 1 - j (reversed, the packClusterB() layout).
 */
inline uint64_t
expandClusterB(uint64_t word, unsigned len, const BsGeometry &geometry)
{
    const unsigned bw = geometry.config.bwb;
    const unsigned cw = geometry.cw;
    const unsigned top = geometry.cluster_size - 1;
    const uint64_t field = mask64(bw);
    uint64_t spread = 0;
    for (unsigned j = 0; j < len; ++j)
        spread |= ((word >> (bw * j)) & field) << (cw * (top - j));
    if (geometry.config.b_signed) {
        uint64_t signs = 0;
        for (unsigned j = 0; j < len; ++j)
            signs |= ((word >> (bw * j + bw - 1)) & 1)
                     << (cw * (top - j));
        spread -= signs << bw;
    }
    return spread;
}

/**
 * Per-chunk source coordinates of one accumulation group: which A/B
 * μ-vector feeds the chunk and at which bit offset within the word.
 * Valid because the DSU chunk schedule never crosses a μ-vector
 * boundary of either operand.
 */
struct ExpansionChunk
{
    unsigned len;     ///< elements in this chunk
    unsigned a_word;  ///< A μ-vector index within the group [0, kua)
    unsigned a_shift; ///< bit offset of the chunk's first A element
    unsigned b_word;  ///< B μ-vector index within the group [0, kub)
    unsigned b_shift; ///< bit offset of the chunk's first B element
};

/** Precomputed whole-group expansion recipe for one geometry. */
struct GroupExpansionPlan
{
    std::vector<ExpansionChunk> chunks;

    /** Cluster words produced per operand per accumulation group. */
    unsigned chunkCount() const
    {
        return static_cast<unsigned>(chunks.size());
    }
};

/** Build the expansion plan from the DSU chunk schedule. */
GroupExpansionPlan makeExpansionPlan(const BsGeometry &geometry);

/**
 * Expand one accumulation group of A μ-vectors (@p words, kua entries)
 * into its @p plan.chunkCount() cluster words.
 */
void expandGroupA(const uint64_t *words, const BsGeometry &geometry,
                  const GroupExpansionPlan &plan, uint64_t *out);

/** B-operand counterpart of expandGroupA (kub words, reversed layout). */
void expandGroupB(const uint64_t *words, const BsGeometry &geometry,
                  const GroupExpansionPlan &plan, uint64_t *out);

/**
 * Inner product of pre-expanded cluster-word streams: @p chunks
 * multiply/extract cycles, identical arithmetic to the modeled engine's
 * finishGroup() chunk loop. This is the whole per-cell work of the fast
 * μ-kernel.
 *
 * The loop computes extractInnerProduct(clusterMultiply(...)) with
 * 64-bit operations only: slice_msb = cluster_size * cw - 1 <= 63
 * (Eq. 4 — the cluster fits the multiplier), so the extracted slice
 * and its borrow bit live entirely in the low product half, and the
 * low 64 bits of a 64 x 64 multiply are the same for every signedness
 * combination. One plain multiply per chunk, no 128-bit arithmetic.
 */
inline int64_t
clusterPanelDot(const uint64_t *cluster_a, const uint64_t *cluster_b,
                unsigned chunks, const BsGeometry &geometry)
{
    const unsigned lsb = geometry.slice_lsb;
    const unsigned cw = geometry.cw;
    const bool any_signed =
        geometry.config.a_signed || geometry.config.b_signed;
    int64_t acc = 0;
    if (!any_signed) {
        const uint64_t field = mask64(cw);
        for (unsigned c = 0; c < chunks; ++c)
            acc += static_cast<int64_t>(
                (cluster_a[c] * cluster_b[c] >> lsb) & field);
    } else if (lsb > 0) {
        // Two shifts sign-extend the slice (lift slice_msb to bit 63,
        // arithmetic shift back); the borrow adds *after* extension.
        // That reorder is exact: slice + borrow is the true chunk inner
        // product, whose magnitude is strictly below 2^(cw - 1) (the
        // coefficient headroom of Eq. 3), so the one diverging case —
        // slice + borrow carrying into the sign bit at +2^(cw - 1) —
        // cannot occur.
        const unsigned up = 64 - lsb - cw; // slice_msb <= 63 by Eq. 4
        const unsigned down = 64 - cw;
        const unsigned borrow = lsb - 1;
        int64_t acc1 = 0;
        unsigned c = 0;
        for (; c + 2 <= chunks; c += 2) {
            const uint64_t p0 = cluster_a[c] * cluster_b[c];
            const uint64_t p1 = cluster_a[c + 1] * cluster_b[c + 1];
            acc += (static_cast<int64_t>(p0 << up) >> down) +
                   static_cast<int64_t>((p0 >> borrow) & 1);
            acc1 += (static_cast<int64_t>(p1 << up) >> down) +
                    static_cast<int64_t>((p1 >> borrow) & 1);
        }
        for (; c < chunks; ++c) {
            const uint64_t p = cluster_a[c] * cluster_b[c];
            acc += (static_cast<int64_t>(p << up) >> down) +
                   static_cast<int64_t>((p >> borrow) & 1);
        }
        acc += acc1;
    } else {
        for (unsigned c = 0; c < chunks; ++c)
            acc += signExtend64(cluster_a[c] * cluster_b[c], cw);
    }
    return acc;
}

} // namespace mixgemm

#endif // MIXGEMM_BS_EXPAND_H
