#include "bs/geometry.h"

#include <algorithm>
#include <tuple>

#include "common/bitutils.h"
#include "common/logging.h"

namespace mixgemm
{

std::string
DataSizeConfig::name() const
{
    return strCat("a", bwa, "-w", bwb);
}

double
BsGeometry::macsPerCycle() const
{
    if (group_cycles == 0)
        return 0.0;
    return static_cast<double>(group_extent) /
           static_cast<double>(group_cycles);
}

double
BsGeometry::paddingOverhead() const
{
    // Reference: fully-packed μ-vectors (floor(64/bw) elements per
    // word, the paper's "maximum theoretical memory compression");
    // overhead is the extra zero-padded element slots the kua/kub
    // grouping introduces on top of that.
    const double ideal_words =
        static_cast<double>(group_extent) / elems_per_avec +
        static_cast<double>(group_extent) / elems_per_bvec;
    return static_cast<double>(kua + kub) / ideal_words - 1.0;
}

unsigned
clusterSizeFor(unsigned bwa, unsigned bwb, unsigned mul_width)
{
    unsigned best = 0;
    for (unsigned n = 1; n <= mul_width; ++n) {
        const unsigned cw = 1 + bwa + bwb + ceilLog2(n + 1);
        if (n * cw <= mul_width)
            best = n;
        else
            break;
    }
    return best;
}

std::pair<unsigned, unsigned>
selectKu(const DataSizeConfig &config, unsigned max_ku)
{
    const unsigned elems_a = 64 / config.bwa;
    const unsigned elems_b = 64 / config.bwb;
    unsigned best_kua = 1;
    unsigned best_kub = 1;
    double best_overhead = 1e300;
    unsigned best_extent = 0;
    for (unsigned kua = 1; kua <= max_ku; ++kua) {
        for (unsigned kub = 1; kub <= max_ku; ++kub) {
            const unsigned extent =
                std::min(kua * elems_a, kub * elems_b);
            const double ideal_words =
                static_cast<double>(extent) / elems_a +
                static_cast<double>(extent) / elems_b;
            const double overhead =
                static_cast<double>(kua + kub) / ideal_words - 1.0;
            if (overhead < best_overhead - 1e-12 ||
                (overhead < best_overhead + 1e-12 &&
                 extent > best_extent)) {
                best_overhead = overhead;
                best_extent = extent;
                best_kua = kua;
                best_kub = kub;
            }
        }
    }
    return {best_kua, best_kub};
}

Expected<BsGeometry>
tryComputeBsGeometry(const DataSizeConfig &config, unsigned mul_width,
                     unsigned max_ku)
{
    if (config.bwa < 2 || config.bwa > 8 || config.bwb < 2 || config.bwb > 8)
        return Status::invalidArgument(
            strCat("unsupported data sizes ", config.name(),
                   ": bitwidths must be in [2, 8]"));
    if (mul_width < 8 || mul_width > 64)
        return Status::invalidArgument(
            strCat("unsupported multiplier width ", mul_width));
    if (max_ku == 0)
        return Status::invalidArgument(
            "computeBsGeometry: max_ku must be positive");

    BsGeometry g;
    g.config = config;
    g.mul_width = mul_width;
    g.cluster_size = clusterSizeFor(config.bwa, config.bwb, mul_width);
    if (g.cluster_size == 0)
        return Status::failedPrecondition(
            strCat("no feasible input-cluster for ", config.name(),
                   " on a ", mul_width, "-bit multiplier"));
    g.cw = 1 + config.bwa + config.bwb + ceilLog2(g.cluster_size + 1);
    g.slice_lsb = (g.cluster_size - 1) * g.cw;
    g.slice_msb = g.slice_lsb + g.cw - 1;
    g.elems_per_avec = 64 / config.bwa;
    g.elems_per_bvec = 64 / config.bwb;
    std::tie(g.kua, g.kub) = selectKu(config, max_ku);
    g.group_pairs = std::max(g.kua, g.kub);
    g.group_extent = std::min(g.kua * g.elems_per_avec,
                              g.kub * g.elems_per_bvec);
    g.group_cycles = static_cast<unsigned>(dsuChunkSchedule(g).size());
    return g;
}

BsGeometry
computeBsGeometry(const DataSizeConfig &config, unsigned mul_width,
                  unsigned max_ku)
{
    Expected<BsGeometry> geometry =
        tryComputeBsGeometry(config, mul_width, max_ku);
    if (!geometry.ok())
        fatal(geometry.status().toString());
    return *geometry;
}

std::vector<unsigned>
dsuChunkSchedule(const BsGeometry &geometry)
{
    std::vector<unsigned> chunks;
    const unsigned extent = geometry.group_extent;
    const unsigned na = geometry.elems_per_avec;
    const unsigned nb = geometry.elems_per_bvec;
    unsigned pos = 0;
    while (pos < extent) {
        const unsigned to_a_boundary = na - pos % na;
        const unsigned to_b_boundary = nb - pos % nb;
        const unsigned chunk =
            std::min({geometry.cluster_size, to_a_boundary, to_b_boundary,
                      extent - pos});
        chunks.push_back(chunk);
        pos += chunk;
    }
    return chunks;
}

BsGeometry
geometryForK(const BsGeometry &geometry, uint64_t k)
{
    if (k == 0)
        fatal("geometryForK: k must be positive");
    if (k >= geometry.group_extent)
        return geometry;
    BsGeometry g = geometry;
    g.group_extent = static_cast<unsigned>(k);
    g.kua = static_cast<unsigned>(divCeil(k, g.elems_per_avec));
    g.kub = static_cast<unsigned>(divCeil(k, g.elems_per_bvec));
    g.group_pairs = std::max(g.kua, g.kub);
    g.group_cycles = static_cast<unsigned>(dsuChunkSchedule(g).size());
    return g;
}

std::vector<DataSizeConfig>
allSupportedConfigs(bool signed_data)
{
    std::vector<DataSizeConfig> configs;
    for (unsigned bwa = 8; bwa >= 2; --bwa) {
        for (unsigned bwb = 8; bwb >= 2; --bwb) {
            DataSizeConfig c;
            c.bwa = bwa;
            c.bwb = bwb;
            c.a_signed = signed_data;
            c.b_signed = signed_data;
            configs.push_back(c);
        }
    }
    return configs;
}

} // namespace mixgemm
