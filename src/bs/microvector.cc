#include "bs/microvector.h"

#include "common/bitutils.h"
#include "common/logging.h"

namespace mixgemm
{

uint64_t
packMicroVector(std::span<const int32_t> elems, unsigned bw, bool is_signed)
{
    const unsigned capacity = elemsPerMicroVector(bw);
    if (elems.size() > capacity)
        panic(strCat("packMicroVector: ", elems.size(),
                     " elements exceed capacity ", capacity));
    uint64_t word = 0;
    for (size_t i = 0; i < elems.size(); ++i) {
        const int32_t v = elems[i];
        const bool ok = is_signed ? fitsSigned(v, bw)
                                  : (v >= 0 && fitsUnsigned(v, bw));
        if (!ok)
            panic(strCat("packMicroVector: value ", v, " does not fit ",
                         is_signed ? "signed " : "unsigned ", bw, " bits"));
        word |= (static_cast<uint64_t>(static_cast<uint32_t>(v)) &
                 mask64(bw)) << (bw * i);
    }
    return word;
}

int32_t
microVectorElement(uint64_t word, unsigned bw, bool is_signed,
                   unsigned index)
{
    const uint64_t raw = (word >> (bw * index)) & mask64(bw);
    return is_signed ? static_cast<int32_t>(signExtend64(raw, bw))
                     : static_cast<int32_t>(raw);
}

std::vector<int32_t>
unpackMicroVector(uint64_t word, unsigned bw, bool is_signed, unsigned count)
{
    if (count > elemsPerMicroVector(bw))
        panic("unpackMicroVector: count exceeds capacity");
    std::vector<int32_t> elems(count);
    for (unsigned i = 0; i < count; ++i)
        elems[i] = microVectorElement(word, bw, is_signed, i);
    return elems;
}

void
unpackMicroVectorTo(uint64_t word, unsigned bw, bool is_signed,
                    unsigned count, int32_t *out)
{
    if (count > elemsPerMicroVector(bw))
        panic("unpackMicroVectorTo: count exceeds capacity");
    for (unsigned i = 0; i < count; ++i)
        out[i] = microVectorElement(word, bw, is_signed, i);
}

void
unpackMicroVectorInto(uint64_t word, unsigned bw, bool is_signed,
                      unsigned count, std::vector<int32_t> &out)
{
    // One resize + indexed writes: no per-element growth checks, and a
    // caller that reserve()d pays no allocation at all.
    const size_t base = out.size();
    out.resize(base + count);
    unpackMicroVectorTo(word, bw, is_signed, count, out.data() + base);
}

std::vector<uint64_t>
packMicroVectorStream(std::span<const int32_t> elems, unsigned bw,
                      bool is_signed)
{
    const unsigned capacity = elemsPerMicroVector(bw);
    std::vector<uint64_t> words;
    words.reserve((elems.size() + capacity - 1) / capacity);
    for (size_t base = 0; base < elems.size(); base += capacity) {
        const size_t n = std::min<size_t>(capacity, elems.size() - base);
        words.push_back(packMicroVector(elems.subspan(base, n), bw,
                                        is_signed));
    }
    return words;
}

} // namespace mixgemm
