#include "bs/cluster.h"

#include "common/logging.h"

namespace mixgemm
{

namespace
{

/** Pack values at the given cw-spaced positions as an exact signed sum. */
uint64_t
packAtPositions(std::span<const int32_t> elems, const BsGeometry &geometry,
                bool reversed)
{
    if (elems.size() > geometry.cluster_size)
        panic("cluster chunk larger than input-cluster size");
    int64_t value = 0;
    for (size_t i = 0; i < elems.size(); ++i) {
        const unsigned pos = reversed
            ? geometry.cluster_size - 1 - static_cast<unsigned>(i)
            : static_cast<unsigned>(i);
        value += static_cast<int64_t>(elems[i]) << (geometry.cw * pos);
    }
    return static_cast<uint64_t>(value);
}

} // namespace

uint64_t
packClusterA(std::span<const int32_t> elems, const BsGeometry &geometry)
{
    return packAtPositions(elems, geometry, false);
}

uint64_t
packClusterB(std::span<const int32_t> elems, const BsGeometry &geometry)
{
    return packAtPositions(elems, geometry, true);
}

int128
clusterMultiply(uint64_t cluster_a, uint64_t cluster_b,
                const BsGeometry &geometry)
{
    // The μ-engine reuses the scalar multiplier, which produces a full
    // 128-bit product; signedness selects between MUL/MULH[S]U pairs.
    const int128 a = geometry.config.a_signed
        ? static_cast<int128>(static_cast<int64_t>(cluster_a))
        : static_cast<int128>(cluster_a);
    const int128 b = geometry.config.b_signed
        ? static_cast<int128>(static_cast<int64_t>(cluster_b))
        : static_cast<int128>(cluster_b);
    return a * b;
}

int64_t
extractInnerProduct(int128 product, const BsGeometry &geometry)
{
    const uint128 bits = static_cast<uint128>(product);
    uint64_t slice =
        bitSlice128(bits, geometry.slice_msb, geometry.slice_lsb);
    const bool any_signed =
        geometry.config.a_signed || geometry.config.b_signed;
    if (any_signed) {
        // Borrow correction: coefficients below the slice can be negative;
        // when their packed sum is negative the raw slice reads coeff - 1.
        // Because each lower coefficient fits in cw - 1 magnitude bits, the
        // lower part's sign is exactly the bit just below the slice.
        if (geometry.slice_lsb > 0) {
            const unsigned borrow_bit = geometry.slice_lsb - 1;
            slice += static_cast<uint64_t>((bits >> borrow_bit) & 1);
        }
        return signExtend64(slice, geometry.cw);
    }
    return static_cast<int64_t>(slice);
}

int64_t
extractInnerProductExact(int128 product, const BsGeometry &geometry)
{
    const bool any_signed =
        geometry.config.a_signed || geometry.config.b_signed;
    int128 p = product;
    int64_t coeff = 0;
    for (unsigned k = 0; k < geometry.cluster_size; ++k) {
        const uint64_t raw = static_cast<uint64_t>(
            static_cast<uint128>(p) & mask128(geometry.cw));
        coeff = any_signed ? signExtend64(raw, geometry.cw)
                           : static_cast<int64_t>(raw);
        p = (p - coeff) >> geometry.cw;
    }
    return coeff;
}

int64_t
clusterInnerProduct(std::span<const int32_t> a, std::span<const int32_t> b,
                    const BsGeometry &geometry)
{
    if (a.size() != b.size())
        panic("cluster chunk size mismatch");
    const uint64_t ca = packClusterA(a, geometry);
    const uint64_t cb = packClusterB(b, geometry);
    return extractInnerProduct(clusterMultiply(ca, cb, geometry), geometry);
}

} // namespace mixgemm
