#include "bs/cluster.h"

#include "common/logging.h"

namespace mixgemm
{

namespace
{

/** Pack values at the given cw-spaced positions as an exact signed sum. */
uint64_t
packAtPositions(std::span<const int32_t> elems, const BsGeometry &geometry,
                bool reversed)
{
    if (elems.size() > geometry.cluster_size)
        panic("cluster chunk larger than input-cluster size");
    int64_t value = 0;
    for (size_t i = 0; i < elems.size(); ++i) {
        const unsigned pos = reversed
            ? geometry.cluster_size - 1 - static_cast<unsigned>(i)
            : static_cast<unsigned>(i);
        value += static_cast<int64_t>(elems[i]) << (geometry.cw * pos);
    }
    return static_cast<uint64_t>(value);
}

} // namespace

uint64_t
packClusterA(std::span<const int32_t> elems, const BsGeometry &geometry)
{
    return packAtPositions(elems, geometry, false);
}

uint64_t
packClusterB(std::span<const int32_t> elems, const BsGeometry &geometry)
{
    return packAtPositions(elems, geometry, true);
}

int64_t
extractInnerProductExact(int128 product, const BsGeometry &geometry)
{
    const bool any_signed =
        geometry.config.a_signed || geometry.config.b_signed;
    int128 p = product;
    int64_t coeff = 0;
    for (unsigned k = 0; k < geometry.cluster_size; ++k) {
        const uint64_t raw = static_cast<uint64_t>(
            static_cast<uint128>(p) & mask128(geometry.cw));
        coeff = any_signed ? signExtend64(raw, geometry.cw)
                           : static_cast<int64_t>(raw);
        p = (p - coeff) >> geometry.cw;
    }
    return coeff;
}

int64_t
clusterInnerProduct(std::span<const int32_t> a, std::span<const int32_t> b,
                    const BsGeometry &geometry)
{
    if (a.size() != b.size())
        panic("cluster chunk size mismatch");
    const uint64_t ca = packClusterA(a, geometry);
    const uint64_t cb = packClusterB(b, geometry);
    return extractInnerProduct(clusterMultiply(ca, cb, geometry), geometry);
}

} // namespace mixgemm
