/**
 * @file
 * Binary-segmentation geometry: Eq. (3)-(7) of the Mix-GEMM paper.
 *
 * Given the element bitwidths of the two GEMM operands and the width of the
 * processor multiplier, this module derives every derived quantity the
 * μ-engine Control Unit is configured with:
 *
 *  - the clustering width `cw` (bits per packed element, Eq. 3),
 *  - the input-cluster size (elements multiplied per cycle, Eq. 4),
 *  - the multiplier-output slice holding the inner product (Eq. 5-7),
 *  - the μ-vector element counts (64-bit words packing floor(64/bw)
 *    narrow elements),
 *  - the kua/kub μ-vector issue counts that balance mixed-precision
 *    element streams (Fig. 4), and
 *  - the DSU chunk schedule: how many elements the Data Selection Unit
 *    consumes on each μ-engine cycle, honouring μ-vector boundaries
 *    (reproducing the paper's 12/12/9-cycle accumulation-group examples).
 */

#ifndef MIXGEMM_BS_GEOMETRY_H
#define MIXGEMM_BS_GEOMETRY_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace mixgemm
{

/** Operand data-size configuration of a Mix-GEMM computation ("aX-wY"). */
struct DataSizeConfig
{
    unsigned bwa = 8;      ///< activation (A operand) element bitwidth
    unsigned bwb = 8;      ///< weight (B operand) element bitwidth
    bool a_signed = true;  ///< A elements are two's complement
    bool b_signed = true;  ///< B elements are two's complement

    /** Short name in the paper's notation, e.g. "a8-w6". */
    std::string name() const;

    bool operator==(const DataSizeConfig &other) const = default;
};

/** All derived binary-segmentation constants for one configuration. */
struct BsGeometry
{
    DataSizeConfig config;
    unsigned mul_width = 64;    ///< processor multiplier width in bits
    unsigned cw = 0;            ///< clustering width (Eq. 3)
    unsigned cluster_size = 0;  ///< elements per input-cluster (Eq. 4)
    unsigned slice_lsb = 0;     ///< Eq. 6
    unsigned slice_msb = 0;     ///< Eq. 7
    unsigned elems_per_avec = 0;///< narrow elements per 64-bit A μ-vector
    unsigned elems_per_bvec = 0;///< narrow elements per 64-bit B μ-vector
    unsigned kua = 1;           ///< A μ-vectors per accumulation group
    unsigned kub = 1;           ///< B μ-vectors per accumulation group
    unsigned group_pairs = 1;   ///< bs.ip instructions per group:
                                ///< max(kua, kub); the shorter operand
                                ///< stream carries zero words at the tail
    unsigned group_extent = 0;  ///< real k-elements covered per group
    unsigned group_cycles = 0;  ///< μ-engine cycles per accumulation group

    /** MACs per μ-engine cycle for this configuration (3..7 at 64 bit). */
    double macsPerCycle() const;

    /**
     * Fraction of packed μ-vector storage wasted on zero-padding,
     * relative to perfectly dense narrow packing (Section III-C reports
     * a 2.4 % average across configurations).
     */
    double paddingOverhead() const;
};

/**
 * Compute the full geometry for a configuration.
 *
 * @param config operand bitwidths/signedness; bitwidths must be in [2, 8].
 * @param mul_width multiplier width in bits (64 for the target SoC).
 * @param max_ku upper bound for kua/kub (4 in the paper's DSE, Table I).
 * @throws FatalError on out-of-range bitwidths or an infeasible geometry.
 */
BsGeometry computeBsGeometry(const DataSizeConfig &config,
                             unsigned mul_width = 64, unsigned max_ku = 4);

/**
 * Checked variant of computeBsGeometry() for external-input boundaries
 * (CLI flags, deserialized graphs): out-of-range bitwidths and
 * infeasible geometries come back as a structured error instead of a
 * FatalError throw.
 */
Expected<BsGeometry> tryComputeBsGeometry(const DataSizeConfig &config,
                                          unsigned mul_width = 64,
                                          unsigned max_ku = 4);

/**
 * Input-cluster size for raw bitwidths: the largest n such that
 * n * (1 + bwa + bwb + ceil(log2(n + 1))) <= mul_width. Returns 0 when
 * even n = 1 does not fit.
 */
unsigned clusterSizeFor(unsigned bwa, unsigned bwb, unsigned mul_width);

/**
 * Select (kua, kub) in [1, max_ku]^2 minimizing the zero-padding
 * overhead of the accumulation group — the μ-vector storage spent,
 * (kua + kub) * 64 bits, relative to the dense narrow footprint of the
 * group extent — tie-breaking toward the largest extent (throughput).
 * Reproduces the paper's Fig. 4 choices (a8-w8 -> 4/4, a8-w6 -> 4/3,
 * a6-w4 -> 3/2) and its ~2.4 % average padding (Section III-C).
 */
std::pair<unsigned, unsigned> selectKu(const DataSizeConfig &config,
                                       unsigned max_ku = 4);

/**
 * DSU chunk schedule for one accumulation group: the number of elements
 * selected on each μ-engine cycle. Chunks never exceed the input-cluster
 * size and never cross an A or B μ-vector boundary. The schedule length
 * is the group's μ-engine cycle count (12/12/9 for the Fig. 4 trio).
 */
std::vector<unsigned> dsuChunkSchedule(const BsGeometry &geometry);

/** All 49 supported (bwa, bwb) combinations, 8 down to 2 bits. */
std::vector<DataSizeConfig> allSupportedConfigs(bool signed_data = true);

/**
 * Shrink a geometry's accumulation group to a short k extent.
 *
 * The Control Unit receives the inner-product length through bs.set
 * (Section III-B), so for GEMMs whose k dimension is smaller than the
 * full group extent (e.g. depthwise convolutions with k = 9) the DSU
 * only walks the real elements. Returns @p geometry unchanged when
 * k >= group_extent.
 */
BsGeometry geometryForK(const BsGeometry &geometry, uint64_t k);

} // namespace mixgemm

#endif // MIXGEMM_BS_GEOMETRY_H
