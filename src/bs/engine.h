/**
 * @file
 * Functional model of the μ-engine (Section III-B), exposing exactly the
 * three custom-instruction entry points the GEMM library uses:
 *
 *  - set():  load a configuration into the Control Unit,
 *  - ip():   issue one μ-vector pair,
 *  - get():  collect one AccMem slot.
 *
 * Semantics follow Algorithm 1. μ-vector pairs arrive in *accumulation
 * groups* of max(kua, kub) pairs (pairs beyond kua/kub carry a zero
 * A/B word, Algorithm 1 line 7); each group
 * contributes one inner product of `group_extent` elements, accumulated
 * into the current AccMem slot, after which the Control Unit advances to
 * the next of the mr * nr slots. Every multiply/extract goes through the
 * bit-exact cluster datapath of cluster.h, so this model computes the same
 * values the RTL would. It also counts μ-engine busy cycles using the DSU
 * chunk schedule, which the timing model (src/sim) consumes.
 */

#ifndef MIXGEMM_BS_ENGINE_H
#define MIXGEMM_BS_ENGINE_H

#include <cstdint>
#include <vector>

#include "bs/expand.h"
#include "bs/geometry.h"

namespace mixgemm
{

/**
 * Observer/mutator of accumulation-group results, invoked by the
 * engine at the AccMem accumulate — the point where a hardware soft
 * error in a partial product would land. The fault-injection layer
 * (src/fault) installs one to corrupt selected group results; the
 * returned value is what gets accumulated. A null hook (the default)
 * leaves the engine bit-for-bit as before.
 */
class BsGroupResultHook
{
  public:
    virtual ~BsGroupResultHook() = default;

    /**
     * @param slot  AccMem slot the group result accumulates into
     * @param value the group's int64 inner product
     * @return the value to accumulate (possibly corrupted)
     */
    virtual int64_t onGroupResult(unsigned slot, int64_t value) = 0;
};

/** Functional (value-computing) model of the μ-engine. */
class BsEngine
{
  public:
    /** Default AccMem capacity in elements (Table I: mr * nr = 16). */
    static constexpr unsigned kDefaultAccMemSlots = 16;

    explicit BsEngine(unsigned accmem_slots = kDefaultAccMemSlots);

    /**
     * bs.set: configure the Control Unit for a data-size configuration
     * and an AccMem walk over @p active_slots slots (mr * nr of the
     * current μ-kernel). Clears AccMem and all sequencing state.
     * @pre active_slots <= accmemSlots()
     */
    void set(const BsGeometry &geometry, unsigned active_slots);

    /**
     * bs.ip: issue one μ-vector pair. For pair indices >= kub within the
     * current accumulation group the B word must be 0 (Algorithm 1,
     * line 7); the engine ignores it either way.
     */
    void ip(uint64_t a_word, uint64_t b_word);

    /**
     * Batched bs.ip: issue one whole accumulation group in a single
     * call — @p a_words points at the group's kua A μ-vectors and
     * @p b_words at its kub B μ-vectors (the contiguous layout of
     * CompressedA/CompressedB). Computes in the word domain through the
     * bw -> cw expansion — no per-element unpack/repack — with results,
     * busy cycles, pairs-issued accounting, and AccMem sequencing
     * identical to group_pairs individual ip() calls (trailing words of
     * the shorter operand stream are the zero words Algorithm 1 line 7
     * would carry).
     * @pre the engine is at an accumulation-group boundary.
     */
    void ipGroup(const uint64_t *a_words, const uint64_t *b_words);

    /**
     * bs.get: read AccMem slot @p slot and clear it, ready for the next
     * μ-kernel invocation.
     */
    int64_t get(unsigned slot);

    /** Total μ-engine busy cycles since the last set(). */
    uint64_t busyCycles() const { return busy_cycles_; }

    /** Total μ-vector pairs issued since the last set(). */
    uint64_t pairsIssued() const { return pairs_issued_; }

    /** Physical AccMem capacity. */
    unsigned accmemSlots() const
    {
        return static_cast<unsigned>(accmem_.size());
    }

    /** Currently loaded geometry. */
    const BsGeometry &geometry() const { return geometry_; }

    /**
     * Install (or clear, with nullptr) the group-result hook. Survives
     * set(); the caller owns the hook's lifetime.
     */
    void setGroupResultHook(BsGroupResultHook *hook) { hook_ = hook; }

  private:
    /** Close the current accumulation group: compute and accumulate. */
    void finishGroup();

    BsGeometry geometry_;
    std::vector<unsigned> chunk_schedule_; ///< cached DSU schedule
    GroupExpansionPlan plan_;              ///< cached word-domain plan
    std::vector<int64_t> accmem_;
    unsigned active_slots_ = 0;
    unsigned current_slot_ = 0;
    unsigned pairs_in_group_ = 0;
    /// Preallocated unpack buffers (kua * elems_per_avec / kub *
    /// elems_per_bvec elements, >= group_extent): ip() writes each
    /// μ-vector's elements at its word offset, so a group never
    /// allocates or grows.
    std::vector<int32_t> group_a_;
    std::vector<int32_t> group_b_;
    uint64_t busy_cycles_ = 0;
    uint64_t pairs_issued_ = 0;
    bool configured_ = false;
    BsGroupResultHook *hook_ = nullptr;
};

/**
 * Convenience: the inner product of two μ-vector streams covering
 * @p extent elements, computed through the cluster datapath with the
 * configured chunking. Used by tests to cross-check the engine.
 */
int64_t microVectorStreamInnerProduct(const std::vector<int32_t> &a,
                                      const std::vector<int32_t> &b,
                                      const BsGeometry &geometry);

} // namespace mixgemm

#endif // MIXGEMM_BS_ENGINE_H
