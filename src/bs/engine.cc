#include "bs/engine.h"

#include <algorithm>
#include <span>

#include "bs/cluster.h"
#include "bs/microvector.h"
#include "common/logging.h"

namespace mixgemm
{

BsEngine::BsEngine(unsigned accmem_slots)
    : accmem_(accmem_slots, 0)
{
    if (accmem_slots == 0)
        fatal("μ-engine AccMem needs at least one slot");
}

void
BsEngine::set(const BsGeometry &geometry, unsigned active_slots)
{
    if (active_slots == 0 || active_slots > accmem_.size())
        fatal(strCat("bs.set: active slots ", active_slots,
                     " exceed AccMem capacity ", accmem_.size()));
    geometry_ = geometry;
    chunk_schedule_ = dsuChunkSchedule(geometry);
    plan_ = makeExpansionPlan(geometry);
    active_slots_ = active_slots;
    current_slot_ = 0;
    pairs_in_group_ = 0;
    // Preallocate the group unpack buffers once: a group writes every
    // μ-vector's full element count, so [group_extent, kua * epa) holds
    // the zero padding of the last word — the DSU never selects it.
    group_a_.assign(uint64_t{geometry.kua} * geometry.elems_per_avec, 0);
    group_b_.assign(uint64_t{geometry.kub} * geometry.elems_per_bvec, 0);
    std::fill(accmem_.begin(), accmem_.end(), 0);
    busy_cycles_ = 0;
    pairs_issued_ = 0;
    configured_ = true;
}

void
BsEngine::ip(uint64_t a_word, uint64_t b_word)
{
    if (!configured_)
        fatal("bs.ip issued before bs.set");
    const auto &cfg = geometry_.config;
    if (pairs_in_group_ < geometry_.kua)
        unpackMicroVectorTo(
            a_word, cfg.bwa, cfg.a_signed, geometry_.elems_per_avec,
            group_a_.data() +
                uint64_t{pairs_in_group_} * geometry_.elems_per_avec);
    if (pairs_in_group_ < geometry_.kub)
        unpackMicroVectorTo(
            b_word, cfg.bwb, cfg.b_signed, geometry_.elems_per_bvec,
            group_b_.data() +
                uint64_t{pairs_in_group_} * geometry_.elems_per_bvec);
    ++pairs_in_group_;
    ++pairs_issued_;
    if (pairs_in_group_ == geometry_.group_pairs)
        finishGroup();
}

void
BsEngine::ipGroup(const uint64_t *a_words, const uint64_t *b_words)
{
    if (!configured_)
        fatal("bs.ip issued before bs.set");
    if (pairs_in_group_ != 0)
        fatal("bs.ip group issued mid accumulation group");
    int64_t acc = 0;
    for (const ExpansionChunk &chunk : plan_.chunks) {
        const uint64_t ca = expandClusterA(
            a_words[chunk.a_word] >> chunk.a_shift, chunk.len, geometry_);
        const uint64_t cb = expandClusterB(
            b_words[chunk.b_word] >> chunk.b_shift, chunk.len, geometry_);
        acc += extractInnerProduct(clusterMultiply(ca, cb, geometry_),
                                   geometry_);
    }
    if (hook_)
        acc = hook_->onGroupResult(current_slot_, acc);
    accmem_[current_slot_] += acc;
    busy_cycles_ += geometry_.group_cycles;
    pairs_issued_ += geometry_.group_pairs;
    current_slot_ = (current_slot_ + 1) % active_slots_;
}

void
BsEngine::finishGroup()
{
    // Pairs beyond the group extent are zero padding by the packing
    // contract; the DSU never selects them.
    int64_t acc = 0;
    size_t pos = 0;
    for (const unsigned chunk : chunk_schedule_) {
        acc += clusterInnerProduct(
            std::span<const int32_t>(group_a_).subspan(pos, chunk),
            std::span<const int32_t>(group_b_).subspan(pos, chunk),
            geometry_);
        pos += chunk;
    }
    if (hook_)
        acc = hook_->onGroupResult(current_slot_, acc);
    accmem_[current_slot_] += acc;
    busy_cycles_ += geometry_.group_cycles;
    current_slot_ = (current_slot_ + 1) % active_slots_;
    pairs_in_group_ = 0;
}

int64_t
BsEngine::get(unsigned slot)
{
    if (!configured_)
        fatal("bs.get issued before bs.set");
    if (slot >= active_slots_)
        fatal(strCat("bs.get: slot ", slot, " out of the active range ",
                     active_slots_));
    if (pairs_in_group_ != 0)
        fatal("bs.get issued mid accumulation group");
    const int64_t value = accmem_[slot];
    accmem_[slot] = 0;
    return value;
}

int64_t
microVectorStreamInnerProduct(const std::vector<int32_t> &a,
                              const std::vector<int32_t> &b,
                              const BsGeometry &geometry)
{
    if (a.size() != b.size())
        panic("stream inner product: length mismatch");
    const auto chunks = dsuChunkSchedule(geometry);
    int64_t acc = 0;
    size_t pos = 0;
    for (const unsigned chunk : chunks) {
        if (pos + chunk > a.size())
            panic("stream inner product: schedule overruns stream");
        acc += clusterInnerProduct(
            std::span<const int32_t>(a).subspan(pos, chunk),
            std::span<const int32_t>(b).subspan(pos, chunk), geometry);
        pos += chunk;
    }
    if (pos != a.size())
        panic("stream inner product: schedule does not cover stream");
    return acc;
}

} // namespace mixgemm
