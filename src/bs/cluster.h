/**
 * @file
 * Input-cluster datapath: the functional model of what the DCU, the 64-bit
 * multiplier, and the DFU do on one μ-engine cycle.
 *
 * A chunk of up to `cluster_size` A elements and the matching chunk of B
 * elements are packed into two `mul_width`-bit integers (the
 * *input-clusters*), multiplied once, and the slice
 * [slice_msb : slice_lsb] of the product (Eq. 5) is the chunk's inner
 * product. Signed elements are packed with borrow propagation (the cluster
 * is the exact signed integer sum of a_i * 2^(cw*i)), and the extraction
 * applies the hardware borrow correction: when the product bits below the
 * slice encode a negative lower part, the raw slice reads one less than
 * the true coefficient, so bit (slice_lsb - 1) is added back.
 */

#ifndef MIXGEMM_BS_CLUSTER_H
#define MIXGEMM_BS_CLUSTER_H

#include <cstdint>
#include <span>

#include "bs/geometry.h"
#include "common/bitutils.h"

namespace mixgemm
{

/**
 * Pack a chunk of A elements into an input-cluster.
 * Element i lands at bit position cw * i (ascending layout).
 * @param elems chunk values, already in range for the configured bitwidth
 * @pre elems.size() <= geometry.cluster_size
 */
uint64_t packClusterA(std::span<const int32_t> elems,
                      const BsGeometry &geometry);

/**
 * Pack a chunk of B elements into an input-cluster.
 * Per binary-segmentation first principles the B chunk is order-reversed:
 * element j lands at bit position cw * (cluster_size - 1 - j), so the
 * product coefficient at slice_lsb accumulates sum(a_i * b_i).
 * @pre elems.size() <= geometry.cluster_size
 */
uint64_t packClusterB(std::span<const int32_t> elems,
                      const BsGeometry &geometry);

/**
 * Multiply two input-clusters on the (modelled) 64-bit multiplier.
 * Cluster words are interpreted as signed when the corresponding operand
 * is signed, matching the MULH/MULHU selection the μ-engine performs.
 * Inline: this is the per-cycle primitive of both the modeled engine and
 * the word-domain fast path.
 */
inline int128
clusterMultiply(uint64_t cluster_a, uint64_t cluster_b,
                const BsGeometry &geometry)
{
    // The μ-engine reuses the scalar multiplier, which produces a full
    // 128-bit product; signedness selects between MUL/MULH[S]U pairs.
    // Each branch is phrased as a widening 64 x 64 -> 128 multiply so
    // the compiler emits the single-instruction form the hardware has,
    // not a generic 128 x 128 product; the mixed cases derive from the
    // unsigned product via the standard high-half sign correction
    // (sx(a) * zx(b) = zx(a) * zx(b) - [a < 0] * (b << 64)).
    const bool a_signed = geometry.config.a_signed;
    const bool b_signed = geometry.config.b_signed;
    if (a_signed && b_signed)
        return static_cast<int128>(static_cast<int64_t>(cluster_a)) *
               static_cast<int64_t>(cluster_b);
    if (!a_signed && !b_signed)
        return static_cast<int128>(static_cast<uint128>(cluster_a) *
                                   cluster_b);
    uint128 product = static_cast<uint128>(cluster_a) * cluster_b;
    if (a_signed && static_cast<int64_t>(cluster_a) < 0)
        product -= static_cast<uint128>(cluster_b) << 64;
    if (b_signed && static_cast<int64_t>(cluster_b) < 0)
        product -= static_cast<uint128>(cluster_a) << 64;
    return static_cast<int128>(product);
}

/**
 * Extract the chunk inner product from a cluster product the way the DFU
 * does: raw bit slice (Eq. 5) plus single-bit borrow correction for
 * signed operands.
 */
inline int64_t
extractInnerProduct(int128 product, const BsGeometry &geometry)
{
    const uint128 bits = static_cast<uint128>(product);
    uint64_t slice =
        bitSlice128(bits, geometry.slice_msb, geometry.slice_lsb);
    const bool any_signed =
        geometry.config.a_signed || geometry.config.b_signed;
    if (any_signed) {
        // Borrow correction: coefficients below the slice can be negative;
        // when their packed sum is negative the raw slice reads coeff - 1.
        // Because each lower coefficient fits in cw - 1 magnitude bits, the
        // lower part's sign is exactly the bit just below the slice.
        if (geometry.slice_lsb > 0) {
            const unsigned borrow_bit = geometry.slice_lsb - 1;
            slice += static_cast<uint64_t>((bits >> borrow_bit) & 1);
        }
        return signExtend64(slice, geometry.cw);
    }
    return static_cast<int64_t>(slice);
}

/**
 * Reference extraction: iteratively peel signed cw-bit coefficients from
 * the bottom of the product. Mathematically exact for any coefficient
 * pattern; tests verify extractInnerProduct() against this.
 */
int64_t extractInnerProductExact(int128 product, const BsGeometry &geometry);

/**
 * Full one-cycle datapath: pack both chunks, multiply, extract.
 * @pre a.size() == b.size() and a.size() <= geometry.cluster_size
 */
int64_t clusterInnerProduct(std::span<const int32_t> a,
                            std::span<const int32_t> b,
                            const BsGeometry &geometry);

} // namespace mixgemm

#endif // MIXGEMM_BS_CLUSTER_H
