#include "serve/resilience.h"

#include <algorithm>

namespace mixgemm
{

void
CircuitBreaker::pruneLocked(uint64_t now_ns)
{
    const uint64_t cutoff =
        now_ns > options_.window_ns ? now_ns - options_.window_ns : 0;
    while (!window_.empty() && window_.front().at_ns < cutoff) {
        if (!window_.front().ok)
            --window_failures_;
        window_.pop_front();
    }
}

BreakerEvent
CircuitBreaker::recordClosedLocked(uint64_t now_ns, bool ok)
{
    pruneLocked(now_ns);
    window_.push_back(Sample{now_ns, ok});
    if (!ok)
        ++window_failures_;
    if (window_.size() < options_.min_samples)
        return BreakerEvent::kNone;
    const double rate = static_cast<double>(window_failures_) /
                        static_cast<double>(window_.size());
    if (rate < options_.failure_threshold)
        return BreakerEvent::kNone;
    state_ = State::kOpen;
    opened_at_ns_ = now_ns;
    window_.clear();
    window_failures_ = 0;
    return BreakerEvent::kOpened;
}

CircuitBreaker::Decision
CircuitBreaker::admit(uint64_t now_ns)
{
    Decision decision;
    if (!options_.enabled)
        return decision;
    std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
      case State::kClosed:
        return decision;
      case State::kOpen:
        if (now_ns < opened_at_ns_ + options_.open_ns) {
            decision.allow = false;
            return decision;
        }
        state_ = State::kHalfOpen;
        probes_in_flight_ = 0;
        probe_successes_ = 0;
        decision.event = BreakerEvent::kHalfOpened;
        [[fallthrough]];
      case State::kHalfOpen:
        if (probes_in_flight_ >= options_.half_open_probes) {
            decision.allow = false;
            return decision;
        }
        ++probes_in_flight_;
        decision.probe = true;
        return decision;
    }
    return decision;
}

BreakerEvent
CircuitBreaker::onSuccess(uint64_t now_ns, bool probe)
{
    if (!options_.enabled)
        return BreakerEvent::kNone;
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::kHalfOpen && probe) {
        if (probes_in_flight_ > 0)
            --probes_in_flight_;
        ++probe_successes_;
        if (probe_successes_ >= options_.close_after) {
            state_ = State::kClosed;
            window_.clear();
            window_failures_ = 0;
            probe_successes_ = 0;
            return BreakerEvent::kClosed;
        }
        return BreakerEvent::kNone;
    }
    if (state_ == State::kClosed)
        return recordClosedLocked(now_ns, /*ok=*/true);
    return BreakerEvent::kNone;
}

BreakerEvent
CircuitBreaker::onFailure(uint64_t now_ns, bool probe)
{
    if (!options_.enabled)
        return BreakerEvent::kNone;
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::kHalfOpen && probe) {
        // One failed probe is enough evidence the rung is still sick.
        state_ = State::kOpen;
        opened_at_ns_ = now_ns;
        probes_in_flight_ = 0;
        probe_successes_ = 0;
        return BreakerEvent::kReopened;
    }
    if (state_ == State::kClosed)
        return recordClosedLocked(now_ns, /*ok=*/false);
    return BreakerEvent::kNone;
}

void
CircuitBreaker::abandonProbe(bool probe)
{
    if (!options_.enabled || !probe)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::kHalfOpen && probes_in_flight_ > 0)
        --probes_in_flight_;
}

void
RetryBudget::refillLocked(uint64_t now_ns) const
{
    if (now_ns <= last_refill_ns_) {
        // Backwards or frozen clock: refill nothing, never debit.
        return;
    }
    const double elapsed_s =
        static_cast<double>(now_ns - last_refill_ns_) / 1e9;
    tokens_ = std::min(options_.burst,
                       tokens_ + elapsed_s * options_.tokens_per_s);
    last_refill_ns_ = now_ns;
}

bool
RetryBudget::tryAcquire(uint64_t now_ns)
{
    if (!options_.enabled)
        return true;
    std::lock_guard<std::mutex> lock(mutex_);
    refillLocked(now_ns);
    if (tokens_ >= 1.0) {
        tokens_ -= 1.0;
        ++granted_;
        return true;
    }
    ++denied_;
    return false;
}

double
RetryBudget::level(uint64_t now_ns) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    refillLocked(now_ns);
    return tokens_;
}

} // namespace mixgemm
