#include "serve/ladder.h"

#include "common/logging.h"

namespace mixgemm
{

std::vector<TierSpec>
buildPrecisionLadder(
    Network &network, const PatternDataset &calibration,
    const std::vector<std::pair<unsigned, unsigned>> &precisions,
    PtqOptions base)
{
    if (precisions.empty())
        fatal("buildPrecisionLadder: no precisions requested");
    std::vector<TierSpec> ladder;
    ladder.reserve(precisions.size());
    for (const auto &[a_bits, w_bits] : precisions) {
        PtqOptions options = base;
        options.a_bits = a_bits;
        options.w_bits = w_bits;
        TierSpec tier;
        tier.graph = buildPtqGraph(network, calibration, options);
        tier.label = strCat("a", a_bits, "-w", w_bits);
        ladder.push_back(std::move(tier));
    }
    return ladder;
}

std::vector<TierSpec>
buildLazyPrecisionLadder(
    Network &network, const PatternDataset &calibration,
    const std::vector<std::pair<unsigned, unsigned>> &precisions,
    PtqOptions base)
{
    if (precisions.empty())
        fatal("buildLazyPrecisionLadder: no precisions requested");
    std::vector<TierSpec> ladder;
    ladder.reserve(precisions.size());
    for (size_t i = 0; i < precisions.size(); ++i) {
        const auto [a_bits, w_bits] = precisions[i];
        PtqOptions options = base;
        options.a_bits = a_bits;
        options.w_bits = w_bits;
        TierSpec tier;
        tier.label = strCat("a", a_bits, "-w", w_bits);
        tier.a_bits = a_bits;
        tier.w_bits = w_bits;
        if (i == 0) {
            // The fallback rung every request can always run at.
            tier.graph = buildPtqGraph(network, calibration, options);
        } else {
            // PTQ is deterministic for fixed inputs, so an evicted
            // rung rebuilt by this closure is bitwise-identical to the
            // original — the serve determinism tests rely on it.
            tier.build = [&network, &calibration, options] {
                return buildPtqGraph(network, calibration, options);
            };
        }
        ladder.push_back(std::move(tier));
    }
    return ladder;
}

} // namespace mixgemm
