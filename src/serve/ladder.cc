#include "serve/ladder.h"

#include "common/logging.h"

namespace mixgemm
{

std::vector<TierSpec>
buildPrecisionLadder(
    Network &network, const PatternDataset &calibration,
    const std::vector<std::pair<unsigned, unsigned>> &precisions,
    PtqOptions base)
{
    if (precisions.empty())
        fatal("buildPrecisionLadder: no precisions requested");
    std::vector<TierSpec> ladder;
    ladder.reserve(precisions.size());
    for (const auto &[a_bits, w_bits] : precisions) {
        PtqOptions options = base;
        options.a_bits = a_bits;
        options.w_bits = w_bits;
        TierSpec tier;
        tier.graph = buildPtqGraph(network, calibration, options);
        tier.label = strCat("a", a_bits, "-w", w_bits);
        ladder.push_back(std::move(tier));
    }
    return ladder;
}

} // namespace mixgemm
