/**
 * @file
 * Precision-ladder construction for the serving runtime.
 *
 * The degradation policy (see server.h) trades accuracy for throughput
 * by stepping down a ladder of pre-quantized variants of the same
 * network — the paper's mixed-precision design point space, applied at
 * run time. This helper builds that ladder once at registration time
 * with the PTQ pipeline: one calibrated QuantizedGraph per requested
 * (activation, weight) bit pair, labeled "a<bits>-w<bits>", full
 * precision first.
 */

#ifndef MIXGEMM_SERVE_LADDER_H
#define MIXGEMM_SERVE_LADDER_H

#include <utility>
#include <vector>

#include "nn/dataset.h"
#include "nn/qat.h"
#include "runtime/ptq.h"
#include "serve/server.h"

namespace mixgemm
{

/** Default serving ladder: the paper's 8-bit baseline, then the mixed
 * and symmetric narrow configurations. */
inline std::vector<std::pair<unsigned, unsigned>>
defaultLadderPrecisions()
{
    return {{8, 8}, {8, 4}, {4, 4}};
}

/**
 * Quantize @p network at every (a_bits, w_bits) in @p precisions via
 * PTQ against @p calibration, producing the TierSpec ladder
 * registerGraph() takes. @p base forwards the remaining PTQ knobs
 * (calibration sample count, bias correction, ...); its a_bits/w_bits
 * are overridden per rung.
 */
std::vector<TierSpec> buildPrecisionLadder(
    Network &network, const PatternDataset &calibration,
    const std::vector<std::pair<unsigned, unsigned>> &precisions,
    PtqOptions base = PtqOptions{});

/**
 * Like buildPrecisionLadder(), but only rung 0 is quantized now; every
 * deeper rung carries a deferred builder the server invokes on the
 * first request that actually degrades to that precision, so
 * registering a model never pays for rungs the load pattern never
 * reaches (and under a rung byte budget, evicted rungs re-build
 * deterministically). The builders capture @p network and
 * @p calibration by reference — both must outlive the server the
 * ladder is registered with.
 */
std::vector<TierSpec> buildLazyPrecisionLadder(
    Network &network, const PatternDataset &calibration,
    const std::vector<std::pair<unsigned, unsigned>> &precisions,
    PtqOptions base = PtqOptions{});

} // namespace mixgemm

#endif // MIXGEMM_SERVE_LADDER_H
