/**
 * @file
 * Multi-tenant isolation plane for the inference server.
 *
 * A tenant used to be a telemetry label; this module makes it a
 * scheduling boundary. Three mechanisms compose:
 *
 *  - **Admission quotas** (TenantRegistry): each tenant carries a
 *    token-bucket admission rate (rate_per_s + burst), a bulkhead on
 *    outstanding work (max_in_flight, queued + executing), a priority
 *    ceiling that clamps what the tenant may claim, and an accuracy
 *    floor (tier_floor) below which degradation may never push it.
 *    Quota rejections are kResourceExhausted with a machine-readable
 *    reason prefix ("tenant_rate:", "tenant_bulkhead:", ...).
 *
 *  - **Fair-share dispatch** (TenantScheduler): per-tenant bounded
 *    sub-queues over one shared BoundedQueue, drained by deficit
 *    weighted round robin. Each tenant's lane accrues
 *    quantum * weight deficit when its turn starts and spends one
 *    unit per dispatched request, so under saturation tenants receive
 *    service in proportion to their weights (a 10:1 weight split
 *    yields a 10:1 dispatch split). Overload sheds strictly *within*
 *    the submitting tenant's lane (BoundedQueue::pushEvictingWithin):
 *    a flooding tenant can only displace its own queued work.
 *
 *  - **Brownout control** (server-side, driven by the policies here):
 *    when the queue passes the high watermark, tenants holding more
 *    than their weight-fair share of it take extra steps down the
 *    precision ladder *before* in-quota tenants degrade, clamped by
 *    each tenant's accuracy floor.
 *
 * Everything is deterministic by construction: tenant ids are assigned
 * in configuration order then first-seen order, the scheduler state is
 * integer arithmetic, and token buckets refill from the server Clock —
 * under a VirtualClock the whole plane replays byte-identically.
 * TenancyOptions defaults to disabled, in which case the server takes
 * the exact pre-tenancy scheduling path.
 */

#ifndef MIXGEMM_SERVE_TENANCY_H
#define MIXGEMM_SERVE_TENANCY_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bounded_queue.h"
#include "common/status.h"

namespace mixgemm
{

/** Per-tenant isolation policy. Defaults are permissive (no quota);
 * every limit is opt-in so an unconfigured tenant behaves like the
 * pre-tenancy server, just fairly interleaved with its peers. */
struct TenantPolicy
{
    /** DWRR queue-share weight (>= 1): under saturation the tenant
     * receives service proportional to weight / sum(active weights). */
    uint32_t weight = 1;
    /** Token-bucket admission rate (requests/s); 0 = unlimited. */
    double rate_per_s = 0.0;
    /** Bucket capacity (burst allowance); the bucket starts full. */
    double burst = 8.0;
    /** Per-tenant sub-queue bound; 0 = the server's queue capacity. */
    size_t max_queue = 0;
    /** Bulkhead: max outstanding (queued + executing) requests;
     * 0 = unlimited. Exceeding it rejects at admission. */
    uint32_t max_in_flight = 0;
    /** Requests above this priority are clamped to it at submission;
     * INT_MAX = no ceiling. */
    int priority_ceiling = std::numeric_limits<int>::max();
    /** Accuracy floor: deepest ladder rung degradation or brownout may
     * deliver to this tenant; -1 = no floor (full ladder). */
    int tier_floor = -1;
};

/** Load-aware per-tenant brownout. Over-quota tenants (holding more
 * than over_share_factor times their weight-fair share of the queue)
 * take up to max_steps extra degradation levels while the queue sits
 * above high_watermark, and recover when it drains below low_watermark
 * or they fall back inside their share. */
struct BrownoutPolicy
{
    bool enabled = true;
    double high_watermark = 0.75; ///< queue fill that arms brownout
    double low_watermark = 0.25;  ///< queue fill that clears it
    /** A tenant is over quota when its queued share exceeds
     * over_share_factor * (weight / sum of active weights). */
    double over_share_factor = 1.25;
    unsigned max_steps = 2;    ///< extra levels on top of the global one
    uint64_t min_dwell_ns = 0; ///< per-tenant hysteresis between steps
};

/** Tenancy plane configuration. Defaults to *disabled*: the server
 * then takes the identical scheduling path it took before this plane
 * existed (single global queue, no quotas). */
struct TenancyOptions
{
    bool enabled = false;
    TenantPolicy default_policy;          ///< unconfigured tenants
    std::map<std::string, TenantPolicy> tenants; ///< named overrides
    BrownoutPolicy brownout;
    uint64_t quantum = 1; ///< DWRR deficit grains per weight unit
    /** Hard cap on distinct tenant names the registry will track;
     * submissions from tenants past it are rejected
     * (kResourceExhausted "tenant_limit:") and accounted under the
     * synthetic "!overflow" tenant so hostile name churn cannot grow
     * server state without bound. */
    uint32_t max_tenants = 256;
};

/** Per-tenant terminal + quota accounting. For every tenant the
 * identity
 *
 *   submitted == completed_ok + shed + rejected_full + rejected_invalid
 *              + rejected_closed + rejected_rate + rejected_bulkhead
 *              + rejected_limit + rejected_draining + expired_submit
 *              + deadline_exceeded + cancelled + failed
 *
 * holds once the server has drained (expired_queue is an informational
 * subcount of deadline_exceeded; degraded/retries/brownout_* overlap
 * the terminal buckets; the trailing gauges are snapshot-time). */
struct TenantStats
{
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t completed_ok = 0;
    uint64_t shed = 0;
    uint64_t rejected_full = 0;
    uint64_t rejected_invalid = 0;
    uint64_t rejected_closed = 0;
    uint64_t rejected_rate = 0;     ///< token bucket empty
    uint64_t rejected_bulkhead = 0; ///< max_in_flight exceeded
    uint64_t rejected_limit = 0;    ///< tenant table full
    uint64_t rejected_draining = 0; ///< submitted after beginDrain()
    uint64_t expired_submit = 0;
    uint64_t expired_queue = 0;
    uint64_t deadline_exceeded = 0;
    uint64_t cancelled = 0;
    uint64_t failed = 0;
    uint64_t degraded = 0;
    uint64_t retries = 0;
    uint64_t brownout_steps = 0;
    uint64_t brownout_clears = 0;
    uint64_t priority_clamps = 0;
    uint64_t drain_cancelled = 0; ///< queued work cancelled by drain

    // Snapshot-time gauges (filled by InferenceServer::stats()).
    unsigned brownout_level = 0;
    uint64_t queue_depth = 0;
    uint64_t in_flight = 0; ///< outstanding (queued + executing)
    uint64_t deficit = 0;   ///< DWRR deficit at snapshot time
    double tokens = 0.0;    ///< rate-bucket level at snapshot time
    uint32_t weight = 1;
};

/** Runtime state of one registered tenant (externally synchronized —
 * the server accesses it under its admission mutex). */
struct TenantState
{
    std::string name;
    TenantPolicy policy;
    double tokens = 0.0;        ///< admission token bucket level
    uint64_t bucket_ns = 0;     ///< last refill time
    bool bucket_armed = false;  ///< first refill pins the epoch
    uint32_t outstanding = 0;   ///< queued + executing (bulkhead gauge)
    unsigned brownout_level = 0;
    uint64_t last_brownout_ns = 0;
};

/**
 * Name -> policy/state table with deterministic id assignment:
 * configured tenants get ids 0..n-1 in map (name) order at
 * construction, unknown tenants get the next id at first submission.
 * Ids are dense and stable for the registry's lifetime, which is what
 * lets the scheduler index lanes by id. Externally synchronized (the
 * server holds its admission mutex around every call).
 */
class TenantRegistry
{
  public:
    explicit TenantRegistry(TenancyOptions options);

    /** Id for @p name, registering it on first sight. nullopt when the
     * tenant table is full and @p name is unknown (account the request
     * under kOverflowName and reject it). */
    std::optional<uint32_t> resolve(const std::string &name);

    /** Id for @p name without registering; nullopt when unknown. */
    std::optional<uint32_t> findId(const std::string &name) const;

    TenantState &state(uint32_t id) { return states_[id]; }
    const TenantState &state(uint32_t id) const { return states_[id]; }
    size_t count() const { return states_.size(); }

    /** Refill @p state's token bucket at @p now_ns and consume one
     * token; false when the bucket is empty (rate-reject). A zero-rate
     * policy always admits. */
    bool tryAcquireToken(TenantState &state, uint64_t now_ns);

    const TenancyOptions &options() const { return options_; }

    /** Stats key for submissions rejected by the tenant-table cap. */
    static constexpr const char *kOverflowName = "!overflow";

  private:
    TenancyOptions options_;
    std::map<std::string, uint32_t> ids_;
    std::deque<TenantState> states_; ///< deque: stable references
};

/**
 * Deficit-weighted-round-robin scheduler over per-tenant bounded
 * sub-queues. One shared BoundedQueue holds the items (so global
 * capacity still bounds total queued work); per-tenant lane counters
 * bound each tenant's slice and carry the DWRR deficit state. T must
 * expose a `tenant_id` member. Thread-safe; push and pop may race
 * freely (workers popWait while submitters push).
 */
template <typename T>
class TenantScheduler
{
  public:
    /** Snapshot of one tenant lane (brownout controller input). */
    struct LaneView
    {
        uint32_t weight = 1;
        size_t bound = 0;
        size_t queued = 0;
        uint64_t deficit = 0;
    };

    /** A dispatched item plus the DWRR state it was popped under. */
    struct Popped
    {
        T item;
        uint32_t tenant = 0;
        uint64_t deficit = 0; ///< lane deficit *after* this dispatch
    };

    TenantScheduler(size_t capacity, uint64_t quantum)
        : queue_(capacity), quantum_(quantum == 0 ? 1 : quantum)
    {
    }

    /** Create (or update the policy bits of) tenant @p tenant's lane.
     * Must be called before the first push for that tenant. */
    void ensureLane(uint32_t tenant, uint32_t weight, size_t bound)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (lanes_.size() <= tenant)
            lanes_.resize(tenant + 1);
        lanes_[tenant].weight = weight == 0 ? 1 : weight;
        lanes_[tenant].bound = bound;
    }

    /**
     * Admit @p item into its tenant's lane. Overload evicts strictly
     * within that lane (pushEvictingWithin): when the shared queue is
     * full or the lane is at its own bound, the least-valuable entry
     * *of the same tenant* is displaced iff it is worth less than
     * @p item; otherwise kRejected. Lane accounting updates under the
     * scheduler lock, so counts and queue contents stay consistent.
     */
    template <typename Less>
    QueuePush push(uint32_t tenant, T &&item, Less retain_less,
                   std::optional<T> &evicted)
    {
        QueuePush outcome;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            Lane &lane = lanes_[tenant];
            const bool at_bound =
                lane.bound != 0 && lane.queued >= lane.bound;
            outcome = queue_.pushEvictingWithin(
                std::move(item), retain_less,
                [tenant](const T &entry) {
                    return entry.tenant_id == tenant;
                },
                at_bound, evicted);
            if (outcome == QueuePush::kPushed) {
                ++lane.queued;
                ++total_;
            }
            // kPushedEvicted swaps one same-lane entry for another:
            // lane and total counts are unchanged.
        }
        if (outcome == QueuePush::kPushed ||
            outcome == QueuePush::kPushedEvicted)
            cv_.notify_one();
        return outcome;
    }

    /** DWRR pop without blocking; nullopt when every lane is empty. */
    std::optional<Popped> tryPop()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return popLocked();
    }

    /** DWRR pop, blocking until work arrives or the scheduler is
     * closed *and* drained (same contract as BoundedQueue::popWait). */
    std::optional<Popped> popWait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return closed_ || total_ > 0; });
        return popLocked();
    }

    /** Close to producers; queued items stay poppable. */
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
            queue_.close();
        }
        cv_.notify_all();
    }

    size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return total_;
    }

    size_t capacity() const { return queue_.capacity(); }

    size_t laneDepth(uint32_t tenant) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return tenant < lanes_.size() ? lanes_[tenant].queued : 0;
    }

    uint64_t laneDeficit(uint32_t tenant) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return tenant < lanes_.size() ? lanes_[tenant].deficit : 0;
    }

    /** Consistent snapshot of every lane, indexed by tenant id. */
    std::vector<LaneView> lanes() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<LaneView> views;
        views.reserve(lanes_.size());
        for (const Lane &lane : lanes_)
            views.push_back(
                {lane.weight, lane.bound, lane.queued, lane.deficit});
        return views;
    }

  private:
    struct Lane
    {
        uint32_t weight = 1;
        size_t bound = 0;
        size_t queued = 0;
        uint64_t deficit = 0;
    };

    std::optional<Popped> popLocked()
    {
        if (total_ == 0)
            return std::nullopt;
        // Classic DWRR with unit request cost: a lane starting its
        // turn accrues quantum * weight deficit, spends one per
        // dispatched request, and yields the cursor when its deficit
        // or its queue runs out. An emptied lane forfeits leftover
        // deficit (no credit hoarding while idle).
        for (size_t scanned = 0; scanned <= lanes_.size(); ++scanned) {
            Lane &lane = lanes_[cursor_];
            if (lane.queued == 0) {
                lane.deficit = 0;
                advanceCursor();
                continue;
            }
            if (lane.deficit == 0)
                lane.deficit = quantum_ * lane.weight;
            const uint32_t tenant = static_cast<uint32_t>(cursor_);
            std::optional<T> item = queue_.tryPopWhere(
                [tenant](const T &entry) {
                    return entry.tenant_id == tenant;
                });
            if (!item) {
                // Lane counters and queue contents are updated under
                // the same lock; a counted entry is always present.
                lane.queued = 0;
                lane.deficit = 0;
                advanceCursor();
                continue;
            }
            --lane.queued;
            --total_;
            --lane.deficit;
            Popped popped{std::move(*item), tenant, lane.deficit};
            if (lane.queued == 0) {
                lane.deficit = 0;
                advanceCursor();
            } else if (lane.deficit == 0) {
                advanceCursor();
            }
            return popped;
        }
        return std::nullopt;
    }

    void advanceCursor()
    {
        cursor_ = lanes_.empty() ? 0 : (cursor_ + 1) % lanes_.size();
    }

    BoundedQueue<T> queue_;
    const uint64_t quantum_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Lane> lanes_;
    size_t cursor_ = 0;
    size_t total_ = 0;
    bool closed_ = false;
};

/**
 * Parse a tenant-policy JSON document (the CLI's --tenant-policy):
 *
 *   {
 *     "default":  {"weight":1,"rate_per_s":0,"burst":8,"max_queue":0,
 *                  "max_in_flight":0,"priority_ceiling":-1,
 *                  "tier_floor":-1},
 *     "tenants":  {"victim":{"weight":10},
 *                  "aggressor":{"weight":1,"rate_per_s":200}},
 *     "brownout": {"enabled":true,"high_watermark":0.75,
 *                  "low_watermark":0.25,"over_share_factor":1.25,
 *                  "max_steps":2,"min_dwell_ns":0},
 *     "quantum": 1,
 *     "max_tenants": 256
 *   }
 *
 * Every field is optional; absent fields keep their defaults. A
 * priority_ceiling of -1 means "no ceiling". Parsing a document always
 * returns an *enabled* TenancyOptions. Errors (malformed JSON, wrong
 * kinds, out-of-range values) come back as a Status.
 */
Expected<TenancyOptions> parseTenancyJson(const std::string &text);

/** A named tenant scenario for the soak harness: a tenancy
 * configuration plus the arrival mix that stresses it. */
struct TenantScenario
{
    std::string name;
    TenancyOptions options;
    /** Per-tenant arrival weights; each soak arrival draws its tenant
     * from this distribution (one extra rng draw per arrival). */
    std::vector<std::pair<std::string, double>> arrival_mix;
};

/**
 * Built-in tenant scenarios:
 *   noisy-neighbor  a weight-10 "victim" with a modest arrival share
 *                   vs a weight-1 "aggressor" flooding the queue; DWRR
 *                   protects the victim's goodput and brownout
 *                   degrades the aggressor first
 *   quota-storm     four equal tenants, each rate- and bulkhead-
 *                   limited, offered far more load than their buckets
 *                   admit — mass tenant_rate rejections while in-quota
 *                   work completes
 */
Expected<TenantScenario> tenantScenarioByName(const std::string &name);

/** Names accepted by tenantScenarioByName, comma-separated. */
std::string tenantScenarioNames();

} // namespace mixgemm

#endif // MIXGEMM_SERVE_TENANCY_H
