#include "serve/soak.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <thread>

#include "common/logging.h"
#include "common/random.h"
#include "serve/ladder.h"
#include "trace/json.h"

namespace mixgemm
{

namespace
{

/** Offered arrival rate at scenario time @p t_s (burst windows repeat
 * every burst_every_s). */
double
arrivalRate(const SoakConfig &config, double t_s)
{
    if (config.burst_every_s <= 0.0 || config.burst_len_s <= 0.0 ||
        config.burst_factor <= 1.0)
        return config.arrival_hz;
    const double phase = std::fmod(t_s, config.burst_every_s);
    return phase < config.burst_len_s
               ? config.arrival_hz * config.burst_factor
               : config.arrival_hz;
}

/** Exponential inter-arrival draw (Poisson process) at @p rate_hz. */
uint64_t
drawInterarrivalNs(Rng &rng, double rate_hz)
{
    const double u = rng.uniformReal(); // [0, 1)
    const double dt_s = -std::log1p(-u) / rate_hz;
    const double dt_ns = dt_s * 1e9;
    return dt_ns < 1.0 ? 1 : static_cast<uint64_t>(dt_ns);
}

ServeRequest
makeRequest(const SoakConfig &config, Rng &rng, uint64_t graph_id,
            const std::vector<Tensor<double>> &inputs, uint64_t now_ns,
            const std::vector<std::pair<std::string, double>> &mix)
{
    ServeRequest request;
    request.graph_id = graph_id;
    request.priority = static_cast<int>(rng.uniformInt(
        0, std::max(1, config.priority_levels) - 1));
    if (!mix.empty()) {
        // Tenant scenario: draw from the scenario's arrival mix (one
        // rng draw, mirroring the uniform path below).
        double total = 0.0;
        for (const auto &[name, share] : mix)
            total += share;
        double u = rng.uniformReal() * total;
        request.tenant = mix.back().first;
        for (const auto &[name, share] : mix) {
            if (u < share) {
                request.tenant = name;
                break;
            }
            u -= share;
        }
    } else if (config.tenants > 1) {
        request.tenant = strCat(
            "tenant", rng.uniformInt(0, config.tenants - 1));
    }
    if (rng.uniformReal() >= config.no_deadline_prob) {
        // Log-uniform deadline budget: most requests tight, a tail
        // generous — stresses both the expiry and the success path.
        const double lo = std::log(config.deadline_lo_s);
        const double hi = std::log(config.deadline_hi_s);
        const double budget_s = std::exp(rng.uniformReal(lo, hi));
        request.deadline_ns =
            now_ns + static_cast<uint64_t>(budget_s * 1e9);
    }
    // Adversarial arrivals: admission must bounce these without
    // disturbing service for everyone else.
    const double adversarial = rng.uniformReal();
    if (adversarial < config.bad_graph_prob) {
        request.graph_id = graph_id + 1000;
        request.input = inputs[0];
    } else if (adversarial <
               config.bad_graph_prob + config.oversized_prob) {
        request.input = Tensor<double>(
            {1, 1, 2 * PatternDataset::kImageSize,
             2 * PatternDataset::kImageSize});
    } else {
        request.input = inputs[static_cast<size_t>(rng.uniformInt(
            0, static_cast<int64_t>(inputs.size()) - 1))];
    }
    return request;
}

void
appendHistogramJson(std::ostringstream &os, const char *name,
                    const LogHistogram &h, bool last)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"count\":%llu,\"mean\":%.1f,\"p50\":%.1f,"
                  "\"p95\":%.1f,\"p99\":%.1f,\"max\":%llu}%s",
                  name, static_cast<unsigned long long>(h.count()),
                  h.mean(), h.percentile(50.0), h.percentile(95.0),
                  h.percentile(99.0),
                  static_cast<unsigned long long>(h.max()),
                  last ? "" : ",");
    os << buf;
}

} // namespace

uint64_t
hashDecisionLog(const std::vector<std::string> &log)
{
    uint64_t hash = 1469598103934665603ull; // FNV-1a offset basis
    const auto mix = [&hash](char c) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    };
    for (const std::string &line : log) {
        for (const char c : line)
            mix(c);
        mix('\n');
    }
    return hash;
}

SoakResult
runServeSoak(const SoakConfig &config)
{
    // --- Model under test: the small CNN, briefly trained, quantized
    // into a precision ladder. Everything is seeded; the model build is
    // identical across same-seed runs.
    const PatternDataset calib(96, /*seed=*/config.seed ^ 0x5eedu);
    Network network = makeSmallCnn(QatConfig{false, 8, 8}, 42);
    TrainConfig train_config;
    train_config.epochs = std::max(1u, config.train_epochs);
    train(network, calib, train_config);

    std::vector<std::pair<unsigned, unsigned>> precisions =
        defaultLadderPrecisions();
    const unsigned tiers = std::clamp<unsigned>(
        config.ladder_tiers, 1,
        static_cast<unsigned>(precisions.size()));
    precisions.resize(tiers);
    PtqOptions ptq;
    ptq.calibration_samples = 32;
    ptq.bias_correction = false;
    std::vector<TierSpec> ladder =
        buildPrecisionLadder(network, calib, precisions, ptq);

    std::vector<Tensor<double>> inputs;
    for (size_t i = 0; i < 32 && i < calib.size(); ++i)
        inputs.push_back(calib.samples()[i].image);

    // --- Server.
    const uint64_t duration_ns =
        static_cast<uint64_t>(config.duration_s * 1e9);
    VirtualClock vclock;
    // The chaos engine must outlive the server (declared first so it is
    // destroyed last); the fault schedule seed derives from the soak
    // seed, keeping the injected events inside the same determinism
    // contract as arrivals.
    std::unique_ptr<ChaosEngine> chaos;
    ChaosProfile profile;
    if (!config.chaos_scenario.empty()) {
        Expected<ChaosProfile> looked_up =
            chaosProfileByName(config.chaos_scenario, duration_ns);
        if (!looked_up.ok())
            fatal(strCat("serve-soak: ",
                         looked_up.status().toString()));
        profile = std::move(*looked_up);
        chaos = std::make_unique<ChaosEngine>(
            config.seed ^ 0xc4a05c4a05ull, profile.scenario);
    }
    // Tenancy plane: a named scenario supplies both the policies and
    // the arrival mix; otherwise config.tenancy is used verbatim.
    TenancyOptions tenancy = config.tenancy;
    std::vector<std::pair<std::string, double>> arrival_mix;
    if (!config.tenant_scenario.empty()) {
        Expected<TenantScenario> scenario =
            tenantScenarioByName(config.tenant_scenario);
        if (!scenario.ok())
            fatal(strCat("serve-soak: ",
                         scenario.status().toString()));
        tenancy = scenario->options;
        arrival_mix = scenario->arrival_mix;
    }
    ServerOptions options;
    options.workers = config.virtual_time ? 0 : config.wall_workers;
    options.queue_capacity = config.queue_capacity;
    options.backend_threads = config.backend_threads;
    options.kernel_mode = config.kernel_mode;
    options.degradation = config.degradation;
    options.max_retries = config.max_retries;
    options.watchdog_timeout_ns = config.watchdog_timeout_ns;
    options.session = config.session;
    options.tenancy = tenancy;
    if (config.virtual_time) {
        options.virtual_clock = &vclock;
        options.virtual_ns_per_mac = config.virtual_ns_per_mac;
    }
    if (chaos) {
        options.chaos = chaos.get();
        options.breaker = profile.breaker;
        options.retry_budget = profile.retry_budget;
        options.hedge = profile.hedge;
        options.health = profile.health;
    }
    if (config.inject_stall && !config.virtual_time) {
        // Wedge exactly one attempt (the first dispatched) in a
        // no-heartbeat loop until the watchdog breaks it; clamp the
        // timeout so the postmortem fires well inside the run.
        options.watchdog_timeout_ns = std::min<uint64_t>(
            options.watchdog_timeout_ns, 250'000'000);
        options.watchdog_poll_ns =
            std::min<uint64_t>(options.watchdog_poll_ns, 20'000'000);
        auto stalled = std::make_shared<std::atomic<bool>>(false);
        options.execution_hook =
            [stalled](uint64_t, unsigned, const CancelToken &token) {
                bool expected = false;
                if (!stalled->compare_exchange_strong(expected, true))
                    return Status();
                while (!token.cancelled())
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                return token.status();
            };
    }
    InferenceServer server(options);
    Expected<uint64_t> graph_id = server.registerGraph(
        "smallcnn", std::move(ladder),
        {1, 1, PatternDataset::kImageSize, PatternDataset::kImageSize});
    if (!graph_id.ok())
        fatal(strCat("serve-soak: ", graph_id.status().toString()));
    if (config.on_server_start)
        config.on_server_start(server);

    Rng rng(config.seed);
    std::vector<std::future<ServeResponse>> futures;
    SoakResult result;
    result.config = config;
    result.config.tenancy = tenancy; // reflect a resolved scenario

    if (config.virtual_time) {
        // Discrete-event loop: the only events are arrivals (scripted
        // by the seeded Poisson process) and service completions (the
        // pump advances the clock by the modeled service time), so the
        // entire schedule is a pure function of the seed.
        const uint64_t end_ns = duration_ns;
        uint64_t next_arrival = drawInterarrivalNs(
            rng, arrivalRate(config, 0.0));
        uint64_t free_at = 0;
        bool drain_begun = false;
        while (true) {
            const bool have_arrival = next_arrival <= end_ns;
            if (!have_arrival && config.graceful_drain &&
                !drain_begun) {
                // Offered-load window closed: stop admission and let
                // the remaining queued work pump out.
                server.beginDrain();
                drain_begun = true;
            }
            const size_t depth = server.queueDepth();
            if (!have_arrival && depth == 0)
                break;
            const uint64_t service_at =
                depth > 0 ? std::max(free_at, vclock.nowNs())
                          : UINT64_MAX;
            if (have_arrival && next_arrival <= service_at) {
                vclock.advanceToNs(next_arrival);
                futures.push_back(server.submit(
                    makeRequest(config, rng, *graph_id, inputs,
                                next_arrival, arrival_mix)));
                next_arrival += drawInterarrivalNs(
                    rng, arrivalRate(config,
                                     static_cast<double>(next_arrival) /
                                         1e9));
            } else {
                vclock.advanceToNs(service_at);
                server.pump(1);
                free_at = vclock.nowNs();
            }
        }
        result.elapsed_s = static_cast<double>(vclock.nowNs()) / 1e9;
    } else {
        MonotonicClock &clock = MonotonicClock::instance();
        const uint64_t start = clock.nowNs();
        const uint64_t end = start + duration_ns;
        uint64_t next = start + drawInterarrivalNs(
                                    rng, arrivalRate(config, 0.0));
        while (next <= end) {
            const uint64_t now = clock.nowNs();
            if (next > now)
                std::this_thread::sleep_for(
                    std::chrono::nanoseconds(next - now));
            const uint64_t at = std::max(next, clock.nowNs());
            futures.push_back(server.submit(
                makeRequest(config, rng, *graph_id, inputs, at,
                            arrival_mix)));
            next += drawInterarrivalNs(
                rng, arrivalRate(config,
                                 static_cast<double>(at - start) / 1e9));
        }
        if (config.graceful_drain) {
            server.beginDrain();
            server.awaitDrained(duration_ns);
        }
        for (std::future<ServeResponse> &f : futures)
            f.wait();
        result.elapsed_s =
            static_cast<double>(clock.nowNs() - start) / 1e9;
    }

    if (config.on_server_drained)
        config.on_server_drained(server);
    result.stats = server.stats();
    result.latencies = server.latencyMetrics();
    result.decision_log = server.decisionLog();
    result.decision_hash = hashDecisionLog(result.decision_log);
    if (chaos)
        result.chaos = chaos->counts();
    result.goodput_rps =
        result.elapsed_s > 0.0
            ? static_cast<double>(result.stats.completed_ok) /
                  result.elapsed_s
            : 0.0;
    server.shutdown();
    return result;
}

std::string
SoakResult::toJson() const
{
    std::ostringstream os;
    char buf[512];
    os << "{\n";
    std::snprintf(
        buf, sizeof(buf),
        "\"config\":{\"seed\":%llu,\"duration_s\":%.3f,"
        "\"arrival_hz\":%.1f,\"burst_factor\":%.1f,"
        "\"queue_capacity\":%zu,\"virtual_time\":%s,"
        "\"wall_workers\":%u,\"ladder_tiers\":%u,\"tenants\":%u,"
        "\"inject_stall\":%s,\"chaos_scenario\":\"%s\","
        "\"tenant_scenario\":\"%s\",\"tenancy_enabled\":%s,"
        "\"graceful_drain\":%s},\n",
        static_cast<unsigned long long>(config.seed), config.duration_s,
        config.arrival_hz, config.burst_factor, config.queue_capacity,
        config.virtual_time ? "true" : "false", config.wall_workers,
        config.ladder_tiers, config.tenants,
        config.inject_stall ? "true" : "false",
        config.chaos_scenario.c_str(), config.tenant_scenario.c_str(),
        config.tenancy.enabled ? "true" : "false",
        config.graceful_drain ? "true" : "false");
    os << buf;
    std::snprintf(
        buf, sizeof(buf),
        "\"stats\":{\"submitted\":%llu,\"admitted\":%llu,"
        "\"completed_ok\":%llu,\"rejected_full\":%llu,"
        "\"rejected_invalid\":%llu,\"shed\":%llu,"
        "\"expired_submit\":%llu,\"expired_queue\":%llu,"
        "\"deadline_exceeded\":%llu,\"cancelled\":%llu,"
        "\"failed\":%llu,\"retries\":%llu,\"degrade_steps\":%llu,"
        "\"recover_steps\":%llu,\"watchdog_cancels\":%llu,"
        "\"final_level\":%u,",
        static_cast<unsigned long long>(stats.submitted),
        static_cast<unsigned long long>(stats.admitted),
        static_cast<unsigned long long>(stats.completed_ok),
        static_cast<unsigned long long>(stats.rejected_full),
        static_cast<unsigned long long>(stats.rejected_invalid),
        static_cast<unsigned long long>(stats.shed),
        static_cast<unsigned long long>(stats.expired_submit),
        static_cast<unsigned long long>(stats.expired_queue),
        static_cast<unsigned long long>(stats.deadline_exceeded),
        static_cast<unsigned long long>(stats.cancelled),
        static_cast<unsigned long long>(stats.failed),
        static_cast<unsigned long long>(stats.retries),
        static_cast<unsigned long long>(stats.degrade_steps),
        static_cast<unsigned long long>(stats.recover_steps),
        static_cast<unsigned long long>(stats.watchdog_cancels),
        stats.degradation_level);
    os << buf << "\"completed_by_tier\":[";
    for (size_t t = 0; t < stats.completed_by_tier.size(); ++t)
        os << (t ? "," : "") << stats.completed_by_tier[t];
    os << "],\"by_priority\":{";
    bool first_class = true;
    for (const auto &[priority, cls] : stats.by_priority) {
        os << (first_class ? "" : ",");
        first_class = false;
        std::snprintf(
            buf, sizeof(buf),
            "\"%d\":{\"submitted\":%llu,\"completed_ok\":%llu,"
            "\"shed\":%llu,\"rejected_full\":%llu,"
            "\"rejected_invalid\":%llu,\"rejected_closed\":%llu,"
            "\"rejected_quota\":%llu,\"rejected_draining\":%llu,"
            "\"expired_submit\":%llu,\"expired_queue\":%llu,"
            "\"deadline_exceeded\":%llu,\"cancelled\":%llu,"
            "\"failed\":%llu,\"degraded\":%llu}",
            priority, static_cast<unsigned long long>(cls.submitted),
            static_cast<unsigned long long>(cls.completed_ok),
            static_cast<unsigned long long>(cls.shed),
            static_cast<unsigned long long>(cls.rejected_full),
            static_cast<unsigned long long>(cls.rejected_invalid),
            static_cast<unsigned long long>(cls.rejected_closed),
            static_cast<unsigned long long>(cls.rejected_quota),
            static_cast<unsigned long long>(cls.rejected_draining),
            static_cast<unsigned long long>(cls.expired_submit),
            static_cast<unsigned long long>(cls.expired_queue),
            static_cast<unsigned long long>(cls.deadline_exceeded),
            static_cast<unsigned long long>(cls.cancelled),
            static_cast<unsigned long long>(cls.failed),
            static_cast<unsigned long long>(cls.degraded));
        os << buf;
    }
    os << "}},\n";

    std::snprintf(
        buf, sizeof(buf),
        "\"tenancy\":{\"enabled\":%s,\"draining\":%s,"
        "\"tenant_count\":%llu,\"rejected_rate\":%llu,"
        "\"rejected_bulkhead\":%llu,\"rejected_tenant_limit\":%llu,"
        "\"rejected_draining\":%llu,\"brownout_steps\":%llu,"
        "\"brownout_clears\":%llu,\"priority_clamps\":%llu,"
        "\"drain_cancelled\":%llu,\"by_tenant\":{",
        config.tenancy.enabled ? "true" : "false",
        stats.draining ? "true" : "false",
        static_cast<unsigned long long>(stats.tenant_count),
        static_cast<unsigned long long>(stats.rejected_rate),
        static_cast<unsigned long long>(stats.rejected_bulkhead),
        static_cast<unsigned long long>(stats.rejected_tenant_limit),
        static_cast<unsigned long long>(stats.rejected_draining),
        static_cast<unsigned long long>(stats.brownout_steps),
        static_cast<unsigned long long>(stats.brownout_clears),
        static_cast<unsigned long long>(stats.priority_clamps),
        static_cast<unsigned long long>(stats.drain_cancelled));
    os << buf;
    bool first_tenant = true;
    for (const auto &[name, ten] : stats.by_tenant) {
        os << (first_tenant ? "" : ",");
        first_tenant = false;
        char tbuf[1024];
        std::snprintf(
            tbuf, sizeof(tbuf),
            "\"%s\":{\"submitted\":%llu,\"admitted\":%llu,"
            "\"completed_ok\":%llu,\"shed\":%llu,"
            "\"rejected_full\":%llu,\"rejected_invalid\":%llu,"
            "\"rejected_closed\":%llu,\"rejected_rate\":%llu,"
            "\"rejected_bulkhead\":%llu,\"rejected_limit\":%llu,"
            "\"rejected_draining\":%llu,\"expired_submit\":%llu,"
            "\"expired_queue\":%llu,\"deadline_exceeded\":%llu,"
            "\"cancelled\":%llu,\"failed\":%llu,\"degraded\":%llu,"
            "\"retries\":%llu,\"brownout_steps\":%llu,"
            "\"brownout_clears\":%llu,\"priority_clamps\":%llu,"
            "\"drain_cancelled\":%llu,\"brownout_level\":%u,"
            "\"weight\":%u,\"goodput_rps\":%.3f}",
            jsonEscape(name).c_str(),
            static_cast<unsigned long long>(ten.submitted),
            static_cast<unsigned long long>(ten.admitted),
            static_cast<unsigned long long>(ten.completed_ok),
            static_cast<unsigned long long>(ten.shed),
            static_cast<unsigned long long>(ten.rejected_full),
            static_cast<unsigned long long>(ten.rejected_invalid),
            static_cast<unsigned long long>(ten.rejected_closed),
            static_cast<unsigned long long>(ten.rejected_rate),
            static_cast<unsigned long long>(ten.rejected_bulkhead),
            static_cast<unsigned long long>(ten.rejected_limit),
            static_cast<unsigned long long>(ten.rejected_draining),
            static_cast<unsigned long long>(ten.expired_submit),
            static_cast<unsigned long long>(ten.expired_queue),
            static_cast<unsigned long long>(ten.deadline_exceeded),
            static_cast<unsigned long long>(ten.cancelled),
            static_cast<unsigned long long>(ten.failed),
            static_cast<unsigned long long>(ten.degraded),
            static_cast<unsigned long long>(ten.retries),
            static_cast<unsigned long long>(ten.brownout_steps),
            static_cast<unsigned long long>(ten.brownout_clears),
            static_cast<unsigned long long>(ten.priority_clamps),
            static_cast<unsigned long long>(ten.drain_cancelled),
            ten.brownout_level, ten.weight,
            elapsed_s > 0.0
                ? static_cast<double>(ten.completed_ok) / elapsed_s
                : 0.0);
        os << tbuf;
    }
    os << "}},\n";

    std::snprintf(
        buf, sizeof(buf),
        "\"resilience\":{\"breaker_open_events\":%llu,"
        "\"breaker_reopen_events\":%llu,\"breaker_close_events\":%llu,"
        "\"breaker_probes\":%llu,\"breaker_fast_fails\":%llu,"
        "\"breakers_open\":%llu,\"retry_budget_denied\":%llu,"
        "\"retry_budget_level\":%.3f,\"hedges_launched\":%llu,"
        "\"hedge_wins\":%llu,\"backend_quarantines\":%llu,"
        "\"backend_recoveries\":%llu,\"graph_reloads\":%llu,",
        static_cast<unsigned long long>(stats.breaker_open_events),
        static_cast<unsigned long long>(stats.breaker_reopen_events),
        static_cast<unsigned long long>(stats.breaker_close_events),
        static_cast<unsigned long long>(stats.breaker_probes),
        static_cast<unsigned long long>(stats.breaker_fast_fails),
        static_cast<unsigned long long>(stats.breakers_open),
        static_cast<unsigned long long>(stats.retry_budget_denied),
        stats.retry_budget_level,
        static_cast<unsigned long long>(stats.hedges_launched),
        static_cast<unsigned long long>(stats.hedge_wins),
        static_cast<unsigned long long>(stats.backend_quarantines),
        static_cast<unsigned long long>(stats.backend_recoveries),
        static_cast<unsigned long long>(stats.graph_reloads));
    os << buf;
    std::snprintf(
        buf, sizeof(buf),
        "\"chaos_events\":%llu,\"chaos\":{\"throws\":%llu,"
        "\"stalls\":%llu,\"transients\":%llu,\"arrival_delays\":%llu,"
        "\"clock_skews\":%llu,\"store_faults\":%llu}},\n",
        static_cast<unsigned long long>(stats.chaos_events),
        static_cast<unsigned long long>(chaos.throws),
        static_cast<unsigned long long>(chaos.stalls),
        static_cast<unsigned long long>(chaos.transients),
        static_cast<unsigned long long>(chaos.arrival_delays),
        static_cast<unsigned long long>(chaos.clock_skews),
        static_cast<unsigned long long>(chaos.store_faults));
    os << buf;

    os << "\"latency_ns\":{";
    const std::map<std::string, LogHistogram> &all = latencies.all();
    static const LogHistogram kEmpty;
    const auto histogram = [&all](const char *name) -> const LogHistogram & {
        const auto it = all.find(name);
        return it == all.end() ? kEmpty : it->second;
    };
    appendHistogramJson(os, "queue", histogram("serve/queue_ns"), false);
    appendHistogramJson(os, "exec", histogram("serve/exec_ns"), false);
    appendHistogramJson(os, "total", histogram("serve/total_ns"), true);
    os << "},\n";

    std::snprintf(buf, sizeof(buf),
                  "\"elapsed_s\":%.6f,\n\"goodput_rps\":%.3f,\n"
                  "\"decision_count\":%zu,\n"
                  "\"decision_hash\":\"0x%016llx\"",
                  elapsed_s, goodput_rps, decision_log.size(),
                  static_cast<unsigned long long>(decision_hash));
    os << buf;
    if (config.emit_decision_log) {
        os << ",\n\"decision_log\":[";
        for (size_t i = 0; i < decision_log.size(); ++i)
            os << (i ? ",\n" : "\n") << '"'
               << jsonEscape(decision_log[i]) << '"';
        os << "]";
    }
    os << "\n}\n";
    return os.str();
}

} // namespace mixgemm
