/**
 * @file
 * Seeded open-loop load generator and soak harness for the inference
 * server.
 *
 * Open-loop means arrivals do not wait for completions — a Poisson
 * process with periodic burst windows keeps offered load independent of
 * the server's state, which is what actually exposes overload behaviour
 * (admission shed, precision degradation, deadline misses). A small
 * fraction of arrivals is adversarial: wrong-shape inputs and unknown
 * graph ids that admission must reject without disturbing service.
 *
 * Two modes share all generation logic:
 *  - virtual time (default): a VirtualClock plus the server's pump mode
 *    make the whole soak a deterministic discrete-event simulation —
 *    the same seed reproduces the decision log byte for byte (tested,
 *    and diffed in CI);
 *  - wall clock: real worker threads, real sleeps, the watchdog armed —
 *    the configuration the CI soak job and the TSan soak run to shake
 *    out races and leaks.
 *
 * The result aggregates goodput, shed/reject/deadline counts, the
 * per-tier completion mix, and latency percentiles, and serializes to
 * JSON for the CI artifact.
 */

#ifndef MIXGEMM_SERVE_SOAK_H
#define MIXGEMM_SERVE_SOAK_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/chaos.h"
#include "serve/server.h"
#include "serve/tenancy.h"

namespace mixgemm
{

/** Soak scenario knobs. Defaults give a bursty ~75 %-utilization run
 * that exercises shed, degradation, and deadline misses in a couple of
 * simulated seconds. */
struct SoakConfig
{
    uint64_t seed = 1;
    double duration_s = 2.0;    ///< offered-load window (sim or wall)
    double arrival_hz = 1200.0; ///< base Poisson arrival rate
    double burst_factor = 4.0;  ///< rate multiplier inside bursts
    double burst_every_s = 0.5; ///< burst cycle period (0 = no bursts)
    double burst_len_s = 0.1;   ///< burst duration per cycle
    double oversized_prob = 0.02; ///< wrong-shape adversarial arrivals
    double bad_graph_prob = 0.01; ///< unknown-graph-id arrivals
    double no_deadline_prob = 0.2;
    double deadline_lo_s = 0.005; ///< deadline drawn log-uniform from
    double deadline_hi_s = 0.080; ///< [lo, hi] after submission
    int priority_levels = 3;      ///< priorities drawn from [0, n)
    size_t queue_capacity = 16;
    DegradationPolicy degradation = {
        true, 0.75, 0.25, 0, 40'000'000}; ///< 40 ms dwell
    unsigned max_retries = 2;

    bool virtual_time = true;
    uint64_t virtual_ns_per_mac = 20; ///< ~0.6 ms per 8-bit inference
    unsigned wall_workers = 2;        ///< threads in wall-clock mode
    unsigned backend_threads = 1;
    KernelMode kernel_mode = KernelMode::Fast;
    uint64_t watchdog_timeout_ns = 2'000'000'000;

    unsigned ladder_tiers = 3;  ///< rungs from defaultLadderPrecisions()
    unsigned train_epochs = 1;  ///< CNN pre-training (1 keeps it quick)
    bool emit_decision_log = true; ///< include the log in the JSON

    /**
     * Tenants > 1 draws each request's tenant uniformly from
     * "tenant0".."tenant<n-1>" (one extra rng draw per arrival);
     * tenants <= 1 leaves every request on the default tenant and the
     * rng sequence untouched. Ignored when a tenant scenario supplies
     * its own arrival mix.
     */
    unsigned tenants = 1;

    /**
     * Multi-tenant isolation plane for the run (see serve/tenancy.h).
     * Disabled by default; the CLI fills it from --tenant-policy.
     * Overridden wholesale by @ref tenant_scenario when that is set.
     */
    TenancyOptions tenancy;

    /**
     * Non-empty: run a named tenant scenario (tenantScenarioByName()):
     * its TenancyOptions replace @ref tenancy and each arrival draws
     * its tenant from the scenario's arrival mix (one extra rng draw
     * per arrival, same determinism contract as everything else).
     */
    std::string tenant_scenario;

    /**
     * Exercise graceful drain: once the offered-load window closes,
     * beginDrain() stops admission and the remaining queued work
     * completes (decision-logged with per-tenant queue state).
     */
    bool graceful_drain = false;

    /** Per-GEMM report sink wired into every worker backend (telemetry
     * attach point). Not owned; may be null. */
    TraceSession *session = nullptr;

    /**
     * Wall-clock mode only: wedge the first dispatched attempt in a
     * no-heartbeat loop until the watchdog cancels it (the watchdog
     * timeout is clamped to 250 ms so the dump fires early in the run).
     * Exercises the flight-recorder postmortem path under real load.
     */
    bool inject_stall = false;

    /**
     * Non-empty: run under a named chaos scenario (see
     * chaosProfileByName()). The scenario's profile arms the circuit
     * breakers, retry budget, hedging and backend health for the run;
     * the chaos seed derives from the soak seed, so the injected fault
     * schedule is part of the same determinism contract as the rest of
     * the soak.
     */
    std::string chaos_scenario;

    /** Called with the live server after graph registration, before any
     * traffic — attach observers/exporters here. */
    std::function<void(InferenceServer &)> on_server_start;
    /** Called after the run has drained, before stats are read and the
     * server shuts down — final telemetry sync / scrapes here. */
    std::function<void(InferenceServer &)> on_server_drained;
};

/** Aggregated outcome of one soak run. */
struct SoakResult
{
    SoakConfig config;
    ServerStats stats;
    MetricSet latencies;
    std::vector<std::string> decision_log;
    uint64_t decision_hash = 0; ///< FNV-1a over the log lines
    double elapsed_s = 0.0;     ///< simulated or wall duration
    double goodput_rps = 0.0;   ///< ok completions per (sim/wall) second
    ChaosCounts chaos;          ///< applied-event counts (chaos runs)

    /** Serialize for the CI artifact; includes the decision log only
     * when the config asked for it. */
    std::string toJson() const;
};

/** FNV-1a over the log lines — the cheap determinism fingerprint two
 * same-seed runs are compared by. */
uint64_t hashDecisionLog(const std::vector<std::string> &log);

/** Run one soak scenario end to end (build ladder, register, drive
 * load, drain, aggregate). */
SoakResult runServeSoak(const SoakConfig &config);

} // namespace mixgemm

#endif // MIXGEMM_SERVE_SOAK_H
