/**
 * @file
 * Embeddable inference server over the Mix-GEMM runtime.
 *
 * The paper positions Mix-GEMM as the compute engine of an edge
 * inference stack (ONNX Runtime backend, Fig. 3); this module supplies
 * the robustness layer such a deployment needs around the kernel:
 * bounded admission (reject, never queue unboundedly), priority-aware
 * load shedding, per-request deadlines enforced by cooperative
 * cancellation at macro-tile boundaries, load-aware precision
 * degradation down a pre-quantized ladder (the paper's own
 * accuracy-for-throughput trade, applied dynamically), a watchdog that
 * cancels and recycles stuck workers, and retry-with-backoff for
 * transient (kUnavailable) failures such as ABFT retry exhaustion.
 *
 * Every *decision* the server makes — admit/shed/reject, degrade/
 * recover, retry, expire — reads time from a Clock and is appended to a
 * decision log. With a VirtualClock and workers = 0 (pump mode) the
 * whole server is synchronous and deterministic: two runs with the same
 * seed produce byte-identical decision logs, which is how the soak
 * harness and tests pin scheduling behaviour.
 */

#ifndef MIXGEMM_SERVE_SERVER_H
#define MIXGEMM_SERVE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/cancel.h"
#include "common/clock.h"
#include "common/status.h"
#include "runtime/backend.h"
#include "runtime/qgraph.h"
#include "serve/resilience.h"
#include "serve/tenancy.h"
#include "trace/metrics.h"

namespace mixgemm
{

class PackedModelIndex;  // store/store.h
class PackedWeightStore; // store/store.h
class ChaosEngine;       // serve/chaos.h
struct ChaosAttemptPlan; // serve/chaos.h

/** One rung of a registered graph's precision ladder. */
struct TierSpec
{
    QuantizedGraph graph;
    /// Human-readable precision label ("a8-w8", "a4-w4", ...).
    std::string label;

    /**
     * Lazy rung: when set, @ref graph stays empty and this builder runs
     * on the *first request* that degrades to this precision — unused
     * rungs never pay their quantization or packing cost
     * (ladder.h::buildLazyPrecisionLadder). The builder must be
     * deterministic (same graph every invocation): an evicted rung that
     * re-materializes must produce bitwise-identical results, and with
     * a content-addressed weight store a rebuild re-derives the same
     * artifact key. Rung 0 must be eager — it is the ladder's
     * always-available fallback and its dry run calibrates the
     * virtual-time cost model.
     */
    std::function<QuantizedGraph()> build;
    /// Precision of a lazy rung (for the analytic cost model).
    unsigned a_bits = 8;
    unsigned w_bits = 8;

    bool lazy() const { return static_cast<bool>(build); }
};

/**
 * Load-aware precision degradation policy. The server keeps one global
 * degradation level; each admitted request executes the rung
 * min(level, ladder size - 1) of its graph's ladder. The level moves
 * *up* (coarser precision, faster GEMMs) when the queue fills past
 * @ref high_watermark or the recent-latency p95 exceeds
 * @ref p95_high_ns, and back *down* when the queue drains below
 * @ref low_watermark — but never more often than @ref min_dwell_ns
 * (hysteresis), so a noisy load pattern cannot make it thrash.
 */
struct DegradationPolicy
{
    bool enabled = true;
    double high_watermark = 0.75; ///< queue fill fraction that degrades
    double low_watermark = 0.25;  ///< queue fill fraction that recovers
    /// Recent total-latency p95 (ns) that also degrades; 0 disables the
    /// latency trigger. The window resets at every level change.
    uint64_t p95_high_ns = 0;
    uint64_t min_dwell_ns = 0; ///< minimum time between level changes
};

/** Server construction knobs. */
struct ServerOptions
{
    /**
     * Worker threads. 0 selects *pump mode*: no threads are started and
     * queued requests execute synchronously inside pump() on the
     * caller's thread — the deterministic mode the virtual-time soak
     * and the decision-log tests run in.
     */
    unsigned workers = 2;
    size_t queue_capacity = 64; ///< admission queue bound (≥ 1)
    unsigned backend_threads = 1; ///< GEMM threads per worker backend
    KernelMode kernel_mode = KernelMode::Fast;
    DegradationPolicy degradation;

    /** Default retry budget for retriable (kUnavailable) failures. */
    unsigned max_retries = 2;
    /** First retry backoff; doubles per attempt. Counted against the
     * request's deadline — a retry that cannot fit is not taken. */
    uint64_t retry_backoff_ns = 1'000'000;

    /**
     * Watchdog: a busy worker whose progress heartbeat (cancellation-
     * token polls) has not moved for this long is presumed stuck; its
     * request is cancelled (kUnavailable, hence retriable on resubmit)
     * and the worker's backend is recycled. 0 disables the watchdog.
     * Only armed in threaded mode.
     */
    uint64_t watchdog_timeout_ns = 2'000'000'000;
    uint64_t watchdog_poll_ns = 50'000'000; ///< watchdog check period

    /** Decision-time source. Null selects MonotonicClock::instance(). */
    const Clock *clock = nullptr;
    /**
     * Virtual-time mode: decisions read this clock, and each execution
     * *advances* it by the rung's modeled service time — its
     * precision-weighted MAC count (in 8x8-equivalent MACs, so coarser
     * rungs model as faster) times @ref virtual_ns_per_mac — making
     * queueing dynamics simulated and deterministic. Requires
     * workers = 0.
     */
    VirtualClock *virtual_clock = nullptr;
    uint64_t virtual_ns_per_mac = 100; ///< ns per 8x8-equivalent MAC

    /** ABFT policy applied to every worker backend (see gemm/abft.h). */
    FaultPolicy fault_policy = FaultPolicy::Off;
    unsigned abft_max_retries = 2;
    /** Fault-injection engine shared by the backends (campaign/tests;
     * pump mode only — injectors are not thread-safe). Not owned. */
    FaultInjector *fault_injector = nullptr;

    /** Observability sink for per-GEMM reports. Not owned. */
    TraceSession *session = nullptr;

    /**
     * Packed-weight store consulted when a rung materializes: its
     * weights load pack-once / mmap-thereafter, and every GEMM of the
     * rung runs from the pre-packed panels instead of re-packing per
     * call. Not owned; must outlive the server. Null = pack per call,
     * as before.
     */
    PackedWeightStore *weight_store = nullptr;

    /**
     * LRU byte budget across *lazily materialized* rungs (graph +
     * packed panels), all graphs pooled. When a materialization pushes
     * the pool past the budget, least-recently-used lazy rungs are
     * evicted (decision-logged); a later request at that precision
     * deterministically re-materializes. Eager rungs are never
     * evicted. 0 = unbounded.
     */
    uint64_t rung_budget_bytes = 0;

    /**
     * Test-only execution hook, run before each attempt with the
     * request sequence number, the 1-based attempt index, and the
     * attempt's cancellation token. A non-ok return is taken as the
     * attempt's outcome (the graph does not run); a throw exercises the
     * worker-exception path; a loop polling the token simulates a stall
     * the watchdog must break.
     */
    std::function<Status(uint64_t seq, unsigned attempt,
                         const CancelToken &token)>
        execution_hook;

    /**
     * Deterministic chaos plane (serve/chaos.h). When set, every
     * execution attempt and (under a VirtualClock) every submission
     * consults the engine for injected faults; each applied event is
     * decision-logged, so same-seed chaos soaks stay byte-identical.
     * Null — the default — takes none of these code paths. Not owned.
     */
    ChaosEngine *chaos = nullptr;

    /** Per-(graph, rung) circuit breakers; disabled by default. An
     * open breaker fast-fails requests for its rung at admission. */
    BreakerOptions breaker;
    /** Global retry token bucket; disabled by default. A retry that
     * cannot acquire a token is suppressed (the failure is final). */
    RetryBudgetOptions retry_budget;
    /** Hedged requests; disabled by default. Modeled under a
     * VirtualClock, real first-wins racing in threaded mode. */
    HedgeOptions hedge;
    /** Per-backend health scoring with quarantine; disabled by
     * default. */
    HealthOptions health;

    /**
     * Multi-tenant isolation plane (serve/tenancy.h); disabled by
     * default. When enabled, admission enforces per-tenant token-bucket
     * rates, bulkheads, priority ceilings and accuracy floors, the
     * single global queue becomes per-tenant bounded sub-queues drained
     * by deficit weighted round robin, and a load-aware brownout
     * controller degrades over-quota tenants down the precision ladder
     * before in-quota ones. Disabled, the server takes the identical
     * scheduling path it took before tenancy existed.
     */
    TenancyOptions tenancy;

    /** Decision-log size cap; beyond it entries are counted, not kept. */
    size_t max_decision_log = 200'000;
};

/** One inference request. */
struct ServeRequest
{
    uint64_t graph_id = 0;       ///< from registerGraph()
    Tensor<double> input;        ///< must match the registered shape
    uint64_t deadline_ns = 0;    ///< absolute, per server clock; 0 = none
    int priority = 0;            ///< higher = more valuable (shed last)
    int max_retries = -1;        ///< -1 = server default
    /// Submitting tenant. With tenancy disabled this is pure metadata
    /// (telemetry labels, per-tenant SLO tracking); with
    /// ServerOptions::tenancy enabled it selects the tenant's quota,
    /// fair-share lane, and brownout/accuracy policy.
    std::string tenant = "default";
};

/** Per-request accounting returned with every response. */
struct RequestReport
{
    uint64_t seq = 0;       ///< admission sequence number
    unsigned tier = 0;      ///< ladder rung the request executed at
    std::string tier_label; ///< its precision label
    int worker = -1;        ///< worker index (-1: rejected before dispatch)
    unsigned attempts = 0;  ///< execution attempts (≥ 1 if dispatched)
    int priority = 0;       ///< request's priority class
    std::string tenant;     ///< request's tenant
    uint64_t submit_ns = 0;
    uint64_t start_ns = 0; ///< dequeue time (0 if never dispatched)
    uint64_t done_ns = 0;
};

/** Inference outcome: status, logits (empty unless ok), accounting. */
struct ServeResponse
{
    Status status;
    std::vector<double> output;
    RequestReport report;
};

/**
 * Per-priority-class terminal accounting. For every class the identity
 *
 *   submitted == completed_ok + shed + rejected_full + rejected_invalid
 *              + rejected_closed + rejected_quota + rejected_draining
 *              + expired_submit + deadline_exceeded
 *              + cancelled + failed
 *
 * holds once the server has drained (expired_queue is an informational
 * subcount of deadline_exceeded; degraded counts dispatched requests
 * that executed above rung 0 and overlaps the terminal buckets).
 */
struct PriorityClassStats
{
    uint64_t submitted = 0;
    uint64_t completed_ok = 0;
    uint64_t shed = 0;
    uint64_t rejected_full = 0;
    uint64_t rejected_invalid = 0;
    uint64_t rejected_closed = 0;
    /// Tenancy quota rejections (rate, bulkhead, tenant-table limit);
    /// zero unless ServerOptions::tenancy is enabled.
    uint64_t rejected_quota = 0;
    /// Rejected because the server was draining (beginDrain()).
    uint64_t rejected_draining = 0;
    uint64_t expired_submit = 0;
    uint64_t expired_queue = 0;
    uint64_t deadline_exceeded = 0;
    uint64_t cancelled = 0;
    uint64_t failed = 0;
    uint64_t degraded = 0;
};

/** Aggregate server counters (one consistent snapshot). */
struct ServerStats
{
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t completed_ok = 0;
    uint64_t rejected_full = 0;    ///< queue full, nothing shed
    uint64_t rejected_invalid = 0; ///< bad graph id / shape
    uint64_t rejected_closed = 0;  ///< submitted after shutdown
    uint64_t shed = 0;             ///< displaced by higher-priority work
    uint64_t expired_submit = 0;   ///< deadline already passed at submit
    uint64_t expired_queue = 0;    ///< deadline passed while queued
    uint64_t deadline_exceeded = 0;///< tripped or missed during execution
    uint64_t cancelled = 0;        ///< explicit cancellation
    uint64_t failed = 0;           ///< other non-ok terminal statuses
    uint64_t retries = 0;          ///< extra attempts taken
    uint64_t degrade_steps = 0;
    uint64_t recover_steps = 0;
    uint64_t watchdog_cancels = 0;
    uint64_t rung_materializations = 0; ///< lazy rungs built on demand
    uint64_t rung_evictions = 0;        ///< lazy rungs dropped by budget
    uint64_t lazy_rungs_resident = 0;   ///< currently materialized
    uint64_t lazy_resident_bytes = 0;   ///< their pooled footprint
    uint64_t decisions_dropped = 0; ///< log entries beyond the cap

    // Resilience layer (all zero unless the matching option is on).
    uint64_t breaker_open_events = 0;   ///< closed -> open transitions
    uint64_t breaker_reopen_events = 0; ///< half-open probe failures
    uint64_t breaker_close_events = 0;  ///< half-open -> closed
    uint64_t breaker_probes = 0;        ///< half-open probe admissions
    uint64_t breaker_fast_fails = 0;    ///< fast-failed at admission
    uint64_t breakers_open = 0;         ///< breakers currently not closed
    uint64_t retry_budget_denied = 0;   ///< retries the budget suppressed
    double retry_budget_level = 0.0;    ///< tokens left (snapshot time)
    uint64_t hedges_launched = 0;
    uint64_t hedge_wins = 0;            ///< hedge result was used
    uint64_t backend_quarantines = 0;
    uint64_t backend_recoveries = 0;
    uint64_t backends_quarantined = 0;  ///< currently quarantined
    uint64_t chaos_events = 0;          ///< injected chaos events applied
    uint64_t graph_reloads = 0;         ///< hot ladder swaps

    // Tenancy plane (all zero / empty unless tenancy is enabled,
    // except by_tenant, which accumulates terminal accounting keyed by
    // request tenant in both modes).
    uint64_t rejected_rate = 0;     ///< tenant token bucket empty
    uint64_t rejected_bulkhead = 0; ///< tenant max_in_flight exceeded
    uint64_t rejected_tenant_limit = 0; ///< tenant table full
    uint64_t rejected_draining = 0; ///< submitted after beginDrain()
    uint64_t brownout_steps = 0;    ///< per-tenant brownout escalations
    uint64_t brownout_clears = 0;   ///< per-tenant brownout recoveries
    uint64_t priority_clamps = 0;   ///< priorities clamped to ceilings
    uint64_t drain_cancelled = 0;   ///< queued work cancelled by drain
    uint64_t tenant_count = 0;      ///< tenants registered
    bool draining = false;          ///< beginDrain() has been called

    unsigned degradation_level = 0;
    size_t queue_depth = 0;
    std::vector<uint64_t> completed_by_tier; ///< ok completions per rung
    /// Terminal accounting per priority class (see PriorityClassStats).
    std::map<int, PriorityClassStats> by_priority;
    /// Per-tenant accounting (see TenantStats for the identity).
    std::map<std::string, TenantStats> by_tenant;
};

/**
 * Telemetry hook into the server's event stream. All callbacks must be
 * fast and must never call back into the InferenceServer:
 * onDecision() runs under the server's internal mutex (calling
 * stats()/decisionLog() from it deadlocks); the other callbacks run
 * outside it but still sit on the serving hot path.
 */
class ServeObserver
{
  public:
    virtual ~ServeObserver() = default;

    /** One decision-log line, in log order (@p decision_seq is the
     * line's "#N" prefix; entries past the log cap still arrive). */
    virtual void onDecision(uint64_t decision_seq,
                            const std::string &line)
    {
        (void)decision_seq;
        (void)line;
    }

    /** A request reached a terminal state (including rejections). */
    virtual void onTerminal(const RequestReport &report, StatusCode code)
    {
        (void)report;
        (void)code;
    }

    /** The watchdog cancelled a stuck worker's request. */
    virtual void onWatchdogCancel(unsigned worker, uint64_t seq,
                                  uint64_t now_ns)
    {
        (void)worker;
        (void)seq;
        (void)now_ns;
    }

    /** A GEMM finished with ABFT-uncorrectable tiles. */
    virtual void onAbftUncorrectable(uint64_t seq, uint64_t tiles,
                                     uint64_t now_ns)
    {
        (void)seq;
        (void)tiles;
        (void)now_ns;
    }
};

/**
 * Embeddable inference server; see the file comment for the design.
 * Thread-safe: submit()/stats()/decisionLog() may be called from any
 * thread. Destruction shuts down, failing queued work with
 * kUnavailable.
 */
class InferenceServer
{
  public:
    explicit InferenceServer(ServerOptions options);
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * Register a named graph with its precision ladder (full precision
     * first, coarser rungs after) and the input shape every request
     * must match. Each rung is dry-run once against a MAC-counting
     * backend, which both validates that it accepts the declared shape
     * and measures the modeled service cost used in virtual-time mode.
     * Returns the graph id submit() takes.
     */
    Expected<uint64_t> registerGraph(std::string name,
                                     std::vector<TierSpec> ladder,
                                     std::vector<size_t> input_shape);

    /**
     * Submit a request. Admission happens synchronously — validation,
     * degradation-level assignment, and the admit/shed/reject decision
     * — and the returned future resolves when the request reaches a
     * terminal state (possibly already, if it was rejected). Never
     * blocks on a full queue.
     */
    std::future<ServeResponse> submit(ServeRequest request);

    /**
     * Hot-reload a registered graph's precision ladder in place: the
     * new rungs are built and dry-run *outside* the server locks, then
     * swapped atomically under rung_mutex_. In-flight and queued
     * requests keep running — a request admitted against the old
     * ladder whose rung index exceeds the new ladder is clamped at
     * execution. The input shape is unchanged; the new ladder must
     * satisfy the same invariants as registerGraph (rung 0 eager).
     * Returns the graph's new generation number (1 for the first
     * reload).
     */
    Expected<uint64_t> reloadGraph(uint64_t id,
                                   std::vector<TierSpec> ladder);

    /**
     * Pump mode only (workers = 0): synchronously execute up to
     * @p max_requests queued requests on the calling thread; returns
     * the number executed.
     */
    unsigned pump(unsigned max_requests = 1);

    /**
     * Graceful drain, phase 1: stop admission. Every later submit is
     * rejected with kUnavailable ("tenant_drain: ..."); queued and
     * in-flight work keeps executing (pump() in pump mode, the workers
     * in threaded mode). Idempotent; decision-logs the drain with
     * per-tenant queue depths when tenancy is enabled. Complete the
     * drain by pumping/waiting until drained(), or cut it short with
     * shutdown(), which cancels the remainder with per-tenant
     * accounting (ServerStats::drain_cancelled, TenantStats::
     * drain_cancelled).
     */
    void beginDrain();

    /** True when nothing is queued and no worker is executing. */
    bool drained() const;

    /**
     * Block until drained() or @p timeout_ns elapses (0 = one
     * immediate check); returns drained(). Threaded mode polls; in
     * pump mode time only advances when the caller pumps, so this is
     * just the check.
     */
    bool awaitDrained(uint64_t timeout_ns);

    /**
     * Stop accepting work, fail everything still queued with
     * kUnavailable, and join the workers. Idempotent; the destructor
     * calls it.
     */
    void shutdown();

    ServerStats stats() const;

    /** Decision log so far ("t=... admit seq=3 ...", one per entry). */
    std::vector<std::string> decisionLog() const;

    /** Latency histograms: serve/queue_ns, serve/exec_ns,
     * serve/total_ns. */
    MetricSet latencyMetrics() const;

    /**
     * Attach (or detach, with nullptr) a telemetry observer. Install
     * before traffic starts and detach only after the server is
     * quiescent; the observer must outlive its attachment. Not owned.
     */
    void setObserver(ServeObserver *observer)
    {
        observer_.store(observer, std::memory_order_release);
    }

    size_t queueDepth() const
    {
        return sched_ ? sched_->size() : queue_.size();
    }

  private:
    struct RegisteredGraph
    {
        std::string name;
        std::vector<TierSpec> ladder;
        /// Per-rung modeled cost (8x8-equivalent MACs): eager rungs
        /// from the registration dry run, lazy rungs from the analytic
        /// uniform-precision model (raw_macs * a_bits * w_bits / 64) —
        /// fixed at registration either way, so virtual-time dynamics
        /// stay deterministic.
        std::vector<uint64_t> tier_macs;
        std::vector<size_t> input_shape;
        /// Raw m*n*k MAC sum of the rung-0 dry run (lazy cost model).
        uint64_t raw_macs = 0;

        // Rung state below is guarded by the server-wide rung_mutex_.
        /// Materialized per-rung graphs; a null slot is a lazy rung
        /// not (or no longer) resident. Handed out as shared_ptr so
        /// eviction never invalidates an executing request.
        std::vector<std::shared_ptr<const QuantizedGraph>> rungs;
        /// Pre-packed weight indexes per rung (null without a store).
        std::vector<std::shared_ptr<const PackedModelIndex>> rung_packs;
        std::vector<uint64_t> rung_bytes;    ///< footprint when resident
        std::vector<uint64_t> rung_last_use; ///< logical LRU tick

        // Guarded by mutex_ (admission-side state, not rung state).
        /// Per-rung circuit breakers; grows on register/reload, never
        /// shrinks, so in-flight requests keep a stable breaker index.
        std::vector<std::unique_ptr<CircuitBreaker>> breakers;
        /// Bumped by every reloadGraph(); reload safety for requests
        /// admitted against the previous ladder.
        uint64_t generation = 0;
    };

    struct Pending
    {
        ServeRequest request;
        uint64_t seq = 0;
        uint64_t submit_ns = 0;
        unsigned tier = 0;
        RegisteredGraph *graph = nullptr;
        /// Dense tenant id (TenantRegistry); 0 when tenancy is off.
        /// TenantScheduler keys its lanes on this member.
        uint32_t tenant_id = 0;
        /// Admitted as a half-open breaker probe; exactly one of
        /// onSuccess/onFailure/abandonProbe must resolve it.
        bool breaker_probe = false;
        std::promise<ServeResponse> promise;
    };

    /** Per-worker liveness and cancellation rendezvous. */
    struct WorkerSlot
    {
        std::atomic<uint64_t> progress{0};   ///< token-poll heartbeat
        std::atomic<uint64_t> busy_seq{0};   ///< 0 = idle
        std::atomic<uint64_t> busy_since{0}; ///< dispatch time (ns)
        std::atomic<bool> recycle{false};    ///< backend tainted, rebuild
        std::mutex mutex;                    ///< guards active
        std::shared_ptr<CancelSource> active;

        // Owned by the executing thread (no locking needed).
        /// Lazily created second backend for hedged attempts.
        std::unique_ptr<MixGemmBackend> hedge_backend;
        unsigned health_failures = 0; ///< consecutive failed attempts
        bool quarantined = false;
        uint64_t quarantined_until_ns = 0;
    };

    std::unique_ptr<MixGemmBackend> makeBackend() const;
    void workerMain(unsigned index);
    void watchdogMain();
    void execute(Pending item, WorkerSlot &slot, MixGemmBackend &backend,
                 int worker_index);
    void finishRejected(Pending &&item, Status status);

    /** A resolved rung: the graph to run and its pre-packed weights
     * (null without a weight store). Holding these shared_ptrs keeps
     * both alive across eviction for the duration of the request. */
    struct RungRef
    {
        std::shared_ptr<const QuantizedGraph> graph;
        std::shared_ptr<const PackedModelIndex> pack;
    };

    /**
     * Resolve @p graph's rung @p tier, materializing a lazy rung on
     * first use (builder + weight-store load) and LRU-evicting lazy
     * rungs past the byte budget. Locks rung_mutex_, then mutex_ for
     * the materialize/evict decision-log entries stamped @p now —
     * never both at once.
     */
    RungRef resolveRung(RegisteredGraph &graph, unsigned tier,
                        uint64_t now);

    // The following run under mutex_.
    /** Breaker for @p graph's rung @p tier, created on first use. */
    CircuitBreaker &breakerLocked(RegisteredGraph &graph, unsigned tier);
    /** Feed a terminal outcome to the request's rung breaker; logs the
     * state transition and maintains the open-breaker gauge. */
    void recordBreakerOutcomeLocked(const Pending &item, StatusCode code,
                                    uint64_t now_ns);
    void logLocked(std::string entry);
    void evaluateDegradationLocked(uint64_t now_ns);
    /** Per-tenant brownout controller: step over-share tenants' extra
     * degradation up/down from the current queue fill (tenancy only). */
    void evaluateBrownoutLocked(uint64_t now_ns);
    void recordTerminalLocked(const ServeResponse &response);
    PriorityClassStats &classStatsLocked(int priority)
    {
        return stats_.by_priority[priority];
    }
    TenantStats &tenantStatsLocked(const std::string &tenant)
    {
        return stats_.by_tenant[tenant];
    }
    size_t queueDepthLocked() const
    {
        return sched_ ? sched_->size() : queue_.size();
    }
    /** Release the tenant's bulkhead slot for a request that left the
     * queued/executing pipeline (terminal after admission). */
    void releaseTenantLocked(const Pending &item);

    ServeObserver *observer() const
    {
        return observer_.load(std::memory_order_acquire);
    }
    /** Fire ServeObserver::onTerminal; call with mutex_ NOT held. */
    void notifyTerminal(const RequestReport &report, StatusCode code);

    ServerOptions options_;
    const Clock *clock_ = nullptr;
    std::vector<std::unique_ptr<RegisteredGraph>> graphs_;
    BoundedQueue<Pending> queue_;
    /// Tenancy plane; both null when options_.tenancy.enabled is false,
    /// in which case queue_ above carries all work exactly as before.
    /// The registry is externally synchronized: accessed under mutex_.
    std::unique_ptr<TenantRegistry> tenants_;
    std::unique_ptr<TenantScheduler<Pending>> sched_;

    /// Guards every RegisteredGraph's rung state plus the LRU pool
    /// below. Separate from mutex_ (and never held together with it)
    /// so a slow materialization cannot stall admission.
    std::mutex rung_mutex_;
    uint64_t rung_use_tick_ = 0;       ///< logical LRU clock
    uint64_t lazy_resident_bytes_ = 0; ///< pooled lazy-rung footprint
    uint64_t lazy_resident_count_ = 0;
    std::vector<RegisteredGraph *> rung_registry_; ///< eviction scan set

    mutable std::mutex mutex_;
    uint64_t next_seq_ = 0;
    uint64_t decision_seq_ = 0; ///< total order over decision entries
    unsigned level_ = 0;          ///< current degradation level
    unsigned max_level_ = 0;      ///< deepest ladder registered, - 1
    uint64_t last_level_change_ns_ = 0;
    bool draining_ = false; ///< beginDrain() called; admission closed
    LogHistogram window_latency_; ///< total-latency window since change
    RetryBudget retry_budget_;    ///< global retry token bucket
    ServerStats stats_;
    MetricSet metrics_;
    std::vector<std::string> decisions_;

    std::vector<std::unique_ptr<WorkerSlot>> slots_;
    std::vector<std::thread> workers_;
    std::thread watchdog_;
    std::mutex watchdog_mutex_;
    std::condition_variable watchdog_cv_;
    bool stopping_ = false;
    std::atomic<bool> shut_down_{false};
    std::atomic<ServeObserver *> observer_{nullptr};
    std::unique_ptr<MixGemmBackend> pump_backend_;
    std::unique_ptr<WorkerSlot> pump_slot_;
};

} // namespace mixgemm

#endif // MIXGEMM_SERVE_SERVER_H
