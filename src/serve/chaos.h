/**
 * @file
 * Deterministic chaos plane for the serving stack.
 *
 * The ChaosEngine decides, for every execution attempt and every
 * submission, whether to inject a fault — a worker throw (exercising
 * the worker-exception path), a stall (modeled in virtual time,
 * no-heartbeat spin under the watchdog in wall mode), a transient
 * backend error (kUnavailable, exercising retries, the retry budget
 * and the circuit breakers), an arrival queue-delay or clock-skew
 * perturbation, or an artifact-load fault at the packed-weight store.
 *
 * Determinism contract (same as the PR 4 fault injector): every
 * decision is a pure function of the engine seed and the *logical*
 * coordinates of the event — (request seq, attempt) for execution
 * faults, request seq for submission perturbations, load index for
 * store faults — never of thread timing or execution order. Each
 * decision seeds a private Rng from those coordinates and draws its
 * probabilities in a fixed order, so two same-seed soaks inject
 * byte-identical fault schedules regardless of interleaving, and the
 * server logs every applied event into the decision log.
 *
 * The scenario's @ref ChaosScenario::inject_until_ns window lets a
 * soak stop injecting partway through the run, which is how the
 * breaker-recovery acceptance scenario (fail hard, then heal) is
 * scripted.
 */

#ifndef MIXGEMM_SERVE_CHAOS_H
#define MIXGEMM_SERVE_CHAOS_H

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "serve/resilience.h"

namespace mixgemm
{

/** One chaos scenario: per-event probabilities and targeting. */
struct ChaosScenario
{
    std::string name = "off";

    // Execution-attempt faults (drawn per (seq, attempt)).
    double throw_prob = 0.0;     ///< worker throws -> kInternal
    double stall_prob = 0.0;     ///< stall (modeled / watchdog path)
    uint64_t stall_ns = 10'000'000;
    double transient_prob = 0.0; ///< kUnavailable backend error
    /** Restrict execution faults to one ladder rung (-1 = all). The
     * persistently-failing-rung scenario targets rung 0. */
    int target_tier = -1;

    // Submission perturbations (drawn per seq; virtual-time only).
    double queue_delay_prob = 0.0;
    uint64_t queue_delay_ns = 0;
    double clock_skew_prob = 0.0;
    uint64_t clock_skew_ns = 0;

    // Weight-store faults (drawn per artifact-load index).
    double store_fault_prob = 0.0;

    /** Injection window: events stop once now_ns reaches this (0 =
     * inject for the whole run). */
    uint64_t inject_until_ns = 0;
};

/** What to do to one execution attempt. */
struct ChaosAttemptPlan
{
    enum class Action
    {
        kNone,
        kThrow,
        kStall,
        kTransient
    };
    Action action = Action::kNone;
    uint64_t stall_ns = 0; ///< for kStall
};

/** Submission-time perturbation for one request. */
struct ChaosSubmitPlan
{
    uint64_t delay_ns = 0; ///< queue-delay before admission
    uint64_t skew_ns = 0;  ///< clock skew applied to the virtual clock
};

/** Applied-event counters (read via ChaosEngine::counts()). */
struct ChaosCounts
{
    uint64_t throws = 0;
    uint64_t stalls = 0;
    uint64_t transients = 0;
    uint64_t arrival_delays = 0;
    uint64_t clock_skews = 0;
    uint64_t store_faults = 0;

    uint64_t total() const
    {
        return throws + stalls + transients + arrival_delays +
               clock_skews + store_faults;
    }
};

/** See the file comment. Thread-safe; planning is side-effect free
 * except for the applied-event counters the server bumps. */
class ChaosEngine
{
  public:
    ChaosEngine(uint64_t seed, ChaosScenario scenario);

    const ChaosScenario &scenario() const { return scenario_; }
    uint64_t seed() const { return seed_; }

    /** Whether any event kind has nonzero probability. */
    bool enabled() const;

    /** Whether the injection window is still open at @p now_ns. */
    bool active(uint64_t now_ns) const;

    /** Pin the window's origin so inject_until_ns measures time since
     * the serving run started, not absolute clock reading. The server
     * arms this from its clock at construction; under a VirtualClock
     * that is 0 (no behavior change), under the wall clock it is the
     * steady-clock reading — without it a windowed scenario would
     * compare a relative window against absolute nanoseconds and
     * never fire. First call wins; later calls are ignored. */
    void armEpoch(uint64_t now_ns);

    /** Fault plan for attempt @p attempt (1-based) of request
     * @p seq executing rung @p tier. Pure function of
     * (seed, seq, attempt) gated by tier targeting and the window. */
    ChaosAttemptPlan planAttempt(uint64_t seq, unsigned attempt,
                                 unsigned tier, uint64_t now_ns) const;

    /** Submission perturbation for request @p seq. */
    ChaosSubmitPlan planSubmit(uint64_t seq, uint64_t now_ns) const;

    /** Whether artifact load @p load_index should fail (corrupt-map
     * injection; the store self-heals by re-packing). */
    bool planStoreFault(uint64_t load_index) const;

    // Applied-event accounting (bumped by the code that applies the
    // plan, so counts reflect injected — not merely planned — events).
    void noteThrow() { ++throws_; }
    void noteStall() { ++stalls_; }
    void noteTransient() { ++transients_; }
    void noteArrivalDelay() { ++arrival_delays_; }
    void noteClockSkew() { ++clock_skews_; }
    void noteStoreFault() { ++store_faults_; }

    ChaosCounts counts() const;

  private:
    uint64_t seed_;
    ChaosScenario scenario_;
    uint64_t epoch_ns_ = 0;
    bool epoch_armed_ = false;
    std::atomic<uint64_t> throws_{0};
    std::atomic<uint64_t> stalls_{0};
    std::atomic<uint64_t> transients_{0};
    std::atomic<uint64_t> arrival_delays_{0};
    std::atomic<uint64_t> clock_skews_{0};
    std::atomic<uint64_t> store_faults_{0};
};

/**
 * A named scenario bundled with the resilience configuration it is
 * meant to exercise (soak harness and CLI use these).
 */
struct ChaosProfile
{
    ChaosScenario scenario;
    BreakerOptions breaker;
    RetryBudgetOptions retry_budget;
    HedgeOptions hedge;
    HealthOptions health;
};

/**
 * Built-in scenarios, parameterized by the run duration:
 *   rung-failure   rung 0 fails every attempt for the first 40 % of
 *                  the run (breaker opens, fast-fails, then half-open
 *                  probes close it after injection stops)
 *   flaky-backend  sparse transient errors + rare worker throws
 *   storm          queue delays, clock skew, and transient errors
 *   stall-hedge    long stalls with hedged requests winning
 *   stall-crash    stalls + throws with backend quarantine armed
 */
Expected<ChaosProfile> chaosProfileByName(const std::string &name,
                                          uint64_t duration_ns);

/** Names accepted by chaosProfileByName, comma-separated (usage text). */
std::string chaosScenarioNames();

} // namespace mixgemm

#endif // MIXGEMM_SERVE_CHAOS_H
