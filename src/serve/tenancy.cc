#include "serve/tenancy.h"

#include <algorithm>
#include <cmath>

#include "common/jsonlite.h"
#include "common/logging.h"

namespace mixgemm
{

TenantRegistry::TenantRegistry(TenancyOptions options)
    : options_(std::move(options))
{
    // Configured tenants are registered up front in name (map) order,
    // so their ids do not depend on arrival order — a prerequisite for
    // byte-identical same-seed soaks when traffic interleaving varies.
    for (const auto &[name, policy] : options_.tenants) {
        const uint32_t id = static_cast<uint32_t>(states_.size());
        ids_.emplace(name, id);
        TenantState state;
        state.name = name;
        state.policy = policy;
        state.tokens = policy.burst;
        states_.push_back(std::move(state));
    }
}

std::optional<uint32_t>
TenantRegistry::resolve(const std::string &name)
{
    const auto it = ids_.find(name);
    if (it != ids_.end())
        return it->second;
    if (states_.size() >= options_.max_tenants)
        return std::nullopt;
    const uint32_t id = static_cast<uint32_t>(states_.size());
    ids_.emplace(name, id);
    TenantState state;
    state.name = name;
    state.policy = options_.default_policy;
    state.tokens = state.policy.burst;
    states_.push_back(std::move(state));
    return id;
}

std::optional<uint32_t>
TenantRegistry::findId(const std::string &name) const
{
    const auto it = ids_.find(name);
    if (it == ids_.end())
        return std::nullopt;
    return it->second;
}

bool
TenantRegistry::tryAcquireToken(TenantState &state, uint64_t now_ns)
{
    if (state.policy.rate_per_s <= 0.0)
        return true;
    // Same shape as the global RetryBudget: continuous refill from the
    // server clock, capped at the burst, one token per admission. The
    // first call pins the epoch so absolute clock origin (wall vs
    // virtual) never leaks into the level.
    if (!state.bucket_armed) {
        state.bucket_armed = true;
        state.bucket_ns = now_ns;
    }
    if (now_ns > state.bucket_ns) {
        const double elapsed_s =
            static_cast<double>(now_ns - state.bucket_ns) / 1e9;
        state.tokens = std::min(
            state.policy.burst,
            state.tokens + elapsed_s * state.policy.rate_per_s);
        state.bucket_ns = now_ns;
    }
    if (state.tokens < 1.0)
        return false;
    state.tokens -= 1.0;
    return true;
}

namespace
{

Status
parsePolicy(const JsonValue &value, const char *where,
            TenantPolicy &policy)
{
    if (!value.isObject())
        return Status::invalidArgument(
            strCat("tenant policy ", where, ": expected an object"));
    for (const auto &[key, member] : value.members) {
        static const char *known[] = {
            "weight",        "rate_per_s",       "burst",
            "max_queue",     "max_in_flight",    "priority_ceiling",
            "tier_floor"};
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok)
            return Status::invalidArgument(
                strCat("tenant policy ", where, ": unknown key \"",
                       key, "\""));
        if (!member.isNumber())
            return Status::invalidArgument(strCat(
                "tenant policy ", where, ": \"", key,
                "\" must be a number"));
    }
    if (const JsonValue *v = value.find("weight")) {
        const uint64_t weight = v->uintOr(0);
        if (weight == 0 || weight > 1'000'000)
            return Status::invalidArgument(strCat(
                "tenant policy ", where,
                ": weight must be an integer in [1, 1e6]"));
        policy.weight = static_cast<uint32_t>(weight);
    }
    if (const JsonValue *v = value.find("rate_per_s")) {
        const double rate = v->numberOr(-1.0);
        if (rate < 0.0 || !std::isfinite(rate))
            return Status::invalidArgument(
                strCat("tenant policy ", where,
                       ": rate_per_s must be a finite number >= 0"));
        policy.rate_per_s = rate;
    }
    if (const JsonValue *v = value.find("burst")) {
        const double burst = v->numberOr(-1.0);
        if (burst < 1.0 || !std::isfinite(burst))
            return Status::invalidArgument(
                strCat("tenant policy ", where,
                       ": burst must be a finite number >= 1"));
        policy.burst = burst;
    }
    if (const JsonValue *v = value.find("max_queue"))
        policy.max_queue = static_cast<size_t>(v->uintOr(0));
    if (const JsonValue *v = value.find("max_in_flight"))
        policy.max_in_flight = static_cast<uint32_t>(v->uintOr(0));
    if (const JsonValue *v = value.find("priority_ceiling")) {
        const double ceiling = v->numberOr(-1.0);
        policy.priority_ceiling =
            ceiling < 0.0 ? std::numeric_limits<int>::max()
                          : static_cast<int>(ceiling);
    }
    if (const JsonValue *v = value.find("tier_floor")) {
        const double floor = v->numberOr(-1.0);
        if (floor > 64.0)
            return Status::invalidArgument(
                strCat("tenant policy ", where,
                       ": tier_floor out of range"));
        policy.tier_floor =
            floor < 0.0 ? -1 : static_cast<int>(floor);
    }
    return Status();
}

} // namespace

Expected<TenancyOptions>
parseTenancyJson(const std::string &text)
{
    Expected<JsonValue> parsed = parseJson(text);
    if (!parsed.ok())
        return parsed.status();
    const JsonValue &root = *parsed;
    if (!root.isObject())
        return Status::invalidArgument(
            "tenant policy: top-level value must be an object");

    // Unknown keys are configuration typos, not extensions to ignore —
    // a silently dropped "tennants" section would run unlimited.
    for (const auto &[key, member] : root.members) {
        (void)member;
        if (key != "default" && key != "tenants" && key != "brownout" &&
            key != "quantum" && key != "max_tenants")
            return Status::invalidArgument(
                strCat("tenant policy: unknown key \"", key, "\""));
    }

    TenancyOptions options;
    options.enabled = true;
    if (const JsonValue *v = root.find("default")) {
        const Status status =
            parsePolicy(*v, "default", options.default_policy);
        if (!status.ok())
            return status;
    }
    if (const JsonValue *v = root.find("tenants")) {
        if (!v->isObject())
            return Status::invalidArgument(
                "tenant policy: \"tenants\" must be an object");
        for (const auto &[name, member] : v->members) {
            if (name.empty() || name.size() > 128)
                return Status::invalidArgument(
                    "tenant policy: tenant names must be 1..128 "
                    "bytes");
            TenantPolicy policy = options.default_policy;
            const Status status =
                parsePolicy(member, name.c_str(), policy);
            if (!status.ok())
                return status;
            options.tenants[name] = policy;
        }
    }
    if (const JsonValue *v = root.find("brownout")) {
        if (!v->isObject())
            return Status::invalidArgument(
                "tenant policy: \"brownout\" must be an object");
        BrownoutPolicy &b = options.brownout;
        if (const JsonValue *f = v->find("enabled")) {
            if (!f->isBool())
                return Status::invalidArgument(
                    "tenant policy: brownout.enabled must be a bool");
            b.enabled = f->boolOr(b.enabled);
        }
        const auto number_field = [&](const char *key,
                                      double &out) -> Status {
            if (const JsonValue *f = v->find(key)) {
                if (!f->isNumber())
                    return Status::invalidArgument(
                        strCat("tenant policy: brownout.", key,
                               " must be a number"));
                out = f->numberOr(out);
            }
            return Status();
        };
        if (Status s = number_field("high_watermark", b.high_watermark);
            !s.ok())
            return s;
        if (Status s = number_field("low_watermark", b.low_watermark);
            !s.ok())
            return s;
        if (Status s =
                number_field("over_share_factor", b.over_share_factor);
            !s.ok())
            return s;
        if (const JsonValue *f = v->find("max_steps")) {
            if (!f->isNumber())
                return Status::invalidArgument(
                    "tenant policy: brownout.max_steps must be a "
                    "number");
            b.max_steps = static_cast<unsigned>(f->uintOr(b.max_steps));
        }
        if (const JsonValue *f = v->find("min_dwell_ns")) {
            if (!f->isNumber())
                return Status::invalidArgument(
                    "tenant policy: brownout.min_dwell_ns must be a "
                    "number");
            b.min_dwell_ns = f->uintOr(b.min_dwell_ns);
        }
        if (!(b.high_watermark > 0.0) || b.high_watermark > 1.0 ||
            b.low_watermark < 0.0 ||
            b.low_watermark >= b.high_watermark ||
            !(b.over_share_factor > 0.0) ||
            !std::isfinite(b.over_share_factor))
            return Status::invalidArgument(
                "tenant policy: brownout watermarks must satisfy "
                "0 <= low < high <= 1 with a positive share factor");
    }
    if (const JsonValue *v = root.find("quantum")) {
        options.quantum = v->uintOr(0);
        if (options.quantum == 0 || options.quantum > 1'000'000)
            return Status::invalidArgument(
                "tenant policy: quantum must be in [1, 1e6]");
    }
    if (const JsonValue *v = root.find("max_tenants")) {
        const uint64_t cap = v->uintOr(0);
        if (cap == 0 || cap > 100'000)
            return Status::invalidArgument(
                "tenant policy: max_tenants must be in [1, 1e5]");
        options.max_tenants = static_cast<uint32_t>(cap);
    }
    return options;
}

Expected<TenantScenario>
tenantScenarioByName(const std::string &name)
{
    TenantScenario scenario;
    scenario.name = name;
    scenario.options.enabled = true;
    if (name == "noisy-neighbor") {
        // A high-weight tenant with a modest arrival share vs a
        // low-weight flood. DWRR keeps the victim's dispatch share at
        // 10/11 of capacity whenever it has work queued, and the
        // aggressor — persistently over its weight-fair queue share —
        // is browned out first. The victim's accuracy floor keeps its
        // precision at rung <= 1 even under global degradation.
        TenantPolicy victim;
        victim.weight = 10;
        victim.tier_floor = 1;
        TenantPolicy aggressor;
        aggressor.weight = 1;
        scenario.options.tenants["victim"] = victim;
        scenario.options.tenants["aggressor"] = aggressor;
        scenario.options.brownout.enabled = true;
        scenario.options.brownout.high_watermark = 0.6;
        scenario.options.brownout.low_watermark = 0.2;
        scenario.options.brownout.over_share_factor = 1.25;
        scenario.options.brownout.max_steps = 2;
        scenario.options.brownout.min_dwell_ns = 10'000'000;
        scenario.arrival_mix = {{"victim", 0.25}, {"aggressor", 0.75}};
        return scenario;
    }
    if (name == "quota-storm") {
        // Four equal tenants, each rate- and bulkhead-limited, offered
        // far more load than their buckets admit: admission must shed
        // the storm as tenant_rate / tenant_bulkhead rejections while
        // in-quota requests keep completing.
        TenantPolicy limited;
        limited.weight = 1;
        limited.rate_per_s = 150.0;
        limited.burst = 4.0;
        limited.max_in_flight = 8;
        for (const char *tenant : {"t0", "t1", "t2", "t3"}) {
            scenario.options.tenants[tenant] = limited;
            scenario.arrival_mix.emplace_back(tenant, 0.25);
        }
        scenario.options.brownout.enabled = false;
        return scenario;
    }
    return Status::invalidArgument(
        strCat("unknown tenant scenario '", name, "'; expected one of ",
               tenantScenarioNames()));
}

std::string
tenantScenarioNames()
{
    return "noisy-neighbor, quota-storm";
}

} // namespace mixgemm
